"""HDMM core: error metrics, measurement, reconstruction, the mechanism."""

from .error import (
    error_ratio,
    expected_error,
    gram_inverse_trace,
    laplace_mechanism_error,
    rootmse,
    squared_error,
    supports,
    workload_marginal_traces,
)
from .hdmm import HDMM
from .measure import laplace_measure, laplace_noise, measurement_variance
from .privacy import PrivacyLedger, sensitivity_of
from .reconstruct import answer_workload, least_squares

__all__ = [
    "HDMM",
    "PrivacyLedger",
    "answer_workload",
    "error_ratio",
    "expected_error",
    "gram_inverse_trace",
    "laplace_mechanism_error",
    "laplace_measure",
    "laplace_noise",
    "least_squares",
    "measurement_variance",
    "rootmse",
    "sensitivity_of",
    "squared_error",
    "supports",
    "workload_marginal_traces",
]
