"""HDMM core: error metrics, measurement, reconstruction, the mechanism."""

from .error import (
    error_ratio,
    expected_error,
    gram_inverse_trace,
    laplace_mechanism_error,
    rootmse,
    squared_error,
    supports,
    workload_marginal_traces,
)
from .hdmm import HDMM
from .measure import (
    laplace_measure,
    laplace_measure_batch,
    laplace_noise,
    measurement_variance,
)
from .privacy import PrivacyLedger, sensitivity_of
from .reconstruct import (
    DENSE_PINV_LIMIT,
    answer_workload,
    has_structured_pinv,
    least_squares,
    resolves_to_direct,
    resolves_to_pinv,
)
from .solvers import (
    CGResult,
    GramRecycleState,
    cg_gram_solve,
    export_gram_solver_state,
    gram_recycle_state,
    restore_gram_solver_state,
    union_gram_inverse,
    union_gram_preconditioner,
    validate_epsilon,
)

__all__ = [
    "CGResult",
    "GramRecycleState",
    "DENSE_PINV_LIMIT",
    "HDMM",
    "PrivacyLedger",
    "answer_workload",
    "cg_gram_solve",
    "error_ratio",
    "expected_error",
    "export_gram_solver_state",
    "gram_inverse_trace",
    "gram_recycle_state",
    "has_structured_pinv",
    "laplace_mechanism_error",
    "laplace_measure",
    "laplace_measure_batch",
    "laplace_noise",
    "least_squares",
    "measurement_variance",
    "resolves_to_direct",
    "resolves_to_pinv",
    "restore_gram_solver_state",
    "rootmse",
    "union_gram_inverse",
    "union_gram_preconditioner",
    "validate_epsilon",
    "sensitivity_of",
    "squared_error",
    "supports",
    "workload_marginal_traces",
]
