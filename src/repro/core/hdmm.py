"""The end-to-end HDMM mechanism (paper Table 1b and Section 7).

::

    W = ImpVec(workload)          # compact implicit representation
    A = OPT_HDMM(W)               # optimized strategy selection
    a = Multiply(A, x)            # strategy query answering
    y = a + Lap(‖A‖₁/ε)           # noise addition          (MEASURE)
    x̄ = LstSqr(A, y)              # inference               (RECONSTRUCT)
    ans = Multiply(W, x̄)          # workload answering

Strategy selection is data-independent: ``HDMM.fit`` can be run once per
workload and the fitted mechanism reused across datasets and ε values
(Section 3.6 — the Census SF1 workload changes only every 10 years).
That reuse is the serving hot path: :meth:`HDMM.run_batch` answers a
whole grid of (ε, noise-trial) pairs — or a batch of data vectors — in
one pass, computing the strategy answers once, drawing per-trial noise
from spawned seed children, solving all inferences as one multi-RHS
least squares (warm-started across adjacent ε values), and answering the
workload with batched mat-mats.

Privacy (Theorem 7): ImpVec and OPT_HDMM never touch the data; the only
data access is the Laplace measurement, and everything after it is
post-processing, so each trial of the mechanism is ε-differentially
private for its own ε.  (Running many trials composes: a 20-trial sweep
spends the sum of its budgets — budget accounting is the caller's
responsibility, e.g. via :class:`~repro.core.privacy.PrivacyLedger`.)
"""

from __future__ import annotations

import numpy as np

from ..linalg import Matrix
from ..optimize import OptResult, opt_hdmm
from ..optimize.parallel import spawn_seeds
from ..workload.logical import LogicalWorkload, as_workload_matrix
from .error import expected_error, rootmse
from .measure import (
    gaussian_measure,
    gaussian_measure_batch,
    laplace_measure,
    laplace_measure_batch,
)
from .privacy import DEFAULT_DELTA
from .reconstruct import answer_workload, least_squares, resolves_to_direct
from .solvers import validate_epsilon, validate_positive_int


def _measure_once(A, x, eps, rng, mechanism, delta):
    if mechanism == "laplace":
        return laplace_measure(A, x, eps, rng)
    if mechanism == "gaussian":
        return gaussian_measure(A, x, eps, rng, delta=delta)
    raise ValueError(f"mechanism must be 'laplace' or 'gaussian', got {mechanism!r}")


def _measure_grid(A, x, eps, rng, mechanism, delta, columnwise):
    if mechanism == "laplace":
        return laplace_measure_batch(A, x, eps, rng=rng, columnwise=columnwise)
    if mechanism == "gaussian":
        return gaussian_measure_batch(
            A, x, eps, rng=rng, columnwise=columnwise, delta=delta
        )
    raise ValueError(f"mechanism must be 'laplace' or 'gaussian', got {mechanism!r}")


class HDMM:
    """High-Dimensional Matrix Mechanism.

    Parameters
    ----------
    restarts:
        Random restarts S for strategy selection (Algorithm 2).
    rng:
        Seed or Generator controlling both strategy-selection restarts
        and (via :meth:`run`'s own argument) noise generation.

    Examples
    --------
    >>> from repro import workload as wl
    >>> mech = HDMM(restarts=3, rng=0)
    >>> mech.fit(wl.prefix_1d(64))
    >>> answers = mech.run(x, eps=1.0, rng=7)             # doctest: +SKIP
    >>> sweep = mech.run_batch(x, eps=[0.1, 1.0], trials=20, rng=7)  # doctest: +SKIP
    """

    def __init__(
        self, restarts: int = 25, rng: np.random.Generator | int | None = None
    ):
        self.restarts = restarts
        self.rng = np.random.default_rng(rng)
        self.workload: Matrix | None = None
        self.strategy: Matrix | None = None
        self.result: OptResult | None = None

    # -- SELECT -----------------------------------------------------------
    def fit(self, workload: Matrix | LogicalWorkload, **opt_kwargs) -> "HDMM":
        """Vectorize and select a strategy.  Data-independent.

        Accepts anything in the workload protocol: an implicit matrix, a
        :class:`~repro.workload.LogicalWorkload`, or a compiled query
        plan from :mod:`repro.api` (any object with
        ``to_workload_matrix()``).
        """
        workload, _ = as_workload_matrix(workload)
        self.workload = workload
        self.result = opt_hdmm(
            workload, restarts=self.restarts, rng=self.rng, **opt_kwargs
        )
        self.strategy = self.result.strategy
        return self

    def _require_fitted(self) -> Matrix:
        if self.strategy is None or self.workload is None:
            raise RuntimeError("call fit(workload) before running the mechanism")
        return self.strategy

    # -- MEASURE + RECONSTRUCT ---------------------------------------------
    def run(
        self,
        x: np.ndarray,
        eps: float,
        rng: np.random.Generator | int | None = None,
        return_data_vector: bool = False,
        mechanism: str = "laplace",
        delta: float = DEFAULT_DELTA,
        **solver_kwargs,
    ):
        """Answer the fitted workload on data vector ``x`` under ε-DP
        (``mechanism="laplace"``, the default) or (ε, δ)-DP
        (``mechanism="gaussian"``, calibrated through zCDP at ``delta``).

        Returns the noisy workload answers; with
        ``return_data_vector=True`` also returns the inferred x̄.
        Extra keyword arguments are forwarded to
        :func:`~repro.core.reconstruct.least_squares`.
        """
        A = self._require_fitted()
        y = _measure_once(A, x, eps, rng, mechanism, delta)
        x_hat = least_squares(A, y, **solver_kwargs)
        answers = answer_workload(self.workload, x_hat)
        if return_data_vector:
            return answers, x_hat
        return answers

    def run_batch(
        self,
        x: np.ndarray,
        eps: float | np.ndarray = 1.0,
        trials: int = 1,
        rng: np.random.Generator | int | None = None,
        method: str = "auto",
        warm_start: bool = True,
        exact: bool = False,
        return_data_vector: bool = False,
        mechanism: str = "laplace",
        delta: float = DEFAULT_DELTA,
        **solver_kwargs,
    ):
        """Batched serving: answer a grid of (ε, trial) pairs in one pass.

        Two modes, chosen by the shape of ``x``:

        * **sweep** — ``x`` is one data vector (length n).  The trial grid
          is ``len(eps_grid) x trials``; the strategy answers ``Ax`` are
          computed once, trial ``(e, r)`` adds noise from seed child
          ``e * trials + r`` of ``rng``, and all inferences are solved as
          multi-RHS least squares — warm-started block-by-block across
          the ε grid (pass the grid in sweep order: adjacent ε values
          hand their solutions to the next block as ``x0``).  Returns
          answers of shape ``(len(eps_grid), trials, m)``; a scalar
          ``eps`` gives grid length 1.
        * **paired** — ``x`` is a batch of data vectors (n x t) paired
          with a scalar or length-t ``eps``; ``trials`` must be 1.
          Returns answers of shape ``(t, m)``.

        Determinism contract (mirrors ``optimize/parallel.py``): noise is
        assigned by flat trial index via ``SeedSequence.spawn``, so the
        measurements are bit-identical to the sequential loop ::

            seeds = spawn_seeds(rng, T)
            [self.run(x, eps[j], rng=seeds[j]) for j in range(T)]

        for any batch composition — and with ``exact=True`` and
        ``warm_start=False`` the *answers* are too, because every
        operator is then applied one contiguous column at a time (the
        same arithmetic as the loop, different orchestration).  The
        default fast mode (``exact=False``) batches the BLAS width and
        agrees with the loop to solver tolerance.  One scoping note: for
        L ≥ 3 union strategies the auto solver recycles a deflation
        basis across solves (:mod:`repro.core.solvers`), which couples a
        solve to the batch composition of *earlier* solves on the same
        strategy instance — there the ``exact=True`` guarantee is
        same-seed reproducibility (identical fresh runs are
        bit-identical), with loop-vs-batch agreement at solver tolerance.

        Privacy: each trial is ε-DP for its own budget; a full sweep
        spends the sum of its trials' budgets under sequential
        composition.

        Returns the answers array; with ``return_data_vector=True`` a
        ``(answers, x_hat)`` pair where ``x_hat`` carries the same
        leading grid axes over data vectors of length n.
        """
        A = self._require_fitted()
        x = np.asarray(x, dtype=np.float64)
        eps_arr = np.atleast_1d(validate_epsilon(eps))
        if eps_arr.ndim != 1:
            raise ValueError(f"eps must be a scalar or 1-D grid, got {eps_arr.shape}")
        trials = validate_positive_int("trials", trials)

        if x.ndim == 2:
            if trials != 1:
                raise ValueError(
                    "trials > 1 requires a single shared data vector; got a "
                    f"(n, {x.shape[1]}) batch with trials={trials}"
                )
            Y = _measure_grid(
                A, x, eps_arr, rng, mechanism, delta, columnwise=exact
            )
            X_hat = least_squares(
                A, Y, method=method, columnwise=exact, **solver_kwargs
            )
            answers = answer_workload(self.workload, X_hat, columnwise=exact).T
            if return_data_vector:
                return answers, X_hat.T
            return answers
        if x.ndim != 1:
            raise ValueError(f"x must be 1-D or 2-D, got shape {x.shape}")

        k = eps_arr.size
        T = k * trials
        eps_flat = np.repeat(eps_arr, trials)  # flat trial j = e * trials + r
        Y = _measure_grid(
            A, x, eps_flat, rng, mechanism, delta, columnwise=exact
        )

        if warm_start and k > 1 and not resolves_to_direct(
            A, method, solver_kwargs.get("dense_pinv_limit")
        ):
            # Solve ε-block by ε-block, seeding each block's iterative
            # solve with the previous ε's solutions (same trial index).
            X_hat = np.empty((A.shape[1], T))
            prev: np.ndarray | None = None
            for e in range(k):
                block = slice(e * trials, (e + 1) * trials)
                prev = least_squares(
                    A,
                    Y[:, block],
                    method=method,
                    x0=prev,
                    columnwise=exact,
                    **solver_kwargs,
                )
                X_hat[:, block] = prev
        else:
            X_hat = least_squares(
                A, Y, method=method, columnwise=exact, **solver_kwargs
            )

        answers = answer_workload(self.workload, X_hat, columnwise=exact)
        answers = answers.T.reshape(k, trials, self.workload.shape[0])
        if return_data_vector:
            return answers, X_hat.T.reshape(k, trials, A.shape[1])
        return answers

    def measure_seeds(
        self, total: int, rng: np.random.Generator | int | None = None
    ) -> list[np.random.SeedSequence]:
        """The per-trial seed children :meth:`run_batch` uses for a grid of
        ``total`` trials — for reproducing any single trial standalone."""
        return spawn_seeds(rng, total)

    # -- diagnostics ---------------------------------------------------------
    def expected_error(
        self,
        eps: float | np.ndarray = 1.0,
        mechanism: str = "laplace",
        delta: float = DEFAULT_DELTA,
    ) -> float | np.ndarray:
        """Definition 7 expected total squared error of the fitted strategy
        (vectorized over an ε grid) under the chosen mechanism."""
        self._require_fitted()
        return expected_error(
            self.workload, self.strategy, eps, mechanism=mechanism, delta=delta
        )

    def expected_rootmse(
        self,
        eps: float | np.ndarray = 1.0,
        mechanism: str = "laplace",
        delta: float = DEFAULT_DELTA,
    ) -> float | np.ndarray:
        """Per-query root mean squared error of the fitted strategy
        (vectorized over an ε grid) under the chosen mechanism."""
        self._require_fitted()
        return rootmse(
            self.workload, self.strategy, eps, mechanism=mechanism, delta=delta
        )
