"""The end-to-end HDMM mechanism (paper Table 1b and Section 7).

::

    W = ImpVec(workload)          # compact implicit representation
    A = OPT_HDMM(W)               # optimized strategy selection
    a = Multiply(A, x)            # strategy query answering
    y = a + Lap(‖A‖₁/ε)           # noise addition          (MEASURE)
    x̄ = LstSqr(A, y)              # inference               (RECONSTRUCT)
    ans = Multiply(W, x̄)          # workload answering

Strategy selection is data-independent: ``HDMM.fit`` can be run once per
workload and the fitted mechanism reused across datasets and ε values
(Section 3.6 — the Census SF1 workload changes only every 10 years).

Privacy (Theorem 7): ImpVec and OPT_HDMM never touch the data; the only
data access is the Laplace measurement, and everything after it is
post-processing, so HDMM is ε-differentially private.
"""

from __future__ import annotations

import numpy as np

from ..linalg import Matrix
from ..optimize import OptResult, opt_hdmm
from ..workload.logical import LogicalWorkload, implicit_vectorize
from .error import expected_error, rootmse
from .measure import laplace_measure
from .reconstruct import answer_workload, least_squares


class HDMM:
    """High-Dimensional Matrix Mechanism.

    Parameters
    ----------
    restarts:
        Random restarts S for strategy selection (Algorithm 2).
    rng:
        Seed or Generator controlling both strategy-selection restarts
        and (via :meth:`run`'s own argument) noise generation.

    Examples
    --------
    >>> from repro import workload as wl
    >>> mech = HDMM(restarts=3, rng=0)
    >>> mech.fit(wl.prefix_1d(64))
    >>> answers = mech.run(x, eps=1.0, rng=7)   # doctest: +SKIP
    """

    def __init__(
        self, restarts: int = 25, rng: np.random.Generator | int | None = None
    ):
        self.restarts = restarts
        self.rng = np.random.default_rng(rng)
        self.workload: Matrix | None = None
        self.strategy: Matrix | None = None
        self.result: OptResult | None = None

    # -- SELECT -----------------------------------------------------------
    def fit(self, workload: Matrix | LogicalWorkload, **opt_kwargs) -> "HDMM":
        """Vectorize (if logical) and select a strategy.  Data-independent."""
        if isinstance(workload, LogicalWorkload):
            workload = implicit_vectorize(workload)
        self.workload = workload
        self.result = opt_hdmm(
            workload, restarts=self.restarts, rng=self.rng, **opt_kwargs
        )
        self.strategy = self.result.strategy
        return self

    def _require_fitted(self) -> Matrix:
        if self.strategy is None or self.workload is None:
            raise RuntimeError("call fit(workload) before running the mechanism")
        return self.strategy

    # -- MEASURE + RECONSTRUCT ---------------------------------------------
    def run(
        self,
        x: np.ndarray,
        eps: float,
        rng: np.random.Generator | int | None = None,
        return_data_vector: bool = False,
    ):
        """Answer the fitted workload on data vector ``x`` under ε-DP.

        Returns the noisy workload answers; with
        ``return_data_vector=True`` also returns the inferred x̄.
        """
        A = self._require_fitted()
        y = laplace_measure(A, x, eps, rng)
        x_hat = least_squares(A, y)
        answers = answer_workload(self.workload, x_hat)
        if return_data_vector:
            return answers, x_hat
        return answers

    # -- diagnostics ---------------------------------------------------------
    def expected_error(self, eps: float = 1.0) -> float:
        """Definition 7 expected total squared error of the fitted strategy."""
        self._require_fitted()
        return expected_error(self.workload, self.strategy, eps)

    def expected_rootmse(self, eps: float = 1.0) -> float:
        """Per-query root mean squared error of the fitted strategy."""
        self._require_fitted()
        return rootmse(self.workload, self.strategy, eps)
