"""Expected-error computation (paper Definition 7, Theorems 5 and 6).

For a workload ``W`` answered by the matrix mechanism with strategy ``A``
under ε-differential privacy, the expected total squared error is::

    Err(W, MM(A)) = (2/ε²) · ‖A‖₁² · ‖W A⁺‖_F²

This is data-independent, so strategies can be selected once per workload.
The Frobenius term is computed as ``tr[(AᵀA)⁺ (WᵀW)]``; this module
provides that computation with the structured fast paths HDMM relies on:

* Kronecker strategy + union-of-products workload → per-attribute
  decomposition (Theorem 6): ``Σ_j w_j² Π_i tr[(AᵢᵀAᵢ)⁺ Gᵢ⁽ʲ⁾]``;
* marginal strategy → the O(4^d) marginals algebra of Section 6.3;
* union-of-Kronecker strategies → the budget-split upper bound used by
  OPT_+ for operator selection (each sub-strategy answers its own
  workload group with an equal share of the budget; the paper notes the
  exact error of union strategies is intractable);
* anything else → dense ``tr[(AᵀA)⁺ V]`` via a Cholesky solve with a
  pseudo-inverse fallback.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np
from scipy import linalg as sla

from ..linalg import (
    Kronecker,
    MarginalsStrategy,
    Matrix,
    VStack,
    Weighted,
)
from ..workload.util import as_union_of_products
from .privacy import DEFAULT_DELTA, gaussian_sigma
from .solvers import validate_budget, validate_epsilon


def gram_inverse_trace(AtA: np.ndarray, V: np.ndarray) -> float:
    """``tr[(AᵀA)⁺ V]`` for dense Gram matrices.

    Uses a Cholesky solve when ``AᵀA`` is positive definite (the common
    case for strategies that support the workload) and falls back to the
    pseudo-inverse otherwise.
    """
    AtA = np.asarray(AtA, dtype=np.float64)
    V = np.asarray(V, dtype=np.float64)
    try:
        cho = sla.cho_factor(AtA, check_finite=False)
        return float(np.trace(sla.cho_solve(cho, V, check_finite=False)))
    except (np.linalg.LinAlgError, sla.LinAlgError, ValueError):
        return float(np.trace(np.linalg.pinv(AtA) @ V))


def gram_inverse_traces(AtA: np.ndarray, Vs: Sequence[np.ndarray]) -> list[float]:
    """``[tr[(AᵀA)⁺ V] for V in Vs]`` with one factorization of ``AᵀA``.

    Union-of-products error evaluation solves against the same strategy
    Gram for every workload term; factoring once and solving all
    right-hand sides in a single stacked triangular solve replaces
    ``len(Vs)`` Cholesky factorizations with one.
    """
    if not Vs:
        return []
    AtA = np.asarray(AtA, dtype=np.float64)
    n = AtA.shape[0]
    try:
        cho = sla.cho_factor(AtA, check_finite=False)
        sol = sla.cho_solve(
            cho, np.concatenate([np.asarray(V, dtype=np.float64) for V in Vs], axis=1),
            check_finite=False,
        )
        return [
            float(np.trace(sol[:, j * n : (j + 1) * n])) for j in range(len(Vs))
        ]
    except (np.linalg.LinAlgError, sla.LinAlgError, ValueError):
        P = np.linalg.pinv(AtA)
        return [
            float(np.einsum("ij,ji->", P, np.asarray(V, dtype=np.float64)))
            for V in Vs
        ]


def supports(W: Matrix, A: Matrix, tol: float = 1e-8) -> bool:
    """Check the support condition ``W A⁺ A = W`` (dense; tests/small N)."""
    Wd = W.dense()
    Ad = A.dense()
    return bool(np.allclose(Wd @ np.linalg.pinv(Ad) @ Ad, Wd, atol=tol))


def _marginal_traces(factors, sizes) -> np.ndarray:
    """Vector δ with δ_a = Π_i [sum(Gᵢ) if aᵢ=0 else tr(Gᵢ)] for one product.

    These are the per-subset statistics the OPT_M objective needs
    (Section 6.3: "the objective function only depends on W through the
    trace and sum of (WᵀW)ᵢ⁽ʲ⁾").
    """
    d = len(sizes)
    out = np.ones(1 << d)
    ks = np.arange(1 << d)
    for i, Wi in enumerate(factors):
        G = Wi.gram()
        tr, sm = G.trace(), G.sum()
        bit = (ks >> (d - 1 - i)) & 1
        out *= np.where(bit == 1, tr, sm)
    return out


def workload_marginal_traces(W: Matrix) -> np.ndarray:
    """δ vector for a union-of-products workload: Σ_j w_j² δ⁽ʲ⁾.

    Memoized on ``W``: the vector depends only on the workload, yet OPT_M
    needs it on every restart.  Treat the result as read-only.
    """
    cached = W.cache_get("marginal_traces")
    if cached is not None:
        return cached
    terms = as_union_of_products(W)
    sizes = [f.shape[1] for f in terms[0][1]]
    delta = np.zeros(1 << len(sizes))
    for w, factors in terms:
        delta += w**2 * _marginal_traces(factors, sizes)
    return W.cache_set("marginal_traces", delta)


def squared_error(W: Matrix, A: Matrix) -> float:
    """``‖A‖₁² · ‖W A⁺‖_F²`` — expected total squared error at ε = √2.

    Dispatches on the strategy structure; see the module docstring.
    Raises ``ValueError`` if the strategy cannot support the workload.
    """
    if isinstance(A, Weighted):
        # Scaling a strategy does not change its error (noise rescales).
        return squared_error(W, A.base)
    if isinstance(A, MarginalsStrategy):
        return _marginals_error(W, A)
    if isinstance(A, Kronecker):
        return _kron_error(W, A)
    if isinstance(A, VStack):
        return _union_error(W, A)
    return _dense_error(W, A)


def expected_error(
    W: Matrix,
    A: Matrix,
    eps: float | np.ndarray = 1.0,
    mechanism: str = "laplace",
    delta: float = DEFAULT_DELTA,
) -> float | np.ndarray:
    """Expected total squared error at budget ε (vectorized over ε).

    For the Laplace mechanism this is Definition 7 in full:
    ``(2/ε²) · ‖A‖₁² · ‖W A⁺‖_F²``.  Every structured ``squared_error``
    path is the per-measurement Laplace variance at ε = √2 (i.e. ``‖A‖₁²``)
    times an effective trace term ``‖W A⁺‖_F²``, so the Gaussian value is
    the same trace term scaled by the Gaussian per-measurement variance
    instead: ``σ(Δ₂, ε, δ)² · ‖W A⁺‖_F²``.  Only one strategy-error
    evaluation is needed either way (``squared_error`` is ε-independent) —
    the closed-form half of a batched ε sweep.
    """
    eps_arr = validate_epsilon(eps)
    if mechanism == "laplace":
        out = 2.0 / eps_arr**2 * squared_error(W, A)
    elif mechanism == "gaussian":
        validate_budget(delta=delta)
        # squared_error / ‖A‖₁² is the effective trace term; the strategy-
        # scaling invariance holds because σ ∝ Δ₂ picks the weight back up.
        sigma = np.asarray(gaussian_sigma(A.sensitivity(p=2), eps_arr, delta))
        out = sigma**2 * (squared_error(W, A) / A.sensitivity() ** 2)
    else:
        raise ValueError(
            f"mechanism must be 'laplace' or 'gaussian', got {mechanism!r}"
        )
    return float(out) if eps_arr.ndim == 0 else out


def rootmse(
    W: Matrix,
    A: Matrix,
    eps: float | np.ndarray = 1.0,
    mechanism: str = "laplace",
    delta: float = DEFAULT_DELTA,
) -> float | np.ndarray:
    """Root mean squared error per workload query (vectorized over ε)."""
    out = np.sqrt(
        np.asarray(expected_error(W, A, eps, mechanism=mechanism, delta=delta))
        / W.shape[0]
    )
    return float(out) if np.ndim(eps) == 0 else out


def error_ratio(W: Matrix, other: Matrix, baseline: Matrix) -> float:
    """``Ratio(W, K_other) = sqrt(Err_other / Err_baseline)`` (Section 8.1)."""
    return math.sqrt(squared_error(W, other) / squared_error(W, baseline))


# -- structured paths -------------------------------------------------------


def _kron_error(W: Matrix, A: Kronecker) -> float:
    """Theorem 6: single-product strategy against a union of products.

    Workload products share factor objects heavily (marginal workloads
    reuse the same Identity/Total factors across terms), so per attribute
    each *distinct* factor trace is computed once — and all of them with a
    single Cholesky factorization of the strategy factor's Gram.
    """
    terms = as_union_of_products(W)
    d = len(A.factors)
    if any(len(factors) != d for _, factors in terms):
        raise ValueError("workload and strategy have different attribute counts")
    sens2 = A.sensitivity() ** 2
    traces: list[dict[int, float]] = []
    for i, Ai in enumerate(A.factors):
        distinct: dict[int, Matrix] = {}
        for _, factors in terms:
            distinct.setdefault(id(factors[i]), factors[i])
        vals = gram_inverse_traces(
            Ai.gram().dense(), [f.gram().dense() for f in distinct.values()]
        )
        traces.append(dict(zip(distinct.keys(), vals)))
    total = 0.0
    for w, factors in terms:
        prod = w**2
        for i, Wi in enumerate(factors):
            prod *= traces[i][id(Wi)]
        total += prod
    return sens2 * total


def _marginals_error(W: Matrix, A: MarginalsStrategy) -> float:
    """Section 6.3: ``(Σθ)² · tr[G(v) WᵀW]`` via the marginals algebra."""
    from ..linalg.marginals import get_algebra

    alg = get_algebra(A.sizes)
    delta = workload_marginal_traces(W)
    u = A.theta**2
    if A.theta[-1] > 0:
        v = alg.ginv_weights(u)
    else:
        # tr[G⁻ WᵀW] is invariant over generalized inverses whenever the
        # strategy supports the workload, so the g-inverse suffices here.
        v = alg.ginv_weights_general(u)
    return float(A.theta.sum() ** 2 * float(delta @ v))


def _union_error(W: Matrix, A: VStack) -> float:
    """Budget-split estimate for union strategies (paper Definition 11).

    Requires the workload to be partitioned into as many groups as the
    strategy has blocks (OPT_+ guarantees this: block j was optimized for
    group j).  When the block count does not match the workload terms,
    groups are inferred by assigning each workload product to the block
    with least error on it.
    """
    from ..workload.logical import union_kron

    blocks = A.blocks
    l = len(blocks)
    # The per-term sub-workload matrices are memoized on W so repeated
    # error evaluations (one per OPT_+ candidate per restart) reuse them —
    # and, transitively, every cached factor Gram they carry.
    subs = W.cache_get("union_error_terms")
    if subs is None:
        terms = as_union_of_products(W)
        subs = W.cache_set(
            "union_error_terms",
            [union_kron([(w, factors)]) for w, factors in terms],
        )
    total = 0.0
    for sub in subs:
        total += min(squared_error(sub, B) for B in blocks)
    # Equal budget split: each block gets ε/l, inflating error by l².
    return l**2 * total


def _dense_error(W: Matrix, A: Matrix) -> float:
    """Generic fallback: dense ``‖A‖₁² tr[(AᵀA)⁺ WᵀW]`` with support check."""
    AtA = A.gram().dense()
    V = W.gram().dense()
    sens2 = A.sensitivity() ** 2
    val = gram_inverse_trace(AtA, V)
    # A negative or wildly small trace signals numerical failure; the
    # support condition is checked cheaply via the residual of the
    # projected workload gram.
    if val < 0:
        raise ValueError("numerically invalid error (strategy may not support W)")
    return sens2 * val


def coherent_stack_error(
    W: Matrix,
    A: Matrix,
    probes: int = 32,
    rng: np.random.Generator | int | None = None,
    dense_limit: int = 8192,
    tol: float = 1e-8,
) -> float:
    """Exact error for a *jointly measured* stacked strategy.

    Unlike the budget-split estimate used for OPT_+ selection, a stacked
    strategy such as QuadTree or a weighted hierarchy is measured as one
    sensitivity-normalized matrix and reconstructed by least squares, so
    its error is the plain Definition 7 value ``‖A‖₁² tr[(AᵀA)⁻¹ WᵀW]``.
    For domains up to ``dense_limit`` the trace is computed densely; above
    that it is estimated by Hutchinson probing with conjugate-gradient
    solves, which only needs mat-vec products with the implicit Grams.
    """
    n = A.shape[1]
    sens2 = A.sensitivity() ** 2
    if n <= dense_limit:
        return sens2 * gram_inverse_trace(A.gram().dense(), W.gram().dense())

    from scipy.sparse.linalg import LinearOperator, cg

    AtA = A.gram()
    WtW = W.gram()
    op = LinearOperator((n, n), matvec=AtA.matvec, dtype=np.float64)
    rng = np.random.default_rng(rng)
    total = 0.0
    for _ in range(probes):
        z = rng.choice([-1.0, 1.0], size=n)  # Rademacher probe
        rhs = WtW.matvec(z)
        sol, info = cg(op, rhs, rtol=tol, maxiter=10 * n)
        if info != 0:
            raise RuntimeError(f"CG failed to converge (info={info})")
        total += float(z @ sol)
    return sens2 * total / probes


def laplace_mechanism_error(W: Matrix) -> float:
    """Expected total squared error of the Laplace Mechanism at ε = √2.

    LM answers every workload query directly with noise scaled to the
    workload's own sensitivity: ``Err = m · ‖W‖₁²`` (times 2/ε²).
    """
    m = W.shape[0]
    return float(m) * W.sensitivity() ** 2
