"""RECONSTRUCT: inference and workload answering (paper Section 7.2).

Given noisy strategy answers ``y ≈ Ax``, inference computes the least
squares estimate ``x̄ = A⁺y`` and the workload answers ``W x̄``.  HDMM
never materializes A or A⁺:

* product strategies — ``(A1 ⊗ ... ⊗ Ad)⁺ = A1⁺ ⊗ ... ⊗ Ad⁺`` applied by
  the Kronecker mat-vec/mat-mat (Algorithm 1);
* marginal strategies — ``M⁺ = (MᵀM)⁺Mᵀ`` with the Gram inverse computed
  in the O(4^d) marginals algebra;
* union-of-product strategies — no structured pseudo-inverse exists, so
  the normal equations ``(AᵀA) x̄ = Aᵀy`` are solved by conjugate
  gradients (:mod:`repro.core.solvers`) with the strategy's *cached* Gram
  operator as the iteration operator.  One- and two-block unions (the
  paper's OPT_+ instantiation) short-circuit to the exact two-term Gram
  inverse; L ≥ 3 unions run CG preconditioned by the dominant-pair
  inverse with Ritz-vector subspace recycling across solves.  LSMR
  remains as the fallback for columns CG cannot converge and as an
  independent cross-check.

Every solve accepts a whole batch of right-hand sides: structured
pseudo-inverses are applied through ``matmat``/``kmatmat`` rather than
one ``matvec`` per column, and the CG solver advances all columns of a
sweep per iteration.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import LinearOperator, lsmr

from ..linalg import Kronecker, MarginalsStrategy, Matrix, VStack, Weighted
from ..obs.metrics import REGISTRY as _METRICS
from ..optimize.opt0 import PIdentity
from .solvers import (
    apply_columnwise as _apply_columnwise,
    cg_gram_solve,
    gram_recycle_state,
    union_gram_inverse,
    union_gram_preconditioner,
    validate_maxiter,
    validate_tolerance,
)

#: Largest min(m, n) for which an unstructured matrix is considered small
#: enough for a dense pseudo-inverse on the ``method="auto"`` path.
#: Override per call via ``least_squares(..., dense_pinv_limit=...)``.
DENSE_PINV_LIMIT = 4096


def _resolve_dense_limit(dense_pinv_limit: int | None) -> int:
    if dense_pinv_limit is None:
        return DENSE_PINV_LIMIT
    if (
        isinstance(dense_pinv_limit, bool)
        or not isinstance(dense_pinv_limit, (int, np.integer))
        or dense_pinv_limit < 0
    ):
        raise ValueError(
            "dense_pinv_limit must be a non-negative integer or None, "
            f"got {dense_pinv_limit!r}"
        )
    return int(dense_pinv_limit)


def has_structured_pinv(A: Matrix, dense_pinv_limit: int | None = None) -> bool:
    """Whether ``A⁺`` has a structured (or affordable dense) form."""
    limit = _resolve_dense_limit(dense_pinv_limit)
    return _has_structured_pinv(A, limit)


def _has_structured_pinv(A: Matrix, limit: int) -> bool:
    if isinstance(A, (MarginalsStrategy, PIdentity)):
        return True
    if isinstance(A, Weighted):
        return _has_structured_pinv(A.base, limit)
    if isinstance(A, Kronecker):
        return all(
            _has_structured_pinv(f, limit) or min(f.shape) <= limit
            for f in A.factors
        )
    return min(A.shape) <= limit  # small enough for a dense pseudo-inverse


def resolves_to_pinv(
    A: Matrix, method: str = "auto", dense_pinv_limit: int | None = None
) -> bool:
    """Whether :func:`least_squares` would take the pseudo-inverse path
    for this strategy/method combination.  Forcing ``method="pinv"`` on a
    :class:`VStack` union raises in :func:`least_squares`, so that
    combination does not *resolve* to the pinv path."""
    if method == "pinv":
        return not isinstance(A, VStack)
    return (
        method == "auto"
        and not isinstance(A, VStack)
        and has_structured_pinv(A, dense_pinv_limit)
    )


def resolves_to_direct(
    A: Matrix, method: str = "auto", dense_pinv_limit: int | None = None
) -> bool:
    """Whether :func:`least_squares` would solve directly (structured
    pseudo-inverse or the two-term union Gram inverse) — i.e. warm starts
    and iteration caps are irrelevant for this strategy/method pair."""
    if resolves_to_pinv(A, method, dense_pinv_limit):
        return True
    return method == "auto" and union_gram_inverse(A) is not None


def _lsmr_columns(
    A: Matrix,
    Y: np.ndarray,
    X: np.ndarray,
    columns,
    atol: float,
    btol: float,
    maxiter: int | None,
    x0: np.ndarray | None,
) -> None:
    """Solve the selected columns with LSMR, writing into ``X`` in place."""
    op = LinearOperator(
        shape=A.shape, matvec=A.matvec, rmatvec=A.rmatvec, dtype=np.float64
    )
    for j in columns:
        start = None if x0 is None else np.ascontiguousarray(x0[:, j])
        X[:, j] = lsmr(
            op,
            np.ascontiguousarray(Y[:, j]),
            atol=atol,
            btol=btol,
            maxiter=maxiter,
            x0=start,
        )[0]


def least_squares(
    A: Matrix,
    y: np.ndarray,
    method: str = "auto",
    atol: float = 1e-10,
    btol: float = 1e-10,
    maxiter: int | None = None,
    rtol: float = 1e-11,
    x0: np.ndarray | None = None,
    dense_pinv_limit: int | None = None,
    columnwise: bool | None = None,
) -> np.ndarray:
    """Solve ``min_x ‖Ax - y‖₂`` using the strategy's structure.

    Parameters
    ----------
    y:
        One right-hand side (length m) or a batch as columns (m x T).
        A 1-D input returns a 1-D solution; a 2-D input returns (n, T).
    method:
        ``"auto"`` (structured pseudo-inverse when available, else CG on
        the normal equations with LSMR fallback), ``"pinv"`` (force the
        structured/dense pseudo-inverse), ``"cg"`` (force the
        normal-equations solver), or ``"lsmr"`` (force per-column LSMR).
    atol, btol:
        LSMR stopping tolerances (fallback and ``method="lsmr"``).
    maxiter:
        Iteration cap for the iterative solvers (``None`` = solver
        default).
    rtol:
        CG stopping criterion on the normal-equations residual,
        ``‖AᵀA x - Aᵀy‖₂ <= rtol · ‖Aᵀy‖₂`` per column.
    x0:
        Warm start for the iterative solvers, shape (n,) or (n, T) —
        ε sweeps pass the previous ε's solutions here.  Ignored by the
        pseudo-inverse path.
    dense_pinv_limit:
        Override of :data:`DENSE_PINV_LIMIT` for this call.
    columnwise:
        Apply operators one contiguous column at a time so a batched
        solve is bit-identical to looping the columns (the serving
        determinism contract).  Defaults to True for 1-D ``y`` (where it
        is the natural path) and False for batches (BLAS-width
        throughput; answers then agree with the loop to solver
        tolerance).

    Raises
    ------
    ValueError
        If ``method="pinv"`` is forced for a :class:`VStack` union
        strategy — no structured pseudo-inverse exists for a union, and
        silently falling through to an iterative solver would misreport
        how the estimate was computed.
    """
    y = np.asarray(y, dtype=np.float64)
    single = y.ndim == 1
    if columnwise is None:
        columnwise = single
    Y = y[:, None] if single else y
    if Y.ndim != 2 or Y.shape[0] != A.shape[0]:
        raise ValueError(
            f"y must have shape ({A.shape[0]},) or ({A.shape[0]}, T), got {y.shape}"
        )
    if method not in ("auto", "pinv", "cg", "lsmr"):
        raise ValueError(f"unknown method {method!r}")
    atol = validate_tolerance("atol", atol)
    btol = validate_tolerance("btol", btol)
    rtol = validate_tolerance("rtol", rtol)
    maxiter = validate_maxiter(maxiter)
    if x0 is not None:
        x0 = np.asarray(x0, dtype=np.float64)
        if x0.ndim == 1:
            x0 = x0[:, None]
        if x0.shape[0] != A.shape[1] or x0.shape[1] not in (1, Y.shape[1]):
            raise ValueError(
                f"x0 must have shape ({A.shape[1]},) or ({A.shape[1]}, "
                f"{Y.shape[1]}), got {x0.shape}"
            )
        x0 = np.array(
            np.broadcast_to(x0, (A.shape[1], Y.shape[1])), dtype=np.float64
        )

    if method == "pinv" and isinstance(A, VStack):
        raise ValueError(
            "method='pinv' is not available for VStack (union) strategies: "
            "no structured pseudo-inverse exists for a union of products; "
            "use method='auto', 'cg', or 'lsmr'"
        )

    if resolves_to_pinv(A, method, dense_pinv_limit):
        P = A.pinv()
        if columnwise:
            X = _apply_columnwise(P.matvec, Y, A.shape[1])
        else:
            X = P.matmat(Y)
        return X[:, 0] if single else X

    if method == "lsmr":
        X = np.empty((A.shape[1], Y.shape[1]))
        _lsmr_columns(A, Y, X, range(Y.shape[1]), atol, btol, maxiter, x0)
        return X[:, 0] if single else X

    # Normal equations ``(AᵀA) x̄ = Aᵀy`` with the cached Gram operator.
    if columnwise:
        B = _apply_columnwise(A.rmatvec, Y, A.shape[1])
    else:
        B = A.rmatmat(Y)

    preconditioner = recycle = None
    if method == "auto":
        # Two-term unions (the paper's OPT_+ output) have an exact
        # structured Gram inverse — two Kronecker mat-mats per solve.
        Ginv = union_gram_inverse(A)
        if Ginv is not None:
            if columnwise:
                X = _apply_columnwise(Ginv.matvec, B, A.shape[1])
            else:
                X = Ginv.matmat(B)
            return X[:, 0] if single else X
        # L ≥ 3 unions: CG preconditioned by the dominant-pair inverse,
        # with Ritz-vector recycling across *cold* solves of the same
        # strategy (first ε block of each sweep, service miss batches) —
        # warm-started blocks already carry sweep context in x0, and
        # deflation would fight it.  method="cg" stays plain.
        preconditioner = union_gram_preconditioner(A)
        if preconditioner is not None and x0 is None:
            recycle = gram_recycle_state(A)

    # CG (method "cg" or the general "auto" fallback), then LSMR for any
    # column CG could not converge.
    result = cg_gram_solve(
        A.gram(),
        B,
        x0=x0,
        rtol=rtol,
        maxiter=maxiter,
        columnwise=columnwise,
        preconditioner=preconditioner,
        recycle=recycle,
    )
    X = result.x
    if not result.converged.all():
        cols = np.flatnonzero(~result.converged)
        if _METRICS.enabled:
            _METRICS.counter("solver.lsmr_fallback_columns_total").inc(
                int(cols.size)
            )
        _lsmr_columns(A, Y, X, cols, atol, btol, maxiter, X)
    return X[:, 0] if single else X


def answer_workload(
    W: Matrix, x_hat: np.ndarray, columnwise: bool = False
) -> np.ndarray:
    """Final RECONSTRUCT step: the workload answers ``W x̄``.

    Accepts a single data-vector estimate (length n) or a batch as
    columns (n x T).  ``columnwise=True`` answers one contiguous column
    at a time — bit-identical to looping :meth:`Matrix.matvec`.
    """
    x_hat = np.asarray(x_hat, dtype=np.float64)
    if x_hat.ndim == 1:
        return W.matvec(x_hat)
    if columnwise:
        return _apply_columnwise(W.matvec, x_hat, W.shape[0])
    return W.matmat(x_hat)
