"""RECONSTRUCT: inference and workload answering (paper Section 7.2).

Given noisy strategy answers ``y ≈ Ax``, inference computes the least
squares estimate ``x̄ = A⁺y`` and the workload answers ``W x̄``.  HDMM
never materializes A or A⁺:

* product strategies — ``(A1 ⊗ ... ⊗ Ad)⁺ = A1⁺ ⊗ ... ⊗ Ad⁺`` applied by
  the Kronecker mat-vec (Algorithm 1);
* marginal strategies — ``M⁺ = (MᵀM)⁺Mᵀ`` with the Gram inverse computed
  in the O(4^d) marginals algebra;
* union-of-product strategies — no structured pseudo-inverse exists, so
  the least squares problem is solved iteratively with LSMR, which only
  needs mat-vec products with A and Aᵀ.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import LinearOperator, lsmr

from ..linalg import Kronecker, MarginalsStrategy, Matrix, VStack, Weighted
from ..optimize.opt0 import PIdentity


def _has_structured_pinv(A: Matrix) -> bool:
    if isinstance(A, (MarginalsStrategy, PIdentity)):
        return True
    if isinstance(A, Weighted):
        return _has_structured_pinv(A.base)
    if isinstance(A, Kronecker):
        return all(_has_structured_pinv(f) or min(f.shape) <= 4096 for f in A.factors)
    return min(A.shape) <= 4096  # small enough for a dense pseudo-inverse


def least_squares(
    A: Matrix,
    y: np.ndarray,
    method: str = "auto",
    atol: float = 1e-10,
    btol: float = 1e-10,
    maxiter: int | None = None,
) -> np.ndarray:
    """Solve ``min_x ‖Ax - y‖₂`` using the strategy's structure.

    Parameters
    ----------
    method:
        ``"auto"`` (structured pseudo-inverse when available, else LSMR),
        ``"pinv"`` (force the structured/dense pseudo-inverse), or
        ``"lsmr"`` (force the iterative solver).
    """
    y = np.asarray(y, dtype=np.float64)
    if y.shape != (A.shape[0],):
        raise ValueError(f"y must have length {A.shape[0]}, got {y.shape}")
    if method not in ("auto", "pinv", "lsmr"):
        raise ValueError(f"unknown method {method!r}")

    use_pinv = method == "pinv" or (method == "auto" and _has_structured_pinv(A))
    if use_pinv and not isinstance(A, VStack):
        return A.pinv().matvec(y)

    op = LinearOperator(
        shape=A.shape, matvec=A.matvec, rmatvec=A.rmatvec, dtype=np.float64
    )
    result = lsmr(op, y, atol=atol, btol=btol, maxiter=maxiter)
    return result[0]


def answer_workload(W: Matrix, x_hat: np.ndarray) -> np.ndarray:
    """Final RECONSTRUCT step: the workload answers ``W x̄``."""
    return W.matvec(np.asarray(x_hat, dtype=np.float64))
