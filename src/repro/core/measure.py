"""MEASURE: the Laplace mechanism in vector form (paper Definition 6).

Given a strategy matrix A and a data vector x, releases::

    y = A x + Lap(‖A‖₁ / ε)^m

which is ε-differentially private because ``‖A‖₁`` (the maximum absolute
column sum) equals the L1 sensitivity of the strategy query set: one
record added to or removed from the database changes each column of the
answer vector by at most that column's absolute sum.
"""

from __future__ import annotations

import numpy as np

from ..linalg import Matrix


def laplace_noise(
    scale: float, size: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Draw ``size`` i.i.d. Laplace(0, scale) samples."""
    rng = np.random.default_rng(rng)
    if scale < 0:
        raise ValueError("noise scale must be non-negative")
    if scale == 0:
        return np.zeros(size)
    return rng.laplace(0.0, scale, size)


def laplace_measure(
    A: Matrix,
    x: np.ndarray,
    eps: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """The ε-differentially-private measurement ``y = Ax + Lap(‖A‖₁/ε)``."""
    if eps <= 0:
        raise ValueError("privacy budget eps must be positive")
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (A.shape[1],):
        raise ValueError(f"data vector must have length {A.shape[1]}, got {x.shape}")
    answers = A.matvec(x)
    scale = A.sensitivity() / eps
    return answers + laplace_noise(scale, answers.shape[0], rng)


def measurement_variance(A: Matrix, eps: float) -> float:
    """Per-measurement noise variance ``2(‖A‖₁/ε)²``."""
    return 2.0 * (A.sensitivity() / eps) ** 2
