"""MEASURE: the Laplace and Gaussian mechanisms in vector form.

Given a strategy matrix A and a data vector x, the Laplace mechanism
(paper Definition 6) releases::

    y = A x + Lap(‖A‖₁ / ε)^m

which is ε-differentially private because ``‖A‖₁`` (the maximum absolute
column sum) equals the L1 sensitivity of the strategy query set: one
record added to or removed from the database changes each column of the
answer vector by at most that column's absolute sum.

The Gaussian mechanism releases ``y = A x + N(0, σ²)^m`` with σ
calibrated from the *L2* sensitivity (maximum column Euclidean norm,
``A.sensitivity(p=2)``) through the zCDP curve of
:mod:`repro.core.privacy`: the ``eps`` argument is the target ε at the
mechanism's δ, mapped to ``ρ = eps_to_rho(ε, δ)`` and
``σ = Δ₂·sqrt(1/(2ρ))``.  Strategies whose L2 sensitivity is far below
their L1 sensitivity (deep hierarchies, stacked marginals) gain the
corresponding factor in noise at the same budget.

Serving batches: every experiment (and any deployment of a fitted
strategy) measures the *same* strategy across many noise trials, ε
values, and data vectors.  :func:`laplace_measure_batch` /
:func:`gaussian_measure_batch` answer a whole trial grid in one call —
the strategy answers are computed once per distinct data vector, and the
noise for trial ``j`` is drawn from child ``j`` of the caller's seed
(``SeedSequence.spawn``).  The determinism contract mirrors
``optimize/parallel.py``: the batched measurements are bit-identical to
the sequential loop ::

    seeds = spawn_seeds(rng, T)
    [laplace_measure(A, x_j, eps_j, rng=seeds[j]) for j in range(T)]

for any batch composition (and identically for the Gaussian pair),
because randomness is assigned by trial index and the noise-free answers
are computed by the same mat-vec.
"""

from __future__ import annotations

import numpy as np

from ..linalg import Matrix
from ..optimize.parallel import spawn_seeds
from .privacy import DEFAULT_DELTA, gaussian_sigma
from .solvers import (
    apply_columnwise,
    validate_budget,
    validate_epsilon,
    validate_positive_int,
)


def laplace_noise(
    scale: float | np.ndarray,
    size: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Draw i.i.d. Laplace(0, scale) samples.

    A scalar ``scale`` returns ``size`` draws from a single stream — the
    single-shot path.  An array of per-trial scales (length T) returns a
    ``(size, T)`` matrix whose column ``j`` is drawn from child ``j`` of
    ``rng`` via ``SeedSequence.spawn``, so the batch is bit-identical to
    looping the scalar call with the spawned seeds, for any T.
    """
    scales = np.asarray(scale, dtype=np.float64)
    if np.any(scales < 0):
        raise ValueError("noise scale must be non-negative")
    if scales.ndim == 0:
        rng = np.random.default_rng(rng)
        if scales == 0:
            return np.zeros(size)
        return rng.laplace(0.0, float(scales), size)
    if scales.ndim != 1:
        raise ValueError(f"scale must be a scalar or 1-D array, got {scales.shape}")
    out = np.zeros((size, scales.size))
    for j, seed in enumerate(spawn_seeds(rng, scales.size)):
        if scales[j] > 0:
            out[:, j] = np.random.default_rng(seed).laplace(0.0, scales[j], size)
    return out


def laplace_measure(
    A: Matrix,
    x: np.ndarray,
    eps: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """The ε-differentially-private measurement ``y = Ax + Lap(‖A‖₁/ε)``."""
    eps_arr = validate_epsilon(eps)
    if eps_arr.ndim != 0:
        raise ValueError(f"eps must be a scalar, got shape {eps_arr.shape}")
    eps = float(eps_arr)
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (A.shape[1],):
        raise ValueError(f"data vector must have length {A.shape[1]}, got {x.shape}")
    answers = A.matvec(x)
    scale = A.sensitivity() / eps
    return answers + laplace_noise(scale, answers.shape[0], rng)


def laplace_measure_batch(
    A: Matrix,
    x: np.ndarray,
    eps: float | np.ndarray,
    rng: np.random.Generator | int | None = None,
    trials: int | None = None,
    columnwise: bool = False,
) -> np.ndarray:
    """A batch of ε-DP measurements ``Y[:, j] = A x_j + Lap(‖A‖₁/ε_j)``.

    Parameters
    ----------
    x:
        Either one shared data vector (length n) — its strategy answers
        are computed once and reused for every trial — or a batch of data
        vectors as columns (n x T).
    eps:
        A scalar budget shared by all trials or per-trial budgets
        (length T).
    trials:
        Explicit trial count; required only when both ``x`` and ``eps``
        are unbatched.  Batched arguments must agree with it.
    rng:
        Root seed; trial ``j`` draws its noise from child ``j``
        (``SeedSequence.spawn``) — see the module docstring for the
        bitwise determinism contract.
    columnwise:
        With a 2-D ``x``, compute strategy answers one contiguous column
        at a time (bit-identical to the sequential loop) instead of one
        batched ``matmat``.

    Returns
    -------
    The measurement matrix Y, shape (m, T).
    """
    answers, eps_arr, T = _batch_answers(A, x, eps, trials, columnwise)
    scales = np.broadcast_to(A.sensitivity() / eps_arr, (T,))
    return answers + laplace_noise(np.ascontiguousarray(scales), A.shape[0], rng)


def _batch_answers(A, x, eps, trials, columnwise):
    """Shared input policy of the batched mechanisms: validate the trial
    grid, compute the noise-free strategy answers once, and return
    ``(answers, eps_arr, T)``."""
    x = np.asarray(x, dtype=np.float64)
    eps_arr = validate_epsilon(eps)
    if eps_arr.ndim > 1:
        raise ValueError(f"eps must be a scalar or 1-D array, got {eps_arr.shape}")
    if trials is not None:
        trials = validate_positive_int("trials", trials)

    t_x = x.shape[1] if x.ndim == 2 else None
    t_e = eps_arr.size if eps_arr.ndim == 1 else None
    sizes = {int(s) for s in (t_x, t_e, trials) if s is not None}
    if len(sizes - {1}) > 1:  # length-1 batch axes broadcast
        raise ValueError(
            f"inconsistent trial counts: x gives {t_x}, eps gives {t_e}, "
            f"trials gives {trials}"
        )
    T = max(sizes) if sizes else 1

    if x.ndim == 1:
        if x.shape != (A.shape[1],):
            raise ValueError(
                f"data vector must have length {A.shape[1]}, got {x.shape}"
            )
        answers = A.matvec(x)[:, None]  # one mat-vec, shared by all trials
    elif x.ndim == 2:
        if x.shape[0] != A.shape[1]:
            raise ValueError(
                f"data vectors must have length {A.shape[1]}, got {x.shape}"
            )
        if columnwise:
            answers = apply_columnwise(A.matvec, x, A.shape[0])
        else:
            answers = A.matmat(x)
    else:
        raise ValueError(f"x must be 1-D or 2-D, got shape {x.shape}")
    return answers, eps_arr, T


def gaussian_noise(
    sigma: float | np.ndarray,
    size: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Draw i.i.d. N(0, sigma²) samples.

    Exactly :func:`laplace_noise`'s seeding contract with a Gaussian
    distribution: a scalar ``sigma`` is one stream; a length-T array
    returns a ``(size, T)`` matrix whose column ``j`` is drawn from child
    ``j`` of ``rng`` (``SeedSequence.spawn``), bit-identical to looping
    the scalar call with the spawned seeds.
    """
    sigmas = np.asarray(sigma, dtype=np.float64)
    if np.any(sigmas < 0):
        raise ValueError("noise scale must be non-negative")
    if sigmas.ndim == 0:
        rng = np.random.default_rng(rng)
        if sigmas == 0:
            return np.zeros(size)
        return rng.normal(0.0, float(sigmas), size)
    if sigmas.ndim != 1:
        raise ValueError(f"sigma must be a scalar or 1-D array, got {sigmas.shape}")
    out = np.zeros((size, sigmas.size))
    for j, seed in enumerate(spawn_seeds(rng, sigmas.size)):
        if sigmas[j] > 0:
            out[:, j] = np.random.default_rng(seed).normal(0.0, sigmas[j], size)
    return out


def gaussian_measure(
    A: Matrix,
    x: np.ndarray,
    eps: float,
    rng: np.random.Generator | int | None = None,
    delta: float = DEFAULT_DELTA,
) -> np.ndarray:
    """The (ε, δ)-DP Gaussian measurement ``y = Ax + N(0, σ²)``.

    σ is calibrated from the strategy's L2 sensitivity through zCDP
    (see the module docstring); the release satisfies
    ``eps_to_rho(ε, δ)``-zCDP and hence (ε, δ)-DP.
    """
    eps_arr = validate_epsilon(eps)
    if eps_arr.ndim != 0:
        raise ValueError(f"eps must be a scalar, got shape {eps_arr.shape}")
    validate_budget(delta=delta)
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (A.shape[1],):
        raise ValueError(f"data vector must have length {A.shape[1]}, got {x.shape}")
    answers = A.matvec(x)
    sigma = gaussian_sigma(A.sensitivity(p=2), float(eps_arr), delta)
    return answers + gaussian_noise(sigma, answers.shape[0], rng)


def gaussian_measure_batch(
    A: Matrix,
    x: np.ndarray,
    eps: float | np.ndarray,
    rng: np.random.Generator | int | None = None,
    trials: int | None = None,
    columnwise: bool = False,
    delta: float = DEFAULT_DELTA,
) -> np.ndarray:
    """A batch of (ε, δ)-DP Gaussian measurements — the Gaussian twin of
    :func:`laplace_measure_batch`, with the identical batching, seeding,
    and bitwise-determinism contract (trial ``j`` draws from spawned
    child ``j``)."""
    validate_budget(delta=delta)
    answers, eps_arr, T = _batch_answers(A, x, eps, trials, columnwise)
    sigmas = np.broadcast_to(
        gaussian_sigma(A.sensitivity(p=2), eps_arr, delta), (T,)
    )
    return answers + gaussian_noise(np.ascontiguousarray(sigmas), A.shape[0], rng)


def measurement_variance(
    A: Matrix,
    eps: float | np.ndarray,
    mechanism: str = "laplace",
    delta: float = DEFAULT_DELTA,
) -> float | np.ndarray:
    """Per-measurement noise variance at budget ε (vectorized over ε).

    ``2(‖A‖₁/ε)²`` for the Laplace mechanism; ``σ(Δ₂, ε, δ)²`` for the
    Gaussian mechanism.
    """
    eps_arr = validate_epsilon(eps)
    if mechanism == "laplace":
        out = 2.0 * (A.sensitivity() / eps_arr) ** 2
    elif mechanism == "gaussian":
        validate_budget(delta=delta)
        out = np.asarray(
            gaussian_sigma(A.sensitivity(p=2), eps_arr, delta)
        ) ** 2
    else:
        raise ValueError(
            f"mechanism must be 'laplace' or 'gaussian', got {mechanism!r}"
        )
    return float(out) if eps_arr.ndim == 0 else out
