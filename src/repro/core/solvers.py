"""Structured normal-equation solvers for batched RECONSTRUCT (Section 7.2).

The serving loop answers the *same* fitted strategy across many trials and
ε values.  For union strategies — where no structured pseudo-inverse
exists — the least squares problem ``min_x ‖Ax - y‖₂`` is equivalent to
the normal equations ``(AᵀA) x = Aᵀy``, and the Gram operator ``AᵀA`` is
already memoized on the strategy instance (PR 1's structural cache).  The
conjugate-gradient solver here uses that cached Gram as its iteration
operator, solves a whole batch of right-hand sides at once, and accepts
warm starts so adjacent ε values in a sweep reuse each other's solutions.

Batch determinism contract (mirrors ``optimize/parallel.py``): every
per-column quantity is computed with arithmetic that does not depend on
which other columns share the batch — step scalars are per-column einsum
reductions, updates are elementwise, and converged columns are frozen.
The one width-sensitive operation is the operator application itself:
BLAS matmat results are *not* bit-identical across batch widths, so

* ``columnwise=True`` applies the Gram one contiguous column at a time —
  a width-T solve is then bit-identical to T independent width-1 solves
  (and hence to the sequential single-shot serving loop);
* ``columnwise=False`` (default) applies one ``matmat`` per iteration to
  every active column — maximum BLAS throughput, results agree with the
  looped solve to solver tolerance rather than bitwise.

Multi-block unions (L ≥ 3).  The exact two-term inverse only covers the
paper's ``groups=2`` OPT_+ instantiation; for a union of L ≥ 3 blocks
(SF-1-style ``opt_union(groups≥3)`` strategies, service miss batches)
``G = Σ_l ⊗K_{l,i}`` has no closed factorization, so the solver layer
accelerates CG instead:

* **Preconditioning** — :func:`union_gram_preconditioner` picks the two
  *dominant* blocks (largest Gram trace), runs the existing two-term
  factorization on that pair, and serves ``M = (⊗K_a + ⊗K_b)⁻¹`` as a
  preconditioner for :func:`cg_gram_solve`.  ``M`` is exact on the
  dominant pair, so ``M·G = I + M·(Σ_rest ⊗K)`` has its spectrum
  clustered at 1 plus the (trace-minor) remainder — per-column-frozen
  convergence and the LSMR fallback contract carry over unchanged.
* **Subspace recycling** — :class:`GramRecycleState` harvests converged
  Ritz pairs from the CG (Lanczos) recurrence of each solve and deflates
  later *cold* solves against the same Gram (Galerkin initial projection
  + per-iteration direction filtering à la deflated CG).  The division
  of labor with warm starts: inside a sweep, adjacent ε blocks hand
  their solutions forward as ``x0`` (plain PCG), while every solve that
  starts cold — the first block of each sweep, a service miss batch, a
  span-check-style one-off — is deflated by the basis recycled from
  earlier solves, substituting for the warm start it never had.  Only
  Ritz pairs whose Lanczos residual bound certifies convergence are
  absorbed: the structured Grams here have highly degenerate spectra,
  and deflating an *unconverged* vector smears an eigenvalue cluster
  into several effective levels, slowing CG instead.  The state is
  cached on the strategy (next to ``union_gram_state``) and evolves
  deterministically: identical call sequences from identical inputs
  produce bit-identical answers (the ``exact=True`` contract for
  recycled solves).  Recycled solves trade the *width-independence* half
  of the columnwise contract away — deflation couples a solve to the
  basis harvested by earlier solves — so bit-equality is guaranteed
  between identical runs, not between different batch compositions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg import Diagonal, Kronecker, Matrix, VStack, Weighted
from ..linalg.base import Dense
from ..obs.metrics import REGISTRY as _METRICS

__all__ = [
    "CGResult",
    "GramRecycleState",
    "KRON_FACTOR_LIMIT",
    "apply_columnwise",
    "cg_gram_solve",
    "export_gram_solver_state",
    "gram_recycle_state",
    "restore_gram_solver_state",
    "union_gram_inverse",
    "union_gram_preconditioner",
    "validate_epsilon",
    "validate_maxiter",
    "validate_positive_int",
    "validate_tolerance",
]

#: Largest square Kronecker-factor Gram that the two-term union solver
#: will densify and eigendecompose (cost O(n_i³) per factor, once per
#: fitted strategy).
KRON_FACTOR_LIMIT = 1024


def validate_maxiter(maxiter: int | None) -> int | None:
    """Check a ``maxiter`` argument: ``None`` or a positive integer."""
    if maxiter is None:
        return None
    if (
        isinstance(maxiter, bool)
        or not isinstance(maxiter, (int, np.integer))
        or maxiter <= 0
    ):
        raise ValueError(
            f"maxiter must be a positive integer or None, got {maxiter!r}"
        )
    return int(maxiter)


def validate_positive_int(name: str, value) -> int:
    """Check an argument that must be a positive integer (e.g. ``trials``)."""
    if (
        isinstance(value, bool)
        or not isinstance(value, (int, np.integer))
        or value <= 0
    ):
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def validate_epsilon(eps, name: str = "eps") -> np.ndarray:
    """Check a privacy budget: every value finite and strictly positive.

    The single validation point for every ε-consuming entry point
    (``laplace_measure``, ``laplace_measure_batch``, ``HDMM.run`` /
    ``run_batch``, ``expected_error``, the service accountant).  Accepts a
    scalar or an array grid and returns it as a float64 ndarray (0-d for
    scalars), leaving shape policy — scalar-only, 1-D grids — to the
    caller.
    """
    try:
        eps_arr = np.asarray(eps, dtype=np.float64)
    except (TypeError, ValueError):
        raise ValueError(
            f"privacy budget {name} must be numeric, got {eps!r}"
        ) from None
    if eps_arr.size == 0:
        raise ValueError(f"privacy budget {name} must be non-empty")
    if not np.all(np.isfinite(eps_arr)) or np.any(eps_arr <= 0):
        raise ValueError(
            f"privacy budget {name} must be finite and positive, got {eps!r}"
        )
    return eps_arr


def validate_budget(
    eps=None, delta=None, rho=None, name: str = "budget"
) -> dict[str, np.ndarray]:
    """Check a privacy budget in any of its native units.

    The generalization of :func:`validate_epsilon` that the mechanism
    subsystem, the accountant's policies, and the server request parser
    share: ``eps`` and ``rho`` must be finite and strictly positive
    (scalars or grids, like ``validate_epsilon``); ``delta`` must be
    finite with 0 ≤ δ < 1.  At least one component must be given.
    Returns a dict keyed by component name with the validated float64
    ndarrays (0-d for scalars) — callers unpack what they passed.
    """
    if eps is None and delta is None and rho is None:
        raise ValueError(
            f"privacy budget {name} must set at least one of eps, delta, rho"
        )
    out: dict[str, np.ndarray] = {}
    if eps is not None:
        out["eps"] = validate_epsilon(eps, name="eps")
    if delta is not None:
        try:
            d = np.asarray(delta, dtype=np.float64)
        except (TypeError, ValueError):
            raise ValueError(
                f"privacy parameter delta must be numeric, got {delta!r}"
            ) from None
        if d.size == 0:
            raise ValueError("privacy parameter delta must be non-empty")
        if not np.all(np.isfinite(d)) or np.any(d < 0) or np.any(d >= 1):
            raise ValueError(
                "privacy parameter delta must satisfy 0 <= delta < 1, "
                f"got {delta!r}"
            )
        out["delta"] = d
    if rho is not None:
        out["rho"] = validate_epsilon(rho, name="rho")
    return out


def validate_tolerance(name: str, value: float) -> float:
    """Check a solver tolerance: a finite, non-negative float."""
    try:
        v = float(value)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be a number, got {value!r}") from None
    if not np.isfinite(v) or v < 0:
        raise ValueError(f"{name} must be finite and non-negative, got {value!r}")
    return v


def apply_columnwise(apply_vec, Y: np.ndarray, out_rows: int) -> np.ndarray:
    """Apply a vector operation to each contiguous column of ``Y``.

    The building block of the bitwise-determinism contract: the per-column
    arithmetic (contiguous input, single mat-vec) is exactly what the
    sequential single-shot loop performs, independent of batch width.
    """
    out = np.empty((out_rows, Y.shape[1]))
    for j in range(Y.shape[1]):
        out[:, j] = apply_vec(np.ascontiguousarray(Y[:, j]))
    return out


def _kron_gram_factor_mats(block: Matrix) -> list[np.ndarray] | None:
    """Dense square factor Grams of a block's ``AᵀA``, scalar weights
    folded into the first factor; ``None`` when the block's Gram is not a
    (weighted) Kronecker product of affordable square factors."""
    gram = block.gram()
    weight = 1.0
    while isinstance(gram, Weighted):
        weight *= gram.weight
        gram = gram.base
    if isinstance(gram, Kronecker):
        factors = gram.factors
    elif min(gram.shape) <= KRON_FACTOR_LIMIT:
        factors = [gram]
    else:
        return None
    mats = []
    for f in factors:
        m, n = f.shape
        if m != n or n > KRON_FACTOR_LIMIT:
            return None
        mats.append(np.asarray(f.dense(), dtype=np.float64))
    mats[0] = weight * mats[0]
    return mats


def union_gram_inverse(A: Matrix) -> Matrix | None:
    """Exact structured inverse of ``AᵀA`` for a union of two products.

    The paper's OPT_+ instantiation partitions the workload into *two*
    groups, so the canonical union strategy is a :class:`VStack` of two
    weighted Kronecker products and its Gram is a two-term Kronecker sum
    ``G = ⊗Kᵢ + ⊗Mᵢ``.  With ``Cᵢ = chol(Kᵢ)`` and the per-factor
    eigendecompositions ``Cᵢ⁻¹ Mᵢ Cᵢ⁻ᵀ = Uᵢ Λᵢ Uᵢᵀ``::

        G  = (⊗Cᵢ) (⊗Uᵢ) [I + ⊗Λᵢ] (⊗Uᵢ)ᵀ (⊗Cᵢ)ᵀ
        G⁻¹ = (⊗Eᵢ)ᵀ · diag(1 / (1 + ⊗λ)) · (⊗Eᵢ),   Eᵢ = Uᵢᵀ Cᵢ⁻¹

    so applying the inverse costs two Kronecker mat-mats plus one
    diagonal scaling — the same order as a *single* CG iteration, and
    exact.  Setup is one small Cholesky + eigendecomposition per factor
    (O(Σ nᵢ³), done once per fitted strategy and memoized on ``A``).
    ``⊗Λ`` is positive semi-definite, so the denominator is ≥ 1 and the
    form is unconditionally stable once a positive-definite base block
    is found; both blocks are tried as the base.

    Returns the inverse as an implicit :class:`~repro.linalg.Matrix`
    (so batched application routes through ``kmatmat``), or ``None``
    when the strategy is not a two-term union of affordable Kronecker
    Grams — callers then fall back to the CG solver.
    """
    if not isinstance(A, VStack) or len(A.blocks) not in (1, 2):
        return None
    cached = A.cache_get("union_gram_inverse")
    if cached is not None:
        return None if isinstance(cached, str) else cached

    def unavailable():
        A.cache_set("union_gram_inverse", "unavailable")
        return None

    g1 = _kron_gram_factor_mats(A.blocks[0])
    if g1 is None:
        return unavailable()
    if len(A.blocks) == 2:
        g2 = _kron_gram_factor_mats(A.blocks[1])
    else:
        g2 = [np.zeros_like(m) for m in g1]  # single block: G = ⊗Kᵢ + 0
    if (
        g2 is None
        or len(g1) != len(g2)
        or any(a.shape != b.shape for a, b in zip(g1, g2))
    ):
        return unavailable()

    factored = _two_term_factorization(g1, g2)
    if factored is None:
        return unavailable()
    Es, lam_full = factored
    A.cache_set("union_gram_state", {"factors": Es, "lam": lam_full})
    return A.cache_set("union_gram_inverse", _assemble_gram_inverse(Es, lam_full))


def _two_term_factorization(
    g1: list[np.ndarray], g2: list[np.ndarray]
) -> tuple[list[np.ndarray], np.ndarray] | None:
    """Factor ``(⊗Kᵢ + ⊗Mᵢ)⁻¹ = (⊗Eᵢ)ᵀ diag(1/(1+⊗λ)) (⊗Eᵢ)``.

    Returns ``(Es, ⊗λ)`` or ``None`` when neither ordering of the two
    factor lists yields a positive-definite base block.  Shared by the
    exact two-term inverse (:func:`union_gram_inverse`) and the
    dominant-pair preconditioner (:func:`union_gram_preconditioner`).
    """
    from scipy.linalg import LinAlgError, cholesky, solve_triangular

    for base, other in ((g1, g2), (g2, g1)):
        try:
            Es, lam_full = [], np.ones(1)
            for K, M in zip(base, other):
                C = cholesky(K, lower=True, check_finite=False)
                T1 = solve_triangular(C, M, lower=True, check_finite=False)
                S = solve_triangular(C, T1.T, lower=True, check_finite=False).T
                lam, U = np.linalg.eigh((S + S.T) / 2.0)
                lam = np.clip(lam, 0.0, None)
                Cinv = solve_triangular(
                    C, np.eye(C.shape[0]), lower=True, check_finite=False
                )
                Es.append(U.T @ Cinv)
                lam_full = np.kron(lam_full, lam)
        except (LinAlgError, np.linalg.LinAlgError):
            continue  # base block Gram not positive definite — swap roles
        return Es, lam_full
    return None


#: Most dominant-pair combinations scored before the L-block
#: preconditioner picks one (pairs are enumerated in descending combined
#: Gram-trace order; among the factorizable ones, the pair with the
#: smallest estimated ``λmax(M·G)`` wins).
_PRECOND_PAIR_ATTEMPTS = 8


def _estimate_lambda_max(G: Matrix, M: Matrix, iters: int = 8) -> float:
    """Power-iteration estimate of ``λmax(M·G)`` (a ``κ(M·G)`` proxy).

    ``M·G = I + M·(Σ_rest ⊗K)`` with both factors built from PSD blocks,
    so ``λmin ≥ 1`` and the top eigenvalue alone measures conditioning.
    The start vector is fixed, keeping pair selection deterministic.
    """
    v = np.random.default_rng(0).standard_normal(G.shape[1])
    v /= np.linalg.norm(v)
    lam = 1.0
    for _ in range(iters):
        w = M.matvec(G.matvec(v))
        lam = float(np.linalg.norm(w))
        if lam == 0 or not np.isfinite(lam):
            return np.inf
        v = w / lam
    return lam


def union_gram_preconditioner(A: Matrix) -> Matrix | None:
    """Dominant-pair preconditioner for an L ≥ 3 union Gram.

    For ``G = Σ_l ⊗K_{l,i}`` with three or more blocks there is no exact
    structured inverse, but the two blocks with the largest Gram trace
    carry most of ``G``'s energy: their two-term inverse
    ``M = (⊗K_a + ⊗K_b)⁻¹`` (the same per-factor Cholesky +
    eigendecomposition as :func:`union_gram_inverse`) spectrally clusters
    ``M·G`` around 1, making it an effective preconditioner for
    :func:`cg_gram_solve`.  Candidate pairs are enumerated in descending
    combined Gram-trace order (ties broken by block index), but trace
    alone cannot see *directional* dominance — equal-trace blocks can
    differ by orders of magnitude in how well their pair minorizes ``G``
    — so each factorizable candidate is scored by a cheap power-iteration
    estimate of ``λmax(M·G)`` (``λmin ≥ 1`` by construction) and the
    best-conditioned pair wins.  The factor state is cached on ``A``
    under ``union_gram_precond_state`` (next to ``union_gram_state``) and
    persisted by :func:`export_gram_solver_state`.

    Returns the preconditioner as an implicit :class:`~repro.linalg.Matrix`
    or ``None`` when ``A`` is not an L ≥ 3 :class:`VStack` of affordable
    Kronecker-Gram blocks — callers then run plain CG.
    """
    if not isinstance(A, VStack) or len(A.blocks) < 3:
        return None
    cached = A.cache_get("union_gram_precond")
    if cached is not None:
        return None if isinstance(cached, str) else cached

    def unavailable():
        A.cache_set("union_gram_precond", "unavailable")
        return None

    mats = [_kron_gram_factor_mats(block) for block in A.blocks]
    traces = [
        float(np.prod([np.trace(m) for m in g])) if g is not None else -np.inf
        for g in mats
    ]
    candidates = sorted(
        (i for i, g in enumerate(mats) if g is not None),
        key=lambda i: (-traces[i], i),
    )
    if len(candidates) < 2:
        return unavailable()

    from itertools import combinations

    G = A.gram()
    best: tuple | None = None
    # All shape-compatible pairs, in genuinely descending combined-trace
    # order (combinations() alone would enumerate every (top, j) pair
    # before (second, third) regardless of trace).  Compatibility is
    # checked before a pair consumes any of the factorization budget, so
    # one odd-shaped block cannot starve the viable pairs out of the
    # _PRECOND_PAIR_ATTEMPTS cap.
    pairs = [
        (i, j)
        for i, j in combinations(candidates, 2)
        if len(mats[i]) == len(mats[j])
        and all(a.shape == b.shape for a, b in zip(mats[i], mats[j]))
    ]
    pairs.sort(key=lambda p: (-(traces[p[0]] + traces[p[1]]), p))
    for i, j in pairs[:_PRECOND_PAIR_ATTEMPTS]:
        factored = _two_term_factorization(mats[i], mats[j])
        if factored is None:
            continue
        Es, lam_full = factored
        M = _assemble_gram_inverse(Es, lam_full)
        score = _estimate_lambda_max(G, M)
        if best is None or score < best[0]:
            best = (score, i, j, Es, lam_full, M)
    if best is None:
        return unavailable()
    _, i, j, Es, lam_full, M = best
    A.cache_set(
        "union_gram_precond_state",
        {"factors": Es, "lam": lam_full, "blocks": (i, j)},
    )
    return A.cache_set("union_gram_precond", M)


def _assemble_gram_inverse(Es: list[np.ndarray], lam_full: np.ndarray) -> Matrix:
    """``G⁻¹ = (⊗Eᵢ)ᵀ diag(1/(1+⊗λ)) (⊗Eᵢ)`` from its factor state."""
    E = Kronecker([Dense(Ei) for Ei in Es])
    return E.T @ Diagonal(1.0 / (1.0 + lam_full)) @ E


def export_gram_solver_state(A: Matrix) -> dict | None:
    """The factor state of ``A``'s structured union Gram solver, if any.

    Triggers the (memoized) factorization — :func:`union_gram_inverse`
    for one- and two-block unions, :func:`union_gram_preconditioner` for
    L ≥ 3 — and returns one of four values
    :func:`restore_gram_solver_state` understands:

    * ``{"factors": [E₁, ..., E_d], "lam": ⊗λ}`` — the exact two-term
      inverse, as plain float64 arrays ready for npz persistence, so a
      reloaded strategy never re-runs the per-factor
      Cholesky/eigendecomposition setup;
    * ``{"precond_factors": [...], "precond_lam": ⊗λ,
      "precond_blocks": [a, b]}`` — the dominant-pair preconditioner of
      an L ≥ 3 union (same factor layout), so a warm-loaded L-block
      strategy never re-runs the dominant-pair factorization;
    * ``{"unavailable": True}`` — the factorization probe ran and failed
      (no affordable structure), so a reloaded strategy skips re-probing;
    * ``None`` — nothing is known (e.g. memoization was globally
      disabled, so the probe outcome was not recorded); a reloaded
      strategy probes afresh on first use.
    """
    if union_gram_inverse(A) is not None:
        state = A.cache_get("union_gram_state")
        if state is None:  # cache globally disabled — outcome not recorded
            return None
        return _attach_recycle_state(
            A, {"factors": list(state["factors"]), "lam": state["lam"]}
        )
    if union_gram_preconditioner(A) is not None:
        state = A.cache_get("union_gram_precond_state")
        if state is None:  # cache globally disabled — outcome not recorded
            return None
        return _attach_recycle_state(
            A,
            {
                "precond_factors": list(state["factors"]),
                "precond_lam": state["lam"],
                "precond_blocks": [int(b) for b in state["blocks"]],
            },
        )
    # ``precond_probed`` marks that the dominant-pair probe itself ran
    # and failed.  Registry entries written before the preconditioner
    # existed carry a bare ``{"unavailable": True}``, and restore must
    # not let that legacy state disable a probe it never ran.
    return _attach_recycle_state(
        A, {"unavailable": True, "precond_probed": True}
    )


def _attach_recycle_state(A: Matrix, state: dict) -> dict:
    """Fold ``A``'s harvested Ritz basis into an export, if one exists.

    The basis is float64 and ``G``-orthonormal by construction, so
    persisting the raw ``U``/``GU``/``ritz_values`` arrays round-trips
    it exactly: a warm-loaded L-block strategy starts its first solve
    already deflated instead of re-harvesting across a process restart.
    """
    rec = A.cache_get("gram_recycle_state")
    if rec is not None and rec.size > 0:
        state["recycle_U"] = rec.U
        state["recycle_GU"] = rec.GU
        state["recycle_ritz"] = rec.ritz_values
        state["recycle_tuning"] = {
            "max_vectors": rec.max_vectors,
            "harvest_columns": rec.harvest_columns,
            "ritz_per_column": rec.ritz_per_column,
            "max_lanczos": rec.max_lanczos,
            "ritz_tol": rec.ritz_tol,
        }
    return state


def _restore_recycle_state(A: Matrix, state: dict) -> None:
    if "recycle_U" not in state:
        return
    tuning = state.get("recycle_tuning") or {}
    rec = GramRecycleState(
        max_vectors=int(tuning.get("max_vectors", 48)),
        harvest_columns=int(tuning.get("harvest_columns", 4)),
        ritz_per_column=int(tuning.get("ritz_per_column", 8)),
        max_lanczos=int(tuning.get("max_lanczos", 48)),
        ritz_tol=float(tuning.get("ritz_tol", 1e-3)),
    )
    rec.U = np.ascontiguousarray(state["recycle_U"], dtype=np.float64)
    rec.GU = np.ascontiguousarray(state["recycle_GU"], dtype=np.float64)
    rec.ritz_values = np.asarray(state["recycle_ritz"], dtype=np.float64)
    A.cache_set("gram_recycle_state", rec)


def restore_gram_solver_state(A: Matrix, state: dict | None) -> None:
    """Attach exported solver state to a strategy instance.

    Inverts :func:`export_gram_solver_state`'s cases: factor state
    (exact inverse or dominant-pair preconditioner) is rebuilt and
    cached, a recorded failed probe is cached as ``"unavailable"`` (CG
    path, no re-probe), and ``None`` leaves the strategy untouched so
    the first solve probes normally.
    """
    if state is None:
        return
    _restore_recycle_state(A, state)
    if state.get("unavailable"):
        if isinstance(A, VStack):
            A.cache_set("union_gram_inverse", "unavailable")
            # Only a probe that actually ran may be recorded as failed —
            # a legacy export (pre-preconditioner registry entry) must
            # leave the dominant-pair probe free to run on first use.
            if state.get("precond_probed"):
                A.cache_set("union_gram_precond", "unavailable")
        return
    if "precond_factors" in state:
        Es = [np.asarray(E, dtype=np.float64) for E in state["precond_factors"]]
        lam_full = np.asarray(state["precond_lam"], dtype=np.float64)
        blocks = tuple(int(b) for b in state.get("precond_blocks", ()))
        A.cache_set(
            "union_gram_precond_state",
            {"factors": Es, "lam": lam_full, "blocks": blocks},
        )
        A.cache_set("union_gram_precond", _assemble_gram_inverse(Es, lam_full))
        return
    Es = [np.asarray(E, dtype=np.float64) for E in state["factors"]]
    lam_full = np.asarray(state["lam"], dtype=np.float64)
    A.cache_set("union_gram_state", {"factors": Es, "lam": lam_full})
    A.cache_set("union_gram_inverse", _assemble_gram_inverse(Es, lam_full))


class GramRecycleState:
    """Ritz-vector deflation basis recycled across solves of one Gram.

    Each :func:`cg_gram_solve` call that receives a state instance (1)
    *deflates* its initial guess by a Galerkin projection onto the
    current basis — ``x₀ += U S⁻¹ Uᵀ r₀`` with ``S = UᵀGU`` and the
    residual updated through the cached ``GU`` (no extra ``G``
    application) — and (2) *harvests* Ritz vectors from the CG/Lanczos
    recurrence of a few designated columns, folding the ones that
    approximate the *largest* eigenvalues of the preconditioned operator
    into the basis for later solves (the dominant-pair preconditioner
    pins ``λmin`` at 1, so the convergence-limiting end of the spectrum
    is the tail of upper outliers — see
    :meth:`_RitzHarvest.ritz_vectors`).  The basis is append-only and
    freezes at ``max_vectors``.

    The state assumes every solve shares the same positive-definite Gram
    operator (the preconditioned L ≥ 3 union path guarantees this: the
    dominant-pair factorization succeeding means the pair's Gram — and
    hence the full sum — is positive definite).  All updates are
    deterministic, so identical call sequences yield bit-identical
    solutions; see the module docstring for the exact contract.
    """

    def __init__(
        self,
        max_vectors: int = 48,
        harvest_columns: int = 4,
        ritz_per_column: int = 8,
        max_lanczos: int = 48,
        ritz_tol: float = 1e-3,
    ):
        self.max_vectors = int(max_vectors)
        self.harvest_columns = int(harvest_columns)
        self.ritz_per_column = int(ritz_per_column)
        self.max_lanczos = int(max_lanczos)
        self.ritz_tol = float(ritz_tol)
        self.U: np.ndarray | None = None  # (n, k) G-orthonormal basis
        self.GU: np.ndarray | None = None  # G @ U
        self.ritz_values: np.ndarray | None = None  # per-vector Ritz value

    @property
    def size(self) -> int:
        """Number of recycled basis vectors currently held."""
        return 0 if self.U is None else self.U.shape[1]

    def reset(self) -> None:
        """Drop the basis (used by benchmarks for cold-path timing)."""
        self.U = None
        self.GU = None
        self.ritz_values = None

    def deflate(self, X: np.ndarray, R: np.ndarray) -> None:
        """Galerkin-correct ``X`` (and its residual ``R``) in place.

        The basis is kept ``G``-orthonormal (``UᵀGU = I``), so the
        Galerkin coefficients are a plain inner product — no small solve
        whose conditioning could amplify rounding into the iteration.
        """
        if self.U is None:
            return
        C = self.U.T @ R
        X += self.U @ C
        R -= self.GU @ C

    def g_orthogonalize(self, Z: np.ndarray) -> np.ndarray:
        """``Z`` minus its ``G``-projection onto the basis.

        Deflated CG's direction filter (Saad et al.): every search
        direction is kept ``G``-orthogonal to the recycled subspace, so
        the iteration runs on the deflated operator — the basis's Ritz
        values are removed from the effective spectrum instead of merely
        shrinking the initial residual.  With ``UᵀGU = I`` the filter is
        the orthogonal projection ``Z - U (GU)ᵀ Z``.
        """
        if self.U is None:
            return Z
        return Z - self.U @ (self.GU.T @ Z)

    def absorb(
        self,
        G: Matrix,
        harvest: tuple[np.ndarray, np.ndarray] | None,
        columnwise: bool,
    ) -> None:
        """Fold harvested Ritz vectors into the basis (append-only).

        ``harvest`` is ``(W, values)`` — candidate vectors with their
        Ritz values.  Candidates are ranked by Ritz value (the biggest
        preconditioned-spectrum outliers are the most valuable deflation
        directions), ``G``-orthonormalized against the frozen existing
        basis and each other by two-pass modified Gram–Schmidt, and
        appended until ``max_vectors``; near-duplicates of existing
        directions lose their ``G``-norm in the projection and are
        dropped by the degeneracy threshold.  Existing vectors are never
        re-orthonormalized or evicted: the structured Grams here have
        highly degenerate spectra, so re-ranking at the cap would churn
        near-equal-value cluster directions in and out of the basis,
        accumulating Gram–Schmidt rounding each round — append-then-
        freeze keeps ``UᵀGU = I`` bit-stable, which is what makes the
        per-iteration projections reliable.
        """
        if harvest is None or self.size >= self.max_vectors:
            return
        W, vals = harvest
        if W.size == 0:
            return
        order = np.argsort(-vals, kind="stable")
        cand = np.ascontiguousarray(W[:, order])
        cvals = vals[order]
        GC = _apply_gram(G, cand, columnwise)
        old = [] if self.U is None else list(range(self.U.shape[1]))
        new_u: list[np.ndarray] = []
        new_gu: list[np.ndarray] = []
        new_vals: list[float] = []
        for i in range(cand.shape[1]):
            if len(old) + len(new_u) >= self.max_vectors:
                break
            v = cand[:, i].copy()
            gv = GC[:, i].copy()
            norm0 = v @ gv
            for _ in range(2):  # two MGS passes keep UᵀGU ≈ I to roundoff
                if old:
                    c = self.GU.T @ v
                    v -= self.U @ c
                    gv -= self.GU @ c
                for u, gu in zip(new_u, new_gu):
                    c = gu @ v
                    v -= c * u
                    gv -= c * gu
            norm2 = v @ gv
            if not np.isfinite(norm2) or norm2 <= 1e-8 * max(norm0, 1e-300):
                continue  # G-degenerate direction — already covered
            s = 1.0 / np.sqrt(norm2)
            new_u.append(v * s)
            new_gu.append(gv * s)
            new_vals.append(float(cvals[i]))
        if not new_u:
            return
        U_new = np.stack(new_u, axis=1)
        GU_new = np.stack(new_gu, axis=1)
        if self.U is None:
            self.U, self.GU = U_new, GU_new
            self.ritz_values = np.asarray(new_vals)
        else:
            self.U = np.ascontiguousarray(np.hstack([self.U, U_new]))
            self.GU = np.ascontiguousarray(np.hstack([self.GU, GU_new]))
            self.ritz_values = np.concatenate([self.ritz_values, new_vals])


def gram_recycle_state(A: Matrix, **kwargs) -> GramRecycleState:
    """The strategy's cached :class:`GramRecycleState` (created on first
    use, next to ``union_gram_state``).  ``kwargs`` are
    :class:`GramRecycleState` tuning parameters honored only when this
    call *creates* the state — a later call returns the cached instance
    unchanged (call :meth:`GramRecycleState.reset` and re-create, or
    build a state directly, to re-tune).  With memoization globally
    disabled a fresh state is returned per call — harvesting still
    happens within a solve, but nothing is recycled across calls."""
    state = A.cache_get("gram_recycle_state")
    if state is None:
        state = A.cache_set("gram_recycle_state", GramRecycleState(**kwargs))
    return state


class _RitzHarvest:
    """Lanczos bookkeeping for a few designated CG columns.

    CG's scalars are the Lanczos recurrence in disguise: with step sizes
    ``αᵢ`` and conjugacy corrections ``βᵢ``, the tridiagonal
    ``T[i,i] = 1/αᵢ + βᵢ₋₁/αᵢ₋₁``, ``T[i,i+1] = √βᵢ/αᵢ`` has the
    operator's Ritz values as eigenvalues, and the (preconditioned)
    residuals normalized by ``√(rᵀz)`` are the Lanczos vectors.  The
    harvester stores that history for the first ``harvest_columns``
    columns of the batch and converts the largest converged Ritz pairs
    into deflation vectors after the solve (the upper outliers limit the
    preconditioned iteration — see :meth:`ritz_vectors`).
    """

    def __init__(self, state: GramRecycleState, T: int):
        cols = range(min(state.harvest_columns, T))
        self.data = {
            j: {"V": [], "alpha": [], "beta": [], "beta_tail": None}
            for j in cols
        }
        self.cap = state.max_lanczos
        self.per_column = state.ritz_per_column
        self.ritz_tol = state.ritz_tol

    def observe_init(self, Z: np.ndarray, rz: np.ndarray, active: np.ndarray):
        for j, d in self.data.items():
            if active[j] and rz[j] > 0:
                d["V"].append(Z[:, j] / np.sqrt(rz[j]))

    def observe(
        self,
        idx: np.ndarray,
        Za: np.ndarray,
        rz_new: np.ndarray,
        rz_a: np.ndarray,
        alpha: np.ndarray,
        beta: np.ndarray,
        cont: np.ndarray,
    ):
        pos = {int(j): p for p, j in enumerate(idx)}
        for j, d in self.data.items():
            p = pos.get(j)
            if p is None or not d["V"] or len(d["V"]) > self.cap:
                continue
            if alpha[p] <= 0:
                d["V"].clear()  # curvature breakdown — discard the column
                continue
            d["alpha"].append(float(alpha[p]))
            if cont[p] and rz_new[p] > 0:
                d["beta"].append(float(beta[p]))
                d["V"].append(Za[:, p] / np.sqrt(rz_new[p]))
            else:
                # Converged: keep the would-be next Lanczos coupling so
                # ritz_vectors can bound each pair's residual — a column
                # that met the CG tolerance has *not* produced an
                # invariant Krylov space.
                d["beta_tail"] = float(rz_new[p] / max(rz_a[p], 1e-300))

    def ritz_vectors(self) -> tuple[np.ndarray, np.ndarray] | None:
        """``(vectors, values)`` for the largest Ritz pairs of each column.

        The dominant-pair preconditioner pins ``λmin(M·G)`` at 1 with a
        dense cluster just above it — what limits PCG is the tail of
        *upper* outliers contributed by the non-dominant blocks, so the
        harvest keeps the top end of each column's Ritz spectrum.  Only
        pairs whose Lanczos residual bound ``|T[k,k+1]| · |y_k|`` is below
        ``ritz_tol · θ`` are kept: an unconverged Ritz vector straddles a
        degenerate eigenvalue cluster, and deflating it *smears* the
        cluster into several effective levels — making CG slower, not
        faster.
        """
        out, out_vals = [], []
        for d in self.data.values():
            k = min(len(d["V"]), len(d["alpha"]), len(d["beta"]) + 1, self.cap)
            if k < 2:
                continue
            alpha = np.asarray(d["alpha"][:k])
            beta = np.asarray(d["beta"][: k - 1])
            diag = 1.0 / alpha
            diag[1:] += beta[: k - 1] / alpha[: k - 1]
            off = np.sqrt(beta[: k - 1]) / alpha[: k - 1]
            T = np.diag(diag)
            T[np.arange(k - 1), np.arange(1, k)] = off
            T[np.arange(1, k), np.arange(k - 1)] = off
            theta, Y = np.linalg.eigh(T)  # ascending: largest values last
            # Residual bound of each Ritz pair: the off-diagonal that
            # would couple to Lanczos step k+1 times the pair's trailing
            # component.  Zero when the recurrence terminated (the Krylov
            # space became invariant).
            if len(d["beta"]) >= k and len(d["alpha"]) >= k:
                off_next = np.sqrt(d["beta"][k - 1]) / d["alpha"][k - 1]
            elif d["beta_tail"] is not None and len(d["alpha"]) == k:
                off_next = np.sqrt(d["beta_tail"]) / d["alpha"][k - 1]
            else:
                off_next = 0.0
            resid = off_next * np.abs(Y[k - 1, :])
            take = np.flatnonzero(resid <= self.ritz_tol * np.abs(theta))
            take = take[np.argsort(theta[take])][-self.per_column :]
            if take.size == 0:
                continue
            V = np.stack(d["V"][:k], axis=1)
            out.append(V @ Y[:, take])
            out_vals.append(theta[take])
        if not out:
            return None
        return np.hstack(out), np.concatenate(out_vals)


@dataclass
class CGResult:
    """Outcome of a batched conjugate-gradient solve.

    Attributes
    ----------
    x:
        Solution matrix, one column per right-hand side (n x T).
    iterations:
        Per-column iteration counts (length T).
    converged:
        Per-column convergence flags.  A ``False`` entry means the column
        hit ``maxiter`` or stalled (curvature ``pᵀGp <= 0`` — the Gram was
        numerically semi-definite along the search direction); callers
        should hand those columns to LSMR.
    """

    x: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray


def _apply_gram(G: Matrix, P: np.ndarray, columnwise: bool) -> np.ndarray:
    """``G @ P``, either one batched matmat or per-contiguous-column matvec."""
    if not columnwise:
        return G.matmat(P)
    return apply_columnwise(G.matvec, P, P.shape[0])


def _col_dots(X: np.ndarray, Y: np.ndarray, columnwise: bool) -> np.ndarray:
    """Per-column inner products ``out[j] = X[:, j] · Y[:, j]``.

    Reductions are where batch width can leak into per-column bits: a
    strided column inside an (n, T) array may be summed in a different
    order than a standalone contiguous vector.  ``columnwise=True``
    therefore reduces each column as a contiguous copy — exactly the
    arithmetic of a width-1 solve — while the default uses one einsum
    over the whole batch.
    """
    if not columnwise:
        return np.einsum("ij,ij->j", X, Y)
    out = np.empty(X.shape[1])
    for j in range(X.shape[1]):
        out[j] = np.dot(
            np.ascontiguousarray(X[:, j]), np.ascontiguousarray(Y[:, j])
        )
    return out


def cg_gram_solve(
    G: Matrix,
    B: np.ndarray,
    x0: np.ndarray | None = None,
    rtol: float = 1e-11,
    maxiter: int | None = None,
    columnwise: bool = False,
    preconditioner: Matrix | None = None,
    recycle: GramRecycleState | None = None,
) -> CGResult:
    """Solve ``G X = B`` for a batch of right-hand sides by (P)CG.

    Parameters
    ----------
    G:
        The (symmetric positive semi-definite) Gram operator ``AᵀA`` as an
        implicit :class:`~repro.linalg.Matrix`.  Only ``matvec``/``matmat``
        products are used, so cached structured Grams (Kronecker products,
        sums of Kronecker Grams, marginals Grams) plug in directly.
    B:
        Right-hand sides ``AᵀY``, shape (n, T).
    x0:
        Optional warm start, shape (n,) or (n, T).  Sweeps over adjacent
        ε values pass the previous ε's solutions here.
    rtol:
        Per-column stopping criterion ``‖G x - b‖₂ <= rtol · ‖b‖₂``.
    maxiter:
        Iteration cap (default ``3 n``).
    columnwise:
        Apply ``G`` per contiguous column instead of one batched matmat —
        see the module docstring for the bitwise-determinism contract.
    preconditioner:
        Optional symmetric positive-definite approximation of ``G⁻¹``
        applied once per iteration (e.g. the dominant-pair inverse from
        :func:`union_gram_preconditioner`).  Convergence is still
        measured on the *unpreconditioned* residual, so tolerances and
        the LSMR-fallback contract are unchanged.
    recycle:
        Optional :class:`GramRecycleState`: the initial guess is deflated
        against the recycled basis, and Ritz vectors harvested from this
        solve are absorbed for subsequent ones.  Requires ``G`` positive
        definite (see the class docstring).
    """
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise ValueError(f"B must be a 2-D (n, T) right-hand-side batch, got {B.shape}")
    n, T = B.shape
    if G.shape != (n, n):
        raise ValueError(f"Gram operator must be {n} x {n}, got {G.shape}")
    M = preconditioner
    if M is not None and M.shape != (n, n):
        raise ValueError(f"preconditioner must be {n} x {n}, got {M.shape}")
    rtol = validate_tolerance("rtol", rtol)
    maxiter = validate_maxiter(maxiter)
    if maxiter is None:
        maxiter = 3 * n

    if x0 is None:
        X = np.zeros((n, T))
        R = B.copy()
    else:
        x0 = np.asarray(x0, dtype=np.float64)
        if x0.ndim == 1:
            x0 = x0[:, None]
        if x0.shape[0] != n or x0.shape[1] not in (1, T):
            raise ValueError(f"x0 must have shape ({n},) or ({n}, {T}), got {x0.shape}")
        # Writable copy: broadcast views are read-only and x0 may alias
        # the previous ε block's solutions, which must stay untouched.
        X = np.array(np.broadcast_to(x0, (n, T)), dtype=np.float64)
        R = B - _apply_gram(G, X, columnwise)
    if recycle is not None:
        recycle.deflate(X, R)
    Z = R if M is None else _apply_gram(M, R, columnwise)
    P = Z.copy() if recycle is None else recycle.g_orthogonalize(Z)
    if P is Z:  # empty recycle basis — keep Z read-only below
        P = Z.copy()
    # With no preconditioner Z aliases R, so rz doubles as the residual
    # norm² — exactly the plain-CG arithmetic.
    rz = _col_dots(R, Z, columnwise)
    rs = rz if M is None else _col_dots(R, R, columnwise)
    thresh = rtol * np.sqrt(_col_dots(B, B, columnwise))
    active = np.sqrt(rs) > thresh
    iterations = np.zeros(T, dtype=np.intp)
    rs = np.array(rs)  # decouple from rz before in-place updates

    harvester = None
    if recycle is not None and recycle.size < recycle.max_vectors:
        harvester = _RitzHarvest(recycle, T)
        harvester.observe_init(Z, rz, active)

    for _ in range(maxiter):
        idx = np.flatnonzero(active)
        if idx.size == 0:
            break
        Pa = np.ascontiguousarray(P[:, idx])
        GP = _apply_gram(G, Pa, columnwise)
        pgp = _col_dots(Pa, GP, columnwise)
        rz_a = rz[idx]
        ok = pgp > 0  # pᵀGp <= 0 ⇒ semi-definite breakdown: freeze, unconverged
        alpha = np.zeros_like(pgp)
        alpha[ok] = rz_a[ok] / pgp[ok]
        X[:, idx] += Pa * alpha
        R[:, idx] -= GP * alpha
        iterations[idx] += 1
        Ra = R[:, idx]
        if recycle is not None and recycle.size:
            # Re-impose the Galerkin condition ``UᵀR = 0`` (a no-op in
            # exact arithmetic): floating-point drift back into the
            # deflated subspace cannot be corrected by the filtered
            # directions and would otherwise stall convergence.
            C = recycle.U.T @ Ra
            X[:, idx] += recycle.U @ C
            Ra = Ra - recycle.GU @ C
            R[:, idx] = Ra
        if M is None:
            Za = Ra
            rz_new = _col_dots(Ra, Ra, columnwise)
            rs_new = rz_new
        else:
            Za = _apply_gram(M, np.ascontiguousarray(Ra), columnwise)
            rz_new = _col_dots(Ra, Za, columnwise)
            rs_new = _col_dots(Ra, Ra, columnwise)
        done = np.sqrt(rs_new) <= thresh[idx]
        cont = ok & ~done
        beta = np.zeros_like(pgp)
        beta[cont] = rz_new[cont] / rz_a[cont]
        if recycle is None:
            P[:, idx] = Za + Pa * beta
        else:
            # Deflated CG: keep every direction G-orthogonal to the basis.
            P[:, idx] = recycle.g_orthogonalize(Za) + Pa * beta
        rz[idx] = rz_new
        rs[idx] = rs_new
        if harvester is not None:
            harvester.observe(idx, Za, rz_new, rz_a, alpha, beta, cont)
        active[idx[done | ~ok]] = False

    converged = np.sqrt(rs) <= thresh
    if harvester is not None:
        recycle.absorb(G, harvester.ritz_vectors(), columnwise)
    if _METRICS.enabled:
        _METRICS.counter("solver.cg_solves_total").inc()
        _METRICS.counter("solver.cg_iterations").inc(int(iterations.sum()))
        stalled = int(converged.size - int(converged.sum()))
        if stalled:
            _METRICS.counter("solver.cg_unconverged_columns_total").inc(stalled)
    return CGResult(X, iterations, converged)
