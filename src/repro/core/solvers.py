"""Structured normal-equation solvers for batched RECONSTRUCT (Section 7.2).

The serving loop answers the *same* fitted strategy across many trials and
ε values.  For union strategies — where no structured pseudo-inverse
exists — the least squares problem ``min_x ‖Ax - y‖₂`` is equivalent to
the normal equations ``(AᵀA) x = Aᵀy``, and the Gram operator ``AᵀA`` is
already memoized on the strategy instance (PR 1's structural cache).  The
conjugate-gradient solver here uses that cached Gram as its iteration
operator, solves a whole batch of right-hand sides at once, and accepts
warm starts so adjacent ε values in a sweep reuse each other's solutions.

Batch determinism contract (mirrors ``optimize/parallel.py``): every
per-column quantity is computed with arithmetic that does not depend on
which other columns share the batch — step scalars are per-column einsum
reductions, updates are elementwise, and converged columns are frozen.
The one width-sensitive operation is the operator application itself:
BLAS matmat results are *not* bit-identical across batch widths, so

* ``columnwise=True`` applies the Gram one contiguous column at a time —
  a width-T solve is then bit-identical to T independent width-1 solves
  (and hence to the sequential single-shot serving loop);
* ``columnwise=False`` (default) applies one ``matmat`` per iteration to
  every active column — maximum BLAS throughput, results agree with the
  looped solve to solver tolerance rather than bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg import Diagonal, Kronecker, Matrix, VStack, Weighted
from ..linalg.base import Dense

__all__ = [
    "CGResult",
    "KRON_FACTOR_LIMIT",
    "apply_columnwise",
    "cg_gram_solve",
    "export_gram_solver_state",
    "restore_gram_solver_state",
    "union_gram_inverse",
    "validate_epsilon",
    "validate_maxiter",
    "validate_positive_int",
    "validate_tolerance",
]

#: Largest square Kronecker-factor Gram that the two-term union solver
#: will densify and eigendecompose (cost O(n_i³) per factor, once per
#: fitted strategy).
KRON_FACTOR_LIMIT = 1024


def validate_maxiter(maxiter: int | None) -> int | None:
    """Check a ``maxiter`` argument: ``None`` or a positive integer."""
    if maxiter is None:
        return None
    if (
        isinstance(maxiter, bool)
        or not isinstance(maxiter, (int, np.integer))
        or maxiter <= 0
    ):
        raise ValueError(
            f"maxiter must be a positive integer or None, got {maxiter!r}"
        )
    return int(maxiter)


def validate_positive_int(name: str, value) -> int:
    """Check an argument that must be a positive integer (e.g. ``trials``)."""
    if (
        isinstance(value, bool)
        or not isinstance(value, (int, np.integer))
        or value <= 0
    ):
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def validate_epsilon(eps, name: str = "eps") -> np.ndarray:
    """Check a privacy budget: every value finite and strictly positive.

    The single validation point for every ε-consuming entry point
    (``laplace_measure``, ``laplace_measure_batch``, ``HDMM.run`` /
    ``run_batch``, ``expected_error``, the service accountant).  Accepts a
    scalar or an array grid and returns it as a float64 ndarray (0-d for
    scalars), leaving shape policy — scalar-only, 1-D grids — to the
    caller.
    """
    try:
        eps_arr = np.asarray(eps, dtype=np.float64)
    except (TypeError, ValueError):
        raise ValueError(
            f"privacy budget {name} must be numeric, got {eps!r}"
        ) from None
    if eps_arr.size == 0:
        raise ValueError(f"privacy budget {name} must be non-empty")
    if not np.all(np.isfinite(eps_arr)) or np.any(eps_arr <= 0):
        raise ValueError(
            f"privacy budget {name} must be finite and positive, got {eps!r}"
        )
    return eps_arr


def validate_tolerance(name: str, value: float) -> float:
    """Check a solver tolerance: a finite, non-negative float."""
    try:
        v = float(value)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be a number, got {value!r}") from None
    if not np.isfinite(v) or v < 0:
        raise ValueError(f"{name} must be finite and non-negative, got {value!r}")
    return v


def apply_columnwise(apply_vec, Y: np.ndarray, out_rows: int) -> np.ndarray:
    """Apply a vector operation to each contiguous column of ``Y``.

    The building block of the bitwise-determinism contract: the per-column
    arithmetic (contiguous input, single mat-vec) is exactly what the
    sequential single-shot loop performs, independent of batch width.
    """
    out = np.empty((out_rows, Y.shape[1]))
    for j in range(Y.shape[1]):
        out[:, j] = apply_vec(np.ascontiguousarray(Y[:, j]))
    return out


def _kron_gram_factor_mats(block: Matrix) -> list[np.ndarray] | None:
    """Dense square factor Grams of a block's ``AᵀA``, scalar weights
    folded into the first factor; ``None`` when the block's Gram is not a
    (weighted) Kronecker product of affordable square factors."""
    gram = block.gram()
    weight = 1.0
    while isinstance(gram, Weighted):
        weight *= gram.weight
        gram = gram.base
    if isinstance(gram, Kronecker):
        factors = gram.factors
    elif min(gram.shape) <= KRON_FACTOR_LIMIT:
        factors = [gram]
    else:
        return None
    mats = []
    for f in factors:
        m, n = f.shape
        if m != n or n > KRON_FACTOR_LIMIT:
            return None
        mats.append(np.asarray(f.dense(), dtype=np.float64))
    mats[0] = weight * mats[0]
    return mats


def union_gram_inverse(A: Matrix) -> Matrix | None:
    """Exact structured inverse of ``AᵀA`` for a union of two products.

    The paper's OPT_+ instantiation partitions the workload into *two*
    groups, so the canonical union strategy is a :class:`VStack` of two
    weighted Kronecker products and its Gram is a two-term Kronecker sum
    ``G = ⊗Kᵢ + ⊗Mᵢ``.  With ``Cᵢ = chol(Kᵢ)`` and the per-factor
    eigendecompositions ``Cᵢ⁻¹ Mᵢ Cᵢ⁻ᵀ = Uᵢ Λᵢ Uᵢᵀ``::

        G  = (⊗Cᵢ) (⊗Uᵢ) [I + ⊗Λᵢ] (⊗Uᵢ)ᵀ (⊗Cᵢ)ᵀ
        G⁻¹ = (⊗Eᵢ)ᵀ · diag(1 / (1 + ⊗λ)) · (⊗Eᵢ),   Eᵢ = Uᵢᵀ Cᵢ⁻¹

    so applying the inverse costs two Kronecker mat-mats plus one
    diagonal scaling — the same order as a *single* CG iteration, and
    exact.  Setup is one small Cholesky + eigendecomposition per factor
    (O(Σ nᵢ³), done once per fitted strategy and memoized on ``A``).
    ``⊗Λ`` is positive semi-definite, so the denominator is ≥ 1 and the
    form is unconditionally stable once a positive-definite base block
    is found; both blocks are tried as the base.

    Returns the inverse as an implicit :class:`~repro.linalg.Matrix`
    (so batched application routes through ``kmatmat``), or ``None``
    when the strategy is not a two-term union of affordable Kronecker
    Grams — callers then fall back to the CG solver.
    """
    from scipy.linalg import LinAlgError, cholesky, solve_triangular

    if not isinstance(A, VStack) or len(A.blocks) not in (1, 2):
        return None
    cached = A.cache_get("union_gram_inverse")
    if cached is not None:
        return None if isinstance(cached, str) else cached

    def unavailable():
        A.cache_set("union_gram_inverse", "unavailable")
        return None

    g1 = _kron_gram_factor_mats(A.blocks[0])
    if g1 is None:
        return unavailable()
    if len(A.blocks) == 2:
        g2 = _kron_gram_factor_mats(A.blocks[1])
    else:
        g2 = [np.zeros_like(m) for m in g1]  # single block: G = ⊗Kᵢ + 0
    if (
        g2 is None
        or len(g1) != len(g2)
        or any(a.shape != b.shape for a, b in zip(g1, g2))
    ):
        return unavailable()

    for base, other in ((g1, g2), (g2, g1)):
        try:
            Es, lam_full = [], np.ones(1)
            for K, M in zip(base, other):
                C = cholesky(K, lower=True, check_finite=False)
                T1 = solve_triangular(C, M, lower=True, check_finite=False)
                S = solve_triangular(C, T1.T, lower=True, check_finite=False).T
                lam, U = np.linalg.eigh((S + S.T) / 2.0)
                lam = np.clip(lam, 0.0, None)
                Cinv = solve_triangular(
                    C, np.eye(C.shape[0]), lower=True, check_finite=False
                )
                Es.append(U.T @ Cinv)
                lam_full = np.kron(lam_full, lam)
        except (LinAlgError, np.linalg.LinAlgError):
            continue  # base block Gram not positive definite — swap roles
        A.cache_set("union_gram_state", {"factors": Es, "lam": lam_full})
        return A.cache_set("union_gram_inverse", _assemble_gram_inverse(Es, lam_full))
    return unavailable()


def _assemble_gram_inverse(Es: list[np.ndarray], lam_full: np.ndarray) -> Matrix:
    """``G⁻¹ = (⊗Eᵢ)ᵀ diag(1/(1+⊗λ)) (⊗Eᵢ)`` from its factor state."""
    E = Kronecker([Dense(Ei) for Ei in Es])
    return E.T @ Diagonal(1.0 / (1.0 + lam_full)) @ E


def export_gram_solver_state(A: Matrix) -> dict | None:
    """The factor state of ``A``'s structured union Gram inverse, if any.

    Triggers the (memoized) factorization via :func:`union_gram_inverse`
    and returns one of three values :func:`restore_gram_solver_state`
    understands:

    * ``{"factors": [E₁, ..., E_d], "lam": ⊗λ}`` — plain float64 arrays
      ready for npz persistence, so a reloaded strategy never re-runs the
      per-factor Cholesky/eigendecomposition setup;
    * ``{"unavailable": True}`` — the factorization probe ran and failed
      (no two-term structure), so a reloaded strategy skips re-probing;
    * ``None`` — nothing is known (e.g. memoization was globally
      disabled, so the probe outcome was not recorded); a reloaded
      strategy probes afresh on first use.
    """
    if union_gram_inverse(A) is None:
        return {"unavailable": True}
    state = A.cache_get("union_gram_state")
    if state is None:  # cache globally disabled — outcome not recorded
        return None
    return {"factors": list(state["factors"]), "lam": state["lam"]}


def restore_gram_solver_state(A: Matrix, state: dict | None) -> None:
    """Attach exported solver state to a strategy instance.

    Inverts :func:`export_gram_solver_state`'s three cases: factor state
    is rebuilt and cached, a recorded failed probe is cached as
    ``"unavailable"`` (CG path, no re-probe), and ``None`` leaves the
    strategy untouched so the first solve probes normally.
    """
    if state is None:
        return
    if state.get("unavailable"):
        if isinstance(A, VStack):
            A.cache_set("union_gram_inverse", "unavailable")
        return
    Es = [np.asarray(E, dtype=np.float64) for E in state["factors"]]
    lam_full = np.asarray(state["lam"], dtype=np.float64)
    A.cache_set("union_gram_state", {"factors": Es, "lam": lam_full})
    A.cache_set("union_gram_inverse", _assemble_gram_inverse(Es, lam_full))


@dataclass
class CGResult:
    """Outcome of a batched conjugate-gradient solve.

    Attributes
    ----------
    x:
        Solution matrix, one column per right-hand side (n x T).
    iterations:
        Per-column iteration counts (length T).
    converged:
        Per-column convergence flags.  A ``False`` entry means the column
        hit ``maxiter`` or stalled (curvature ``pᵀGp <= 0`` — the Gram was
        numerically semi-definite along the search direction); callers
        should hand those columns to LSMR.
    """

    x: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray


def _apply_gram(G: Matrix, P: np.ndarray, columnwise: bool) -> np.ndarray:
    """``G @ P``, either one batched matmat or per-contiguous-column matvec."""
    if not columnwise:
        return G.matmat(P)
    return apply_columnwise(G.matvec, P, P.shape[0])


def _col_dots(X: np.ndarray, Y: np.ndarray, columnwise: bool) -> np.ndarray:
    """Per-column inner products ``out[j] = X[:, j] · Y[:, j]``.

    Reductions are where batch width can leak into per-column bits: a
    strided column inside an (n, T) array may be summed in a different
    order than a standalone contiguous vector.  ``columnwise=True``
    therefore reduces each column as a contiguous copy — exactly the
    arithmetic of a width-1 solve — while the default uses one einsum
    over the whole batch.
    """
    if not columnwise:
        return np.einsum("ij,ij->j", X, Y)
    out = np.empty(X.shape[1])
    for j in range(X.shape[1]):
        out[j] = np.dot(
            np.ascontiguousarray(X[:, j]), np.ascontiguousarray(Y[:, j])
        )
    return out


def cg_gram_solve(
    G: Matrix,
    B: np.ndarray,
    x0: np.ndarray | None = None,
    rtol: float = 1e-11,
    maxiter: int | None = None,
    columnwise: bool = False,
) -> CGResult:
    """Solve ``G X = B`` for a batch of right-hand sides by CG.

    Parameters
    ----------
    G:
        The (symmetric positive semi-definite) Gram operator ``AᵀA`` as an
        implicit :class:`~repro.linalg.Matrix`.  Only ``matvec``/``matmat``
        products are used, so cached structured Grams (Kronecker products,
        sums of Kronecker Grams, marginals Grams) plug in directly.
    B:
        Right-hand sides ``AᵀY``, shape (n, T).
    x0:
        Optional warm start, shape (n,) or (n, T).  Sweeps over adjacent
        ε values pass the previous ε's solutions here.
    rtol:
        Per-column stopping criterion ``‖G x - b‖₂ <= rtol · ‖b‖₂``.
    maxiter:
        Iteration cap (default ``3 n``).
    columnwise:
        Apply ``G`` per contiguous column instead of one batched matmat —
        see the module docstring for the bitwise-determinism contract.
    """
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise ValueError(f"B must be a 2-D (n, T) right-hand-side batch, got {B.shape}")
    n, T = B.shape
    if G.shape != (n, n):
        raise ValueError(f"Gram operator must be {n} x {n}, got {G.shape}")
    rtol = validate_tolerance("rtol", rtol)
    maxiter = validate_maxiter(maxiter)
    if maxiter is None:
        maxiter = 3 * n

    if x0 is None:
        X = np.zeros((n, T))
        R = B.copy()
    else:
        x0 = np.asarray(x0, dtype=np.float64)
        if x0.ndim == 1:
            x0 = x0[:, None]
        if x0.shape[0] != n or x0.shape[1] not in (1, T):
            raise ValueError(f"x0 must have shape ({n},) or ({n}, {T}), got {x0.shape}")
        # Writable copy: broadcast views are read-only and x0 may alias
        # the previous ε block's solutions, which must stay untouched.
        X = np.array(np.broadcast_to(x0, (n, T)), dtype=np.float64)
        R = B - _apply_gram(G, X, columnwise)
    P = R.copy()
    rs = _col_dots(R, R, columnwise)
    thresh = rtol * np.sqrt(_col_dots(B, B, columnwise))
    active = np.sqrt(rs) > thresh
    iterations = np.zeros(T, dtype=np.intp)

    for _ in range(maxiter):
        idx = np.flatnonzero(active)
        if idx.size == 0:
            break
        Pa = np.ascontiguousarray(P[:, idx])
        GP = _apply_gram(G, Pa, columnwise)
        pgp = _col_dots(Pa, GP, columnwise)
        rs_a = rs[idx]
        ok = pgp > 0  # pᵀGp <= 0 ⇒ semi-definite breakdown: freeze, unconverged
        alpha = np.zeros_like(pgp)
        alpha[ok] = rs_a[ok] / pgp[ok]
        X[:, idx] += Pa * alpha
        R[:, idx] -= GP * alpha
        iterations[idx] += 1
        Ra = R[:, idx]
        rs_new = _col_dots(Ra, Ra, columnwise)
        done = np.sqrt(rs_new) <= thresh[idx]
        cont = ok & ~done
        beta = np.zeros_like(pgp)
        beta[cont] = rs_new[cont] / rs_a[cont]
        P[:, idx] = Ra + Pa * beta
        rs[idx] = rs_new
        active[idx[done | ~ok]] = False

    converged = np.sqrt(rs) <= thresh
    return CGResult(X, iterations, converged)
