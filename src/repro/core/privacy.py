"""Differential privacy definitions and accounting (paper Section 3.5).

The Laplace mechanism satisfies pure ε-differential privacy (Definition 5
with δ = 0); the Gaussian mechanism satisfies ρ-zCDP, which converts to
(ε, δ)-DP at report time.  Everything downstream of a noisy measurement
is post-processing and consumes no additional budget.

This module holds the *calculus* shared by both: the zCDP ↔ (ε, δ)
conversion curves and the Gaussian noise calibration.  The standard facts
[Bun & Steinke 2016]:

* ρ-zCDP implies (ε, δ)-DP with ``ε = ρ + 2·sqrt(ρ·ln(1/δ))`` for every
  δ > 0 (:func:`rho_to_eps`); :func:`eps_to_rho` inverts the curve, so a
  Gaussian measurement can be calibrated to a *target* (ε, δ);
* pure ε-DP implies ``(ε²/2)``-zCDP (:func:`pure_eps_to_rho`), which lets
  Laplace debits enter a ρ-denominated budget;
* the Gaussian mechanism with noise ``σ = Δ₂·sqrt(1/(2ρ))`` satisfies
  ρ-zCDP, where Δ₂ is the L2 sensitivity (:func:`gaussian_sigma`).

zCDP composes by *summing* ρ sequentially (and taking the max across
parallel partitions), which is what makes it the accountant's native
curve for Gaussian traffic: composing the converted (ε, δ) pairs
directly would be far looser.

:class:`PrivacyLedger` provides simple sequential composition accounting
for pipelines that split the budget across stages (e.g. DAWA's
partition + measurement stages).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Default δ a Gaussian measurement is calibrated against when the caller
#: does not pick one: small enough to be "cryptographically negligible"
#: for any realistic dataset size, large enough that ε→ρ conversion does
#: not blow up the noise.
DEFAULT_DELTA = 1e-6


@dataclass
class PrivacyLedger:
    """Sequential-composition budget tracker.

    Stages register their spend with :meth:`spend`; exceeding the total
    budget raises immediately, making over-spending a programming error
    rather than a silent privacy violation.
    """

    epsilon: float
    spent: float = 0.0
    stages: list[tuple[str, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError("total budget must be positive")

    def spend(self, amount: float, stage: str = "") -> float:
        """Consume ``amount`` of budget; returns the amount for chaining."""
        if amount <= 0:
            raise ValueError("budget spend must be positive")
        if self.spent + amount > self.epsilon * (1 + 1e-12):
            raise ValueError(
                f"privacy budget exceeded: {self.spent} + {amount} > {self.epsilon}"
            )
        self.spent += amount
        self.stages.append((stage, amount))
        return amount

    @property
    def remaining(self) -> float:
        return max(0.0, self.epsilon - self.spent)


def sensitivity_of(A, p: int = 1) -> float:
    """Lp sensitivity of a strategy matrix (Definition 6 for p=1).

    ``p=1`` is ``‖A‖₁`` (Laplace calibration); ``p=2`` is the maximum
    column Euclidean norm (Gaussian calibration).
    """
    return A.sensitivity(p=p)


# -- zCDP ↔ (ε, δ) conversion curves ------------------------------------

def rho_to_eps(rho, delta: float):
    """The ε for which ρ-zCDP implies (ε, δ)-DP: ``ρ + 2·sqrt(ρ·ln(1/δ))``.

    Vectorized over ``rho``; ``rho = 0`` maps to ``ε = 0`` exactly.
    """
    rho_arr = np.asarray(rho, dtype=np.float64)
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta!r}")
    out = rho_arr + 2.0 * np.sqrt(rho_arr * np.log(1.0 / delta))
    return float(out) if rho_arr.ndim == 0 else out


def eps_to_rho(eps, delta: float):
    """The ρ whose zCDP guarantee converts to exactly (ε, δ)-DP.

    Inverts :func:`rho_to_eps`: with ``L = ln(1/δ)``, solving
    ``ρ + 2·sqrt(ρL) = ε`` for ``sqrt(ρ)`` gives
    ``sqrt(ρ) = sqrt(L + ε) − sqrt(L)``.  Vectorized over ``eps``.
    """
    eps_arr = np.asarray(eps, dtype=np.float64)
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta!r}")
    L = np.log(1.0 / delta)
    out = (np.sqrt(L + eps_arr) - np.sqrt(L)) ** 2
    return float(out) if eps_arr.ndim == 0 else out


def pure_eps_to_rho(eps):
    """The zCDP cost of a pure ε-DP release: ``ρ = ε²/2``.

    How a Laplace debit enters a ρ-denominated budget policy.
    Vectorized over ``eps``.
    """
    eps_arr = np.asarray(eps, dtype=np.float64)
    out = 0.5 * eps_arr * eps_arr
    return float(out) if eps_arr.ndim == 0 else out


def gaussian_sigma(l2_sensitivity: float, eps, delta: float):
    """Noise level of the Gaussian mechanism hitting a target (ε, δ).

    Routes through zCDP: ``ρ = eps_to_rho(ε, δ)`` and
    ``σ = Δ₂·sqrt(1/(2ρ))``.  Vectorized over ``eps``.
    """
    if l2_sensitivity < 0:
        raise ValueError("L2 sensitivity must be non-negative")
    rho = np.asarray(eps_to_rho(eps, delta), dtype=np.float64)
    out = l2_sensitivity * np.sqrt(1.0 / (2.0 * rho))
    return float(out) if out.ndim == 0 else out
