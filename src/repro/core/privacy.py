"""Differential privacy definitions and accounting (paper Section 3.5).

The mechanisms in this library satisfy pure ε-differential privacy
(Definition 5 with δ = 0) through the Laplace mechanism; everything
downstream of the noisy measurement is post-processing and consumes no
additional budget.  :class:`PrivacyLedger` provides simple sequential
composition accounting for pipelines that split the budget across stages
(e.g. DAWA's partition + measurement stages).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PrivacyLedger:
    """Sequential-composition budget tracker.

    Stages register their spend with :meth:`spend`; exceeding the total
    budget raises immediately, making over-spending a programming error
    rather than a silent privacy violation.
    """

    epsilon: float
    spent: float = 0.0
    stages: list[tuple[str, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError("total budget must be positive")

    def spend(self, amount: float, stage: str = "") -> float:
        """Consume ``amount`` of budget; returns the amount for chaining."""
        if amount <= 0:
            raise ValueError("budget spend must be positive")
        if self.spent + amount > self.epsilon * (1 + 1e-12):
            raise ValueError(
                f"privacy budget exceeded: {self.spent} + {amount} > {self.epsilon}"
            )
        self.spent += amount
        self.stages.append((stage, amount))
        return amount

    @property
    def remaining(self) -> float:
        return max(0.0, self.epsilon - self.spent)


def sensitivity_of(A) -> float:
    """L1 sensitivity of a strategy matrix — ``‖A‖₁`` (Definition 6)."""
    return A.sensitivity()
