"""SF1 / SF1+ proxy workloads on the CPH schema (paper Section 2).

The paper's motivating workload is 4151 predicate counting queries drawn
from the 2010 Census Summary File 1 tabulations over a Person relation
with schema Hispanic(2) x Sex(2) x Race(64) x Relationship(17) x Age(115),
plus State(51) for the SF1+ variant.  The exact query list is a Census
artifact not distributed with the paper; following the substitution rule
in DESIGN.md we build a *structurally faithful proxy*: a union of 32
products (matching the paper's manually factored W*_SF1 form, Example 5)
mixing Identity, Total, singleton, set-membership and age-range predicate
sets in the proportions of the real tabulations (population totals, race
iterations P3/P4, relationship P29, sex-by-age P12 and its race
iterations, etc.).  Error *ratios* between mechanisms depend only on this
structure, so the proxy exercises identical code paths.

``sf1_workload(plus=True)`` adds state-level grouping by replacing the
Total predicate set on State with Identity ∪ Total, exactly as the paper
reduces SF1+ to 4151 products "by simply adding True to the Identity
predicate set on State".
"""

from __future__ import annotations

from ..domain import Domain
from .logical import LogicalWorkload, Product
from .predicates import (
    Equals,
    InSet,
    Predicate,
    Range,
    TruePredicate,
    identity_predicates,
)

#: Attribute order used throughout the experiments (Table 3 lists the CPH
#: domain as 2 x 2 x 64 x 17 x 115 x 51).
CPH_ATTRIBUTES = ("hispanic", "sex", "race", "relationship", "age", "state")
CPH_SIZES = (2, 2, 64, 17, 115, 51)


def cph_domain(include_state: bool = True) -> Domain:
    """The Census of Population and Housing schema of Section 2."""
    if include_state:
        return Domain(CPH_ATTRIBUTES, CPH_SIZES)
    return Domain(CPH_ATTRIBUTES[:-1], CPH_SIZES[:-1])


def sf1_age_ranges() -> list[Predicate]:
    """The P12 age grouping: [0,114], [0,4], [5,9], ..., [80,84], [85,114]."""
    ranges: list[Predicate] = [Range(0, 114)]
    for lo in range(0, 85, 5):
        ranges.append(Range(lo, lo + 4))
    ranges.append(Range(85, 114))
    return ranges


def _race_groups() -> list[list[int]]:
    """Nine race groupings mimicking the P12A-I tabulation iterations.

    The merged Race attribute has 64 values — one per combination of the
    six binary race flags (Example 1).  Value v has bit i set when race
    flag i is checked.  The groups below mirror the Census iterations:
    'white alone', ..., 'two or more races'.
    """
    alone = [[1 << i] for i in range(6)]  # one race flag only
    two_or_more = [[v for v in range(64) if bin(v).count("1") >= 2]]
    any_white = [[v for v in range(64) if v & 1]]
    nonzero = [[v for v in range(64) if v != 0]]
    return alone + two_or_more + any_white + nonzero


def sf1_workload(plus: bool = False) -> LogicalWorkload:
    """The 32-product SF1 proxy (``plus=True`` for the SF1+ variant)."""
    domain = cph_domain(include_state=True)
    age_ranges = sf1_age_ranges()
    adult = [Range(18, 114)]
    products: list[Product] = []

    def add(predicate_sets: dict) -> None:
        products.append(Product(domain, predicate_sets))

    # -- population counts and one-way tabulations (P1, P3, P5, P29...) ----
    add({})  # total population
    add({"race": identity_predicates(64)})  # P3: race
    add({"hispanic": identity_predicates(2)})  # P4 margin
    add({"relationship": identity_predicates(17)})  # P29: relationship
    add({"sex": identity_predicates(2)})
    add({"age": identity_predicates(115)})  # single-year age pyramid

    # -- two-way tabulations ------------------------------------------------
    add({"hispanic": identity_predicates(2), "race": identity_predicates(64)})
    add({"sex": identity_predicates(2), "relationship": identity_predicates(17)})
    add({"sex": identity_predicates(2), "age": age_ranges})  # P12
    add({"hispanic": identity_predicates(2), "age": age_ranges})
    add({"race": identity_predicates(64), "sex": identity_predicates(2)})

    # -- P12 race iterations (sex x age-ranges per race group) --------------
    for group in _race_groups():
        add(
            {
                "sex": identity_predicates(2),
                "age": age_ranges,
                "race": [InSet(group)],
            }
        )

    # -- adult (18+) variants (voting-age tabulations) -----------------------
    add({"age": adult})
    add({"age": adult, "sex": identity_predicates(2)})
    add({"age": adult, "race": identity_predicates(64)})
    add({"age": adult, "hispanic": identity_predicates(2)})
    add(
        {
            "age": adult,
            "sex": identity_predicates(2),
            "hispanic": identity_predicates(2),
        }
    )

    # -- assorted filtered counts mirroring single-query products ------------
    add({"sex": [Equals(0)], "age": [Range(0, 4)]})  # e.g. males under 5
    add({"sex": [Equals(1)], "age": [Range(0, 4)]})
    add({"hispanic": [Equals(1)], "sex": identity_predicates(2)})
    add({"relationship": [Equals(0)], "age": age_ranges})  # householders by age
    add({"relationship": identity_predicates(17), "age": adult})
    add(
        {
            "hispanic": [Equals(1)],
            "race": identity_predicates(64),
            "sex": identity_predicates(2),
        }
    )
    add({"sex": identity_predicates(2), "age": identity_predicates(115)})

    assert len(products) == 32, f"expected 32 products, got {len(products)}"

    if plus:
        # State-level grouping: Identity ∪ Total on State in every product.
        state_preds = identity_predicates(51) + [TruePredicate()]
        products = [
            Product(
                domain,
                {
                    **{
                        a: p.predicate_sets[a]
                        for a in domain.attributes
                        if a != "state"
                    },
                    "state": state_preds,
                },
            )
            for p in products
        ]
    return LogicalWorkload(products)
