"""Logical workloads and the ImpVec encoding algorithm (paper Sections 3.3
and 4.3).

A :class:`Product` is a conjunctive query set ``[Φ1]_{A1} x ... x [Φd]_{Ad}``
— one predicate set per attribute, combined by conjunction across
attributes (Definition 2).  A :class:`LogicalWorkload` is a weighted union
of products (Definition 3).  :func:`implicit_vectorize` is Algorithm
``ImpVec``: it vectorizes each per-attribute predicate set and assembles
the implicit matrix ``W = w1·(W1⁽¹⁾ ⊗ ... ⊗ Wd⁽¹⁾) + ...`` as a
:class:`~repro.linalg.VStack` of weighted :class:`~repro.linalg.Kronecker`
products.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from ..domain import Domain, SchemaMismatchError
from ..linalg import Kronecker, Matrix, Ones, VStack, Weighted
from .predicates import Predicate, TruePredicate, vectorize_set


def _as_predicate_list(preds: Predicate | Sequence[Predicate]) -> list[Predicate]:
    """Accept a bare predicate where a predicate set is expected."""
    if isinstance(preds, Predicate):
        return [preds]
    return list(preds)


class Product:
    """A product query set: one predicate set per attribute.

    Attributes not mentioned implicitly carry the ``Total`` predicate set
    (they are neither filtered nor grouped).  A bare :class:`Predicate`
    is accepted as a singleton set.

    Parameters
    ----------
    domain:
        The relational domain the product is defined over.
    predicate_sets:
        Mapping from attribute name to its predicate set Φ.
    """

    def __init__(
        self,
        domain: Domain,
        predicate_sets: Mapping[str, Predicate | Sequence[Predicate]],
    ):
        unknown = set(predicate_sets) - set(domain.attributes)
        if unknown:
            raise SchemaMismatchError(
                f"unknown attributes {sorted(unknown)}; the domain has "
                f"{list(domain.attributes)}"
            )
        self.domain = domain
        self.predicate_sets = {
            attr: _as_predicate_list(predicate_sets.get(attr, [TruePredicate()]))
            for attr in domain.attributes
        }
        for attr, preds in self.predicate_sets.items():
            if not preds:
                raise ValueError(f"empty predicate set on attribute {attr!r}")

    def num_queries(self) -> int:
        """Number of scalar counting queries in the product (Π |Φi|)."""
        out = 1
        for preds in self.predicate_sets.values():
            out *= len(preds)
        return out

    def vectorize(self) -> Kronecker:
        """Theorem 2: the implicit matrix ``vec(Φ1) ⊗ ... ⊗ vec(Φd)``."""
        factors: list[Matrix] = []
        for attr in self.domain.attributes:
            n = self.domain[attr]
            factors.append(vectorize_set(self.predicate_sets[attr], n))
        return Kronecker(factors)

    def __repr__(self) -> str:
        parts = []
        for attr in self.domain.attributes:
            preds = self.predicate_sets[attr]
            if len(preds) == 1 and isinstance(preds[0], TruePredicate):
                continue
            parts.append(f"{attr}[{len(preds)}]")
        return f"Product({' x '.join(parts) or 'Total'})"


class LogicalWorkload:
    """A weighted union of products (Definition 3).

    Iterable of ``(weight, Product)`` pairs.  Weights express accuracy
    preferences (a repeated/weighted query demands proportionally lower
    error, Section 3.3).
    """

    def __init__(self, products: Iterable[Product], weights=None):
        self.products = list(products)
        if not self.products:
            raise ValueError("workload must contain at least one product")
        domain = self.products[0].domain
        if any(q.domain != domain for q in self.products):
            raise ValueError("all products must share a domain")
        self.domain = domain
        if weights is None:
            weights = [1.0] * len(self.products)
        self.weights = [float(w) for w in weights]
        if len(self.weights) != len(self.products):
            raise ValueError("weights must align with products")
        if any(w <= 0 for w in self.weights):
            raise ValueError("weights must be positive")

    def num_queries(self) -> int:
        """Total number of scalar counting queries across all products."""
        return sum(q.num_queries() for q in self.products)

    def __len__(self) -> int:
        return len(self.products)

    def __iter__(self):
        return iter(zip(self.weights, self.products))

    def union(self, other: "LogicalWorkload") -> "LogicalWorkload":
        if self.domain != other.domain:
            raise ValueError("workloads must share a domain")
        return LogicalWorkload(
            self.products + other.products, self.weights + other.weights
        )

    def to_workload_matrix(self) -> Matrix:
        """ImpVec (the workload-object protocol used across the library)."""
        return implicit_vectorize(self)

    def __repr__(self) -> str:
        return f"LogicalWorkload({len(self.products)} products, domain={self.domain})"


def implicit_vectorize(workload: LogicalWorkload) -> Matrix:
    """Algorithm ImpVec (Section 4.3).

    Returns the implicit workload matrix ``W = Σ wi·(Wi1 ⊗ ... ⊗ Wid)``
    as a :class:`VStack` of weighted Kronecker products (a single weighted
    Kronecker when the workload has one product).
    """
    blocks: list[Matrix] = []
    for w, product in workload:
        kron = product.vectorize()
        blocks.append(kron if w == 1.0 else Weighted(kron, w))
    if len(blocks) == 1:
        return blocks[0]
    return VStack(blocks)


def as_workload_matrix(
    workload, domain: Domain | None = None
) -> tuple[Matrix, Domain | None]:
    """Normalize any workload-like object to ``(implicit matrix, domain)``.

    The accepted shapes form the library's workload protocol:

    * a :class:`~repro.linalg.Matrix` — already physical, passed through;
    * a :class:`LogicalWorkload` — vectorized via ImpVec, contributing its
      own relational domain unless the caller overrides it;
    * any object with a ``to_workload_matrix()`` method (compiled query
      plans from :mod:`repro.api`, logical workloads), whose optional
      ``domain`` attribute is used the same way.

    Every consumer of workloads — :meth:`repro.core.HDMM.fit`, the query
    service, the fingerprint scheme — routes through this, so a compiled
    declarative plan is accepted anywhere a raw matrix is.
    """
    if isinstance(workload, Matrix):
        return workload, domain
    if isinstance(workload, LogicalWorkload):
        return implicit_vectorize(workload), domain or workload.domain
    to_matrix = getattr(workload, "to_workload_matrix", None)
    if to_matrix is not None:
        own = getattr(workload, "domain", None)
        matrix = to_matrix()
        if not isinstance(matrix, Matrix):
            raise TypeError(
                f"{type(workload).__name__}.to_workload_matrix() returned "
                f"{type(matrix).__name__}, expected a Matrix"
            )
        return matrix, domain or (own if isinstance(own, Domain) else None)
    raise TypeError(
        f"expected a Matrix, LogicalWorkload, or an object with "
        f"to_workload_matrix(); got {type(workload).__name__}"
    )


def union_kron(terms: Sequence[tuple[float, Sequence[Matrix]]]) -> Matrix:
    """Assemble an implicit union-of-products matrix from raw factors.

    ``terms`` is a list of ``(weight, [W1, ..., Wd])`` tuples.  This is the
    low-level constructor used by workload builders that skip the logical
    predicate layer (e.g. marginals over large domains).
    """
    blocks: list[Matrix] = []
    for w, factors in terms:
        kron = Kronecker(list(factors))
        blocks.append(kron if w == 1.0 else Weighted(kron, float(w)))
    if len(blocks) == 1:
        return blocks[0]
    return VStack(blocks)


def total_on(domain: Domain) -> Matrix:
    """The single total query over a full domain, as a Kronecker product."""
    return Kronecker([Ones(1, n) for n in domain.sizes])


def workload_answers(workload: LogicalWorkload, data_vector: np.ndarray) -> np.ndarray:
    """Evaluate every query in the workload on an explicit data vector."""
    return implicit_vectorize(workload).matvec(data_vector)
