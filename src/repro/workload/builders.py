"""Workload builders for the paper's experimental configurations (§8.1).

Each builder returns an implicit workload :class:`~repro.linalg.Matrix` —
a ``Kronecker``, a ``Weighted`` Kronecker, or a ``VStack`` of them — ready
for the optimization operators.  Use
:func:`repro.workload.util.as_union_of_products` to recover the
``(weight, factors)`` decomposition.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..domain import Domain, SchemaMismatchError
from ..linalg import (
    AllRange,
    Identity,
    Kronecker,
    Matrix,
    Ones,
    Permuted,
    Prefix,
    VStack,
    Weighted,
    WidthRange,
)


def all_range(n: int) -> Matrix:
    """All 1-D range queries on a domain of size n."""
    return AllRange(n)


def prefix_1d(n: int) -> Matrix:
    """The Prefix workload — a compact proxy for all range queries."""
    return Prefix(n)


def width_range(n: int, width: int = 32) -> Matrix:
    """The Width-``width`` Range workload: ranges of exactly that length."""
    return WidthRange(n, width)


def permuted_range(n: int, seed: int = 0) -> Matrix:
    """All range queries right-multiplied by a random permutation matrix.

    Destroys domain locality: hierarchical/wavelet strategies tuned for
    contiguous ranges perform poorly, while workload-adaptive optimization
    recovers the structure (paper Section 8.2).
    """
    perm = np.random.default_rng(seed).permutation(n)
    return Permuted(AllRange(n), perm)


def prefix_2d(n1: int, n2: int | None = None) -> Matrix:
    """The Prefix 2D workload P x P."""
    n2 = n1 if n2 is None else n2
    return Kronecker([Prefix(n1), Prefix(n2)])


def prefix_3d(n: int) -> Matrix:
    """The Prefix 3D workload P x P x P (scalability experiments)."""
    return Kronecker([Prefix(n), Prefix(n), Prefix(n)])


def all_range_2d(n1: int, n2: int | None = None) -> Matrix:
    """All axis-aligned 2-D range queries R x R."""
    n2 = n1 if n2 is None else n2
    return Kronecker([AllRange(n1), AllRange(n2)])


def all_range_kd(sizes) -> Matrix:
    """All axis-aligned k-D range queries R x ... x R."""
    return Kronecker([AllRange(n) for n in sizes])


def prefix_identity(n1: int, n2: int | None = None) -> Matrix:
    """The Prefix-Identity workload: union of P x I and I x P."""
    n2 = n1 if n2 is None else n2
    return VStack(
        [
            Kronecker([Prefix(n1), Identity(n2)]),
            Kronecker([Identity(n1), Prefix(n2)]),
        ]
    )


def range_total_union(n1: int, n2: int | None = None) -> Matrix:
    """The union (R x T) ∪ (T x R) of Table 4b — the workload for which a
    single-product strategy forces a suboptimal pairing (Section 6.2)."""
    n2 = n1 if n2 is None else n2
    return VStack(
        [
            Kronecker([AllRange(n1), Ones(1, n2)]),
            Kronecker([Ones(1, n1), AllRange(n2)]),
        ]
    )


def marginal(domain: Domain, attrs) -> Matrix:
    """A single marginal: Identity on ``attrs``, Total elsewhere."""
    keep = set(attrs)
    unknown = keep - set(domain.attributes)
    if unknown:
        raise SchemaMismatchError(
            f"unknown attributes {sorted(unknown)}; the domain has "
            f"{list(domain.attributes)}"
        )
    factors: list[Matrix] = [
        Identity(n) if a in keep else Ones(1, n)
        for a, n in zip(domain.attributes, domain.sizes)
    ]
    return Kronecker(factors)


def k_way_marginals(domain: Domain, k: int) -> Matrix:
    """All (d choose k) k-way marginals, as a union of products."""
    d = len(domain)
    if not 0 <= k <= d:
        raise ValueError(f"k must be in [0, {d}]")
    blocks = [
        marginal(domain, subset)
        for subset in itertools.combinations(domain.attributes, k)
    ]
    return blocks[0] if len(blocks) == 1 else VStack(blocks)


def up_to_k_marginals(domain: Domain, k: int) -> Matrix:
    """All i-way marginals for i <= k (Table 5's workload family)."""
    blocks = []
    for i in range(k + 1):
        for subset in itertools.combinations(domain.attributes, i):
            blocks.append(marginal(domain, subset))
    return blocks[0] if len(blocks) == 1 else VStack(blocks)


def all_marginals(domain: Domain) -> Matrix:
    """All 2^d marginals."""
    return up_to_k_marginals(domain, len(domain))


def range_marginals(
    domain: Domain, numeric: set | frozenset | list, k: int | None = None
) -> Matrix:
    """Marginals with AllRange in place of Identity on numeric attributes.

    ``All Range-Marginals`` uses every attribute subset; pass ``k=2`` for
    the 2-way variant of Table 3.
    """
    numeric = set(numeric)
    d = len(domain)
    ks = range(d + 1) if k is None else [k]
    blocks = []
    for i in ks:
        for subset in itertools.combinations(domain.attributes, i):
            keep = set(subset)
            factors: list[Matrix] = []
            for a, n in zip(domain.attributes, domain.sizes):
                if a not in keep:
                    factors.append(Ones(1, n))
                elif a in numeric:
                    factors.append(AllRange(n))
                else:
                    factors.append(Identity(n))
            blocks.append(Kronecker(factors))
    return blocks[0] if len(blocks) == 1 else VStack(blocks)


def all_3way_ranges(domain: Domain) -> Matrix:
    """All 3-way range-marginal combinations: AllRange on each 3-subset."""
    blocks = []
    for subset in itertools.combinations(domain.attributes, 3):
        keep = set(subset)
        factors: list[Matrix] = [
            AllRange(n) if a in keep else Ones(1, n)
            for a, n in zip(domain.attributes, domain.sizes)
        ]
        blocks.append(Kronecker(factors))
    return blocks[0] if len(blocks) == 1 else VStack(blocks)


def weighted_union(blocks: list[Matrix], weights: list[float]) -> Matrix:
    """Stack workload blocks with accuracy weights (Section 3.3)."""
    if len(blocks) != len(weights):
        raise ValueError("blocks and weights must align")
    wrapped = [
        B if w == 1.0 else Weighted(B, float(w)) for B, w in zip(blocks, weights)
    ]
    return wrapped[0] if len(wrapped) == 1 else VStack(wrapped)
