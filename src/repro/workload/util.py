"""Normalization helpers for implicit workloads.

The optimization operators of Section 6 consume a workload as a *union of
products* — a list of ``(weight, [W1, ..., Wd])`` terms.  This module
recovers that decomposition from the :class:`~repro.linalg.Matrix`
representations produced by ImpVec and the workload builders.
"""

from __future__ import annotations

from ..linalg import Kronecker, Matrix, VStack, Weighted

UnionOfProducts = list[tuple[float, list[Matrix]]]


def as_union_of_products(W: Matrix) -> UnionOfProducts:
    """Decompose an implicit workload into weighted Kronecker terms.

    * ``Kronecker`` → a single unit-weight term with its factors;
    * ``Weighted``  → the inner decomposition with scaled weights;
    * ``VStack``    → concatenation of the blocks' decompositions;
    * anything else → a single-factor product ``[(1.0, [W])]`` (the 1-D
      case, where the workload itself is the only factor).

    The decomposition is memoized on ``W`` (matrices are immutable):
    strategy optimization re-derives it on every restart and every error
    evaluation, so repeated calls return the cached term list.  Treat the
    result as read-only.
    """
    cached = W.cache_get("union_of_products")
    if cached is None:
        cached = W.cache_set("union_of_products", _decompose(W))
    return cached


def _decompose(W: Matrix) -> UnionOfProducts:
    if isinstance(W, Weighted):
        inner = as_union_of_products(W.base)
        return [(w * W.weight, factors) for w, factors in inner]
    if isinstance(W, Kronecker):
        return [(1.0, list(W.factors))]
    if isinstance(W, VStack):
        out: UnionOfProducts = []
        for block in W.blocks:
            out.extend(as_union_of_products(block))
        return out
    return [(1.0, [W])]


def num_attributes(W: Matrix) -> int:
    """Number of attributes (factors per product) of an implicit workload."""
    terms = as_union_of_products(W)
    d = len(terms[0][1])
    if any(len(factors) != d for _, factors in terms):
        raise ValueError("inconsistent number of factors across products")
    return d


def attribute_sizes(W: Matrix) -> list[int]:
    """Per-attribute domain sizes of an implicit workload."""
    terms = as_union_of_products(W)
    sizes = [f.shape[1] for f in terms[0][1]]
    for _, factors in terms:
        if [f.shape[1] for f in factors] != sizes:
            raise ValueError("inconsistent attribute sizes across products")
    return sizes
