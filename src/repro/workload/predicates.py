"""Logical predicates and their vectorization (paper Sections 3.2 and 4.1).

A *predicate* on a single attribute is a boolean function over that
attribute's domain; its vectorized form (Definition 4, restricted to one
attribute) is the 0/1 indicator vector over ``dom(A)``.  Conjunctions of
single-attribute predicates vectorize as Kronecker products of the
per-attribute vectors (Theorem 1) — the key fact behind HDMM's compact
implicit representation.

This module provides a small predicate language (equality, set membership,
ranges, totals, and arbitrary callables) together with ``vectorize`` for
single predicates and ``vectorize_set`` for predicate sets, which produce
the per-attribute factor matrices consumed by :func:`repro.workload.logical.
implicit_vectorize`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import numpy as np

from ..linalg import Dense, Identity, Matrix, Ones, Prefix


class Predicate:
    """A boolean condition over a single attribute's domain.

    Subclasses implement ``mask(n)`` returning the length-n 0/1 indicator.
    Predicates form a boolean algebra over one attribute: ``p & q`` is the
    conjunction, ``p | q`` the disjunction, and ``~p`` the complement —
    each still a single-attribute predicate, so composites vectorize to
    indicator rows exactly like the primitives (Definition 4).
    """

    def mask(self, n: int) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, value: int, n: int) -> bool:
        return bool(self.mask(n)[value])

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class TruePredicate(Predicate):
    """Matches every domain element (the ``Total`` predicate)."""

    def mask(self, n: int) -> np.ndarray:
        return np.ones(n)

    def __repr__(self) -> str:
        return "True"


class Equals(Predicate):
    """Matches a single domain element ``attr == value``."""

    def __init__(self, value: int):
        self.value = int(value)

    def mask(self, n: int) -> np.ndarray:
        if not 0 <= self.value < n:
            raise ValueError(f"value {self.value} outside domain of size {n}")
        out = np.zeros(n)
        out[self.value] = 1.0
        return out

    def __repr__(self) -> str:
        return f"== {self.value}"


class InSet(Predicate):
    """Matches any element of a finite set (encodes disjunctions of
    equalities, e.g. the merged 64-value Race attribute of Example 1)."""

    def __init__(self, values: Iterable[int]):
        self.values = sorted(set(int(v) for v in values))

    def mask(self, n: int) -> np.ndarray:
        out = np.zeros(n)
        for v in self.values:
            if not 0 <= v < n:
                raise ValueError(f"value {v} outside domain of size {n}")
            out[v] = 1.0
        return out

    def __repr__(self) -> str:
        return f"in {self.values}"


class Range(Predicate):
    """Matches ``lo <= attr <= hi`` (inclusive ordered range)."""

    def __init__(self, lo: int, hi: int):
        if lo > hi:
            raise ValueError(f"empty range [{lo}, {hi}]")
        self.lo = int(lo)
        self.hi = int(hi)

    def mask(self, n: int) -> np.ndarray:
        if not (0 <= self.lo and self.hi < n):
            raise ValueError(f"range [{self.lo}, {self.hi}] outside domain {n}")
        out = np.zeros(n)
        out[self.lo : self.hi + 1] = 1.0
        return out

    def __repr__(self) -> str:
        return f"in [{self.lo}, {self.hi}]"


class Not(Predicate):
    """The complement of a predicate (e.g. every race *except* one).

    Negation keeps the indicator semantics: the mask is ``1 - mask(base)``
    clipped to {0, 1}, so a negated predicate is still a counting query
    over the attribute's domain.
    """

    def __init__(self, base: Predicate):
        self.base = base

    def mask(self, n: int) -> np.ndarray:
        return 1.0 - np.clip(self.base.mask(n), 0.0, 1.0)

    def __repr__(self) -> str:
        return f"not ({self.base!r})"


class And(Predicate):
    """Conjunction of predicates on the *same* attribute (mask product)."""

    def __init__(self, *terms: Predicate):
        self.terms = tuple(terms)
        if not self.terms:
            raise ValueError("And requires at least one predicate")

    def mask(self, n: int) -> np.ndarray:
        out = np.ones(n)
        for p in self.terms:
            out *= np.clip(p.mask(n), 0.0, 1.0)
        return out

    def __repr__(self) -> str:
        return " and ".join(f"({p!r})" for p in self.terms)


class Or(Predicate):
    """Disjunction of predicates on the *same* attribute (mask maximum)."""

    def __init__(self, *terms: Predicate):
        self.terms = tuple(terms)
        if not self.terms:
            raise ValueError("Or requires at least one predicate")

    def mask(self, n: int) -> np.ndarray:
        out = np.zeros(n)
        for p in self.terms:
            out = np.maximum(out, np.clip(p.mask(n), 0.0, 1.0))
        return out

    def __repr__(self) -> str:
        return " or ".join(f"({p!r})" for p in self.terms)


class Lambda(Predicate):
    """An arbitrary boolean function of the (integer-coded) value."""

    def __init__(self, fn: Callable[[int], bool], name: str = "λ"):
        self.fn = fn
        self.name = name

    def mask(self, n: int) -> np.ndarray:
        return np.array([1.0 if self.fn(v) else 0.0 for v in range(n)])

    def __repr__(self) -> str:
        return self.name


def vectorize(predicate: Predicate, n: int) -> np.ndarray:
    """Definition 4 restricted to one attribute: the 0/1 indicator row."""
    mask = np.asarray(predicate.mask(n), dtype=np.float64)
    if mask.shape != (n,):
        raise ValueError(f"predicate mask has shape {mask.shape}, expected ({n},)")
    return mask


def vectorize_set(predicates: Iterable[Predicate], n: int) -> Matrix:
    """Vectorize a predicate set Φ = [φ1 ... φp] into its p x n matrix.

    Recognizes the special sets of Section 3.3 and returns structured
    matrices when possible (Identity, Total, Prefix), falling back to a
    dense stack of indicator rows.
    """
    preds = list(predicates)
    if len(preds) == 1 and isinstance(preds[0], TruePredicate):
        return Ones(1, n)
    if len(preds) == n and all(
        isinstance(p, Equals) and p.value == i for i, p in enumerate(preds)
    ):
        return Identity(n)
    if len(preds) == n and all(
        isinstance(p, Range) and p.lo == 0 and p.hi == i for i, p in enumerate(preds)
    ):
        return Prefix(n)
    if len(preds) == 1 and np.all(preds[0].mask(n) == 1.0):
        # A single predicate covering the whole domain (e.g. a range
        # [0, n-1]) is semantically the Total predicate set.  Checked
        # after the Identity/Prefix recognitions so a size-1 attribute's
        # Identity set keeps its historical vectorized form.
        return Ones(1, n)
    return Dense(np.stack([vectorize(p, n) for p in preds]))


def identity_predicates(n: int) -> list[Predicate]:
    """The ``Identity`` predicate set: one equality per domain element."""
    return [Equals(i) for i in range(n)]


def prefix_predicates(n: int) -> list[Predicate]:
    """The ``Prefix`` predicate set: ranges [0, i] for each i."""
    return [Range(0, i) for i in range(n)]


def all_range_predicates(n: int) -> list[Predicate]:
    """The ``AllRange`` predicate set: every [i, j] with i <= j."""
    return [Range(i, j) for i in range(n) for j in range(i, n)]


def total_predicates() -> list[Predicate]:
    """The ``Total`` predicate set: the single always-true predicate."""
    return [TruePredicate()]


def bucket_predicates(intervals: Iterable) -> list[Predicate]:
    """An arbitrary per-attribute bucketization: one predicate per bucket.

    Each bucket is an inclusive integer interval ``(lo, hi)`` (a bare
    scalar is the singleton bucket ``(v, v)``).  Buckets may overlap,
    nest, or leave gaps — any interval set is a valid predicate set, so
    custom age bands, income brackets, or top-coded tails compile
    directly through :func:`vectorize_set` without detouring through
    ``workload.logical``.  Every bucket row is an interval indicator,
    which keeps the whole set accelerator-eligible (one summed-area
    gather per bucket).
    """
    preds: list[Predicate] = []
    for iv in intervals:
        if isinstance(iv, (tuple, list)):
            if len(iv) != 2:
                raise ValueError(
                    f"bucket {iv!r} must be a (lo, hi) pair or a scalar"
                )
            lo, hi = int(iv[0]), int(iv[1])
        else:
            lo = hi = int(iv)
        preds.append(Equals(lo) if lo == hi else Range(lo, hi))
    if not preds:
        raise ValueError("bucketization needs at least one bucket")
    return preds
