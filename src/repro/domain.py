"""Relational domain model (paper Section 3.1).

A :class:`Domain` describes the single-table schema ``R(A1 ... Ad)``: an
ordered list of attribute names together with the finite size of each
attribute's domain.  The *full domain* of ``R`` is the cross product of the
attribute domains; its size ``N = n1 * ... * nd`` is the length of the data
vector used throughout the select-measure-reconstruct paradigm.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping


class SchemaMismatchError(KeyError, ValueError):
    """A query, workload, or value does not fit the schema it was used with.

    Raised with a message naming the offending dataset/attribute and the
    expected domain shape, wherever the library previously produced a bare
    shape-mismatch error.  Subclasses both :class:`KeyError` (unknown
    attribute / dataset lookups) and :class:`ValueError` (shape and
    vocabulary mismatches) so existing ``except`` clauses keep working.
    """

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return Exception.__str__(self)


class Domain:
    """An ordered mapping from attribute names to finite domain sizes.

    Parameters
    ----------
    attributes:
        Attribute names, in the order used for vectorization.
    sizes:
        Domain size ``n_i = |dom(A_i)|`` for each attribute, aligned with
        ``attributes``.
    """

    def __init__(self, attributes: Iterable[str], sizes: Iterable[int]):
        self.attributes = tuple(attributes)
        self.sizes = tuple(int(n) for n in sizes)
        if len(self.attributes) != len(self.sizes):
            raise ValueError(
                "attributes and sizes must have equal length, got "
                f"{len(self.attributes)} and {len(self.sizes)}"
            )
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError("attribute names must be unique")
        if any(n <= 0 for n in self.sizes):
            raise ValueError("all domain sizes must be positive")
        self._index = {a: i for i, a in enumerate(self.attributes)}

    def _position(self, attr: str) -> int:
        try:
            return self._index[attr]
        except KeyError:
            raise SchemaMismatchError(
                f"unknown attribute {attr!r}; this domain has "
                f"{list(self.attributes)}"
            ) from None

    @classmethod
    def fromdict(cls, mapping: Mapping[str, int]) -> "Domain":
        """Build a domain from an ordered ``{attribute: size}`` mapping."""
        return cls(mapping.keys(), mapping.values())

    def size(self, attr: str | None = None) -> int:
        """Total domain size ``N``, or the size of a single attribute."""
        if attr is None:
            return math.prod(self.sizes)
        return self.sizes[self._position(attr)]

    def index(self, attr: str) -> int:
        """Position of ``attr`` in the attribute ordering."""
        return self._position(attr)

    def project(self, attrs: Iterable[str]) -> "Domain":
        """The sub-domain over ``attrs``, keeping this domain's order."""
        keep = set(attrs)
        unknown = keep - set(self.attributes)
        if unknown:
            raise SchemaMismatchError(
                f"unknown attributes {sorted(unknown)}; this domain has "
                f"{list(self.attributes)}"
            )
        pairs = [(a, n) for a, n in zip(self.attributes, self.sizes) if a in keep]
        return Domain([a for a, _ in pairs], [n for _, n in pairs])

    def marginalize(self, attrs: Iterable[str]) -> "Domain":
        """The sub-domain over all attributes *except* ``attrs``."""
        drop = set(attrs)
        return self.project(a for a in self.attributes if a not in drop)

    def merge(self, other: "Domain") -> "Domain":
        """Union of two domains; shared attributes must agree on size."""
        sizes = dict(zip(self.attributes, self.sizes))
        for a, n in zip(other.attributes, other.sizes):
            if sizes.setdefault(a, n) != n:
                raise SchemaMismatchError(
                    f"conflicting sizes for attribute {a!r}: "
                    f"{sizes[a]} here vs {n} in the merged domain"
                )
        return Domain(sizes.keys(), sizes.values())

    def shape(self) -> tuple[int, ...]:
        """Sizes as a tuple, i.e. the shape of the data tensor."""
        return self.sizes

    def __len__(self) -> int:
        return len(self.attributes)

    def __contains__(self, attr: str) -> bool:
        return attr in self._index

    def __iter__(self):
        return iter(self.attributes)

    def __getitem__(self, attr: str) -> int:
        return self.sizes[self._position(attr)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        return self.attributes == other.attributes and self.sizes == other.sizes

    def __hash__(self) -> int:
        return hash((self.attributes, self.sizes))

    def __repr__(self) -> str:
        inner = ", ".join(f"{a}: {n}" for a, n in zip(self.attributes, self.sizes))
        return f"Domain({inner})"
