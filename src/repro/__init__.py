"""repro — a reproduction of HDMM (McKenna et al., VLDB 2018).

The High-Dimensional Matrix Mechanism answers workloads of predicate
counting queries under ε-differential privacy, selecting a measurement
strategy optimized for the workload via implicit Kronecker-product
representations.

Quickstart::

    import numpy as np
    from repro import HDMM, workload

    W = workload.prefix_1d(256)          # all prefix/CDF queries
    mech = HDMM(restarts=3, rng=0).fit(W)
    x = np.random.default_rng(0).poisson(100, 256).astype(float)
    answers = mech.run(x, eps=1.0, rng=1)

Package layout:

* :mod:`repro.linalg`    — implicit matrix algebra (Kronecker, stacks,
  marginals algebra, structured workloads);
* :mod:`repro.workload`  — logical workloads, ImpVec, experiment builders;
* :mod:`repro.optimize`  — OPT_0 / OPT_⊗ / OPT_+ / OPT_M / OPT_HDMM;
* :mod:`repro.core`      — error metrics, measure, reconstruct, HDMM;
* :mod:`repro.service`   — strategy registry, privacy accountant, and the
  :class:`~repro.service.QueryService` serving layer;
* :mod:`repro.api`       — the declarative layer: schema-aware predicate
  expressions, the lazy query planner, and the :class:`~repro.api.Session`
  facade over the serving stack;
* :mod:`repro.baselines` — the eleven comparison mechanisms of Section 8;
* :mod:`repro.data`      — dataset schemas and synthetic data generators.
"""

from . import api, core, linalg, optimize, service, workload
from .api import Schema, Session
from .core import HDMM, error_ratio, expected_error, rootmse, squared_error
from .domain import Domain, SchemaMismatchError
from .service import PrivacyAccountant, QueryService, StrategyRegistry

__version__ = "1.0.0"

__all__ = [
    "Domain",
    "HDMM",
    "PrivacyAccountant",
    "QueryService",
    "Schema",
    "SchemaMismatchError",
    "Session",
    "StrategyRegistry",
    "api",
    "core",
    "error_ratio",
    "expected_error",
    "linalg",
    "optimize",
    "rootmse",
    "service",
    "squared_error",
    "workload",
    "__version__",
]
