"""Implicit matrix base classes (paper Section 4).

The select-measure-reconstruct paradigm represents workloads and strategies
as matrices over the full relational domain.  Materializing them explicitly
is infeasible in high dimensions (the paper's SF1+ workload matrix would be
22TB), so every matrix in this library is a :class:`Matrix` — a linear
operator that knows how to perform the handful of operations the paradigm
needs *without* densifying:

* ``matvec`` / ``rmatvec`` — products ``Ax`` and ``Aᵀy``;
* ``gram`` — the Gram matrix ``AᵀA`` (central to strategy optimization);
* ``sensitivity`` — ``sensitivity(p=1)`` is the maximum absolute column
  sum ``‖A‖₁``, the L1 sensitivity of the query set (paper Definition 6,
  Laplace calibration); ``sensitivity(p=2)`` is the maximum column
  Euclidean norm, the L2 sensitivity (Gaussian calibration);
* ``pinv`` — the Moore–Penrose pseudo-inverse, where a structured form
  exists (used by RECONSTRUCT, paper Section 7.2).

Subclasses override whichever operations have a structured fast path;
:class:`Dense` is the explicit fallback used for modest domain sizes.

Matrices in this library are **immutable**: once constructed, neither the
shape nor the numerical content of a :class:`Matrix` changes.  The base
class exploits this with a memoization layer: the expensive zero-argument
structural operations (``gram``, ``dense``, ``sensitivity``, ...) are
cached per instance, and the cache is inherited automatically by every
subclass override via ``__init_subclass__``.  Strategy optimization calls
``gram().dense()`` on the same workload factors hundreds of times across
random restarts; with the cache those recomputations collapse to dict
lookups.  Callers must treat returned arrays as read-only.

``set_cache_enabled(False)`` disables the layer globally (used by the
perf-regression benchmark to emulate the pre-cache code path, and useful
when memory is tighter than CPU).
"""

from __future__ import annotations

import functools

import numpy as np

#: Zero-argument structural operations memoized on every Matrix subclass.
_MEMOIZED_OPS = (
    "gram",
    "dense",
    "l1_sensitivity",
    "l2_sensitivity",
    "column_abs_sums",
    "constant_column_abs_sum",
    "column_norms",
    "constant_column_norm",
    "pinv",
    "trace",
    "sum",
    "gram_inverse",
)

_CACHE_ENABLED = True


def set_cache_enabled(enabled: bool) -> bool:
    """Globally enable/disable structural-operation memoization.

    Returns the previous setting.  Already-cached values are not evicted
    (they stay correct — matrices are immutable); disabling only stops new
    values from being stored or served.
    """
    global _CACHE_ENABLED
    previous = _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)
    return previous


def cache_enabled() -> bool:
    """Whether structural-operation memoization is currently on."""
    return _CACHE_ENABLED


def _memoized(fn):
    """Wrap a zero-argument structural method with per-instance caching."""
    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(self):
        if not _CACHE_ENABLED:
            return fn(self)
        memo = self.__dict__.get("_memo")
        if memo is None:
            memo = {}
            object.__setattr__(self, "_memo", memo)
        if name not in memo:
            memo[name] = fn(self)
        return memo[name]

    wrapper.__wrapped__ = fn
    wrapper._is_memoized = True
    return wrapper


class Matrix:
    """A real matrix represented implicitly as a linear operator.

    Attributes
    ----------
    shape:
        ``(m, n)`` — number of queries and domain size.
    dtype:
        Always ``numpy.float64`` in this library.
    """

    shape: tuple[int, int]
    dtype = np.float64

    def __init_subclass__(cls, **kwargs):
        # The @cached_property-style layer: any structural operation a
        # subclass defines (or redefines) is memoized automatically, so
        # structured subclasses inherit the caching behaviour without
        # annotating each override.
        super().__init_subclass__(**kwargs)
        for name in _MEMOIZED_OPS:
            fn = cls.__dict__.get(name)
            if fn is not None and callable(fn) and not getattr(
                fn, "_is_memoized", False
            ):
                setattr(cls, name, _memoized(fn))

    # -- memoization plumbing ---------------------------------------------
    def cache_get(self, key: str, default=None):
        """Read an arbitrary memoized value (used by workload decomposition
        and error caches that live outside this module).  Returns
        ``default`` while the cache is globally disabled, matching the
        memoized structural operations."""
        if not _CACHE_ENABLED:
            return default
        memo = self.__dict__.get("_memo")
        return default if memo is None else memo.get(key, default)

    def cache_set(self, key: str, value):
        """Store an arbitrary memoized value on this matrix (no-op when the
        cache is globally disabled).  Returns ``value`` for chaining."""
        if _CACHE_ENABLED:
            memo = self.__dict__.get("_memo")
            if memo is None:
                memo = {}
                object.__setattr__(self, "_memo", memo)
            memo[key] = value
        return value

    def __getstate__(self):
        # Memoized values can be large (dense Grams); rebuild them on the
        # receiving side instead of shipping them to worker processes.
        state = dict(self.__dict__)
        state.pop("_memo", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    # -- core linear operator interface ---------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Return ``A @ x`` for a vector ``x`` of length ``n``."""
        raise NotImplementedError

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """Return ``Aᵀ @ y`` for a vector ``y`` of length ``m``."""
        raise NotImplementedError

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """Return ``A @ X`` for a dense matrix ``X``.

        Generic fallback: one ``matvec`` per column into a preallocated
        output.  Structured subclasses (:class:`~repro.linalg.Kronecker`,
        :class:`~repro.linalg.VStack`, ...) override this with batched
        implementations that apply the whole right-hand side at once.
        """
        X = np.asarray(X, dtype=self.dtype)
        if X.ndim == 1:
            return self.matvec(X)
        out = np.empty((self.shape[0], X.shape[1]), dtype=self.dtype)
        for j in range(X.shape[1]):
            out[:, j] = self.matvec(X[:, j])
        return out

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        """Return ``Aᵀ @ Y`` for a dense matrix ``Y`` (column-by-column
        fallback; structured subclasses override with batched paths)."""
        Y = np.asarray(Y, dtype=self.dtype)
        if Y.ndim == 1:
            return self.rmatvec(Y)
        out = np.empty((self.shape[1], Y.shape[1]), dtype=self.dtype)
        for j in range(Y.shape[1]):
            out[:, j] = self.rmatvec(Y[:, j])
        return out

    # -- structured operations -------------------------------------------
    @_memoized
    def gram(self) -> "Matrix":
        """The Gram matrix ``AᵀA`` as a :class:`Matrix` (n x n)."""
        return Dense(self.dense().T @ self.dense())

    def sensitivity(self, p: int = 1) -> float:
        """Lp sensitivity of the query set.

        ``p=1`` is the maximum absolute column sum ``‖A‖₁`` (the Laplace
        mechanism's calibration, paper Definition 6); ``p=2`` is the
        maximum column Euclidean norm (the Gaussian mechanism's).  Both
        orders are memoized per instance through ``l1_sensitivity`` /
        ``l2_sensitivity``.
        """
        if p == 1:
            return self.l1_sensitivity()
        if p == 2:
            return self.l2_sensitivity()
        raise ValueError(f"sensitivity order p must be 1 or 2, got {p!r}")

    @_memoized
    def l1_sensitivity(self) -> float:
        """L1 sensitivity ``‖A‖₁`` = maximum absolute column sum."""
        return float(np.abs(self.dense()).sum(axis=0).max())

    @_memoized
    def l2_sensitivity(self) -> float:
        """L2 sensitivity = maximum column Euclidean norm."""
        c = self.constant_column_norm()
        if c is not None:
            return float(c)
        return float(self.column_norms().max())

    @_memoized
    def column_abs_sums(self) -> np.ndarray:
        """Vector of absolute column sums (length n).

        ``sensitivity`` is the max of this vector; baselines such as the
        Laplace Mechanism on stacked workloads need the full vector.
        """
        return np.abs(self.dense()).sum(axis=0)

    def constant_column_abs_sum(self) -> float | None:
        """The shared column absolute sum if all columns agree, else None.

        Lets huge stacked workloads (e.g. unions of marginals over 10^8
        domains) compute sensitivity without materializing a domain-sized
        vector per product.
        """
        return None

    @_memoized
    def column_norms(self) -> np.ndarray:
        """Vector of column Euclidean norms (length n) — the L2 analogue
        of ``column_abs_sums``; structured subclasses override with
        closed forms that never densify."""
        d = self.dense()
        return np.sqrt((d * d).sum(axis=0))

    def constant_column_norm(self) -> float | None:
        """The shared column Euclidean norm if all columns agree, else
        None (the L2 analogue of ``constant_column_abs_sum``)."""
        return None

    @_memoized
    def pinv(self) -> "Matrix":
        """Moore–Penrose pseudo-inverse ``A⁺`` as a :class:`Matrix`."""
        return Dense(np.linalg.pinv(self.dense()))

    def transpose(self) -> "Matrix":
        """The transpose ``Aᵀ`` as a :class:`Matrix`."""
        return _Transpose(self)

    @property
    def T(self) -> "Matrix":
        return self.transpose()

    @_memoized
    def dense(self) -> np.ndarray:
        """Materialize the matrix as a dense ndarray.

        Only safe for modest sizes; intended for tests, small problems,
        and leaf factors of Kronecker products.  The result is cached —
        treat it as read-only.
        """
        m, n = self.shape
        eye = np.eye(n, dtype=self.dtype)
        return self.matmat(eye)

    @_memoized
    def trace(self) -> float:
        """Matrix trace (square matrices only)."""
        m, n = self.shape
        if m != n:
            raise ValueError(f"trace of non-square matrix {self.shape}")
        return float(np.trace(self.dense()))

    @_memoized
    def sum(self) -> float:
        """Sum of all entries, computed via two mat-vecs."""
        ones_n = np.ones(self.shape[1], dtype=self.dtype)
        return float(self.matvec(ones_n).sum())

    # -- serialization -----------------------------------------------------
    def to_config(self) -> dict:
        """Structural config for persistence (see :mod:`repro.linalg.serialize`).

        Must be a nested dict of JSON scalars, lists, ndarrays and child
        configs, with ``"type"`` naming the class; ``from_config`` inverts
        it exactly.  Base matrices are not serializable by default.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support config serialization"
        )

    @classmethod
    def from_config(cls, config: dict) -> "Matrix":
        """Rebuild an instance from :meth:`to_config` output."""
        raise NotImplementedError(
            f"{cls.__name__} does not support config serialization"
        )

    # -- operator sugar ----------------------------------------------------
    def __matmul__(self, other):
        if isinstance(other, np.ndarray):
            return self.matmat(other)
        if isinstance(other, Matrix):
            return _Product(self, other)
        return NotImplemented

    def __rmul__(self, c):
        if np.isscalar(c):
            from .stack import Weighted

            return Weighted(self, float(c))
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(shape={self.shape}, "
            f"dtype={np.dtype(self.dtype).name})"
        )


class Dense(Matrix):
    """Explicitly materialized matrix — the fallback representation."""

    def __init__(self, array: np.ndarray):
        self.array = np.asarray(array, dtype=np.float64)
        if self.array.ndim != 2:
            raise ValueError(f"expected 2-D array, got shape {self.array.shape}")
        self.shape = self.array.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.array @ x

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self.array.T @ y

    def matmat(self, X: np.ndarray) -> np.ndarray:
        return self.array @ X

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        return self.array.T @ Y

    def gram(self) -> "Dense":
        return Dense(self.array.T @ self.array)

    def l1_sensitivity(self) -> float:
        return float(np.abs(self.array).sum(axis=0).max())

    def column_abs_sums(self) -> np.ndarray:
        return np.abs(self.array).sum(axis=0)

    def column_norms(self) -> np.ndarray:
        return np.sqrt((self.array * self.array).sum(axis=0))

    def pinv(self) -> "Dense":
        return Dense(np.linalg.pinv(self.array))

    def transpose(self) -> "Dense":
        return Dense(self.array.T)

    def dense(self) -> np.ndarray:
        return self.array

    def trace(self) -> float:
        m, n = self.shape
        if m != n:
            raise ValueError(f"trace of non-square matrix {self.shape}")
        return float(np.trace(self.array))

    def sum(self) -> float:
        return float(self.array.sum())

    def to_config(self) -> dict:
        return {"type": "Dense", "array": self.array}

    @classmethod
    def from_config(cls, config: dict) -> "Dense":
        return cls(np.asarray(config["array"], dtype=np.float64))


class _Transpose(Matrix):
    """Lazy transpose wrapper used by the default ``transpose``."""

    def __init__(self, base: Matrix):
        self.base = base
        self.shape = (base.shape[1], base.shape[0])

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.base.rmatvec(x)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self.base.matvec(y)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        return self.base.rmatmat(X)

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        return self.base.matmat(Y)

    def transpose(self) -> Matrix:
        return self.base

    def dense(self) -> np.ndarray:
        return self.base.dense().T


class _Product(Matrix):
    """Lazy matrix product ``A @ B`` of two implicit matrices."""

    def __init__(self, left: Matrix, right: Matrix):
        if left.shape[1] != right.shape[0]:
            raise ValueError(f"shape mismatch: {left.shape} @ {right.shape}")
        self.left = left
        self.right = right
        self.shape = (left.shape[0], right.shape[1])

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.left.matvec(self.right.matvec(x))

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self.right.rmatvec(self.left.rmatvec(y))

    def matmat(self, X: np.ndarray) -> np.ndarray:
        # Structured pseudo-inverses are lazy products (e.g. (MᵀM)⁻Mᵀ for
        # marginals, (AᵀA)⁻¹Aᵀ for p-Identity); batched RECONSTRUCT applies
        # them to whole right-hand-side matrices, so the product must
        # propagate matmat instead of falling back to a column loop.
        return self.left.matmat(self.right.matmat(X))

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        return self.right.rmatmat(self.left.rmatmat(Y))

    def transpose(self) -> Matrix:
        return _Product(self.right.T, self.left.T)

    def dense(self) -> np.ndarray:
        return self.left.dense() @ self.right.dense()
