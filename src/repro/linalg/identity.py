"""Building-block matrices: Identity, Ones and Total (paper Section 3.3).

``Identity(n)`` is the vectorized ``Identity_A`` predicate set: one counting
query per domain element.  ``Total(n)`` (a 1 x n matrix of ones) is the
vectorized ``Total_A`` predicate set: the single query counting every
record.  ``Ones(m, n)`` generalizes the all-ones matrix; it appears as
``1 = TᵀT`` inside the marginals algebra of Section 6.3.
"""

from __future__ import annotations

import numpy as np

from .base import Dense, Matrix


class Identity(Matrix):
    """The n x n identity matrix — the ``Identity`` predicate set."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self.shape = (n, n)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=self.dtype).copy()

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return np.asarray(y, dtype=self.dtype).copy()

    def matmat(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(X, dtype=self.dtype).copy()

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        return np.asarray(Y, dtype=self.dtype).copy()

    def gram(self) -> "Identity":
        return Identity(self.n)

    def l1_sensitivity(self) -> float:
        return 1.0

    def column_abs_sums(self) -> np.ndarray:
        return np.ones(self.n)

    def constant_column_abs_sum(self) -> float:
        return 1.0

    def column_norms(self) -> np.ndarray:
        return np.ones(self.n)

    def constant_column_norm(self) -> float:
        return 1.0

    def pinv(self) -> "Identity":
        return Identity(self.n)

    def transpose(self) -> "Identity":
        return self

    def dense(self) -> np.ndarray:
        return np.eye(self.n)

    def trace(self) -> float:
        return float(self.n)

    def sum(self) -> float:
        return float(self.n)

    def to_config(self) -> dict:
        return {"type": "Identity", "n": self.n}

    @classmethod
    def from_config(cls, config: dict) -> "Identity":
        return cls(int(config["n"]))

    def __repr__(self) -> str:
        return f"Identity(n={self.n}, dtype={self.dtype.__name__})"


class Ones(Matrix):
    """The m x n all-ones matrix.

    ``Ones(1, n)`` is the Total predicate set; ``Ones(n, n)`` is the
    ``1 = TᵀT`` building block of the marginals parameterization.
    """

    def __init__(self, m: int, n: int):
        if m <= 0 or n <= 0:
            raise ValueError("dimensions must be positive")
        self.shape = (m, n)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return np.full(self.shape[0], float(np.sum(x)))

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return np.full(self.shape[1], float(np.sum(y)))

    def matmat(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=self.dtype)
        if X.ndim == 1:
            return self.matvec(X)
        col_sums = X.sum(axis=0)
        return np.tile(col_sums, (self.shape[0], 1))

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        Y = np.asarray(Y, dtype=self.dtype)
        if Y.ndim == 1:
            return self.rmatvec(Y)
        return np.tile(Y.sum(axis=0), (self.shape[1], 1))

    def gram(self) -> "Ones":
        # (1_{m x n})ᵀ (1_{m x n}) = m * 1_{n x n}
        from .stack import Weighted

        m, n = self.shape
        if m == 1:
            return Ones(n, n)
        return Weighted(Ones(n, n), float(m))  # type: ignore[return-value]

    def l1_sensitivity(self) -> float:
        return float(self.shape[0])

    def column_abs_sums(self) -> np.ndarray:
        return np.full(self.shape[1], float(self.shape[0]))

    def constant_column_abs_sum(self) -> float:
        return float(self.shape[0])

    def column_norms(self) -> np.ndarray:
        return np.full(self.shape[1], float(np.sqrt(self.shape[0])))

    def constant_column_norm(self) -> float:
        return float(np.sqrt(self.shape[0]))

    def pinv(self) -> Matrix:
        m, n = self.shape
        return Dense(np.full((n, m), 1.0 / (m * n)))

    def transpose(self) -> "Ones":
        return Ones(self.shape[1], self.shape[0])

    def dense(self) -> np.ndarray:
        return np.ones(self.shape)

    def trace(self) -> float:
        m, n = self.shape
        if m != n:
            raise ValueError(f"trace of non-square matrix {self.shape}")
        return float(n)

    def sum(self) -> float:
        return float(self.shape[0] * self.shape[1])

    def to_config(self) -> dict:
        return {"type": "Ones", "m": self.shape[0], "n": self.shape[1]}

    @classmethod
    def from_config(cls, config: dict) -> "Ones":
        return cls(int(config["m"]), int(config["n"]))

    def __repr__(self) -> str:
        m, n = self.shape
        return f"Ones({m} x {n}, dtype={self.dtype.__name__})"


class Diagonal(Matrix):
    """The n x n diagonal matrix ``diag(d)``.

    Appears in structured normal-equation solvers: the middle factor of
    the two-term Kronecker gram inverse ``(⊗E)ᵀ diag(1/(1+⊗λ)) (⊗E)`` is
    a pure per-coordinate scaling, so applying it is width-invariant
    elementwise work.
    """

    def __init__(self, d: np.ndarray):
        self.d = np.asarray(d, dtype=np.float64)
        if self.d.ndim != 1:
            raise ValueError(f"expected a 1-D diagonal, got shape {self.d.shape}")
        n = self.d.shape[0]
        self.shape = (n, n)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.d * np.asarray(x, dtype=self.dtype)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self.d * np.asarray(y, dtype=self.dtype)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=self.dtype)
        if X.ndim == 1:
            return self.matvec(X)
        return self.d[:, None] * X

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        return self.matmat(Y)

    def gram(self) -> "Diagonal":
        return Diagonal(self.d**2)

    def l1_sensitivity(self) -> float:
        return float(np.abs(self.d).max())

    def column_abs_sums(self) -> np.ndarray:
        return np.abs(self.d)

    def column_norms(self) -> np.ndarray:
        return np.abs(self.d)

    def pinv(self) -> "Diagonal":
        inv = np.zeros_like(self.d)
        nz = self.d != 0
        inv[nz] = 1.0 / self.d[nz]
        return Diagonal(inv)

    def transpose(self) -> "Diagonal":
        return self

    def dense(self) -> np.ndarray:
        return np.diag(self.d)

    def trace(self) -> float:
        return float(self.d.sum())

    def sum(self) -> float:
        return float(self.d.sum())

    def to_config(self) -> dict:
        return {"type": "Diagonal", "d": self.d}

    @classmethod
    def from_config(cls, config: dict) -> "Diagonal":
        return cls(np.asarray(config["d"], dtype=np.float64))

    def __repr__(self) -> str:
        return f"Diagonal(n={self.shape[0]}, dtype={self.dtype.__name__})"


def Total(n: int) -> Ones:
    """The ``Total`` predicate set on a domain of size n: a 1 x n row of ones."""
    return Ones(1, n)
