"""The marginals algebra of paper Section 6.3 and Appendix A.4.

A marginal over attribute subset S is the Kronecker product with Identity
on attributes in S and Total elsewhere.  Indexing subsets by integers
``a ∈ [2^d]`` (bit i of ``a`` set means attribute i is *kept*, matching the
paper's ``C(a)``), the Gram matrix of marginal a is::

    C(a) = ⊗_i [ 1(a_i = 0) + I(a_i = 1) ]

where ``1`` is the all-ones n_i x n_i matrix.  Weighted sums
``G(v) = Σ_a v_a C(a)`` are closed under multiplication (Proposition 4)::

    G(u) G(v) = G(X(u) v)

with ``X(u)`` an upper-triangular 2^d x 2^d matrix.  This lets OPT_M
evaluate objectives, invert Gram matrices, and form pseudo-inverses in
O(4^d) time, independent of the domain sizes n_i.

Bit convention: attribute ``i`` (0-based position in the domain) maps to
bit ``d-1-i``, so the binary string of ``a`` reads left-to-right in
attribute order (Example 9: ``I ⊗ T ⊗ I`` ↔ ``C(101₂) = C(5)``).
"""

from __future__ import annotations

import functools

import numpy as np
from scipy import linalg as sla
from scipy import sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from .base import Matrix
from .identity import Identity, Ones
from .kron import Kronecker
from .stack import Sum, VStack, Weighted


def attribute_bit(a: int, i: int, d: int) -> int:
    """Bit of subset-index ``a`` for attribute position ``i`` (0-based)."""
    return (a >> (d - 1 - i)) & 1


def subset_to_index(subset, attributes) -> int:
    """Map an attribute subset (names or positions) to its integer index."""
    d = len(attributes)
    positions = []
    lookup = {a: i for i, a in enumerate(attributes)}
    for s in subset:
        positions.append(lookup[s] if s in lookup else int(s))
    a = 0
    for i in positions:
        a |= 1 << (d - 1 - i)
    return a


def index_to_subset(a: int, attributes) -> tuple:
    """Inverse of :func:`subset_to_index`: the kept attributes of index a."""
    d = len(attributes)
    return tuple(attributes[i] for i in range(d) if attribute_bit(a, i, d))


def marginal_c_matrix(sizes, a: int) -> Kronecker:
    """The Gram building block ``C(a)`` as an implicit Kronecker product."""
    d = len(sizes)
    factors: list[Matrix] = []
    for i, n in enumerate(sizes):
        factors.append(Identity(n) if attribute_bit(a, i, d) else Ones(n, n))
    return Kronecker(factors)


def marginal_query_matrix(sizes, a: int) -> Kronecker:
    """The query matrix of marginal ``a``: Identity on kept attributes, Total
    on the rest.  Sensitivity 1."""
    d = len(sizes)
    factors: list[Matrix] = []
    for i, n in enumerate(sizes):
        factors.append(Identity(n) if attribute_bit(a, i, d) else Ones(1, n))
    return Kronecker(factors)


#: Largest subset-lattice size (2^d) for which the O(4^d) pairwise index
#: tables are materialized.  At the limit (d = 10) the three tables cost
#: ~24 MB; beyond it the algebra falls back to the loop/sparse code paths.
_DENSE_TABLE_LIMIT = 1024

_DENSE_TABLES_ENABLED = True


def set_dense_algebra_enabled(enabled: bool) -> bool:
    """Toggle the vectorized dense-table fast path of the marginals algebra.

    Returns the previous setting.  Used by the perf-regression benchmark to
    time the pre-vectorization (sparse/loop) code path, and as an escape
    hatch when the O(4^d) tables are too large for the available memory.
    """
    global _DENSE_TABLES_ENABLED
    previous = _DENSE_TABLES_ENABLED
    _DENSE_TABLES_ENABLED = bool(enabled)
    if previous and not _DENSE_TABLES_ENABLED:
        # Free already-materialized tables too — disabling is the memory
        # escape hatch, so it must actually release the O(4^d) arrays.
        get_algebra.cache_clear()
    return previous


@functools.lru_cache(maxsize=8)
def get_algebra(sizes: tuple) -> "MarginalsAlgebra":
    """Shared :class:`MarginalsAlgebra` instance for a domain's sizes.

    OPT_M and the marginal error paths construct the algebra on every
    call; the instance (and its lazily-built O(4^d) tables) depends only
    on the attribute sizes, so it is cached process-wide.  The cache is
    deliberately small — near the d = 10 table limit each entry can pin
    ~24 MB — and is cleared by ``set_dense_algebra_enabled(False)``.
    """
    return MarginalsAlgebra(sizes)


class MarginalsAlgebra:
    """Closed algebra of ``G(v) = Σ_a v_a C(a)`` for a fixed domain.

    Precomputes the scalar table ``C̄(k) = Π_i [n_i if k_i = 0 else 1]``
    (Proposition 3's constant) and exposes the product, inverse and adjoint
    operations needed by OPT_M — all in O(4^d) vectorized work.

    For small subset lattices (``2^d <= 1024``) the algebra additionally
    materializes the pairwise index tables ``a & b`` and ``C̄(a|b)`` once,
    turning every ``X(u)`` construction, triangular solve and OPT_M
    gradient into a handful of dense vectorized operations instead of
    per-subset Python loops over scipy.sparse matrices — the single
    hottest path of OPT_M restarts.
    """

    def __init__(self, sizes):
        self.sizes = tuple(int(n) for n in sizes)
        self.d = len(self.sizes)
        if self.d > 16:
            raise ValueError("marginals algebra limited to d <= 16 attributes")
        self.size = 1 << self.d
        ks = np.arange(self.size)
        cbar = np.ones(self.size)
        for i, n in enumerate(self.sizes):
            zero_bit = ((ks >> (self.d - 1 - i)) & 1) == 0
            cbar[zero_bit] *= n
        self.cbar = cbar  # C̄(k) lookup, length 2^d
        self._tables = None  # lazily-built pairwise index tables

    # -- pairwise index tables --------------------------------------------
    @property
    def has_dense_tables(self) -> bool:
        """Whether the vectorized O(4^d)-table fast path is available."""
        return _DENSE_TABLES_ENABLED and self.size <= _DENSE_TABLE_LIMIT

    def _pair_tables(self):
        """``(AND, CBAR_OR, FLAT)`` with ``AND[a,b] = a & b``,
        ``CBAR_OR[a,b] = C̄(a|b)`` and ``FLAT = (AND * 2^d + b).ravel()``."""
        if self._tables is None:
            a = np.arange(self.size)
            and_table = a[:, None] & a[None, :]
            cbar_or = self.cbar[a[:, None] | a[None, :]]
            flat = (and_table * self.size + a[None, :]).ravel()
            self._tables = (and_table, cbar_or, flat)
        return self._tables

    # -- products ---------------------------------------------------------
    def multiply_weights(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Weights w with ``G(u) G(v) = G(w)`` — i.e. ``w = X(u) v``."""
        u = np.asarray(u, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        if self.has_dense_tables:
            and_table, cbar_or, _ = self._pair_tables()
            return np.bincount(
                and_table.ravel(),
                weights=(np.outer(u, v) * cbar_or).ravel(),
                minlength=self.size,
            )
        a = np.arange(self.size)
        w = np.zeros(self.size)
        for b in range(self.size):
            if v[b] == 0.0:
                continue
            vals = u * self.cbar[a | b] * v[b]
            w += np.bincount(a & b, weights=vals, minlength=self.size)
        return w

    def x_matrix(self, u: np.ndarray) -> sp.csr_matrix:
        """The upper-triangular ``X(u)`` with ``X(u) v = weights of G(u)G(v)``.

        ``X(u)[k, b] = Σ_{a : a&b = k} u_a C̄(a|b)``; nonzero only when k is
        a submask of b, hence upper triangular in integer order.
        """
        u = np.asarray(u, dtype=np.float64)
        a = np.arange(self.size)
        data, rows, cols = [], [], []
        for b in range(self.size):
            col = np.bincount(a & b, weights=u * self.cbar[a | b], minlength=self.size)
            nz = np.nonzero(col)[0]
            rows.append(nz)
            cols.append(np.full(len(nz), b))
            data.append(col[nz])
        X = sp.coo_matrix(
            (np.concatenate(data), (np.concatenate(rows), np.concatenate(cols))),
            shape=(self.size, self.size),
        )
        return X.tocsr()

    def x_matrix_dense(self, u: np.ndarray) -> np.ndarray:
        """``X(u)`` as a dense ndarray via one vectorized scatter-add.

        Requires the pairwise tables: the whole matrix is a single
        ``bincount`` over the flattened ``(a&b, b)`` index table with
        weights ``u_a C̄(a|b)`` — no Python loop over subsets.
        """
        u = np.asarray(u, dtype=np.float64)
        _, cbar_or, flat = self._pair_tables()
        return np.bincount(
            flat, weights=(u[:, None] * cbar_or).ravel(),
            minlength=self.size * self.size,
        ).reshape(self.size, self.size)

    def x_operator(self, u: np.ndarray):
        """``X(u)`` in the cheapest available representation (dense/sparse)."""
        if self.has_dense_tables:
            return self.x_matrix_dense(u)
        return self.x_matrix(u)

    def solve_upper(self, X, rhs: np.ndarray) -> np.ndarray:
        """Back-substitution ``X v = rhs`` for upper-triangular ``X`` from
        :meth:`x_operator` (dense or sparse)."""
        rhs = np.asarray(rhs, dtype=np.float64)
        if isinstance(X, np.ndarray):
            return sla.solve_triangular(X, rhs, lower=False, check_finite=False)
        return spsolve_triangular(X, rhs, lower=False)

    def solve_lower_t(self, X, rhs: np.ndarray) -> np.ndarray:
        """Forward-substitution ``Xᵀ φ = rhs`` (lower-triangular transpose)."""
        rhs = np.asarray(rhs, dtype=np.float64)
        if isinstance(X, np.ndarray):
            return sla.solve_triangular(
                X, rhs, lower=False, trans="T", check_finite=False
            )
        return spsolve_triangular(X.T.tocsr(), rhs, lower=True)

    def grad_dot(self, phi: np.ndarray, v: np.ndarray) -> np.ndarray:
        """OPT_M gradient kernel: ``out[b] = Σ_c φ(b&c) C̄(b|c) v_c``.

        One fancy-indexed matrix-vector product with the pairwise tables;
        falls back to the per-subset loop above the table size limit.
        """
        phi = np.asarray(phi, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        if self.has_dense_tables:
            and_table, cbar_or, _ = self._pair_tables()
            return (phi[and_table] * cbar_or) @ v
        b = np.arange(self.size)
        out = np.zeros(self.size)
        for c in range(self.size):
            if v[c] == 0.0:
                continue
            out += phi[b & c] * self.cbar[b | c] * v[c]
        return out

    # -- inverses -----------------------------------------------------------
    def ginv_weights(self, u: np.ndarray) -> np.ndarray:
        """Weights v with ``G(u) G(v) = I`` (requires u_full > 0).

        Solves the triangular system ``X(u) v = e`` where e selects the full
        index (since ``C(2^d - 1) = I``).  With the full-contingency weight
        strictly positive, X(u) has a positive diagonal and the solve is a
        clean back-substitution.
        """
        u = np.asarray(u, dtype=np.float64)
        if u[-1] <= 0:
            raise ValueError(
                "G(u) inverse requires positive weight on the full marginal"
            )
        e = np.zeros(self.size)
        e[-1] = 1.0
        return self.solve_upper(self.x_operator(u), e)

    def ginv_weights_general(self, u: np.ndarray) -> np.ndarray:
        """Weights v of a *generalized* inverse: ``G(u)G(v)G(u) = G(u)``.

        Because ``multiply_weights`` is symmetric in its arguments (the
        C(a) matrices commute), the g-inverse condition reduces to the
        linear system ``X(u)² v = u``, solved in the least-squares sense.
        A g-inverse suffices both for error evaluation (``tr[G⁻ WᵀW]`` is
        invariant over g-inverses when W is supported) and for computing
        *a* least-squares solution in reconstruction.
        """
        u = np.asarray(u, dtype=np.float64)
        X = self.x_operator(u)
        X2 = X @ X if isinstance(X, np.ndarray) else (X @ X).toarray()
        v, *_ = np.linalg.lstsq(X2, u, rcond=None)
        return v

    def adjoint_solve(self, u: np.ndarray, delta: np.ndarray) -> np.ndarray:
        """Solve ``X(u)ᵀ φ = δ`` (used for the OPT_M analytic gradient)."""
        u = np.asarray(u, dtype=np.float64)
        return self.solve_lower_t(
            self.x_operator(u), np.asarray(delta, dtype=np.float64)
        )

    def gram_weights(self, theta: np.ndarray) -> np.ndarray:
        """Weights u with ``M(θ)ᵀ M(θ) = G(u)``: simply ``u = θ²``."""
        theta = np.asarray(theta, dtype=np.float64)
        return theta**2


class MarginalsGram(Matrix):
    """``G(v) = Σ_a v_a C(a)`` as an implicit N x N matrix.

    Used to apply ``(MᵀM)⁺`` during reconstruction without materializing
    anything larger than the data vector.
    """

    def __init__(self, sizes, weights: np.ndarray):
        self.sizes = tuple(int(n) for n in sizes)
        self.weights = np.asarray(weights, dtype=np.float64)
        d = len(self.sizes)
        if self.weights.shape != (1 << d,):
            raise ValueError(f"expected {1 << d} weights, got {self.weights.shape}")
        N = int(np.prod(self.sizes))
        self.shape = (N, N)

    def _terms(self):
        # Build the weighted C(a) terms once per instance: every batched
        # pinv application re-enters matvec/matmat, and rebuilding the
        # Kronecker objects would discard their memoized structure.
        terms = self.cache_get("gram_terms")
        if terms is None:
            terms = self.cache_set(
                "gram_terms",
                [
                    Weighted(marginal_c_matrix(self.sizes, a), float(v))
                    for a, v in enumerate(self.weights)
                    if v != 0.0
                ],
            )
        return terms

    def matvec(self, x: np.ndarray) -> np.ndarray:
        out = np.zeros(self.shape[0])
        for term in self._terms():
            out += term.matvec(x)
        return out

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self.matvec(y)  # G(v) is symmetric

    def matmat(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=self.dtype)
        if X.ndim == 1:
            return self.matvec(X)
        out = np.zeros((self.shape[0], X.shape[1]))
        for term in self._terms():
            out += term.matmat(X)
        return out

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        return self.matmat(Y)  # G(v) is symmetric

    def transpose(self) -> "MarginalsGram":
        return self

    def dense(self) -> np.ndarray:
        terms = list(self._terms())
        if not terms:
            return np.zeros(self.shape)
        return Sum(terms).dense()

    def trace(self) -> float:
        N = self.shape[0]
        # tr C(a) = Π_i (n_i) over kept bits... tr(1_{n x n}) = n, tr(I_n) = n,
        # so tr C(a) = N for every a.
        return float(self.weights.sum() * N)

    def to_config(self) -> dict:
        return {
            "type": "MarginalsGram",
            "sizes": list(self.sizes),
            "weights": self.weights,
        }

    @classmethod
    def from_config(cls, config: dict) -> "MarginalsGram":
        return cls(
            config["sizes"], np.asarray(config["weights"], dtype=np.float64)
        )

    def __repr__(self) -> str:
        active = int(np.count_nonzero(self.weights))
        return (
            f"MarginalsGram(d={len(self.sizes)}, active={active}, "
            f"shape={self.shape}, dtype={self.dtype.__name__})"
        )


class MarginalsStrategy(Matrix):
    """The strategy ``M(θ)``: all 2^d marginals stacked with weights θ.

    Only marginals with θ_a > 0 contribute rows.  Sensitivity is Σ θ_a
    (each marginal has sensitivity 1; column sums add across the stack).
    """

    def __init__(self, sizes, theta: np.ndarray):
        self.sizes = tuple(int(n) for n in sizes)
        self.theta = np.asarray(theta, dtype=np.float64)
        d = len(self.sizes)
        if self.theta.shape != (1 << d,):
            raise ValueError(f"expected {1 << d} weights, got {self.theta.shape}")
        if np.any(self.theta < 0):
            raise ValueError("marginal weights must be non-negative")
        self.active = [int(a) for a in np.nonzero(self.theta)[0]]
        if not self.active:
            raise ValueError("at least one marginal weight must be positive")
        self._stack = VStack(
            [
                Weighted(marginal_query_matrix(self.sizes, a), float(self.theta[a]))
                for a in self.active
            ]
        )
        self.shape = self._stack.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._stack.matvec(x)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self._stack.rmatvec(y)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        return self._stack.matmat(X)

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        return self._stack.rmatmat(Y)

    def gram(self) -> MarginalsGram:
        return MarginalsGram(self.sizes, self.theta**2)

    def l1_sensitivity(self) -> float:
        return float(self.theta.sum())

    def l2_sensitivity(self) -> float:
        # Every marginal query matrix has exactly one 1 per column, so
        # marginal a contributes θ_a² to every column's squared norm.
        return float(np.sqrt((self.theta**2).sum()))

    def column_abs_sums(self) -> np.ndarray:
        return np.full(self.shape[1], float(self.theta.sum()))

    def column_norms(self) -> np.ndarray:
        return np.full(self.shape[1], self.l2_sensitivity())

    def constant_column_norm(self) -> float:
        return self.l2_sensitivity()

    def pinv(self) -> Matrix:
        """``(MᵀM)⁻ Mᵀ`` with the Gram inverse from the algebra.

        When the full-contingency weight is positive the Gram is
        invertible and this is the exact Moore–Penrose pseudo-inverse.
        Otherwise a *generalized* inverse is used: the result still
        produces a least-squares solution (and identical answers for any
        supported workload), though not necessarily the minimum-norm one.
        """
        alg = get_algebra(self.sizes)
        if self.theta[-1] > 0:
            v = alg.ginv_weights(self.theta**2)
        else:
            v = alg.ginv_weights_general(self.theta**2)
        return MarginalsGram(self.sizes, v) @ self._stack.T

    def dense(self) -> np.ndarray:
        return self._stack.dense()

    def to_config(self) -> dict:
        return {
            "type": "MarginalsStrategy",
            "sizes": list(self.sizes),
            "theta": self.theta,
        }

    @classmethod
    def from_config(cls, config: dict) -> "MarginalsStrategy":
        return cls(
            config["sizes"], np.asarray(config["theta"], dtype=np.float64)
        )

    def __repr__(self) -> str:
        return (
            f"MarginalsStrategy(d={len(self.sizes)}, "
            f"active={len(self.active)}, shape={self.shape}, "
            f"dtype={self.dtype.__name__})"
        )
