"""The marginals algebra of paper Section 6.3 and Appendix A.4.

A marginal over attribute subset S is the Kronecker product with Identity
on attributes in S and Total elsewhere.  Indexing subsets by integers
``a ∈ [2^d]`` (bit i of ``a`` set means attribute i is *kept*, matching the
paper's ``C(a)``), the Gram matrix of marginal a is::

    C(a) = ⊗_i [ 1(a_i = 0) + I(a_i = 1) ]

where ``1`` is the all-ones n_i x n_i matrix.  Weighted sums
``G(v) = Σ_a v_a C(a)`` are closed under multiplication (Proposition 4)::

    G(u) G(v) = G(X(u) v)

with ``X(u)`` an upper-triangular 2^d x 2^d matrix.  This lets OPT_M
evaluate objectives, invert Gram matrices, and form pseudo-inverses in
O(4^d) time, independent of the domain sizes n_i.

Bit convention: attribute ``i`` (0-based position in the domain) maps to
bit ``d-1-i``, so the binary string of ``a`` reads left-to-right in
attribute order (Example 9: ``I ⊗ T ⊗ I`` ↔ ``C(101₂) = C(5)``).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from .base import Matrix
from .identity import Identity, Ones
from .kron import Kronecker
from .stack import Sum, VStack, Weighted


def attribute_bit(a: int, i: int, d: int) -> int:
    """Bit of subset-index ``a`` for attribute position ``i`` (0-based)."""
    return (a >> (d - 1 - i)) & 1


def subset_to_index(subset, attributes) -> int:
    """Map an attribute subset (names or positions) to its integer index."""
    d = len(attributes)
    positions = []
    lookup = {a: i for i, a in enumerate(attributes)}
    for s in subset:
        positions.append(lookup[s] if s in lookup else int(s))
    a = 0
    for i in positions:
        a |= 1 << (d - 1 - i)
    return a


def index_to_subset(a: int, attributes) -> tuple:
    """Inverse of :func:`subset_to_index`: the kept attributes of index a."""
    d = len(attributes)
    return tuple(attributes[i] for i in range(d) if attribute_bit(a, i, d))


def marginal_c_matrix(sizes, a: int) -> Kronecker:
    """The Gram building block ``C(a)`` as an implicit Kronecker product."""
    d = len(sizes)
    factors: list[Matrix] = []
    for i, n in enumerate(sizes):
        factors.append(Identity(n) if attribute_bit(a, i, d) else Ones(n, n))
    return Kronecker(factors)


def marginal_query_matrix(sizes, a: int) -> Kronecker:
    """The query matrix of marginal ``a``: Identity on kept attributes, Total
    on the rest.  Sensitivity 1."""
    d = len(sizes)
    factors: list[Matrix] = []
    for i, n in enumerate(sizes):
        factors.append(Identity(n) if attribute_bit(a, i, d) else Ones(1, n))
    return Kronecker(factors)


class MarginalsAlgebra:
    """Closed algebra of ``G(v) = Σ_a v_a C(a)`` for a fixed domain.

    Precomputes the scalar table ``C̄(k) = Π_i [n_i if k_i = 0 else 1]``
    (Proposition 3's constant) and exposes the product, inverse and adjoint
    operations needed by OPT_M — all in O(4^d) vectorized work.
    """

    def __init__(self, sizes):
        self.sizes = tuple(int(n) for n in sizes)
        self.d = len(self.sizes)
        if self.d > 16:
            raise ValueError("marginals algebra limited to d <= 16 attributes")
        self.size = 1 << self.d
        ks = np.arange(self.size)
        cbar = np.ones(self.size)
        for i, n in enumerate(self.sizes):
            zero_bit = ((ks >> (self.d - 1 - i)) & 1) == 0
            cbar[zero_bit] *= n
        self.cbar = cbar  # C̄(k) lookup, length 2^d

    # -- products ---------------------------------------------------------
    def multiply_weights(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Weights w with ``G(u) G(v) = G(w)`` — i.e. ``w = X(u) v``."""
        u = np.asarray(u, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        a = np.arange(self.size)
        w = np.zeros(self.size)
        for b in range(self.size):
            if v[b] == 0.0:
                continue
            vals = u * self.cbar[a | b] * v[b]
            w += np.bincount(a & b, weights=vals, minlength=self.size)
        return w

    def x_matrix(self, u: np.ndarray) -> sp.csr_matrix:
        """The upper-triangular ``X(u)`` with ``X(u) v = weights of G(u)G(v)``.

        ``X(u)[k, b] = Σ_{a : a&b = k} u_a C̄(a|b)``; nonzero only when k is
        a submask of b, hence upper triangular in integer order.
        """
        u = np.asarray(u, dtype=np.float64)
        a = np.arange(self.size)
        data, rows, cols = [], [], []
        for b in range(self.size):
            col = np.bincount(a & b, weights=u * self.cbar[a | b], minlength=self.size)
            nz = np.nonzero(col)[0]
            rows.append(nz)
            cols.append(np.full(len(nz), b))
            data.append(col[nz])
        X = sp.coo_matrix(
            (np.concatenate(data), (np.concatenate(rows), np.concatenate(cols))),
            shape=(self.size, self.size),
        )
        return X.tocsr()

    # -- inverses -----------------------------------------------------------
    def ginv_weights(self, u: np.ndarray) -> np.ndarray:
        """Weights v with ``G(u) G(v) = I`` (requires u_full > 0).

        Solves the triangular system ``X(u) v = e`` where e selects the full
        index (since ``C(2^d - 1) = I``).  With the full-contingency weight
        strictly positive, X(u) has a positive diagonal and the solve is a
        clean back-substitution.
        """
        u = np.asarray(u, dtype=np.float64)
        if u[-1] <= 0:
            raise ValueError(
                "G(u) inverse requires positive weight on the full marginal"
            )
        X = self.x_matrix(u)
        e = np.zeros(self.size)
        e[-1] = 1.0
        return spsolve_triangular(X, e, lower=False)

    def ginv_weights_general(self, u: np.ndarray) -> np.ndarray:
        """Weights v of a *generalized* inverse: ``G(u)G(v)G(u) = G(u)``.

        Because ``multiply_weights`` is symmetric in its arguments (the
        C(a) matrices commute), the g-inverse condition reduces to the
        linear system ``X(u)² v = u``, solved in the least-squares sense.
        A g-inverse suffices both for error evaluation (``tr[G⁻ WᵀW]`` is
        invariant over g-inverses when W is supported) and for computing
        *a* least-squares solution in reconstruction.
        """
        u = np.asarray(u, dtype=np.float64)
        X = self.x_matrix(u)
        X2 = (X @ X).toarray()
        v, *_ = np.linalg.lstsq(X2, u, rcond=None)
        return v

    def adjoint_solve(self, u: np.ndarray, delta: np.ndarray) -> np.ndarray:
        """Solve ``X(u)ᵀ φ = δ`` (used for the OPT_M analytic gradient)."""
        X = self.x_matrix(np.asarray(u, dtype=np.float64))
        return spsolve_triangular(
            X.T.tocsr(), np.asarray(delta, dtype=np.float64), lower=True
        )

    def gram_weights(self, theta: np.ndarray) -> np.ndarray:
        """Weights u with ``M(θ)ᵀ M(θ) = G(u)``: simply ``u = θ²``."""
        theta = np.asarray(theta, dtype=np.float64)
        return theta**2


class MarginalsGram(Matrix):
    """``G(v) = Σ_a v_a C(a)`` as an implicit N x N matrix.

    Used to apply ``(MᵀM)⁺`` during reconstruction without materializing
    anything larger than the data vector.
    """

    def __init__(self, sizes, weights: np.ndarray):
        self.sizes = tuple(int(n) for n in sizes)
        self.weights = np.asarray(weights, dtype=np.float64)
        d = len(self.sizes)
        if self.weights.shape != (1 << d,):
            raise ValueError(f"expected {1 << d} weights, got {self.weights.shape}")
        N = int(np.prod(self.sizes))
        self.shape = (N, N)

    def _terms(self):
        for a, v in enumerate(self.weights):
            if v != 0.0:
                yield Weighted(marginal_c_matrix(self.sizes, a), float(v))

    def matvec(self, x: np.ndarray) -> np.ndarray:
        out = np.zeros(self.shape[0])
        for term in self._terms():
            out += term.matvec(x)
        return out

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self.matvec(y)  # G(v) is symmetric

    def transpose(self) -> "MarginalsGram":
        return self

    def dense(self) -> np.ndarray:
        terms = list(self._terms())
        if not terms:
            return np.zeros(self.shape)
        return Sum(terms).dense()

    def trace(self) -> float:
        N = self.shape[0]
        alg = MarginalsAlgebra(self.sizes)
        # tr C(a) = Π_i (n_i) over kept bits... tr(1_{n x n}) = n, tr(I_n) = n,
        # so tr C(a) = N for every a.
        return float(self.weights.sum() * N)


class MarginalsStrategy(Matrix):
    """The strategy ``M(θ)``: all 2^d marginals stacked with weights θ.

    Only marginals with θ_a > 0 contribute rows.  Sensitivity is Σ θ_a
    (each marginal has sensitivity 1; column sums add across the stack).
    """

    def __init__(self, sizes, theta: np.ndarray):
        self.sizes = tuple(int(n) for n in sizes)
        self.theta = np.asarray(theta, dtype=np.float64)
        d = len(self.sizes)
        if self.theta.shape != (1 << d,):
            raise ValueError(f"expected {1 << d} weights, got {self.theta.shape}")
        if np.any(self.theta < 0):
            raise ValueError("marginal weights must be non-negative")
        self.active = [int(a) for a in np.nonzero(self.theta)[0]]
        if not self.active:
            raise ValueError("at least one marginal weight must be positive")
        self._stack = VStack(
            [
                Weighted(marginal_query_matrix(self.sizes, a), float(self.theta[a]))
                for a in self.active
            ]
        )
        self.shape = self._stack.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._stack.matvec(x)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self._stack.rmatvec(y)

    def gram(self) -> MarginalsGram:
        return MarginalsGram(self.sizes, self.theta**2)

    def sensitivity(self) -> float:
        return float(self.theta.sum())

    def column_abs_sums(self) -> np.ndarray:
        return np.full(self.shape[1], float(self.theta.sum()))

    def pinv(self) -> Matrix:
        """``(MᵀM)⁻ Mᵀ`` with the Gram inverse from the algebra.

        When the full-contingency weight is positive the Gram is
        invertible and this is the exact Moore–Penrose pseudo-inverse.
        Otherwise a *generalized* inverse is used: the result still
        produces a least-squares solution (and identical answers for any
        supported workload), though not necessarily the minimum-norm one.
        """
        alg = MarginalsAlgebra(self.sizes)
        if self.theta[-1] > 0:
            v = alg.ginv_weights(self.theta**2)
        else:
            v = alg.ginv_weights_general(self.theta**2)
        return MarginalsGram(self.sizes, v) @ self._stack.T

    def dense(self) -> np.ndarray:
        return self._stack.dense()

    def __repr__(self) -> str:
        return f"MarginalsStrategy(d={len(self.sizes)}, active={len(self.active)})"
