"""Structured workload/strategy matrices with closed-form fast paths.

These are the vectorized forms of the common single-attribute predicate
sets of paper Section 3.3 (Prefix, AllRange) plus the building blocks used
by the baseline mechanisms of Section 8 (Haar wavelets for Privelet,
b-ary hierarchies for HB/GreedyH, width-w range bands, and permuted
workloads).  Each class provides its Gram matrix ``WᵀW`` in closed form so
strategy optimization never needs the explicit (often huge) query matrix —
e.g. AllRange on a domain of size n has n(n+1)/2 rows, but its Gram is the
n x n matrix ``(min(i,j)+1)(n - max(i,j))``.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from .base import Dense, Matrix


class Prefix(Matrix):
    """All prefix (CDF) queries: row i sums cells 0..i.  n rows, n cols."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self.shape = (n, n)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return np.cumsum(np.asarray(x, dtype=self.dtype))

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        # Column j of Prefix is covered by prefixes j..n-1.
        return np.cumsum(np.asarray(y, dtype=self.dtype)[::-1])[::-1]

    def matmat(self, X: np.ndarray) -> np.ndarray:
        return np.cumsum(np.asarray(X, dtype=self.dtype), axis=0)

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        return np.cumsum(np.asarray(Y, dtype=self.dtype)[::-1], axis=0)[::-1]

    def gram(self) -> Dense:
        # (WᵀW)_{ij} = #prefixes containing both i and j = n - max(i, j).
        idx = np.arange(self.n)
        return Dense(self.n - np.maximum.outer(idx, idx).astype(np.float64))

    def l1_sensitivity(self) -> float:
        return float(self.n)

    def column_abs_sums(self) -> np.ndarray:
        return np.arange(self.n, 0, -1, dtype=np.float64)

    def column_norms(self) -> np.ndarray:
        # 0/1 entries: squared column norm = column sum.
        return np.sqrt(self.column_abs_sums())

    def dense(self) -> np.ndarray:
        return np.tril(np.ones((self.n, self.n)))

    def to_config(self) -> dict:
        return {"type": "Prefix", "n": self.n}

    @classmethod
    def from_config(cls, config: dict) -> "Prefix":
        return cls(int(config["n"]))

    def __repr__(self) -> str:
        return f"Prefix(n={self.n}, dtype={self.dtype.__name__})"


class AllRange(Matrix):
    """All contiguous range queries [i, j]: n(n+1)/2 rows, n cols.

    Rows are ordered lexicographically by (i, j) with i <= j.
    """

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self.shape = (n * (n + 1) // 2, n)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        prefix = np.concatenate([[0.0], np.cumsum(x)])
        out = np.empty(self.shape[0])
        pos = 0
        for i in range(self.n):
            cnt = self.n - i
            out[pos : pos + cnt] = prefix[i + 1 :] - prefix[i]
            pos += cnt
        return out

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=self.dtype)
        out = np.zeros(self.n)
        pos = 0
        for i in range(self.n):
            cnt = self.n - i
            block = y[pos : pos + cnt]
            # Range (i, j) covers cells i..j: add reverse-cumulative sums.
            out[i:] += np.cumsum(block[::-1])[::-1]
            pos += cnt
        return out

    def matmat(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=self.dtype)
        if X.ndim == 1:
            return self.matvec(X)
        # Batched prefix trick: one row-block of output per range start,
        # all columns at once.
        prefix = np.vstack([np.zeros((1, X.shape[1])), np.cumsum(X, axis=0)])
        out = np.empty((self.shape[0], X.shape[1]))
        pos = 0
        for i in range(self.n):
            cnt = self.n - i
            out[pos : pos + cnt] = prefix[i + 1 :] - prefix[i]
            pos += cnt
        return out

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        Y = np.asarray(Y, dtype=self.dtype)
        if Y.ndim == 1:
            return self.rmatvec(Y)
        out = np.zeros((self.n, Y.shape[1]))
        pos = 0
        for i in range(self.n):
            cnt = self.n - i
            block = Y[pos : pos + cnt]
            out[i:] += np.cumsum(block[::-1], axis=0)[::-1]
            pos += cnt
        return out

    def gram(self) -> Dense:
        # #ranges containing both i and j = (min(i,j)+1) * (n - max(i,j)).
        idx = np.arange(self.n, dtype=np.float64)
        lo = np.minimum.outer(idx, idx) + 1.0
        hi = self.n - np.maximum.outer(idx, idx)
        return Dense(lo * hi)

    def l1_sensitivity(self) -> float:
        return float(self.column_abs_sums().max())

    def column_abs_sums(self) -> np.ndarray:
        idx = np.arange(self.n, dtype=np.float64)
        return (idx + 1.0) * (self.n - idx)

    def column_norms(self) -> np.ndarray:
        return np.sqrt(self.column_abs_sums())

    def dense(self) -> np.ndarray:
        rows = []
        for i in range(self.n):
            block = np.zeros((self.n - i, self.n))
            for j in range(i, self.n):
                block[j - i, i : j + 1] = 1.0
            rows.append(block)
        return np.vstack(rows)

    def to_config(self) -> dict:
        return {"type": "AllRange", "n": self.n}

    @classmethod
    def from_config(cls, config: dict) -> "AllRange":
        return cls(int(config["n"]))

    def __repr__(self) -> str:
        return (
            f"AllRange(n={self.n}, shape={self.shape}, "
            f"dtype={self.dtype.__name__})"
        )


class WidthRange(Matrix):
    """All range queries summing exactly ``width`` contiguous cells."""

    def __init__(self, n: int, width: int):
        if not 1 <= width <= n:
            raise ValueError(f"width must be in [1, {n}], got {width}")
        self.n = n
        self.width = width
        self.shape = (n - width + 1, n)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        prefix = np.concatenate([[0.0], np.cumsum(np.asarray(x, dtype=self.dtype))])
        return prefix[self.width :] - prefix[: -self.width]

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        out = np.zeros(self.n)
        y = np.asarray(y, dtype=self.dtype)
        csum = np.concatenate([[0.0], np.cumsum(y)])
        m = self.shape[0]
        for j in range(self.n):
            lo = max(0, j - self.width + 1)
            hi = min(j, m - 1)
            if lo <= hi:
                out[j] = csum[hi + 1] - csum[lo]
        return out

    def matmat(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=self.dtype)
        if X.ndim == 1:
            return self.matvec(X)
        prefix = np.vstack([np.zeros((1, X.shape[1])), np.cumsum(X, axis=0)])
        return prefix[self.width :] - prefix[: -self.width]

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        Y = np.asarray(Y, dtype=self.dtype)
        if Y.ndim == 1:
            return self.rmatvec(Y)
        m = self.shape[0]
        csum = np.vstack([np.zeros((1, Y.shape[1])), np.cumsum(Y, axis=0)])
        j = np.arange(self.n)
        lo = np.maximum(0, j - self.width + 1)
        hi = np.minimum(j, m - 1)
        out = csum[hi + 1] - csum[lo]
        out[lo > hi] = 0.0
        return out

    def gram(self) -> Dense:
        # Windows covering both i and j: start s with
        # max(i,j)-width+1 <= s <= min(i,j), clipped to [0, n-width].
        idx = np.arange(self.n, dtype=np.float64)
        lo = np.maximum(np.maximum.outer(idx, idx) - self.width + 1, 0.0)
        hi = np.minimum(np.minimum.outer(idx, idx), self.n - self.width)
        return Dense(np.maximum(hi - lo + 1.0, 0.0))

    def l1_sensitivity(self) -> float:
        return float(self.column_abs_sums().max())

    def column_abs_sums(self) -> np.ndarray:
        idx = np.arange(self.n, dtype=np.float64)
        lo = np.maximum(idx - self.width + 1, 0.0)
        hi = np.minimum(idx, self.n - self.width)
        return np.maximum(hi - lo + 1.0, 0.0)

    def column_norms(self) -> np.ndarray:
        return np.sqrt(self.column_abs_sums())

    def dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        for i in range(self.shape[0]):
            out[i, i : i + self.width] = 1.0
        return out

    def to_config(self) -> dict:
        return {"type": "WidthRange", "n": self.n, "width": self.width}

    @classmethod
    def from_config(cls, config: dict) -> "WidthRange":
        return cls(int(config["n"]), int(config["width"]))

    def __repr__(self) -> str:
        return (
            f"WidthRange(n={self.n}, width={self.width}, "
            f"dtype={self.dtype.__name__})"
        )


class Permuted(Matrix):
    """A workload with permuted domain columns: ``W P``.

    ``perm[j]`` gives the source column of output column j, i.e.
    ``(WP)[:, j] = W[:, perm[j]]``.  Used for the Permuted Range workload
    of Section 8.1, which shuffles the domain to destroy the locality that
    hierarchical baselines rely on.
    """

    def __init__(self, base: Matrix, perm: np.ndarray):
        perm = np.asarray(perm, dtype=np.intp)
        n = base.shape[1]
        if sorted(perm.tolist()) != list(range(n)):
            raise ValueError("perm must be a permutation of range(n)")
        self.base = base
        self.perm = perm
        # inverse permutation: inv[perm[j]] = j
        self.inv = np.empty(n, dtype=np.intp)
        self.inv[perm] = np.arange(n)
        self.shape = base.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        # (W P) x = W (P x); (Px)[i] = x[inv[i]] so that column perm[j] of W
        # receives x[j].
        return self.base.matvec(np.asarray(x)[self.inv])

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self.base.rmatvec(y)[self.perm]

    def matmat(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=self.dtype)
        if X.ndim == 1:
            return self.matvec(X)
        return self.base.matmat(X[self.inv])

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        Y = np.asarray(Y, dtype=self.dtype)
        if Y.ndim == 1:
            return self.rmatvec(Y)
        return self.base.rmatmat(Y)[self.perm]

    def gram(self) -> Dense:
        G = self.base.gram().dense()
        return Dense(G[np.ix_(self.perm, self.perm)])

    def l1_sensitivity(self) -> float:
        return self.base.sensitivity()

    def l2_sensitivity(self) -> float:
        return self.base.sensitivity(p=2)

    def column_abs_sums(self) -> np.ndarray:
        return self.base.column_abs_sums()[self.perm]

    def column_norms(self) -> np.ndarray:
        return self.base.column_norms()[self.perm]

    def constant_column_norm(self) -> float | None:
        return self.base.constant_column_norm()

    def dense(self) -> np.ndarray:
        return self.base.dense()[:, self.perm]

    def to_config(self) -> dict:
        from .serialize import matrix_to_config

        return {
            "type": "Permuted",
            "base": matrix_to_config(self.base),
            "perm": np.asarray(self.perm, dtype=np.int64),
        }

    @classmethod
    def from_config(cls, config: dict) -> "Permuted":
        from .serialize import matrix_from_config

        return cls(
            matrix_from_config(config["base"]),
            np.asarray(config["perm"], dtype=np.intp),
        )

    def __repr__(self) -> str:
        return f"Permuted({self.base!r})"


class SparseMatrix(Matrix):
    """A scipy.sparse-backed matrix (for wavelet/hierarchical strategies)."""

    def __init__(self, array: sp.spmatrix):
        self.array = sp.csr_matrix(array).astype(np.float64)
        self.shape = self.array.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.array @ np.asarray(x, dtype=self.dtype)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self.array.T @ np.asarray(y, dtype=self.dtype)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        return self.array @ np.asarray(X, dtype=self.dtype)

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        return self.array.T @ np.asarray(Y, dtype=self.dtype)

    def gram(self) -> Dense:
        return Dense((self.array.T @ self.array).toarray())

    def l1_sensitivity(self) -> float:
        return float(self.column_abs_sums().max())

    def column_abs_sums(self) -> np.ndarray:
        return np.asarray(abs(self.array).sum(axis=0)).ravel()

    def column_norms(self) -> np.ndarray:
        sq = self.array.multiply(self.array).sum(axis=0)
        return np.sqrt(np.asarray(sq).ravel())

    def transpose(self) -> "SparseMatrix":
        return SparseMatrix(self.array.T)

    def dense(self) -> np.ndarray:
        return self.array.toarray()

    def sum(self) -> float:
        return float(self.array.sum())

    def to_config(self) -> dict:
        csr = self.array
        return {
            "type": "SparseMatrix",
            "data": csr.data,
            "indices": np.asarray(csr.indices, dtype=np.int64),
            "indptr": np.asarray(csr.indptr, dtype=np.int64),
            "shape": [int(s) for s in csr.shape],
        }

    @classmethod
    def from_config(cls, config: dict) -> "SparseMatrix":
        return cls(
            sp.csr_matrix(
                (config["data"], config["indices"], config["indptr"]),
                shape=tuple(config["shape"]),
            )
        )

    def __repr__(self) -> str:
        return (
            f"SparseMatrix(shape={self.shape}, nnz={self.array.nnz}, "
            f"dtype={self.dtype.__name__})"
        )


def haar_wavelet(n: int) -> SparseMatrix:
    """The Haar wavelet strategy matrix of Privelet [Xiao et al. 2011].

    Requires n to be a power of two.  Rows: one total row plus, for each
    level l = 0..log2(n)-1 and each of the 2^l shifts, a row that is +1 on
    the left half of its dyadic interval and -1 on the right half.  The
    maximum absolute column sum is ``1 + log2(n)``.
    """
    if n <= 0 or (n & (n - 1)) != 0:
        raise ValueError(f"haar_wavelet requires a power-of-two size, got {n}")
    rows, cols, vals = [0] * n, list(range(n)), [1.0] * n
    r = 1
    length = n
    while length > 1:
        half = length // 2
        for start in range(0, n, length):
            for c in range(start, start + half):
                rows.append(r)
                cols.append(c)
                vals.append(1.0)
            for c in range(start + half, start + length):
                rows.append(r)
                cols.append(c)
                vals.append(-1.0)
            r += 1
        length = half
    H = sp.coo_matrix((vals, (rows, cols)), shape=(n, n))
    return SparseMatrix(H)


def hierarchical(n: int, branching: int) -> SparseMatrix:
    """A b-ary hierarchy of interval queries over a domain of size n.

    This is the strategy family used by HB [Qardaji et al. 2013]: the root
    interval [0, n) plus each node's b-way split, recursively down to
    singleton leaves.  Every domain element appears in one query per level,
    so the sensitivity equals the tree height.
    """
    if branching < 2:
        raise ValueError("branching factor must be at least 2")
    rows, cols, vals = [], [], []
    r = 0
    # Breadth-first over intervals; an interval of size 1 is a leaf.
    frontier = [(0, n)]
    while frontier:
        nxt = []
        for lo, hi in frontier:
            for c in range(lo, hi):
                rows.append(r)
                cols.append(c)
                vals.append(1.0)
            r += 1
            size = hi - lo
            if size > 1:
                step = -(-size // branching)  # ceil division
                for s in range(lo, hi, step):
                    nxt.append((s, min(s + step, hi)))
        frontier = nxt
    H = sp.coo_matrix((vals, (rows, cols)), shape=(r, n))
    return SparseMatrix(H)
