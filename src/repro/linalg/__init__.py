"""Implicit linear algebra substrate for HDMM (paper Section 4).

Every workload and strategy in this library is a :class:`Matrix` — an
implicit linear operator supporting mat-vec products, Gram matrices,
sensitivity (max L1 column norm), and structured pseudo-inverses.
"""

from .base import Dense, Matrix, cache_enabled, set_cache_enabled
from .identity import Diagonal, Identity, Ones, Total
from .kron import Kronecker, kmatmat, kmatvec
from .serialize import (
    flatten_arrays,
    matrix_from_config,
    matrix_to_config,
    registered_types,
    restore_arrays,
)
from .marginals import (
    MarginalsAlgebra,
    MarginalsGram,
    MarginalsStrategy,
    get_algebra,
    index_to_subset,
    marginal_c_matrix,
    marginal_query_matrix,
    set_dense_algebra_enabled,
    subset_to_index,
)
from .stack import Sum, VStack, Weighted
from .structured import (
    AllRange,
    Permuted,
    Prefix,
    SparseMatrix,
    WidthRange,
    haar_wavelet,
    hierarchical,
)

__all__ = [
    "AllRange",
    "Dense",
    "Diagonal",
    "Identity",
    "Kronecker",
    "MarginalsAlgebra",
    "MarginalsGram",
    "MarginalsStrategy",
    "Matrix",
    "Ones",
    "Permuted",
    "Prefix",
    "SparseMatrix",
    "Sum",
    "Total",
    "VStack",
    "Weighted",
    "WidthRange",
    "cache_enabled",
    "flatten_arrays",
    "get_algebra",
    "haar_wavelet",
    "hierarchical",
    "index_to_subset",
    "kmatmat",
    "kmatvec",
    "marginal_c_matrix",
    "marginal_query_matrix",
    "matrix_from_config",
    "matrix_to_config",
    "registered_types",
    "restore_arrays",
    "set_cache_enabled",
    "set_dense_algebra_enabled",
    "subset_to_index",
]
