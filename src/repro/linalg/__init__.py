"""Implicit linear algebra substrate for HDMM (paper Section 4).

Every workload and strategy in this library is a :class:`Matrix` — an
implicit linear operator supporting mat-vec products, Gram matrices,
sensitivity (max L1 column norm), and structured pseudo-inverses.
"""

from .base import Dense, Matrix
from .identity import Identity, Ones, Total
from .kron import Kronecker, kmatvec
from .marginals import (
    MarginalsAlgebra,
    MarginalsGram,
    MarginalsStrategy,
    index_to_subset,
    marginal_c_matrix,
    marginal_query_matrix,
    subset_to_index,
)
from .stack import Sum, VStack, Weighted
from .structured import (
    AllRange,
    Permuted,
    Prefix,
    SparseMatrix,
    WidthRange,
    haar_wavelet,
    hierarchical,
)

__all__ = [
    "AllRange",
    "Dense",
    "Identity",
    "Kronecker",
    "MarginalsAlgebra",
    "MarginalsGram",
    "MarginalsStrategy",
    "Matrix",
    "Ones",
    "Permuted",
    "Prefix",
    "SparseMatrix",
    "Sum",
    "Total",
    "VStack",
    "Weighted",
    "WidthRange",
    "haar_wavelet",
    "hierarchical",
    "index_to_subset",
    "kmatvec",
    "marginal_c_matrix",
    "marginal_query_matrix",
    "subset_to_index",
]
