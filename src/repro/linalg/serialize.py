"""Config-based serialization of implicit matrices.

Fitted strategies are the expensive artifact of HDMM (SELECT can take
minutes; the Census SF1 workload changes once a decade), so the service
layer persists them across processes.  Matrices serialize *structurally*:
``A.to_config()`` returns a nested dict naming the class and its
construction parameters — never a densified matrix — and
:func:`matrix_from_config` rebuilds an equivalent instance through the
class's ``from_config``.  The round trip is exact: every numeric payload
is carried as a float64 ndarray (or a JSON-exact Python scalar), so a
reloaded strategy produces bit-identical mat-vecs, Grams, sensitivities
and noise scales.

Configs are JSON-ready except for embedded ndarrays.  The persistence
layer splits those out with :func:`flatten_arrays` (ndarray → ``{"$array":
name}`` placeholder plus a name → ndarray dict for ``np.savez``) and
reattaches them with :func:`restore_arrays` — one JSON manifest plus one
npz per strategy, both human-inspectable.

Adding a class: implement ``to_config`` (include ``"type":
type(self).__name__``) and a ``from_config`` classmethod, then list the
class in :func:`_ensure_registered`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import Matrix

__all__ = [
    "flatten_arrays",
    "matrix_from_config",
    "matrix_to_config",
    "registered_types",
    "restore_arrays",
]

#: Class-name → class dispatch table, populated lazily (PIdentity lives in
#: ``repro.optimize``, which imports this package — eager registration
#: would be a cycle).
_MATRIX_TYPES: dict[str, type] = {}


def _ensure_registered() -> dict[str, type]:
    if not _MATRIX_TYPES:
        from ..optimize.opt0 import PIdentity
        from .base import Dense
        from .identity import Diagonal, Identity, Ones
        from .kron import Kronecker
        from .marginals import MarginalsGram, MarginalsStrategy
        from .stack import Sum, VStack, Weighted
        from .structured import (
            AllRange,
            Permuted,
            Prefix,
            SparseMatrix,
            WidthRange,
        )

        for cls in (
            AllRange,
            Dense,
            Diagonal,
            Identity,
            Kronecker,
            MarginalsGram,
            MarginalsStrategy,
            Ones,
            Permuted,
            PIdentity,
            Prefix,
            SparseMatrix,
            Sum,
            VStack,
            Weighted,
            WidthRange,
        ):
            _MATRIX_TYPES[cls.__name__] = cls
    return _MATRIX_TYPES


def registered_types() -> dict[str, type]:
    """The serializable matrix classes, by config ``type`` name."""
    return dict(_ensure_registered())


def matrix_to_config(A: Matrix) -> dict:
    """Structural config of ``A`` — the inverse of :func:`matrix_from_config`."""
    config = A.to_config()
    if config.get("type") != type(A).__name__:
        raise TypeError(
            f"{type(A).__name__}.to_config() must set type={type(A).__name__!r}, "
            f"got {config.get('type')!r}"
        )
    return config


def matrix_from_config(config: dict) -> Matrix:
    """Rebuild a matrix from its structural config."""
    types = _ensure_registered()
    name = config.get("type")
    cls = types.get(name)
    if cls is None:
        raise ValueError(
            f"unknown matrix type {name!r}; serializable types are "
            f"{sorted(types)}"
        )
    return cls.from_config(config)


def flatten_arrays(config: Any, arrays: dict[str, np.ndarray] | None = None):
    """Replace embedded ndarrays with ``{"$array": name}`` placeholders.

    Returns ``(jsonable_config, arrays)`` where ``arrays`` maps generated
    names (``a0``, ``a1``, ...) to the extracted ndarrays — ready for
    ``json.dumps`` and ``np.savez`` respectively.
    """
    if arrays is None:
        arrays = {}
    if isinstance(config, np.ndarray):
        name = f"a{len(arrays)}"
        arrays[name] = config
        return {"$array": name}, arrays
    if isinstance(config, dict):
        return (
            {k: flatten_arrays(v, arrays)[0] for k, v in config.items()},
            arrays,
        )
    if isinstance(config, (list, tuple)):
        return [flatten_arrays(v, arrays)[0] for v in config], arrays
    if isinstance(config, (np.integer,)):
        return int(config), arrays
    if isinstance(config, (np.floating,)):
        return float(config), arrays
    return config, arrays


def restore_arrays(config: Any, arrays) -> Any:
    """Inverse of :func:`flatten_arrays`: reattach named arrays in place of
    their placeholders.  ``arrays`` is any name → ndarray mapping (an open
    ``NpzFile`` works directly)."""
    if isinstance(config, dict):
        if set(config) == {"$array"}:
            return np.asarray(arrays[config["$array"]])
        return {k: restore_arrays(v, arrays) for k, v in config.items()}
    if isinstance(config, list):
        return [restore_arrays(v, arrays) for v in config]
    return config
