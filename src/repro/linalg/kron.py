"""Kronecker-product matrices and the ``kmatvec`` algorithm.

This module implements the implicit Kronecker representation at the heart
of HDMM (paper Section 4): a product workload/strategy over d attributes is
stored as its d factors, and every key operation decomposes per factor:

* ``(A1 ⊗ ... ⊗ Ad) x`` — Algorithm 1 of the paper (``kmatvec``), which
  repeatedly applies the identity ``(B ⊗ C) flat(X) = flat(B X Cᵀ)``;
* ``(A1 ⊗ ... ⊗ Ad) X`` for a whole right-hand-side *matrix* —
  ``kmatmat``, Algorithm 1 generalized with a trailing batch axis so all
  columns move through each factor in one BLAS call instead of a Python
  loop per column;
* ``WᵀW = W1ᵀW1 ⊗ ... ⊗ WdᵀWd`` (Section 4.4);
* ``(A1 ⊗ ... ⊗ Ad)⁺ = A1⁺ ⊗ ... ⊗ Ad⁺``;
* ``‖A1 ⊗ ... ⊗ Ad‖₁ = Π ‖Ai‖₁`` (Theorem 3).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from .base import Matrix


def _application_order(factors: Sequence[Matrix]) -> list[int]:
    """Factor application order shared by :func:`kmatvec` and :func:`kmatmat`.

    Factors act on distinct tensor axes, so application order is free:
    apply shrinking factors (m < n, e.g. Total) first so the working
    tensor collapses before the expensive factors run; within each class,
    rightmost axis first (the trailing axis is contiguous, so no
    transpose copy of the still-large tensor is needed).
    """
    return sorted(
        range(len(factors)),
        key=lambda i: (factors[i].shape[0] >= factors[i].shape[1], -i),
    )


def kmatvec(factors: Sequence[Matrix], x: np.ndarray) -> np.ndarray:
    """Compute ``(A1 ⊗ ... ⊗ Ad) @ x`` without materializing the product.

    Implements Algorithm 1 (Appendix A.5): iteratively reshape the working
    vector into a matrix whose trailing axis matches factor ``Ai``, apply
    ``Ai`` to that axis, and fold the result back in.  For square n x n
    factors the cost is ``O(d * n^(d+1))`` time and ``O(n^d)`` space versus
    ``O(n^(2d))`` for the explicit product.

    Parameters
    ----------
    factors:
        The Kronecker factors ``A1 ... Ad``, leftmost factor first.
    x:
        Vector of length ``Π ni`` (the product of factor column counts).
    """
    from .identity import Identity

    x = np.asarray(x, dtype=np.float64)
    total_cols = math.prod(A.shape[1] for A in factors)
    if x.shape != (total_cols,):
        raise ValueError(f"expected vector of length {total_cols}, got {x.shape}")
    # View x as a d-way tensor (row-major) and apply factor Ai along axis i
    # in _application_order, skipping Identity factors outright.
    X = x.reshape([A.shape[1] for A in factors])
    for i in _application_order(factors):
        A = factors[i]
        if isinstance(A, Identity):
            continue
        m_i, n_i = A.shape
        moved = np.moveaxis(X, i, -1)
        lead_shape = moved.shape[:-1]
        Z = moved.reshape(-1, n_i).T  # n_i x (rest)
        Y = A.matmat(Z)  # m_i x (rest)
        X = np.moveaxis(Y.T.reshape(lead_shape + (m_i,)), -1, i)
    return X.reshape(-1)


def kmatmat(factors: Sequence[Matrix], X: np.ndarray) -> np.ndarray:
    """Compute ``(A1 ⊗ ... ⊗ Ad) @ X`` for a dense RHS matrix ``X``.

    Algorithm 1 with a trailing batch axis: the working tensor carries an
    extra final axis of size ``X.shape[1]`` that no factor touches, so
    every column of ``X`` flows through each factor in a single ``matmat``
    call.  Compared to applying ``kmatvec`` column-by-column this turns
    ``b`` Python-level passes (each with its own reshapes and small BLAS
    calls) into one pass with ``b``-times-wider BLAS calls.

    Parameters
    ----------
    factors:
        The Kronecker factors ``A1 ... Ad``, leftmost factor first.
    X:
        Matrix of shape ``(Π ni, b)`` (one column per right-hand side); a
        1-D input falls back to :func:`kmatvec`.
    """
    from .identity import Identity

    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        return kmatvec(factors, X)
    total_cols = math.prod(A.shape[1] for A in factors)
    if X.ndim != 2 or X.shape[0] != total_cols:
        raise ValueError(f"expected ({total_cols}, b) matrix, got {X.shape}")
    batch = X.shape[1]
    total_rows = math.prod(A.shape[0] for A in factors)
    if batch == 0:
        # Degenerate RHS: reshape(-1, ...) cannot infer axes of size 0.
        return np.empty((total_rows, 0))
    # d-way tensor plus the untouched trailing batch axis, applying each
    # factor in the shared _application_order (Identity factors skipped).
    T = X.reshape([A.shape[1] for A in factors] + [batch])
    for i in _application_order(factors):
        A = factors[i]
        if isinstance(A, Identity):
            continue
        m_i, n_i = A.shape
        # Move the factor's axis to the front and flatten the rest (one
        # contiguity copy at most); apply the factor to all remaining
        # cells * batch columns in a single matmat; fold back lazily —
        # the moveaxis below is a view, so each factor costs one copy.
        moved = np.moveaxis(T, i, 0)
        Z = moved.reshape(n_i, -1)  # n_i x (rest * batch)
        Y = A.matmat(Z)  # m_i x (rest * batch)
        T = np.moveaxis(Y.reshape((m_i,) + moved.shape[1:]), 0, i)
    return T.reshape(total_rows, batch)


class Kronecker(Matrix):
    """Implicit Kronecker product ``A1 ⊗ A2 ⊗ ... ⊗ Ad``."""

    def __init__(self, factors: Sequence[Matrix]):
        if not factors:
            raise ValueError("Kronecker requires at least one factor")
        self.factors = list(factors)
        m = math.prod(A.shape[0] for A in self.factors)
        n = math.prod(A.shape[1] for A in self.factors)
        self.shape = (m, n)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return kmatvec(self.factors, x)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return kmatvec([A.T for A in self.factors], y)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        return kmatmat(self.factors, X)

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        return kmatmat([A.T for A in self.factors], Y)

    def gram(self) -> "Kronecker":
        return Kronecker([A.gram() for A in self.factors])

    def l1_sensitivity(self) -> float:
        return math.prod(A.sensitivity() for A in self.factors)

    def l2_sensitivity(self) -> float:
        # Column norms of a Kronecker product multiply factor-wise, so the
        # max (all factors' norms are non-negative) is the product of maxes.
        return math.prod(A.sensitivity(p=2) for A in self.factors)

    def column_abs_sums(self) -> np.ndarray:
        out = np.ones(1)
        for A in self.factors:
            out = np.kron(out, A.column_abs_sums())
        return out

    def constant_column_abs_sum(self) -> float | None:
        prod = 1.0
        for A in self.factors:
            c = A.constant_column_abs_sum()
            if c is None:
                return None
            prod *= c
        return prod

    def column_norms(self) -> np.ndarray:
        out = np.ones(1)
        for A in self.factors:
            out = np.kron(out, A.column_norms())
        return out

    def constant_column_norm(self) -> float | None:
        prod = 1.0
        for A in self.factors:
            c = A.constant_column_norm()
            if c is None:
                return None
            prod *= c
        return prod

    def pinv(self) -> "Kronecker":
        return Kronecker([A.pinv() for A in self.factors])

    def transpose(self) -> "Kronecker":
        return Kronecker([A.T for A in self.factors])

    def dense(self) -> np.ndarray:
        out = self.factors[0].dense()
        for A in self.factors[1:]:
            out = np.kron(out, A.dense())
        return out

    def trace(self) -> float:
        return math.prod(A.trace() for A in self.factors)

    def sum(self) -> float:
        return math.prod(A.sum() for A in self.factors)

    def to_config(self) -> dict:
        from .serialize import matrix_to_config

        return {
            "type": "Kronecker",
            "factors": [matrix_to_config(A) for A in self.factors],
        }

    @classmethod
    def from_config(cls, config: dict) -> "Kronecker":
        from .serialize import matrix_from_config

        return cls([matrix_from_config(c) for c in config["factors"]])

    def __repr__(self) -> str:
        inner = " ⊗ ".join(repr(A) for A in self.factors)
        return f"Kronecker[{inner}, shape={self.shape}]"
