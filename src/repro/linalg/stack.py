"""Stacked and weighted matrices — unions of products (paper Section 4.3).

``ImpVec`` produces workloads of the form ``W = w1*W1 + ... + wk*Wk`` where
``+`` denotes vertical stacking of sub-workloads (union of their query
sets) and ``wi`` are per-sub-workload accuracy weights.  :class:`VStack`
implements the stack; :class:`Weighted` implements scalar weighting.  Both
propagate the implicit fast paths: the Gram of a stack is the sum of
Grams, and sensitivities (absolute column sums) add across the stack.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .base import Dense, Matrix


class Weighted(Matrix):
    """A scalar multiple ``w * A`` of an implicit matrix."""

    def __init__(self, base: Matrix, weight: float):
        self.base = base
        self.weight = float(weight)
        self.shape = base.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.weight * self.base.matvec(x)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self.weight * self.base.rmatvec(y)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        return self.weight * self.base.matmat(X)

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        return self.weight * self.base.rmatmat(Y)

    def gram(self) -> Matrix:
        return Weighted(self.base.gram(), self.weight**2)

    def l1_sensitivity(self) -> float:
        return abs(self.weight) * self.base.sensitivity()

    def l2_sensitivity(self) -> float:
        return abs(self.weight) * self.base.sensitivity(p=2)

    def column_abs_sums(self) -> np.ndarray:
        return abs(self.weight) * self.base.column_abs_sums()

    def constant_column_abs_sum(self) -> float | None:
        c = self.base.constant_column_abs_sum()
        return None if c is None else abs(self.weight) * c

    def column_norms(self) -> np.ndarray:
        return abs(self.weight) * self.base.column_norms()

    def constant_column_norm(self) -> float | None:
        c = self.base.constant_column_norm()
        return None if c is None else abs(self.weight) * c

    def pinv(self) -> Matrix:
        if self.weight == 0:
            # (0·A)⁺ is the zero matrix of the transposed shape, not ∞·A⁺.
            return Weighted(self.base.pinv(), 0.0)
        return Weighted(self.base.pinv(), 1.0 / self.weight)

    def transpose(self) -> Matrix:
        return Weighted(self.base.T, self.weight)

    def dense(self) -> np.ndarray:
        return self.weight * self.base.dense()

    def trace(self) -> float:
        return self.weight * self.base.trace()

    def sum(self) -> float:
        return self.weight * self.base.sum()

    def to_config(self) -> dict:
        from .serialize import matrix_to_config

        return {
            "type": "Weighted",
            "base": matrix_to_config(self.base),
            "weight": self.weight,
        }

    @classmethod
    def from_config(cls, config: dict) -> "Weighted":
        from .serialize import matrix_from_config

        return cls(matrix_from_config(config["base"]), float(config["weight"]))

    def __repr__(self) -> str:
        return f"Weighted({self.base!r}, w={self.weight:g})"


class VStack(Matrix):
    """Vertical stack ``[A1; A2; ...; Ak]`` of implicit matrices.

    All blocks must share a column count (the domain size N).  A stack is
    the matrix form of a *union* of query sets.
    """

    def __init__(self, blocks: Sequence[Matrix]):
        if not blocks:
            raise ValueError("VStack requires at least one block")
        n = blocks[0].shape[1]
        if any(B.shape[1] != n for B in blocks):
            raise ValueError("all blocks must have the same number of columns")
        self.blocks = list(blocks)
        m = sum(B.shape[0] for B in self.blocks)
        self.shape = (m, n)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return np.concatenate([B.matvec(x) for B in self.blocks])

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        out = np.zeros(self.shape[1])
        offset = 0
        for B in self.blocks:
            rows = B.shape[0]
            out += B.rmatvec(y[offset : offset + rows])
            offset += rows
        return out

    def matmat(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=self.dtype)
        if X.ndim == 1:
            return self.matvec(X)
        # Write each block's batch directly into its row slice — the
        # serving engine calls this with wide right-hand sides, where the
        # extra vstack copy of every block result is measurable.
        out = np.empty((self.shape[0], X.shape[1]), dtype=self.dtype)
        offset = 0
        for B in self.blocks:
            rows = B.shape[0]
            out[offset : offset + rows] = B.matmat(X)
            offset += rows
        return out

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        Y = np.asarray(Y, dtype=self.dtype)
        if Y.ndim == 1:
            return self.rmatvec(Y)
        out = np.zeros((self.shape[1], Y.shape[1]))
        offset = 0
        for B in self.blocks:
            rows = B.shape[0]
            out += B.rmatmat(Y[offset : offset + rows])
            offset += rows
        return out

    def gram(self) -> Matrix:
        return Sum([B.gram() for B in self.blocks])

    def l1_sensitivity(self) -> float:
        # Blocks with constant column sums contribute a scalar; only the
        # rest need their full column-sum vector (crucial for unions of
        # marginals over huge domains).
        constant_part = 0.0
        varying = []
        for B in self.blocks:
            c = B.constant_column_abs_sum()
            if c is None:
                varying.append(B)
            else:
                constant_part += c
        if not varying:
            return constant_part
        out = np.zeros(self.shape[1])
        for B in varying:
            out += B.column_abs_sums()
        return constant_part + float(out.max())

    def l2_sensitivity(self) -> float:
        # Squared column norms add across the stack; the constant/varying
        # split mirrors l1_sensitivity in the squared domain.
        constant_sq = 0.0
        varying = []
        for B in self.blocks:
            c = B.constant_column_norm()
            if c is None:
                varying.append(B)
            else:
                constant_sq += c * c
        if not varying:
            return float(np.sqrt(constant_sq))
        out = np.zeros(self.shape[1])
        for B in varying:
            out += B.column_norms() ** 2
        return float(np.sqrt(constant_sq + out.max()))

    def column_abs_sums(self) -> np.ndarray:
        out = np.zeros(self.shape[1])
        for B in self.blocks:
            out += B.column_abs_sums()
        return out

    def constant_column_abs_sum(self) -> float | None:
        total = 0.0
        for B in self.blocks:
            c = B.constant_column_abs_sum()
            if c is None:
                return None
            total += c
        return total

    def column_norms(self) -> np.ndarray:
        out = np.zeros(self.shape[1])
        for B in self.blocks:
            out += B.column_norms() ** 2
        return np.sqrt(out)

    def constant_column_norm(self) -> float | None:
        total_sq = 0.0
        for B in self.blocks:
            c = B.constant_column_norm()
            if c is None:
                return None
            total_sq += c * c
        return float(np.sqrt(total_sq))

    def transpose(self) -> Matrix:
        from .base import _Transpose

        return _Transpose(self)

    def dense(self) -> np.ndarray:
        return np.vstack([B.dense() for B in self.blocks])

    def sum(self) -> float:
        return float(np.sum([B.sum() for B in self.blocks]))

    def to_config(self) -> dict:
        from .serialize import matrix_to_config

        return {
            "type": "VStack",
            "blocks": [matrix_to_config(B) for B in self.blocks],
        }

    @classmethod
    def from_config(cls, config: dict) -> "VStack":
        from .serialize import matrix_from_config

        return cls([matrix_from_config(c) for c in config["blocks"]])

    def __repr__(self) -> str:
        return (
            f"VStack({len(self.blocks)} blocks, shape={self.shape}, "
            f"dtype={self.dtype.__name__})"
        )


class Sum(Matrix):
    """Matrix sum ``A1 + A2 + ... + Ak`` of same-shape implicit matrices.

    Appears as the Gram of a stack: ``(ΣᵢAᵢᵀAᵢ)``.  Dense materialization
    adds the blocks; mat-vecs distribute.
    """

    def __init__(self, terms: Sequence[Matrix]):
        if not terms:
            raise ValueError("Sum requires at least one term")
        shape = terms[0].shape
        if any(T.shape != shape for T in terms):
            raise ValueError("all terms must have the same shape")
        self.terms = list(terms)
        self.shape = shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        out = np.zeros(self.shape[0])
        for T in self.terms:
            out += T.matvec(x)
        return out

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        out = np.zeros(self.shape[1])
        for T in self.terms:
            out += T.rmatvec(y)
        return out

    def matmat(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=self.dtype)
        if X.ndim == 1:
            return self.matvec(X)
        out = np.zeros((self.shape[0], X.shape[1]))
        for T in self.terms:
            out += T.matmat(X)
        return out

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        Y = np.asarray(Y, dtype=self.dtype)
        if Y.ndim == 1:
            return self.rmatvec(Y)
        out = np.zeros((self.shape[1], Y.shape[1]))
        for T in self.terms:
            out += T.rmatmat(Y)
        return out

    def transpose(self) -> Matrix:
        return Sum([T.T for T in self.terms])

    def dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        for T in self.terms:
            out += T.dense()
        return out

    def trace(self) -> float:
        return float(np.sum([T.trace() for T in self.terms]))

    def sum(self) -> float:
        return float(np.sum([T.sum() for T in self.terms]))

    def to_config(self) -> dict:
        from .serialize import matrix_to_config

        return {
            "type": "Sum",
            "terms": [matrix_to_config(T) for T in self.terms],
        }

    @classmethod
    def from_config(cls, config: dict) -> "Sum":
        from .serialize import matrix_from_config

        return cls([matrix_from_config(c) for c in config["terms"]])

    def __repr__(self) -> str:
        return (
            f"Sum({len(self.terms)} terms, shape={self.shape}, "
            f"dtype={self.dtype.__name__})"
        )


def hstack_dense(blocks: Sequence[np.ndarray]) -> Dense:
    """Convenience: horizontally stack dense blocks into a Dense matrix."""
    return Dense(np.hstack(blocks))
