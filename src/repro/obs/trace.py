"""Lightweight request tracing: spans, trace IDs, an optional JSONL sink.

A *span* is one timed step of serving a request — ``plan.compile``,
``plan.route``, ``serve.hits``, ``service.measure`` — opened with::

    with TRACER.span("plan.compile", dataset="adult"):
        ...

Spans opened on the same thread nest: the first span of a thread roots a
new trace, children record their parent span, and when the root exits
the finished trace (a tuple of :class:`Span` records) is published to an
in-memory ring buffer keyed by trace ID, where
:meth:`Tracer.get_trace` resolves it — the acceptance path for the
trace IDs stamped onto ``QueryAnswer``/``Answer`` provenance.

Costs are deliberately minimal: a span is one object allocation and a
``perf_counter`` pair; a disabled tracer hands out a shared null context
manager and records nothing.  Timings are monotonic
(:func:`time.perf_counter`), so in-trace durations are crash-proof
against wall-clock steps; the absolute ``wall`` stamp on the root is
informational only.

The optional sink (:class:`JsonlTraceSink`) appends finished traces as
JSONL records in the **ledger's canonical-JSON + crc format**
(:func:`repro.service.ledger.encode_record`), so trace logs get the same
torn-tail/corruption detection as the ε-ledger and
:func:`read_trace_log` can verify every line on read.
"""

from __future__ import annotations

import itertools
import os
import threading
import time

__all__ = [
    "JsonlTraceSink",
    "Span",
    "TRACER",
    "Tracer",
    "current_trace_id",
    "get_trace",
    "read_trace_log",
    "span",
]

_RING_SIZE = 512


class Span:
    """One finished (or in-flight) step of a trace."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "start", "end", "attrs", "error",
    )

    def __init__(self, name, trace_id, span_id, parent_id, start, attrs):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = None
        self.attrs = attrs
        self.error = None

    @property
    def duration_ms(self) -> float:
        return 0.0 if self.end is None else (self.end - self.start) * 1e3

    def to_record(self) -> dict:
        """JSON-safe dict in the ledger record shape (kind ``"span"``)."""
        rec = {
            "v": 1,
            "kind": "span",
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "ms": round(self.duration_ms, 6),
        }
        if self.attrs:
            rec["attrs"] = {k: _json_safe(v) for k, v in self.attrs.items()}
        if self.error is not None:
            rec["error"] = self.error
        return rec

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_ms:.3f}ms, "
            f"trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id})"
        )


def _json_safe(v):
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    if isinstance(v, dict):
        return {str(k): _json_safe(x) for k, x in v.items()}
    if isinstance(v, (list, tuple)):
        return [_json_safe(x) for x in v]
    return str(v)


class _TraceCtx:
    """Per-thread in-flight trace state."""

    __slots__ = ("trace_id", "stack", "spans", "seq", "wall")

    def __init__(self, trace_id: str):
        self.trace_id = trace_id
        self.stack: list[Span] = []
        self.spans: list[Span] = []
        self.seq = 0
        self.wall = time.time()


class _NullSpan:
    """Context manager handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, et, ev, tb):
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager for one enabled span (cheaper than
    ``contextlib.contextmanager``: no generator frame)."""

    __slots__ = ("_tracer", "_attrs", "_name", "_ctx", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        tracer = self._tracer
        ctx = getattr(tracer._local, "ctx", None)
        if ctx is None:
            ctx = tracer._local.ctx = _TraceCtx(tracer._new_trace_id())
        ctx.seq += 1
        rec = Span(
            self._name,
            ctx.trace_id,
            ctx.seq,
            ctx.stack[-1].span_id if ctx.stack else None,
            time.perf_counter(),
            self._attrs,
        )
        ctx.stack.append(rec)
        self._ctx = ctx
        self._span = rec
        return rec

    def __exit__(self, et, ev, tb):
        rec = self._span
        rec.end = time.perf_counter()
        if et is not None:
            rec.error = f"{et.__name__}: {ev}"
        ctx = self._ctx
        ctx.stack.pop()
        ctx.spans.append(rec)
        if not ctx.stack:
            self._tracer._local.ctx = None
            self._tracer._finish(ctx)
        return False


class Tracer:
    """Thread-local span stacks over a shared finished-trace ring buffer."""

    def __init__(self, enabled: bool = False, ring_size: int = _RING_SIZE):
        self.enabled = bool(enabled)
        self.sink: JsonlTraceSink | None = None
        self.ring_size = int(ring_size)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._ring: dict[str, tuple] = {}
        self._seq = itertools.count(1)
        self._prefix = f"{os.getpid():x}-{os.urandom(3).hex()}"

    # -- lifecycle -----------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop finished traces and any in-flight context on this thread."""
        with self._lock:
            self._ring.clear()
        self._local.ctx = None

    # -- spans ---------------------------------------------------------------
    def span(self, name: str, **attrs):
        """Open a span; ``with tracer.span("x") as sp`` yields the
        :class:`Span` (or ``None`` while disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def current_trace_id(self) -> str | None:
        """Trace ID of this thread's in-flight trace, if any."""
        ctx = getattr(self._local, "ctx", None)
        return None if ctx is None else ctx.trace_id

    def _new_trace_id(self) -> str:
        return f"t-{self._prefix}-{next(self._seq):06x}"

    def _finish(self, ctx: _TraceCtx) -> None:
        spans = tuple(ctx.spans)
        with self._lock:
            self._ring[ctx.trace_id] = spans
            while len(self._ring) > self.ring_size:
                self._ring.pop(next(iter(self._ring)))
        sink = self.sink
        if sink is not None:
            try:
                sink.write(spans, wall=ctx.wall)
            except OSError:
                pass  # tracing must never fail the request it observes

    # -- readout -------------------------------------------------------------
    def get_trace(self, trace_id: str) -> list[Span] | None:
        """Finished spans of ``trace_id`` (in completion order: children
        before parents, the root last), or ``None`` if unknown/evicted."""
        with self._lock:
            spans = self._ring.get(trace_id)
        return None if spans is None else list(spans)

    def trace_ids(self) -> list[str]:
        """Finished trace IDs still in the ring, oldest first."""
        with self._lock:
            return list(self._ring)


class JsonlTraceSink:
    """Append-only JSONL trace log in the ε-ledger's record format.

    Every span becomes one canonical-JSON + crc line
    (:func:`repro.service.ledger.encode_record` — the same checksummed
    contract the WAL uses, so a torn tail or bit flip is detectable), and
    each trace additionally writes a ``"trace"`` summary record carrying
    the wall-clock stamp and span count.  Buffered appends with a flush
    per trace: traces are diagnostics, not durability-critical, so there
    is no fsync.
    """

    def __init__(self, path: str):
        self.path = str(path)

    def write(self, spans, wall: float | None = None) -> None:
        from ..service.ledger import encode_record

        if not spans:
            return
        lines = [
            encode_record(
                {
                    "v": 1,
                    "kind": "trace",
                    "trace": spans[0].trace_id,
                    "wall": round(wall if wall is not None else time.time(), 6),
                    "spans": len(spans),
                }
            )
        ]
        lines += [encode_record(sp.to_record()) for sp in spans]
        payload = b"".join(lines)
        from ..service import faults

        def _append():
            faults.check("trace.sink.write")
            with open(self.path, "ab") as f:
                f.write(payload)
                f.flush()

        # Transient append faults retry under the shared policy; a
        # persistent one propagates to Tracer._finish, which drops the
        # trace rather than fail the request it observed.
        from ..server.retry import call_retrying

        call_retrying(_append)


def read_trace_log(path: str) -> list[dict]:
    """Parse a sink file, verifying every record's crc; raises
    :class:`repro.service.ledger.TornRecordError` on damage."""
    from ..service.ledger import decode_line

    records = []
    with open(path, "rb") as f:
        for line in f:
            records.append(decode_line(line))
    return records


#: The process-wide tracer every instrumented module shares.
TRACER = Tracer()


def span(name: str, **attrs):
    return TRACER.span(name, **attrs)


def current_trace_id() -> str | None:
    return TRACER.current_trace_id()


def get_trace(trace_id: str) -> list[Span] | None:
    return TRACER.get_trace(trace_id)
