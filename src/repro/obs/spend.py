"""ε-spend observability: replay a WAL ledger into a budget report.

The accountant's write-ahead ledger (:mod:`repro.service.ledger`) is the
authoritative record of every privacy debit, but reading it meant
constructing a :class:`~repro.service.accountant.PrivacyAccountant` —
which takes the file lock and *physically truncates* a torn tail.  This
module is the read-only view: :func:`replay` parses the committed record
prefix without locking or mutating anything and folds it with **exactly
the arithmetic** ``PrivacyAccountant._apply_records`` uses (same float
additions in the same order), so the report's per-dataset totals are
bit-equal to what :meth:`PrivacyAccountant.recover` would compute from
the same ledger.

Three entry points:

* :func:`replay` — ``SpendReport`` from a ledger path;
* :func:`report_from_accountant` — the same report from a live
  accountant's in-memory state (used by ``Session.budget_report()``);
* the CLI: ``python -m repro.obs.spend <ledger> [--json]``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field

__all__ = [
    "DatasetSpend",
    "SpendEvent",
    "SpendReport",
    "main",
    "replay",
    "report_from_accountant",
]


@dataclass
class SpendEvent:
    """One committed debit, with the running total after it applied."""

    seq: int  # 0-based position among the ledger's debit records
    dataset: str
    epsilon: float
    composition: str
    stage: str
    cumulative: float  # dataset spend right after this debit


@dataclass
class DatasetSpend:
    """Per-dataset budget position replayed from the ledger."""

    dataset: str
    cap: float | None  # None: no register record and no default cap
    spent: float = 0.0
    debits: int = 0
    last_stage: str = ""

    @property
    def remaining(self) -> float:
        if self.cap is None:
            return float("inf")
        return max(0.0, self.cap - self.spent)


@dataclass
class SpendReport:
    """The replayed ledger: per-dataset totals plus the debit timeline."""

    source: str
    datasets: dict[str, DatasetSpend] = field(default_factory=dict)
    timeline: list[SpendEvent] = field(default_factory=list)
    records: int = 0  # committed records replayed (registers + debits)
    torn: bool = False  # a torn/corrupt tail was detected (and ignored)

    def spent(self, dataset: str) -> float:
        ds = self.datasets.get(dataset)
        return 0.0 if ds is None else ds.spent

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "records": self.records,
            "torn_tail": self.torn,
            "datasets": {
                name: {
                    "cap": ds.cap,
                    "spent": ds.spent,
                    "remaining": (
                        None if ds.cap is None else ds.remaining
                    ),
                    "debits": ds.debits,
                    "last_stage": ds.last_stage,
                }
                for name, ds in sorted(self.datasets.items())
            },
            "timeline": [
                {
                    "seq": e.seq,
                    "dataset": e.dataset,
                    "epsilon": e.epsilon,
                    "composition": e.composition,
                    "stage": e.stage,
                    "cumulative": e.cumulative,
                }
                for e in self.timeline
            ],
        }

    def render(self) -> str:
        """Human-readable per-dataset budget table."""
        head = (
            f"ε-spend report — {self.source} "
            f"({self.records} committed records"
            + (", torn tail detected" if self.torn else "")
            + ")"
        )
        if not self.datasets:
            return head + "\n  (no datasets)"
        rows = [
            (
                name,
                f"{ds.spent:g}",
                "∞" if ds.cap is None else f"{ds.cap:g}",
                "∞" if ds.cap is None else f"{ds.remaining:g}",
                str(ds.debits),
                ds.last_stage or "—",
            )
            for name, ds in sorted(self.datasets.items())
        ]
        cols = ["dataset", "spent", "cap", "remaining", "debits", "last stage"]
        widths = [
            max(len(cols[j]), *(len(r[j]) for r in rows))
            for j in range(len(cols))
        ]
        lines = [head, "  " + "  ".join(c.ljust(w) for c, w in zip(cols, widths))]
        for r in rows:
            lines.append("  " + "  ".join(v.ljust(w) for v, w in zip(r, widths)))
        return "\n".join(lines)


def _fold(records, default_cap: float | None, report: SpendReport) -> None:
    """Apply committed records in order — the same float arithmetic as
    ``PrivacyAccountant._apply_records``, so totals are bit-equal to a
    recovery replay of the same ledger."""
    seq = 0
    for r in records:
        kind = r.get("kind")
        if kind == "register":
            name = r["dataset"]
            ds = report.datasets.setdefault(name, DatasetSpend(name, None))
            ds.cap = float(r["cap"])
        elif kind == "debit":
            name = r["dataset"]
            ds = report.datasets.get(name)
            if ds is None:
                ds = report.datasets[name] = DatasetSpend(name, default_cap)
            ds.spent = ds.spent + float(r["epsilon"])
            ds.debits += 1
            ds.last_stage = r.get("stage", "")
            report.timeline.append(
                SpendEvent(
                    seq=seq,
                    dataset=name,
                    epsilon=float(r["epsilon"]),
                    composition=r.get("composition", "sequential"),
                    stage=r.get("stage", ""),
                    cumulative=ds.spent,
                )
            )
            seq += 1
        report.records += 1


def replay(path: str, default_cap: float | None = None) -> SpendReport:
    """Read-only replay of a ledger's committed prefix.

    Unlike :meth:`PrivacyAccountant.recover`, this takes no lock and
    never truncates: a torn tail is reported (``report.torn``) but left
    on disk for the next locking writer to clean up.
    """
    from ..service.ledger import WriteAheadLedger

    ledger = WriteAheadLedger(path)
    report = SpendReport(source=os.path.abspath(path))
    _fold(ledger.read_new(), default_cap, report)
    report.torn = ledger.torn_offset is not None
    return report


def report_from_accountant(accountant) -> SpendReport:
    """The same report, from a live accountant's in-memory state.

    Folds the accountant's replayed-plus-appended ledger entries (the
    committed history it has observed) under its registered caps; totals
    equal ``accountant.spent(...)`` for every dataset with a WAL — and
    for memory-only accountants too, since both fold the same entries in
    the same order.
    """
    accountant.sync()
    report = SpendReport(source=accountant.wal_path or "<memory>")
    for name in accountant.datasets():
        report.datasets[name] = DatasetSpend(name, accountant.cap(name))
        report.records += 1  # the (implied) register record
    for seq, entry in enumerate(accountant.ledger):
        ds = report.datasets.setdefault(
            entry.dataset, DatasetSpend(entry.dataset, None)
        )
        ds.spent = ds.spent + entry.epsilon
        ds.debits += 1
        ds.last_stage = entry.stage
        report.timeline.append(
            SpendEvent(
                seq=seq,
                dataset=entry.dataset,
                epsilon=entry.epsilon,
                composition=entry.composition,
                stage=entry.stage,
                cumulative=ds.spent,
            )
        )
        report.records += 1
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.spend",
        description="Replay a write-ahead ε-ledger into a spend report "
        "(read-only: no locking, no torn-tail truncation).",
    )
    parser.add_argument("ledger", help="path of the WAL ledger file")
    parser.add_argument(
        "--default-cap",
        type=float,
        default=None,
        help="cap assumed for datasets the ledger debits but never "
        "registers (mirrors PrivacyAccountant's default_cap)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full report (datasets + timeline) as JSON",
    )
    args = parser.parse_args(argv)
    if not os.path.isfile(args.ledger):
        print(f"error: no ledger file at {args.ledger}", file=sys.stderr)
        return 2
    report = replay(args.ledger, default_cap=args.default_cap)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
