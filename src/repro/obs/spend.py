"""ε-spend observability: replay a WAL ledger into a budget report.

The accountant's write-ahead ledger (:mod:`repro.service.ledger`) is the
authoritative record of every privacy debit, but reading it meant
constructing a :class:`~repro.service.accountant.PrivacyAccountant` —
which takes the file lock and *physically truncates* a torn tail.  This
module is the read-only view: :func:`replay` parses the committed record
prefix without locking or mutating anything and folds it with **exactly
the arithmetic** ``PrivacyAccountant._apply_records`` uses — both call
:func:`repro.privacy.accounting.fold_debit`, the single shared fold — so
the report's per-dataset totals (ε, and for mixed-mechanism ledgers δ
and the zCDP ρ) are bit-equal to what
:meth:`PrivacyAccountant.recover` would compute from the same ledger.
v1 pure-ε ledgers replay unchanged; v2 Gaussian debit records
additionally carry ``mechanism``/``delta``/``rho``.

Three entry points:

* :func:`replay` — ``SpendReport`` from a ledger path;
* :func:`report_from_accountant` — the same report from a live
  accountant's in-memory state (used by ``Session.budget_report()``);
* the CLI: ``python -m repro.obs.spend <ledger> [--json]``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field

from ..privacy.accounting import PrivacyCost, SpendCurve, fold_debit
from ..privacy.policy import policy_from_dict

__all__ = [
    "DatasetSpend",
    "SpendEvent",
    "SpendReport",
    "main",
    "replay",
    "report_from_accountant",
]


@dataclass
class SpendEvent:
    """One committed debit, with the running total after it applied."""

    seq: int  # 0-based position among the ledger's debit records
    dataset: str
    epsilon: float
    composition: str
    stage: str
    cumulative: float  # dataset spend right after this debit
    mechanism: str = "laplace"
    delta: float = 0.0
    rho: float = 0.0


@dataclass
class DatasetSpend:
    """Per-dataset budget position replayed from the ledger.

    ``spent`` is the ε fold (unchanged from v1); ``delta`` and ``rho``
    are the composed (ε, δ)/zCDP curve coordinates, 0 for pure-ε
    ledgers.  ``policy`` is the serialized budget policy from a v2
    register record (None for v1 float caps).
    """

    dataset: str
    cap: float | None  # None: no register record and no default cap
    spent: float = 0.0
    debits: int = 0
    last_stage: str = ""
    delta: float = 0.0
    rho: float = 0.0
    policy: dict | None = None

    @property
    def remaining(self) -> float:
        """ε-denominated remaining budget, matching the accountant's
        :meth:`~repro.service.accountant.PrivacyAccountant.remaining`."""
        if self.policy is not None:
            return policy_from_dict(self.policy).epsilon_remaining(
                SpendCurve(self.spent, self.delta, self.rho)
            )
        if self.cap is None:
            return float("inf")
        return max(0.0, self.cap - self.spent)

    @property
    def native_remaining(self) -> dict | None:
        """Remaining budget in the policy's native unit(s); None when the
        ledger recorded no policy (v1 float cap or no register)."""
        if self.policy is None:
            return None
        return policy_from_dict(self.policy).remaining(
            SpendCurve(self.spent, self.delta, self.rho)
        )


@dataclass
class SpendReport:
    """The replayed ledger: per-dataset totals plus the debit timeline."""

    source: str
    datasets: dict[str, DatasetSpend] = field(default_factory=dict)
    timeline: list[SpendEvent] = field(default_factory=list)
    records: int = 0  # committed records replayed (registers + debits)
    torn: bool = False  # a torn/corrupt tail was detected (and ignored)

    def spent(self, dataset: str) -> float:
        ds = self.datasets.get(dataset)
        return 0.0 if ds is None else ds.spent

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "records": self.records,
            "torn_tail": self.torn,
            "datasets": {
                name: {
                    "cap": ds.cap,
                    "spent": ds.spent,
                    "remaining": (
                        None
                        if ds.cap is None and ds.policy is None
                        else ds.remaining
                    ),
                    "debits": ds.debits,
                    "last_stage": ds.last_stage,
                    "delta": ds.delta,
                    "rho": ds.rho,
                    "policy": ds.policy,
                    "native_remaining": ds.native_remaining,
                }
                for name, ds in sorted(self.datasets.items())
            },
            "timeline": [
                {
                    "seq": e.seq,
                    "dataset": e.dataset,
                    "epsilon": e.epsilon,
                    "composition": e.composition,
                    "stage": e.stage,
                    "cumulative": e.cumulative,
                    "mechanism": e.mechanism,
                    "delta": e.delta,
                    "rho": e.rho,
                }
                for e in self.timeline
            ],
        }

    def render(self) -> str:
        """Human-readable per-dataset budget table."""
        head = (
            f"ε-spend report — {self.source} "
            f"({self.records} committed records"
            + (", torn tail detected" if self.torn else "")
            + ")"
        )
        if not self.datasets:
            return head + "\n  (no datasets)"
        # δ/ρ columns appear only when some Gaussian debit landed (its
        # δ is always > 0), so the pure-ε table stays byte-stable for v1
        # ledgers — whose ρ curve (ε²/2 per debit) is still tracked.
        mixed = any(ds.delta != 0.0 for ds in self.datasets.values())
        rows = [
            (
                name,
                f"{ds.spent:g}",
                "∞" if ds.cap is None else f"{ds.cap:g}",
                "∞" if ds.cap is None and ds.policy is None else f"{ds.remaining:g}",
                str(ds.debits),
                ds.last_stage or "—",
            )
            + ((f"{ds.delta:g}", f"{ds.rho:g}") if mixed else ())
            for name, ds in sorted(self.datasets.items())
        ]
        cols = ["dataset", "spent", "cap", "remaining", "debits", "last stage"]
        if mixed:
            cols += ["δ", "ρ"]
        widths = [
            max(len(cols[j]), *(len(r[j]) for r in rows))
            for j in range(len(cols))
        ]
        lines = [head, "  " + "  ".join(c.ljust(w) for c, w in zip(cols, widths))]
        for r in rows:
            lines.append("  " + "  ".join(v.ljust(w) for v, w in zip(r, widths)))
        return "\n".join(lines)


def _fold(records, default_cap: float | None, report: SpendReport) -> None:
    """Apply committed records in order — through the *same*
    :func:`repro.privacy.accounting.fold_debit` call
    ``PrivacyAccountant._apply_records`` uses, so the ε/δ/ρ totals are
    bit-equal to a recovery replay of the same ledger."""
    seq = 0
    for r in records:
        kind = r.get("kind")
        if kind == "register":
            name = r["dataset"]
            ds = report.datasets.setdefault(name, DatasetSpend(name, None))
            if "policy" in r:  # v2 register carries a serialized policy
                ds.policy = dict(r["policy"])
                ds.cap = policy_from_dict(r["policy"]).epsilon_cap()
            else:
                ds.cap = float(r["cap"])
        elif kind == "debit":
            name = r["dataset"]
            ds = report.datasets.get(name)
            if ds is None:
                ds = report.datasets[name] = DatasetSpend(name, default_cap)
            curve = SpendCurve(ds.spent, ds.delta, ds.rho)
            cost = fold_debit(curve, r)
            ds.spent, ds.delta, ds.rho = curve.epsilon, curve.delta, curve.rho
            ds.debits += 1
            ds.last_stage = r.get("stage", "")
            report.timeline.append(
                SpendEvent(
                    seq=seq,
                    dataset=name,
                    epsilon=cost.epsilon,
                    composition=r.get("composition", "sequential"),
                    stage=r.get("stage", ""),
                    cumulative=ds.spent,
                    mechanism=cost.mechanism,
                    delta=cost.delta,
                    rho=cost.rho,
                )
            )
            seq += 1
        report.records += 1


def replay(path: str, default_cap: float | None = None) -> SpendReport:
    """Read-only replay of a ledger's committed prefix.

    Unlike :meth:`PrivacyAccountant.recover`, this takes no lock and
    never truncates: a torn tail is reported (``report.torn``) but left
    on disk for the next locking writer to clean up.
    """
    from ..service.ledger import WriteAheadLedger

    ledger = WriteAheadLedger(path)
    report = SpendReport(source=os.path.abspath(path))
    _fold(ledger.read_new(), default_cap, report)
    report.torn = ledger.torn_offset is not None
    return report


def report_from_accountant(accountant) -> SpendReport:
    """The same report, from a live accountant's in-memory state.

    Folds the accountant's replayed-plus-appended ledger entries (the
    committed history it has observed) under its registered caps; totals
    equal ``accountant.spent(...)`` for every dataset with a WAL — and
    for memory-only accountants too, since both fold the same entries in
    the same order.
    """
    accountant.sync()
    report = SpendReport(source=accountant.wal_path or "<memory>")
    for name in accountant.datasets():
        ds = report.datasets[name] = DatasetSpend(name, accountant.cap(name))
        policy = accountant.policy(name)
        if policy.kind != "epsilon":
            ds.policy = policy.to_dict()
        report.records += 1  # the (implied) register record
    for seq, entry in enumerate(accountant.ledger):
        ds = report.datasets.setdefault(
            entry.dataset, DatasetSpend(entry.dataset, None)
        )
        curve = SpendCurve(ds.spent, ds.delta, ds.rho)
        curve.add(
            PrivacyCost(entry.epsilon, entry.delta, entry.rho, entry.mechanism)
        )
        ds.spent, ds.delta, ds.rho = curve.epsilon, curve.delta, curve.rho
        ds.debits += 1
        ds.last_stage = entry.stage
        report.timeline.append(
            SpendEvent(
                seq=seq,
                dataset=entry.dataset,
                epsilon=entry.epsilon,
                composition=entry.composition,
                stage=entry.stage,
                cumulative=ds.spent,
                mechanism=entry.mechanism,
                delta=entry.delta,
                rho=entry.rho,
            )
        )
        report.records += 1
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.spend",
        description="Replay a write-ahead ε-ledger into a spend report "
        "(read-only: no locking, no torn-tail truncation).",
    )
    parser.add_argument("ledger", help="path of the WAL ledger file")
    parser.add_argument(
        "--default-cap",
        type=float,
        default=None,
        help="cap assumed for datasets the ledger debits but never "
        "registers (mirrors PrivacyAccountant's default_cap)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full report (datasets + timeline) as JSON",
    )
    args = parser.parse_args(argv)
    if not os.path.isfile(args.ledger):
        print(f"error: no ledger file at {args.ledger}", file=sys.stderr)
        return 2
    report = replay(args.ledger, default_cap=args.default_cap)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
