"""Zero-dependency observability for the serving stack.

Three coordinated pieces (all off by default, all process-wide):

* :mod:`repro.obs.metrics` — a lock-protected, label-keyed registry of
  counters, gauges, and fixed-bucket histograms with a ``snapshot()``
  dict and a Prometheus-style ``render_text()``;
* :mod:`repro.obs.trace` — per-request span trees with trace IDs stamped
  onto answer provenance, an in-memory ring of finished traces, and an
  optional JSONL sink in the ε-ledger's checksummed record format;
* :mod:`repro.obs.spend` — a read-only replay of the accountant's WAL
  into a per-dataset spend timeline (also ``python -m repro.obs.spend``).

Typical use::

    import repro.obs as obs

    obs.enable()                      # metrics + tracing on
    answers = ds.ask_many(exprs, eps=0.5)
    obs.get_trace(answers[0].trace_id)   # the full span tree
    print(obs.render_text())             # Prometheus exposition
    print(sess.budget_report().render()) # ε position per dataset

Disabled, every instrumented call site degrades to an attribute check
or a shared null object — the ``observability`` benchmark scenario in
``benchmarks/bench_perf_regression.py`` enforces < 3% overhead on the
disabled free-hit serving path (enabled, you pay for what you get: a
full span tree and labelled counters per request, recorded by the same
benchmark).
"""

from __future__ import annotations

from .events import emit
from .metrics import (
    REGISTRY,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    render_text,
    snapshot,
)
from .trace import (
    TRACER,
    JsonlTraceSink,
    Span,
    Tracer,
    current_trace_id,
    get_trace,
    read_trace_log,
    span,
)
__all__ = [
    "JsonlTraceSink",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TRACER",
    "Tracer",
    "counter",
    "current_trace_id",
    "disable",
    "emit",
    "enable",
    "enabled",
    "gauge",
    "get_trace",
    "histogram",
    "render_text",
    "reset",
    "snapshot",
    "span",
    "spend",
]


def enable(
    metrics: bool = True,
    trace: bool = True,
    sink: "str | JsonlTraceSink | None" = None,
) -> None:
    """Turn observability on process-wide.

    ``sink`` (a path or a :class:`JsonlTraceSink`) additionally streams
    finished traces to a checksummed JSONL log.
    """
    if metrics:
        REGISTRY.enable()
    if trace:
        TRACER.enable()
    if sink is not None:
        TRACER.sink = (
            sink if isinstance(sink, JsonlTraceSink) else JsonlTraceSink(sink)
        )


def disable() -> None:
    """Turn metrics and tracing off (recorded state is kept)."""
    REGISTRY.disable()
    TRACER.disable()
    TRACER.sink = None


def enabled() -> bool:
    return REGISTRY.enabled or TRACER.enabled


def reset() -> None:
    """Drop all recorded metrics and traces (tests/benchmarks)."""
    REGISTRY.reset()
    TRACER.reset()


def __getattr__(name):
    # Lazy so `python -m repro.obs.spend` doesn't import the module twice
    # (once as the package attribute, once as __main__ — runpy warns).
    # Imported via importlib, not `from . import`: the latter re-enters
    # this __getattr__ through the fromlist hasattr probe and recurses.
    if name == "spend":
        import importlib

        return importlib.import_module(".spend", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
