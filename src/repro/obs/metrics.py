"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Zero-dependency (numpy only) and built for a hot serving path:

* the registry is **disabled by default** — every accessor then returns a
  shared null metric whose ``inc``/``set``/``observe`` are no-ops, so an
  uninstrumented deployment pays one attribute check per call site;
* metric families are label-keyed: ``counter("service.answers_total",
  dataset="adult", route="cache")`` resolves (or creates) the child for
  that exact label set, and two call sites with the same labels share one
  child regardless of keyword order;
* histograms are fixed-bucket: a tuple of ascending edges bisected per
  observation into a preallocated ``int64`` numpy count array — no
  per-observation allocation;
* one :class:`threading.Lock` protects every mutation, so counts are
  exact under the threaded-stress traffic the accountant already
  survives (tests/test_faults.py).

Readout is a plain :meth:`MetricsRegistry.snapshot` dict or the
Prometheus text exposition format via
:meth:`MetricsRegistry.render_text` (metric names have ``.`` mapped to
``_``; label values are escaped per the exposition spec).

The module-level :data:`REGISTRY` is the process-wide instance the
service instruments; :func:`repro.obs.enable` / ``disable`` flip it.
"""

from __future__ import annotations

import threading
from bisect import bisect_right

import numpy as np

__all__ = [
    "DEFAULT_MS_BUCKETS",
    "MetricsRegistry",
    "NULL_METRIC",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "render_text",
    "snapshot",
]

#: Default latency buckets (milliseconds): microseconds for the gather
#: path up through the multi-second cold fits.
DEFAULT_MS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 10000.0,
)


class _NullMetric:
    """Shared no-op stand-in returned by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_METRIC = _NullMetric()


class Counter:
    """Monotonically increasing value (float so ε totals accumulate)."""

    __slots__ = ("_lock", "value")
    kind = "counter"

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("_lock", "value")
    kind = "gauge"

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` observations ≤ ``edges[i]``
    (exclusive of lower edges), with a trailing +Inf bucket."""

    __slots__ = ("_lock", "edges", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, lock: threading.Lock, edges: tuple):
        self._lock = lock
        self.edges = edges
        self.counts = np.zeros(len(edges) + 1, dtype=np.int64)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            self.counts[bisect_right(self.edges, v)] += 1
            self.sum += v
            self.count += 1


class _Family:
    """One metric name: its kind, shared config, and per-label children."""

    __slots__ = ("kind", "name", "buckets", "children")

    def __init__(self, kind: str, name: str, buckets: tuple | None):
        self.kind = kind
        self.name = name
        self.buckets = buckets
        self.children: dict[tuple, object] = {}

    def make_child(self, lock: threading.Lock):
        if self.kind == "counter":
            return Counter(lock)
        if self.kind == "gauge":
            return Gauge(lock)
        return Histogram(lock, self.buckets)


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _escape(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(items) -> str:
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + inner + "}"


class MetricsRegistry:
    """Lock-protected, label-keyed registry of counters/gauges/histograms.

    ``enabled`` is a plain attribute so instrumented call sites can gate
    batch-level work on one attribute read; accessor methods themselves
    return :data:`NULL_METRIC` while disabled, so un-gated call sites are
    no-ops too (just not free ones).
    """

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # -- lifecycle -----------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every family and child (tests/benchmarks)."""
        with self._lock:
            self._families.clear()

    # -- accessors -----------------------------------------------------------
    def _child(self, kind: str, name: str, labels: dict, buckets):
        key = tuple(sorted(labels.items()))
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = self._families[name] = _Family(kind, name, buckets)
            elif fam.kind != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a {fam.kind}, "
                    f"not a {kind}"
                )
            child = fam.children.get(key)
            if child is None:
                child = fam.children[key] = fam.make_child(self._lock)
            return child

    def counter(self, name: str, **labels) -> Counter:
        if not self.enabled:
            return NULL_METRIC
        return self._child("counter", name, labels, None)

    def gauge(self, name: str, **labels) -> Gauge:
        if not self.enabled:
            return NULL_METRIC
        return self._child("gauge", name, labels, None)

    def histogram(
        self, name: str, buckets: tuple | None = None, **labels
    ) -> Histogram:
        """``buckets`` (ascending edges) binds on the family's first use;
        later calls reuse the family's edges regardless."""
        if not self.enabled:
            return NULL_METRIC
        edges = tuple(float(b) for b in buckets) if buckets else DEFAULT_MS_BUCKETS
        if any(b >= a for a, b in zip(edges[1:], edges)):
            raise ValueError(f"histogram buckets must be ascending: {edges}")
        return self._child("histogram", name, labels, edges)

    # -- readout -------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict view: ``{name: {"type": ..., "series": [...]}}`` with
        one entry per label set (histograms carry edges/buckets/sum/count)."""
        out: dict = {}
        with self._lock:
            for name, fam in sorted(self._families.items()):
                series = []
                for key, child in sorted(fam.children.items()):
                    entry: dict = {"labels": dict(key)}
                    if fam.kind == "histogram":
                        entry.update(
                            count=int(child.count),
                            sum=float(child.sum),
                            edges=list(child.edges),
                            buckets=child.counts.tolist(),
                        )
                    else:
                        entry["value"] = float(child.value)
                    series.append(entry)
                out[name] = {"type": fam.kind, "series": series}
        return out

    def render_text(self) -> str:
        """Prometheus text exposition format (names ``.``→``_``)."""
        lines: list[str] = []
        with self._lock:
            for name, fam in sorted(self._families.items()):
                pname = _sanitize(name)
                lines.append(f"# TYPE {pname} {fam.kind}")
                for key, child in sorted(fam.children.items()):
                    if fam.kind == "histogram":
                        cum = 0
                        for edge, n in zip(
                            child.edges, child.counts[:-1]
                        ):
                            cum += int(n)
                            lines.append(
                                f"{pname}_bucket"
                                f"{_labels_text(key + (('le', f'{edge:g}'),))}"
                                f" {cum}"
                            )
                        lines.append(
                            f"{pname}_bucket"
                            f"{_labels_text(key + (('le', '+Inf'),))}"
                            f" {child.count}"
                        )
                        lines.append(
                            f"{pname}_sum{_labels_text(key)} {child.sum:g}"
                        )
                        lines.append(
                            f"{pname}_count{_labels_text(key)} {child.count}"
                        )
                    else:
                        lines.append(
                            f"{pname}{_labels_text(key)} {child.value:g}"
                        )
        return "\n".join(lines) + ("\n" if lines else "")


#: The process-wide registry every instrumented module shares.
REGISTRY = MetricsRegistry()


def counter(name: str, **labels) -> Counter:
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, buckets: tuple | None = None, **labels) -> Histogram:
    return REGISTRY.histogram(name, buckets=buckets, **labels)


def snapshot() -> dict:
    return REGISTRY.snapshot()


def render_text() -> str:
    return REGISTRY.render_text()
