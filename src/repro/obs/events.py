"""Structured observability events over the stdlib ``logging`` tree.

The service's noteworthy-but-rare occurrences (a quarantined registry
entry, a refused debit, a torn WAL tail) were ad-hoc ``logger.warning``
calls with hand-formatted messages.  :func:`emit` gives them one shape:
a stable event name followed by the event's fields as canonical JSON —
grep-able, parse-able, and counted in the metrics registry
(``obs.events_total{event=...}``) so a dashboard can alert on rates
without scraping log text.

    emit(logger, "registry.entry_quarantined",
         key=key, reason=reason, quarantined_to=where)

logs ``registry.entry_quarantined {"key": ..., "quarantined_to": ...,
"reason": ...}`` at WARNING through the module's own logger, so existing
``logging`` configuration (handlers, levels, capture in tests) keeps
working unchanged.
"""

from __future__ import annotations

import json
import logging

from .metrics import REGISTRY

__all__ = ["emit"]


def emit(
    logger: logging.Logger,
    event: str,
    level: int = logging.WARNING,
    **fields,
) -> None:
    """Log one structured event and count it.

    ``fields`` must be JSON-representable or stringable; they are
    serialized canonically (sorted keys) so identical events produce
    identical lines.
    """
    if REGISTRY.enabled:
        REGISTRY.counter("obs.events_total", event=event).inc()
    logger.log(
        level,
        "%s %s",
        event,
        json.dumps(fields, sort_keys=True, default=str),
    )
