"""Per-dataset budget policies: what a privacy cap *is*.

The original accountant had one notion of budget — a pure-ε cap folded
by summation.  With mixed Laplace/Gaussian traffic there are three
natural cap denominations, and the data owner picks one per dataset:

* :class:`PureEpsilonPolicy` — a cap on the summed per-release ε
  equivalents.  The historical behaviour, bit-compatible with every v1
  ledger: admits iff ``Σε + ε_new ≤ cap``.
* :class:`ApproxDPPolicy` — an (ε, δ) cap under basic composition:
  admits iff both ``Σε + ε_new ≤ cap_ε`` and ``Σδ + δ_new ≤ cap_δ``.
  A ``cap_δ`` of 0 forbids Gaussian measurement outright.
* :class:`ZCDPPolicy` — a ρ cap on the zCDP curve: Gaussian releases
  debit their native ρ, Laplace releases enter via ``ρ = ε²/2``.  The
  tightest accounting for repeated Gaussian traffic.

Policies are *pure* decision objects: they look at a dataset's composed
:class:`~repro.privacy.accounting.SpendCurve` and a prospective
:class:`~repro.privacy.accounting.PrivacyCost` and answer yes/no plus
"how much remains" in their native unit.  Enforcement (raising before
noise is drawn, WAL durability, locking) stays in
:class:`repro.service.accountant.PrivacyAccountant`.

Every policy also provides an ε-denominated *view* (``epsilon_cap`` /
``epsilon_remaining``) so float-based callers — ``Session.remaining``,
the server's spend precheck, the budget report table — keep working
unchanged: for a ρ cap the view is the largest single pure-ε release
that would still fit (``ε = sqrt(2ρ)``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import ClassVar, Mapping

import numpy as np

from .accounting import PrivacyCost, SpendCurve

__all__ = [
    "CAP_SLACK",
    "ApproxDPPolicy",
    "BudgetPolicy",
    "PureEpsilonPolicy",
    "ZCDPPolicy",
    "policy_from_dict",
]

#: Relative slack on cap comparisons so float accumulation of a budget
#: split into many exact shares never spuriously trips the cap (shared
#: with the accountant's historical ``_CAP_SLACK``).
CAP_SLACK = 1e-12


def _fits(spent: float, requested: float, cap: float) -> bool:
    return spent + requested <= cap * (1 + CAP_SLACK)


@dataclass(frozen=True)
class BudgetPolicy:
    """Base interface; concrete policies are frozen dataclasses so the
    accountant can compare them for WAL-dedup and serialize them into
    register records (:meth:`to_dict` / :func:`policy_from_dict`)."""

    kind: ClassVar[str] = ""

    def admits(self, curve: SpendCurve, cost: PrivacyCost) -> bool:
        """Would charging ``cost`` on top of ``curve`` stay within cap?"""
        raise NotImplementedError

    def covers(self, curve: SpendCurve) -> bool:
        """Is an already-composed position within this cap?  (Used when
        re-registering: a policy below the spent budget is rejected.)"""
        raise NotImplementedError

    def remaining(self, curve: SpendCurve) -> dict[str, float]:
        """Unspent budget in the policy's native unit(s)."""
        raise NotImplementedError

    def epsilon_cap(self) -> float:
        """ε-denominated view of the cap, for float-based callers."""
        raise NotImplementedError

    def epsilon_remaining(self, curve: SpendCurve) -> float:
        """ε-denominated view of the unspent budget: the largest single
        pure-ε release that would still be admitted."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def to_dict(self) -> dict:
        d = asdict(self)
        d["kind"] = self.kind
        return d


@dataclass(frozen=True)
class PureEpsilonPolicy(BudgetPolicy):
    """Cap on summed ε equivalents — the historical (v1) budget."""

    epsilon: float
    kind: ClassVar[str] = "epsilon"

    def __post_init__(self):
        if not self.epsilon > 0:
            raise ValueError(f"epsilon cap must be positive, got {self.epsilon!r}")

    def admits(self, curve, cost):
        return _fits(curve.epsilon, cost.epsilon, self.epsilon)

    def covers(self, curve):
        return self.epsilon >= curve.epsilon

    def remaining(self, curve):
        return {"epsilon": max(0.0, self.epsilon - curve.epsilon)}

    def epsilon_cap(self):
        return self.epsilon

    def epsilon_remaining(self, curve):
        return max(0.0, self.epsilon - curve.epsilon)

    def describe(self):
        return f"ε ≤ {self.epsilon:g}"


@dataclass(frozen=True)
class ApproxDPPolicy(BudgetPolicy):
    """(ε, δ) cap under basic composition: both coordinates must fit."""

    epsilon: float
    delta: float
    kind: ClassVar[str] = "approx_dp"

    def __post_init__(self):
        if not self.epsilon > 0:
            raise ValueError(f"epsilon cap must be positive, got {self.epsilon!r}")
        if not 0 <= self.delta < 1:
            raise ValueError(f"delta cap must be in [0, 1), got {self.delta!r}")

    def admits(self, curve, cost):
        return _fits(curve.epsilon, cost.epsilon, self.epsilon) and _fits(
            curve.delta, cost.delta, self.delta
        )

    def covers(self, curve):
        return self.epsilon >= curve.epsilon and self.delta >= curve.delta

    def remaining(self, curve):
        return {
            "epsilon": max(0.0, self.epsilon - curve.epsilon),
            "delta": max(0.0, self.delta - curve.delta),
        }

    def epsilon_cap(self):
        return self.epsilon

    def epsilon_remaining(self, curve):
        return max(0.0, self.epsilon - curve.epsilon)

    def describe(self):
        return f"(ε ≤ {self.epsilon:g}, δ ≤ {self.delta:g})"


@dataclass(frozen=True)
class ZCDPPolicy(BudgetPolicy):
    """ρ cap on the zCDP curve — Laplace debits enter via ``ε²/2``."""

    rho: float
    kind: ClassVar[str] = "zcdp"

    def __post_init__(self):
        if not self.rho > 0:
            raise ValueError(f"rho cap must be positive, got {self.rho!r}")

    def admits(self, curve, cost):
        return _fits(curve.rho, cost.rho, self.rho)

    def covers(self, curve):
        return self.rho >= curve.rho

    def remaining(self, curve):
        return {"rho": max(0.0, self.rho - curve.rho)}

    def epsilon_cap(self):
        # the largest single pure-ε release an empty budget admits
        return float(np.sqrt(2.0 * self.rho))

    def epsilon_remaining(self, curve):
        return float(np.sqrt(2.0 * max(0.0, self.rho - curve.rho)))

    def describe(self):
        return f"ρ ≤ {self.rho:g} (zCDP)"


_POLICY_KINDS = {
    cls.kind: cls for cls in (PureEpsilonPolicy, ApproxDPPolicy, ZCDPPolicy)
}


def policy_from_dict(d: Mapping) -> BudgetPolicy:
    """Inverse of :meth:`BudgetPolicy.to_dict` (WAL register records)."""
    d = dict(d)
    kind = d.pop("kind", "epsilon")
    cls = _POLICY_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown budget policy kind {kind!r}")
    return cls(**d)
