"""The mechanism objects: noise distribution + calibration + cost.

:mod:`repro.core.measure` exposes the mechanisms as free functions
(``laplace_measure_batch``, ``gaussian_measure_batch``, …).  This module
wraps them in first-class objects so layers that *choose* a mechanism —
the planner's RMSE comparison, the engine's measurement routing, the
server's request parser — can pass one value around instead of threading
``(mechanism, delta)`` pairs:

* :class:`LaplaceMechanism` — pure ε-DP, calibrated from L1 sensitivity
  (``A.sensitivity()``): scale ``‖A‖₁/ε``.
* :class:`GaussianMechanism` — (ε, δ)-DP via zCDP, calibrated from L2
  sensitivity (``A.sensitivity(p=2)``): ``σ = Δ₂·sqrt(1/(2ρ))`` with
  ``ρ = eps_to_rho(ε, δ)``.  The δ is part of the mechanism's identity.

Both expose the same surface (:meth:`Mechanism.measure`,
:meth:`Mechanism.measure_batch`, :meth:`Mechanism.variance`,
:meth:`Mechanism.expected_error`, :meth:`Mechanism.cost`) and both
inherit the batched-noise determinism contract of the underlying
functions: trial ``j`` draws from ``SeedSequence.spawn`` child ``j``,
bit-identical to the sequential loop.  :meth:`Mechanism.cost` returns
the :class:`~repro.privacy.accounting.PrivacyCost` the accountant debits
*before* any noise is drawn — so what the planner reports is, by
construction, what the ledger records.

:func:`get_mechanism` resolves the wire/CLI spelling (``"laplace"`` /
``"gaussian"``, optional δ) into an instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from ..core import error as _error
from ..core import measure as _measure
from ..core.privacy import DEFAULT_DELTA, eps_to_rho, gaussian_sigma
from ..core.solvers import validate_budget
from .accounting import PrivacyCost

__all__ = [
    "GaussianMechanism",
    "LaplaceMechanism",
    "Mechanism",
    "get_mechanism",
]


@dataclass(frozen=True)
class Mechanism:
    """Common surface of the noise mechanisms (see module docstring)."""

    name: ClassVar[str] = ""

    def sensitivity(self, A) -> float:
        """The sensitivity norm this mechanism calibrates against."""
        raise NotImplementedError

    def noise_scale(self, A, eps):
        """Per-measurement noise scale at budget ε (vectorized over ε):
        the Laplace ``b`` or the Gaussian ``σ``."""
        raise NotImplementedError

    def measure(self, A, x, eps, rng=None) -> np.ndarray:
        """One private measurement ``y = Ax + noise``."""
        raise NotImplementedError

    def measure_batch(
        self, A, x, eps, rng=None, trials=None, columnwise=False
    ) -> np.ndarray:
        """A trial grid of private measurements (shape ``(m, T)``)."""
        raise NotImplementedError

    def variance(self, A, eps):
        """Per-measurement noise variance at budget ε."""
        return _measure.measurement_variance(
            A, eps, mechanism=self.name, delta=getattr(self, "delta", DEFAULT_DELTA)
        )

    def expected_error(self, W, A, eps=1.0):
        """Expected total squared error answering workload W via A."""
        return _error.expected_error(
            W, A, eps, mechanism=self.name,
            delta=getattr(self, "delta", DEFAULT_DELTA),
        )

    def rootmse(self, W, A, eps=1.0):
        """Per-query root-mean-squared error answering W via A."""
        return _error.rootmse(
            W, A, eps, mechanism=self.name,
            delta=getattr(self, "delta", DEFAULT_DELTA),
        )

    def cost(self, eps) -> PrivacyCost:
        """The accounting cost of releases totalling budget ε.

        For an array of per-trial budgets the trials compose
        sequentially: ε and δ add, and ρ adds *per trial* (Gaussian) —
        tighter than converting the summed ε.
        """
        raise NotImplementedError

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class LaplaceMechanism(Mechanism):
    """Pure ε-DP Laplace noise, calibrated from L1 sensitivity."""

    name: ClassVar[str] = "laplace"

    def sensitivity(self, A) -> float:
        return A.sensitivity()

    def noise_scale(self, A, eps):
        eps_arr = np.asarray(eps, dtype=np.float64)
        out = A.sensitivity() / eps_arr
        return float(out) if eps_arr.ndim == 0 else out

    def measure(self, A, x, eps, rng=None):
        return _measure.laplace_measure(A, x, eps, rng)

    def measure_batch(self, A, x, eps, rng=None, trials=None, columnwise=False):
        return _measure.laplace_measure_batch(
            A, x, eps, rng, trials=trials, columnwise=columnwise
        )

    def cost(self, eps) -> PrivacyCost:
        total = float(np.sum(validate_budget(eps=eps)["eps"]))
        return PrivacyCost.laplace(total)


@dataclass(frozen=True)
class GaussianMechanism(Mechanism):
    """(ε, δ)-DP Gaussian noise via zCDP, calibrated from L2 sensitivity.

    ``delta`` is part of the mechanism's identity: the same ε at a
    smaller δ means a smaller ρ and therefore more noise.
    """

    delta: float = DEFAULT_DELTA
    name: ClassVar[str] = "gaussian"

    def __post_init__(self):
        validate_budget(delta=self.delta)
        if self.delta == 0:
            raise ValueError("the Gaussian mechanism requires delta > 0")

    def sensitivity(self, A) -> float:
        return A.sensitivity(p=2)

    def noise_scale(self, A, eps):
        return gaussian_sigma(A.sensitivity(p=2), eps, self.delta)

    def measure(self, A, x, eps, rng=None):
        return _measure.gaussian_measure(A, x, eps, rng, delta=self.delta)

    def measure_batch(self, A, x, eps, rng=None, trials=None, columnwise=False):
        return _measure.gaussian_measure_batch(
            A, x, eps, rng, trials=trials, columnwise=columnwise,
            delta=self.delta,
        )

    def cost(self, eps) -> PrivacyCost:
        eps_arr = validate_budget(eps=eps)["eps"]
        total = float(np.sum(eps_arr))
        # per-trial ρ's compose by summation — tighter than eps_to_rho
        # of the summed ε, and exactly what each release actually costs
        rho = float(np.sum(eps_to_rho(eps_arr, self.delta)))
        return PrivacyCost(
            epsilon=total,
            delta=self.delta * eps_arr.size,
            rho=rho,
            mechanism=self.name,
        )


_BY_NAME = {"laplace": LaplaceMechanism, "gaussian": GaussianMechanism}


def get_mechanism(
    mechanism: str | Mechanism = "laplace", delta: float | None = None
) -> Mechanism:
    """Resolve a mechanism spelling into an instance.

    Accepts an instance (returned as-is unless a conflicting ``delta`` is
    given), or a name: ``"laplace"`` (δ must be unset/ignored) or
    ``"gaussian"`` (δ defaults to :data:`DEFAULT_DELTA`).
    """
    if isinstance(mechanism, Mechanism):
        if delta is not None and getattr(mechanism, "delta", None) != delta:
            if isinstance(mechanism, GaussianMechanism):
                return GaussianMechanism(delta=delta)
            raise ValueError(
                f"mechanism {mechanism.name!r} does not take a delta"
            )
        return mechanism
    cls = _BY_NAME.get(mechanism)
    if cls is None:
        raise ValueError(
            f"unknown mechanism {mechanism!r}; expected one of "
            f"{sorted(_BY_NAME)}"
        )
    if cls is GaussianMechanism:
        return cls(delta=DEFAULT_DELTA if delta is None else delta)
    if delta is not None:
        raise ValueError(f"mechanism {mechanism!r} does not take a delta")
    return cls()
