"""zCDP/(ε, δ) composition curves and the shared debit-fold arithmetic.

The accountant's durable state is a WAL of debit records; this module
defines what a debit *costs* and how costs compose:

* :class:`PrivacyCost` — the cost of one noisy release in every unit at
  once: its pure-ε equivalent (``epsilon``), the δ it was calibrated
  against (``delta``), and its zCDP budget (``rho``).  Laplace releases
  are ``(ε, 0, ε²/2)``; Gaussian releases calibrated to a target (ε, δ)
  are ``(ε, δ, eps_to_rho(ε, δ))``.
* :class:`SpendCurve` — a dataset's composed position: sequential
  composition sums every component; parallel composition takes the max.
  Conversion back to (ε, δ) happens at *report* time via
  :meth:`SpendCurve.epsilon_at`, using the full zCDP history (tighter
  than summing the per-release ε's).
* :func:`fold_debit` — the single fold applied to a committed WAL debit
  record.  ``PrivacyAccountant._apply_records`` and the read-only replay
  in :mod:`repro.obs.spend` both call exactly this function, so the
  recovered curves are bit-equal by construction.  v1 records (pure-ε,
  no ``delta``/``rho`` fields) fold as Laplace debits, reproducing the
  pre-mechanism-subsystem totals bit-for-bit.

The conversion curves themselves (zCDP ↔ (ε, δ), Bun & Steinke 2016)
live in :mod:`repro.core.privacy` and are re-exported here as the
canonical accounting API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.privacy import (
    DEFAULT_DELTA,
    eps_to_rho,
    pure_eps_to_rho,
    rho_to_eps,
)

__all__ = [
    "DEFAULT_DELTA",
    "PrivacyCost",
    "SpendCurve",
    "cost_from_record",
    "eps_to_rho",
    "fold_debit",
    "pure_eps_to_rho",
    "rho_to_eps",
]


@dataclass(frozen=True)
class PrivacyCost:
    """The cost of one noisy release, in every accounting unit at once.

    ``epsilon`` is the pure-ε equivalent (what a v1 ledger records and a
    pure-ε cap debits); ``delta`` is the δ the release was calibrated
    against (0 for Laplace); ``rho`` is the zCDP cost (``ε²/2`` for
    Laplace, the calibration ρ for Gaussian).  ``mechanism`` names the
    noise distribution actually drawn.
    """

    epsilon: float
    delta: float = 0.0
    rho: float = 0.0
    mechanism: str = "laplace"

    def __post_init__(self):
        if self.epsilon < 0 or self.delta < 0 or self.rho < 0:
            raise ValueError(f"privacy cost components must be >= 0: {self}")

    @classmethod
    def laplace(cls, epsilon: float) -> "PrivacyCost":
        return cls(
            epsilon=float(epsilon),
            rho=pure_eps_to_rho(float(epsilon)),
            mechanism="laplace",
        )

    @classmethod
    def gaussian(cls, epsilon: float, delta: float = DEFAULT_DELTA) -> "PrivacyCost":
        return cls(
            epsilon=float(epsilon),
            delta=float(delta),
            rho=eps_to_rho(float(epsilon), float(delta)),
            mechanism="gaussian",
        )


class SpendCurve:
    """A dataset's composed privacy position across mixed mechanisms.

    Three accumulators, each folded with plain ``+`` (sequential) or
    ``max`` (parallel) so replay arithmetic is bit-stable:

    * ``epsilon`` — sum of per-release ε equivalents (the v1 ledger fold;
      a valid pure-ε guarantee for Laplace-only traffic and the ε half of
      a basic-composition (ε, δ) guarantee otherwise);
    * ``delta`` — sum of per-release δ's (the δ half of that guarantee);
    * ``rho`` — zCDP-denominated total (Laplace folds ``ε²/2``, Gaussian
      folds its native ρ), the tight curve for report-time conversion.
    """

    __slots__ = ("epsilon", "delta", "rho")

    def __init__(self, epsilon: float = 0.0, delta: float = 0.0, rho: float = 0.0):
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.rho = float(rho)

    def add(self, cost: PrivacyCost) -> None:
        """Sequential composition: every component adds."""
        self.epsilon = self.epsilon + cost.epsilon
        self.delta = self.delta + cost.delta
        self.rho = self.rho + cost.rho

    def add_parallel(self, cost: PrivacyCost) -> None:
        """Parallel composition over disjoint partitions: components max."""
        self.epsilon = max(self.epsilon, cost.epsilon)
        self.delta = max(self.delta, cost.delta)
        self.rho = max(self.rho, cost.rho)

    def epsilon_at(self, delta: float = DEFAULT_DELTA) -> float:
        """The (ε, δ)-DP guarantee of the whole history at report time.

        Converts the composed zCDP curve: ``ε = ρ + 2·sqrt(ρ·ln(1/δ))``.
        Tighter than ``self.epsilon`` once more than a few releases have
        composed (zCDP composition beats basic composition).
        """
        return rho_to_eps(self.rho, delta)

    def copy(self) -> "SpendCurve":
        return SpendCurve(self.epsilon, self.delta, self.rho)

    def as_dict(self) -> dict:
        return {"epsilon": self.epsilon, "delta": self.delta, "rho": self.rho}

    def __eq__(self, other) -> bool:
        if not isinstance(other, SpendCurve):
            return NotImplemented
        return (
            self.epsilon == other.epsilon
            and self.delta == other.delta
            and self.rho == other.rho
        )

    def __repr__(self) -> str:
        return (
            f"SpendCurve(epsilon={self.epsilon:g}, delta={self.delta:g}, "
            f"rho={self.rho:g})"
        )


def cost_from_record(record: Mapping) -> PrivacyCost:
    """The :class:`PrivacyCost` a committed WAL debit record carries.

    v1 records have only ``epsilon`` — they fold as Laplace debits
    (δ = 0, ρ = ε²/2) so pre-mechanism ledgers replay to the same curves
    a live pure-ε run would have produced.  v2 records carry explicit
    ``mechanism``/``delta``/``rho`` fields.
    """
    eps = float(record["epsilon"])
    mechanism = record.get("mechanism", "laplace")
    delta = float(record.get("delta", 0.0))
    rho = record.get("rho")
    rho = pure_eps_to_rho(eps) if rho is None else float(rho)
    return PrivacyCost(epsilon=eps, delta=delta, rho=rho, mechanism=mechanism)


def fold_debit(curve: SpendCurve, record: Mapping) -> PrivacyCost:
    """Fold one committed debit record into a dataset's spend curve.

    THE shared fold: the accountant's recovery and the read-only
    ``repro.obs.spend`` replay both call this exact function, which is
    what makes their recovered curves bit-equal.  Returns the record's
    cost for callers that also track timelines.
    """
    cost = cost_from_record(record)
    curve.add(cost)
    return cost
