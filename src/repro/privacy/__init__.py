"""repro.privacy — the mechanism subsystem.

First-class noise mechanisms (Laplace / Gaussian), zCDP/(ε, δ)
composition accounting, and per-dataset budget policies.  Built on the
calculus in :mod:`repro.core.privacy`; consumed by the service
accountant, the planner's mechanism comparison, and the HTTP front-end.

* :mod:`repro.privacy.mechanisms` — :class:`Mechanism` objects bundling
  noise distribution, sensitivity norm, calibration, and accounting
  cost.
* :mod:`repro.privacy.accounting` — :class:`PrivacyCost`,
  :class:`SpendCurve`, and the shared WAL debit fold (bit-equal between
  the accountant's recovery and read-only replay).
* :mod:`repro.privacy.policy` — pure-ε, (ε, δ), and ρ-zCDP budget caps.
"""

from .accounting import (
    DEFAULT_DELTA,
    PrivacyCost,
    SpendCurve,
    cost_from_record,
    eps_to_rho,
    fold_debit,
    pure_eps_to_rho,
    rho_to_eps,
)
from .mechanisms import (
    GaussianMechanism,
    LaplaceMechanism,
    Mechanism,
    get_mechanism,
)
from .policy import (
    CAP_SLACK,
    ApproxDPPolicy,
    BudgetPolicy,
    PureEpsilonPolicy,
    ZCDPPolicy,
    policy_from_dict,
)

__all__ = [
    "CAP_SLACK",
    "DEFAULT_DELTA",
    "ApproxDPPolicy",
    "BudgetPolicy",
    "GaussianMechanism",
    "LaplaceMechanism",
    "Mechanism",
    "PrivacyCost",
    "PureEpsilonPolicy",
    "SpendCurve",
    "ZCDPPolicy",
    "cost_from_record",
    "eps_to_rho",
    "fold_debit",
    "get_mechanism",
    "policy_from_dict",
    "pure_eps_to_rho",
    "rho_to_eps",
]
