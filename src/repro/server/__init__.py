"""Resilient multi-tenant serving front-end for the HDMM query service.

A zero-dependency asyncio HTTP/1.1 server wrapping
:class:`repro.api.Session` / :class:`repro.service.QueryService` with
the four robustness mechanisms a privacy budget forces on a network
edge:

* :mod:`repro.server.deadline` — per-request deadlines with per-stage
  budgets and the ε-spend fence (expiry before the charge refuses free;
  a committed debit is never refunded);
* :mod:`repro.server.admission` — bounded queue + per-dataset limiter,
  structured 429/503 shedding, free routes always admitted;
* :mod:`repro.server.retry` — shared retry/backoff policy (decorrelated
  jitter, process-wide retry budget) used by the lower layers too;
* :mod:`repro.server.breaker` — circuit breaker around cold fits, with
  degraded direct-measurement serving while open.

:mod:`repro.server.app` binds them into :class:`ServerApp` (the
transport-free request handler) and :mod:`repro.server.http` serves it
over ``asyncio.start_server`` with health/readiness/metrics endpoints
and drain-then-flush shutdown.

This ``__init__`` resolves attributes lazily (module ``__getattr__``,
PEP 562) because lower layers — :mod:`repro.service.ledger`,
:mod:`repro.service.faults`, :mod:`repro.obs.trace` — import
:mod:`repro.server.retry`; an eager import of the app/http modules here
would close a cycle back into the service layer.
"""

from __future__ import annotations

__all__ = [
    "AdmissionController",
    "BreakerOpenError",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceededError",
    "HttpServer",
    "RetryBudget",
    "RetryPolicy",
    "ServerApp",
    "ShedError",
    "call_retrying",
    "error_response",
    "serve_in_thread",
]

_EXPORTS = {
    "AdmissionController": "admission",
    "ShedError": "admission",
    "CircuitBreaker": "breaker",
    "BreakerOpenError": "breaker",
    "Deadline": "deadline",
    "DeadlineExceededError": "deadline",
    "RetryBudget": "retry",
    "RetryPolicy": "retry",
    "call_retrying": "retry",
    "error_response": "errors",
    "ServerApp": "app",
    "HttpServer": "http",
    "serve_in_thread": "http",
}


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)


def __dir__():
    return sorted(set(globals()) | set(__all__))
