"""Admission control and backpressure for the serving edge.

The server's capacity model has two tiers, because the serving stack's
cost model has two tiers (see the routing table in
:mod:`repro.service.engine`):

* **free routes** (accelerator / cache hits, plans with ε = 0) are
  microseconds of post-processing — they are *always admitted*, even
  when every fit executor thread is busy.  A saturated measurement path
  must never take down the cheap reads that make the service useful
  under load; this is the degraded-but-alive half of graceful
  degradation.
* **measured routes** (warm / direct / cold misses) occupy a bounded
  executor thread for milliseconds-to-seconds.  They pass a per-dataset
  concurrency limiter and then a global slot pool with a **bounded
  queue**: up to ``max_queue`` requests may wait for a slot (respecting
  their deadline), and everything beyond that is shed immediately with a
  structured 429/503 + ``Retry-After`` — the queue can never grow
  without bound, so latency under overload stays flat instead of
  compounding.

Shedding raises :class:`ShedError`, which the HTTP layer maps to its
status + ``Retry-After`` header and counts into
``server.shed_total{reason=...}``.  The controller is written for one
asyncio event loop (the server's) — its state is only touched from loop
callbacks, so plain counters suffice; the waiting itself uses an
``asyncio.Semaphore`` so queued requests don't block the loop.
"""

from __future__ import annotations

import asyncio

__all__ = ["AdmissionController", "ShedError"]


class ShedError(Exception):
    """The server refused to queue this request.

    ``status`` is the HTTP status the refusal maps to (429 when the
    *client's* traffic pattern is the cause — per-dataset concurrency —
    and 503 when the *server* is saturated globally), ``retry_after``
    the back-off hint in seconds, ``reason`` the stable label counted
    into ``server.shed_total``.
    """

    def __init__(self, reason: str, status: int, retry_after: float):
        self.reason = reason
        self.status = int(status)
        self.retry_after = float(retry_after)
        super().__init__(
            f"request shed ({reason}); retry after {retry_after:g}s"
        )


class AdmissionController:
    """Bounded admission for the measured path; free routes bypass it.

    Parameters
    ----------
    max_measure:
        Concurrent measured requests actually executing (should match
        the executor's thread count — a slot is an executor thread).
    max_queue:
        Measured requests allowed to *wait* for a slot.  Beyond it the
        request is shed instantly with 503 ``queue_full``.
    per_dataset:
        Concurrent measured requests per dataset.  The ledger serializes
        debits per accountant anyway, so a single hot dataset queueing up
        the whole pool would buy no throughput — shed with 429 instead.
    retry_after:
        Baseline ``Retry-After`` hint; queue-full sheds scale it by the
        queue occupancy so clients back off harder the deeper the
        overload.
    """

    def __init__(
        self,
        max_measure: int = 2,
        max_queue: int = 8,
        per_dataset: int = 2,
        retry_after: float = 0.05,
    ):
        if max_measure < 1 or max_queue < 0 or per_dataset < 1:
            raise ValueError(
                "need max_measure >= 1, max_queue >= 0, per_dataset >= 1; "
                f"got {max_measure}, {max_queue}, {per_dataset}"
            )
        self.max_measure = int(max_measure)
        self.max_queue = int(max_queue)
        self.per_dataset = int(per_dataset)
        self.retry_after = float(retry_after)
        self._slots = asyncio.Semaphore(self.max_measure)
        self.queued = 0
        self.executing = 0
        self.inflight_by_dataset: dict[str, int] = {}
        self.shed_counts: dict[str, int] = {}

    # -- bookkeeping ---------------------------------------------------------
    def _shed(self, reason: str, status: int, retry_after: float):
        self.shed_counts[reason] = self.shed_counts.get(reason, 0) + 1
        raise ShedError(reason, status, retry_after)

    # -- the measured path ---------------------------------------------------
    async def acquire_measure(self, dataset: str, timeout: float | None = None):
        """Take one measured-path slot, waiting in the bounded queue.

        Raises :class:`ShedError` instead of waiting when the queue is
        full or the dataset is already at its concurrency limit; raises
        it too when ``timeout`` (typically the request deadline's
        remaining time) elapses while queued.  On success the caller
        *must* call :meth:`release_measure` (use try/finally — it must
        run even when the request dies on a simulated crash).
        """
        if self.inflight_by_dataset.get(dataset, 0) >= self.per_dataset:
            self._shed("dataset_concurrency", 429, self.retry_after)
        if self._slots.locked() and self.queued >= self.max_queue:
            # The queue bound applies only to requests that would have to
            # *wait* — with a slot free the request executes immediately
            # and was never queued.  Scale the hint by occupancy: the
            # deeper the backlog, the longer a retry is pointless.
            self._shed(
                "queue_full", 503, self.retry_after * (1 + self.queued)
            )
        self.queued += 1
        self.inflight_by_dataset[dataset] = (
            self.inflight_by_dataset.get(dataset, 0) + 1
        )
        try:
            if timeout is not None:
                try:
                    await asyncio.wait_for(self._slots.acquire(), timeout)
                except asyncio.TimeoutError:
                    self._shed("queue_timeout", 503, self.retry_after)
            else:
                await self._slots.acquire()
        except BaseException:
            self.queued -= 1
            self._release_dataset(dataset)
            raise
        self.queued -= 1
        self.executing += 1

    def release_measure(self, dataset: str) -> None:
        self.executing -= 1
        self._release_dataset(dataset)
        self._slots.release()

    def _release_dataset(self, dataset: str) -> None:
        n = self.inflight_by_dataset.get(dataset, 0) - 1
        if n <= 0:
            self.inflight_by_dataset.pop(dataset, None)
        else:
            self.inflight_by_dataset[dataset] = n

    def __repr__(self) -> str:
        return (
            f"AdmissionController(executing={self.executing}/"
            f"{self.max_measure}, queued={self.queued}/{self.max_queue}, "
            f"shed={sum(self.shed_counts.values())})"
        )
