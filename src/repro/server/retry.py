"""Shared retry/backoff policy for transient faults at the serving edge.

One policy object describes *how* to retry — attempt count, base delay,
delay cap, decorrelated jitter — and one process-wide budget bounds *how
much* retrying the whole server may do, so a correlated fault (a full
disk, a contended ledger lock) degrades into fast failures instead of a
retry storm that multiplies the very load that caused it.

The module is deliberately dependency-free (stdlib only, no imports
from the rest of the package) so every layer can use it:

* :func:`repro.service.faults.retrying` delegates its bounded-backoff
  loop here (exponential, no jitter — preserving the deterministic
  delays the fault matrix asserts on);
* the write-ahead ledger's lock acquisition
  (:meth:`repro.service.ledger.WriteAheadLedger.locked`) polls a
  non-blocking ``flock`` under a jittered policy until its timeout;
* registry loads and trace-sink writes retry transient ``OSError``\\ s
  under the default policy.

Jitter follows the "decorrelated jitter" scheme (each delay is drawn
uniformly from ``[base, 3 * previous]``, capped), which empirically
spreads concurrent retriers better than exponential-with-full-jitter;
``jitter=False`` gives plain exponential doubling for callers that need
reproducible delays.
"""

from __future__ import annotations

import errno
import threading
import time
from dataclasses import dataclass

__all__ = [
    "DEFAULT_POLICY",
    "RetryBudget",
    "RetryPolicy",
    "call_retrying",
    "retryable_oserror",
]

#: Transient errnos worth another attempt (mirrors
#: :data:`repro.service.faults.RETRYABLE_ERRNOS`; duplicated here so this
#: module stays import-free — the two are asserted equal in tests).
_TRANSIENT_ERRNOS = frozenset({errno.EINTR, errno.EAGAIN, errno.ENOSPC})


def retryable_oserror(exc: BaseException) -> bool:
    """The default transient-fault classifier: an ``OSError`` whose errno
    names a condition that clears by itself (interrupt, contention, a
    log-rotated disk)."""
    return isinstance(exc, OSError) and exc.errno in _TRANSIENT_ERRNOS


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry: attempt count and the delay schedule between tries.

    ``retries`` is the number of *re*-tries after the first attempt.
    With ``jitter=True`` (the default) delays follow decorrelated
    jitter: ``d_k = min(cap, uniform(base, 3 * d_{k-1}))``; with
    ``jitter=False`` they double deterministically:
    ``d_k = min(cap, base * 2**k)``.
    """

    retries: int = 4
    base: float = 0.001
    cap: float = 0.1
    jitter: bool = True

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base <= 0 or self.cap < self.base:
            raise ValueError(
                f"need 0 < base <= cap, got base={self.base}, cap={self.cap}"
            )

    def delays(self, rng=None):
        """Yield ``retries`` sleep durations (seconds)."""
        import random

        uniform = (rng or random).uniform
        prev = self.base
        for _ in range(self.retries):
            if self.jitter:
                prev = min(self.cap, uniform(self.base, prev * 3.0))
            else:
                prev = min(self.cap, prev)
            yield prev
            if not self.jitter:
                prev *= 2.0


#: The policy the serving edge uses where nothing more specific applies.
DEFAULT_POLICY = RetryPolicy()


class RetryBudget:
    """A token bucket bounding the total retry volume of a process.

    Each retry spends one token; tokens refill continuously at
    ``refill_per_sec`` up to ``tokens``.  When the bucket is empty,
    callers fail fast instead of piling delayed retries onto an already
    unhealthy dependency.  Thread-safe — one budget is typically shared
    by every request handler in the server.
    """

    def __init__(
        self,
        tokens: float = 32.0,
        refill_per_sec: float = 4.0,
        clock=time.monotonic,
    ):
        if tokens <= 0 or refill_per_sec < 0:
            raise ValueError(
                f"need tokens > 0 and refill_per_sec >= 0, got "
                f"{tokens}, {refill_per_sec}"
            )
        self.capacity = float(tokens)
        self.refill_per_sec = float(refill_per_sec)
        self._clock = clock
        self._tokens = float(tokens)
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.capacity,
            self._tokens + (now - self._stamp) * self.refill_per_sec,
        )
        self._stamp = now

    def try_spend(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; False means "don't retry"."""
        with self._lock:
            self._refill_locked()
            if self._tokens < amount:
                return False
            self._tokens -= amount
            return True

    @property
    def remaining(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens


def call_retrying(
    fn,
    policy: RetryPolicy = DEFAULT_POLICY,
    retryable=retryable_oserror,
    sleep=time.sleep,
    rng=None,
    budget: RetryBudget | None = None,
    on_retry=None,
):
    """Run ``fn()`` under ``policy``, retrying faults ``retryable`` accepts.

    The last failure always propagates — to the retry machinery a fault
    that outlives its budget is a real failure, and the caller (which
    owns the durable-state contract) must surface it.  ``budget`` (a
    shared :class:`RetryBudget`) can veto a retry the policy would still
    allow; ``on_retry(exc, attempt, delay)`` observes each retry (the
    server counts them into ``server.retries_total``).
    """
    delays = policy.delays(rng)
    for attempt in range(policy.retries + 1):
        try:
            return fn()
        except Exception as e:  # noqa: BLE001 — classifier decides
            if not retryable(e) or attempt == policy.retries:
                raise
            if budget is not None and not budget.try_spend():
                raise
            delay = next(delays)
            if on_retry is not None:
                on_retry(e, attempt, delay)
            sleep(delay)
