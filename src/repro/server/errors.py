"""One table from library exceptions to structured HTTP error responses.

Every failure mode the serving stack can produce maps here to a
``(status, headers, body)`` triple with a **canonical-JSON** body
(sorted keys, compact separators — same discipline as the WAL, so error
bodies are byte-stable across processes and safe to assert on in
tests).  Bodies always carry:

``code``
    A stable machine-readable string (clients switch on this, never on
    the human message).
``error``
    The human-readable message.
``retryable``
    Whether the *same* request can be retried as-is.  Budget and schema
    failures are not retryable — the budget will not refill and the
    query will not start fitting the schema; contention, corruption
    quarantine, open breakers, and deadline expiry are.

and, where the exception carries them: ``dataset``, ``remaining_epsilon``
(so a refused tenant can see what its budget still allows), ``reason``,
``stage``, ``degraded``, and ``epsilon_spent`` (for a deadline that
expired *after* the fsync'd debit — the spend is reported as burned,
per the accountant's no-refund invariant).

Mapping is most-specific-first (``SchemaMismatchError`` subclasses
``KeyError``, so a bare-``KeyError`` → 404 entry must come later).
Unrecognized exceptions become an opaque 500 without leaking internals.
"""

from __future__ import annotations

import json

from ..domain import SchemaMismatchError
from ..service.accountant import BudgetExceededError
from ..service.engine import QueryMiss
from ..service.ledger import LockTimeoutError
from ..service.registry import RegistryCorruptionError
from .admission import ShedError
from .breaker import BreakerOpenError
from .deadline import DeadlineExceededError

__all__ = ["encode_body", "error_response"]


def encode_body(body: dict) -> bytes:
    """Canonical-JSON-encode a response body (sorted keys, compact)."""
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def _budget(e: BudgetExceededError):
    return 403, {}, {
        "code": "budget_exceeded",
        "error": str(e),
        "retryable": False,
        "dataset": e.dataset,
        "remaining_epsilon": e.remaining,
        "cap_epsilon": e.cap,
        "spent_epsilon": e.spent,
        "requested_epsilon": e.requested,
        "composition": e.composition,
        # The active budget policy and the exact unspent budget in its
        # native unit: {"epsilon": …} for a pure-ε cap,
        # {"epsilon": …, "delta": …} for an (ε, δ) cap, {"rho": …} for a
        # ρ-zCDP cap.
        "policy": e.policy_kind,
        "remaining": e.native_remaining,
    }


def _schema(e: SchemaMismatchError):
    return 400, {}, {
        "code": "schema_mismatch",
        "error": str(e),
        "retryable": False,
    }


def _query_miss(e: QueryMiss):
    # Only reachable in free-routes-only (degraded) serving: the query
    # needs a measurement the server is refusing to run right now.
    return 503, {"Retry-After": "1"}, {
        "code": "measurement_unavailable",
        "error": str(e),
        "retryable": True,
        "degraded": True,
    }


def _registry(e: RegistryCorruptionError):
    return 503, {"Retry-After": "0.1"}, {
        "code": "registry_corruption",
        "error": str(e),
        "retryable": True,
    }


def _lock_timeout(e: LockTimeoutError):
    return 503, {"Retry-After": f"{e.timeout:g}"}, {
        "code": "ledger_lock_timeout",
        "error": str(e),
        "retryable": True,
    }


def _deadline(e: DeadlineExceededError):
    return 504, {}, {
        "code": "deadline_exceeded",
        "error": str(e),
        "retryable": True,
        "stage": e.stage,
        "epsilon_spent": 0.0,  # expiry at a stage check is always pre-charge
    }


def _shed(e: ShedError):
    return e.status, {"Retry-After": f"{e.retry_after:g}"}, {
        "code": "overloaded",
        "error": str(e),
        "retryable": True,
        "reason": e.reason,
    }


def _breaker(e: BreakerOpenError):
    return 503, {"Retry-After": f"{max(e.retry_after, 0.001):g}"}, {
        "code": "breaker_open",
        "error": str(e),
        "retryable": True,
        "degraded": True,
    }


def _unknown_dataset(e: KeyError):
    name = e.args[0] if e.args else "?"
    return 404, {}, {
        "code": "unknown_dataset",
        "error": f"no dataset named {name!r} is registered with this server",
        "retryable": False,
        "dataset": str(name),
    }


def _bad_request(e: ValueError):
    return 400, {}, {
        "code": "bad_request",
        "error": str(e),
        "retryable": False,
    }


#: Ordered most-specific-first; the first isinstance match wins.
_HANDLERS = (
    (BudgetExceededError, _budget),
    (SchemaMismatchError, _schema),
    (QueryMiss, _query_miss),
    (RegistryCorruptionError, _registry),
    (LockTimeoutError, _lock_timeout),
    (DeadlineExceededError, _deadline),
    (ShedError, _shed),
    (BreakerOpenError, _breaker),
    (KeyError, _unknown_dataset),
    (ValueError, _bad_request),
)


def error_response(exc: BaseException) -> tuple[int, dict, dict]:
    """Map ``exc`` to ``(status, extra_headers, body_dict)``.

    The body is a plain dict; callers serialize it with
    :func:`encode_body` so the wire bytes are canonical.
    """
    for etype, handler in _HANDLERS:
        if isinstance(exc, etype):
            return handler(exc)
    return 500, {}, {
        "code": "internal",
        "error": f"internal server error ({type(exc).__name__})",
        "retryable": False,
    }
