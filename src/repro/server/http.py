"""Zero-dependency asyncio HTTP/1.1 transport for :class:`ServerApp`.

One ``asyncio.start_server`` loop, stdlib only.  Each connection is a
keep-alive loop: read one request (request line + headers +
Content-Length body), dispatch to the app, write one response — which
gives pipelined clients back-to-back responses in request order for
free, the property the free-hit throughput benchmark leans on.

Endpoints: ``POST /query``, ``GET /healthz``, ``GET /readyz``,
``GET /metrics``, ``GET /datasets``.

Lifecycle: :meth:`HttpServer.install_signal_handlers` hooks SIGTERM /
SIGINT to :meth:`HttpServer.shutdown`, which **drains then flushes** —
stop accepting connections, mark the app draining (new queries shed with
503 + Retry-After), wait for in-flight measured work to finish its WAL
appends, shut the executor down, close lingering connections.  A
response is always written entire-or-not-at-all: headers carry the exact
Content-Length and the body is one ``write()``; a simulated crash
mid-request aborts the connection with **zero** response bytes, so no
client can ever read a half-written answer.

:func:`serve_in_thread` runs the whole server on a background thread for
tests, benchmarks, and the demo script.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import signal
import threading

from .app import ServerApp

__all__ = ["HttpServer", "serve_in_thread"]

logger = logging.getLogger(__name__)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Request bodies beyond this are refused with 413 before buffering.
MAX_BODY_BYTES = 4 * 1024 * 1024
#: Header block cap — a line-noise client can't balloon memory.
MAX_HEADER_BYTES = 64 * 1024


class _BadRequest(Exception):
    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(message)


class HttpServer:
    """`asyncio.start_server` front-end around a :class:`ServerApp`."""

    def __init__(self, app: ServerApp, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self.host = host
        self.port = port  # 0 = ephemeral; updated to the bound port on start
        self._server: asyncio.base_events.Server | None = None
        self._conns: set[asyncio.StreamWriter] = set()
        self._shutdown_started = False

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("serving on %s:%d", self.host, self.port)

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.shutdown())
            )

    async def shutdown(self, drain_timeout: float = 10.0) -> None:
        """Drain-then-flush graceful stop (idempotent)."""
        if self._shutdown_started:
            return
        self._shutdown_started = True
        if self._server is not None:
            self._server.close()  # stop accepting; existing conns continue
        drained = await self.app.drain(timeout=drain_timeout)
        if not drained:
            logger.warning(
                "drain timed out with work in flight "
                "(executing=%d, queued=%d); closing anyway",
                self.app.admission.executing,
                self.app.admission.queued,
            )
        for w in list(self._conns):
            with contextlib.suppress(Exception):
                w.close()
        if self._server is not None:
            await self._server.wait_closed()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling -------------------------------------------------
    async def _client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._conns.add(writer)
        try:
            while True:
                try:
                    req = await self._read_request(reader)
                except _BadRequest as e:
                    self._write_response(
                        writer, e.status, {"Content-Type": "application/json"},
                        json.dumps(
                            {
                                "code": "bad_request",
                                "error": e.message,
                                "retryable": False,
                            },
                            sort_keys=True,
                            separators=(",", ":"),
                        ).encode(),
                    )
                    await writer.drain()
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    asyncio.LimitOverrunError,
                ):
                    break  # client hung up / garbage framing
                if req is None:
                    break  # clean EOF between requests
                method, path, headers, body = req
                try:
                    payload = json.loads(body) if body else None
                except ValueError:
                    self._write_response(
                        writer, 400, {"Content-Type": "application/json"},
                        b'{"code":"bad_json","error":"request body is not '
                        b'valid JSON","retryable":false}',
                    )
                    await writer.drain()
                    continue
                # The app maps every library exception to a structured
                # response.  Anything that still escapes is BaseException
                # territory (simulated crash / cancellation): abort with
                # no bytes, like a killed process would.
                status, rheaders, rbody = await self.app.handle(
                    method, path, payload
                )
                self._write_response(writer, status, rheaders, rbody)
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except asyncio.CancelledError:
            raise
        except BaseException as e:
            logger.warning(
                "aborting connection on %s: %s", type(e).__name__, e
            )
        finally:
            self._conns.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request; ``None`` on clean EOF before a request line."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as e:
            if not e.partial:
                return None
            raise
        if len(head) > MAX_HEADER_BYTES:
            raise _BadRequest(413, "header block too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _BadRequest(400, f"malformed request line: {lines[0]!r}")
        method, path = parts[0].upper(), parts[1]
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            k, _, v = line.partition(":")
            headers[k.strip().lower()] = v.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    def _write_response(self, writer, status: int, headers: dict, body: bytes):
        """One atomic write: status line + headers + body in a single
        buffer, so a response is never observable half-written."""
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}"]
        out = {"Content-Length": str(len(body)), **headers}
        for k, v in out.items():
            head.append(f"{k}: {v}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)


def serve_in_thread(app: ServerApp, host: str = "127.0.0.1", port: int = 0):
    """Run an :class:`HttpServer` on a daemon thread.

    Returns a started server whose ``.port`` is bound; call
    ``.stop(drain_timeout=...)`` to drain and join.  Usable as a context
    manager::

        with serve_in_thread(ServerApp(session)) as srv:
            ...  # talk to 127.0.0.1:srv.port
    """
    return _ThreadedServer(app, host, port).start()


class _ThreadedServer:
    def __init__(self, app: ServerApp, host: str, port: int):
        self.server = HttpServer(app, host, port)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-http", daemon=True
        )
        self._started = threading.Event()

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._started.set()
        self.loop.run_forever()
        # Drain callbacks scheduled right before stop() so closures finish.
        self.loop.run_until_complete(asyncio.sleep(0))
        self.loop.close()

    def start(self) -> "_ThreadedServer":
        self._thread.start()
        if not self._started.wait(10):
            raise RuntimeError("HTTP server failed to start within 10s")
        return self

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def app(self) -> ServerApp:
        return self.server.app

    def stop(self, drain_timeout: float = 10.0) -> None:
        fut = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain_timeout), self.loop
        )
        fut.result(drain_timeout + 10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)

    def __enter__(self) -> "_ThreadedServer":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
