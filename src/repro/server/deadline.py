"""Per-request deadlines with per-stage budgets and the ε-spend fence.

A :class:`Deadline` is created once per request and threaded (as a plain
duck-typed object — the service layer never imports this module) through
:meth:`repro.service.QueryService.answer` down to the measurement core.
The engine calls :meth:`Deadline.check` at every stage boundary —
``plan``, ``warm`` (registry probe/load), ``fit`` (cold strategy fit,
checked on entry *and* exit so a slow fit is attributed to the fit
stage), ``charge`` (immediately before ``accountant.charge``) — and
:meth:`Deadline.mark_committed` right after the fsync'd debit returns.

That placement is the whole point.  The PR 6 invariant is that a
committed debit means the noise is either released or conservatively
burned, never refunded — so cancellation must be *cooperative* and must
stop exactly at the charge:

* a deadline that expires at any check **before** ``charge`` raises
  :class:`DeadlineExceededError` with **zero spend** — no WAL record
  exists, the refusal is free;
* once ``mark_committed`` has run (or even :meth:`begin_commit`, the
  instant before the WAL append), the deadline never interrupts again:
  the measurement completes and the caller either returns the (late)
  answer or reports the spend as burned.  There is no refund path.

Per-stage budgets are expressed as *cumulative cutoff fractions* of the
total timeout: ``check(stage)`` fails once elapsed time exceeds
``timeout * cutoff(stage)``.  The default reserves the last 10% of the
budget for the post-charge measurement + response serialization
(``charge`` cutoff 0.9): a request that reaches the charge with less
than that reserve is refused *while refusal is still free*, instead of
committing a debit it can no longer use within its deadline.

Clocks are injectable so the invariant tests drive expiry
deterministically instead of sleeping.
"""

from __future__ import annotations

import time

__all__ = [
    "DEFAULT_STAGE_CUTOFFS",
    "Deadline",
    "DeadlineExceededError",
]

#: Cumulative per-stage cutoffs (fraction of the total timeout by which
#: the stage must *begin*).  Only ``charge`` reserves headroom by
#: default; every other stage may run up to the wire deadline.
DEFAULT_STAGE_CUTOFFS = {"charge": 0.9}


class DeadlineExceededError(TimeoutError):
    """A request ran out of budget at a stage boundary — always *before*
    the accountant debit (post-commit code never checks the deadline), so
    the refusal carries zero ε spend by construction."""

    def __init__(self, stage: str, elapsed: float, timeout: float):
        self.stage = stage
        self.elapsed = float(elapsed)
        self.timeout = float(timeout)
        super().__init__(
            f"deadline exceeded at stage {stage!r}: {self.elapsed * 1e3:.1f}ms "
            f"elapsed of {self.timeout * 1e3:.1f}ms budget"
        )


class Deadline:
    """One request's time budget, with staged cutoffs and a commit fence.

    Not thread-safe in general, but the commit flags are simple
    monotonic writes: the worker thread sets them, the event-loop thread
    only reads them after the worker missed its deadline — a stale read
    errs toward "possibly committed", the conservative direction.
    """

    __slots__ = (
        "timeout", "cutoffs", "_clock", "_start",
        "commit_started", "committed_epsilon", "expired_stage",
    )

    def __init__(
        self,
        timeout: float,
        cutoffs: dict[str, float] | None = None,
        clock=time.monotonic,
    ):
        timeout = float(timeout)
        if not timeout > 0:
            raise ValueError(f"timeout must be positive, got {timeout!r}")
        self.timeout = timeout
        self.cutoffs = DEFAULT_STAGE_CUTOFFS if cutoffs is None else cutoffs
        self._clock = clock
        self._start = clock()
        #: True once the charge is in flight — from here on the deadline
        #: must be treated as possibly committed.
        self.commit_started = False
        #: ε durably debited (None until :meth:`mark_committed`).
        self.committed_epsilon: float | None = None
        #: Stage at which a check failed (diagnostics for error bodies).
        self.expired_stage: str | None = None

    # -- time ----------------------------------------------------------------
    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> float:
        return max(0.0, self.timeout - self.elapsed())

    def expired(self) -> bool:
        return self.elapsed() >= self.timeout

    # -- stage fences --------------------------------------------------------
    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceededError` if the budget available to
        ``stage`` is gone.  Never called by post-commit code — once the
        debit is durable, interrupting the measurement could only strand
        spent budget."""
        if self.commit_started:
            return
        cutoff = self.timeout * self.cutoffs.get(stage, 1.0)
        elapsed = self.elapsed()
        if elapsed >= cutoff:
            self.expired_stage = stage
            raise DeadlineExceededError(stage, elapsed, self.timeout)

    def begin_commit(self) -> None:
        """The engine is about to append the debit to the WAL.  From this
        instant the request may have durable spend, so a timing-out
        waiter must report "possibly burned", not "refused free"."""
        self.commit_started = True

    def mark_committed(self, epsilon: float) -> None:
        """The debit is fsync'd: ``epsilon`` is spent whether or not the
        answer is ever delivered.  Late responses report it as burned."""
        self.commit_started = True
        self.committed_epsilon = float(epsilon)

    def __repr__(self) -> str:
        state = (
            f"committed={self.committed_epsilon:g}"
            if self.committed_epsilon is not None
            else ("committing" if self.commit_started else "uncommitted")
        )
        return (
            f"Deadline({self.remaining() * 1e3:.1f}ms of "
            f"{self.timeout * 1e3:.1f}ms left, {state})"
        )
