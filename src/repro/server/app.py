"""The transport-free request handler behind the HTTP front-end.

:class:`ServerApp` owns a :class:`repro.api.Session` and turns JSON
request payloads into served answers, composing the four robustness
mechanisms:

* every query request carries a :class:`~repro.server.deadline.Deadline`
  threaded down to the engine's stage boundaries — expiry before the
  accountant debit refuses with **zero spend**, expiry after the fsync'd
  debit lets the measurement finish and either delivers the late answer
  (inside a bounded commit grace) or reports the spend as burned.  Never
  a refund;
* the **free path** (every query answerable from cached reconstructions)
  is served inline on the event loop and is *always admitted* — it never
  touches the admission queue, the executor, or the breaker, so cheap
  reads survive total saturation of the measurement path;
* the **measured path** passes the
  :class:`~repro.server.admission.AdmissionController` (bounded queue +
  per-dataset limiter, structured 429/503 + Retry-After) and runs in a
  bounded thread-pool executor sized to the admission slots;
* **cold** requests additionally pass the
  :class:`~repro.server.breaker.CircuitBreaker`; while it is open the
  server serves what it can without a fit (warm/direct misses proceed,
  free hits always) and refuses the rest with ``degraded: true``.
  Budget-exhausted datasets degrade the same way: the measured path is
  refused up front with the remaining ε in the body, the free path keeps
  serving.

Wire query DSL (one JSON object per query)::

    {"marginal": ["age", "sex"]}          # k-way marginal
    {"total": true}                       # grand total
    {"prefix": "age"}                     # prefix sums over one attribute
    {"ranges": "age"}                     # all ranges workload
    {"count": [{"attr": "sex", "eq": "F"},
               {"attr": "age", "between": [30, 40]}]}   # predicate count

Responses are canonical JSON (sorted keys, compact separators — the
WAL's byte-stability discipline applied to the wire), so a 2xx body for
a seeded request is bit-identical across runs and equal to what a direct
in-process :meth:`Session.ask_many` with the same seed returns —
``json.dumps``/``loads`` round-trips float64 exactly.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor

from ..api.expr import A, QueryExpr, count, marginal, prefix, ranges, total
from ..api.session import Session
from ..core.solvers import validate_budget
from ..obs.metrics import REGISTRY as _METRICS
from ..obs.trace import TRACER as _TRACER
from ..service.engine import QueryMiss
from .admission import AdmissionController, ShedError
from .breaker import CircuitBreaker
from .deadline import Deadline, DeadlineExceededError
from .errors import encode_body, error_response

__all__ = ["ServerApp", "parse_query_spec"]

#: Serving cost order, most expensive first — the request-level ``route``
#: label is the priciest route any of its queries took.
_ROUTE_RANK = {"cold": 5, "direct": 4, "warm": 3, "cache": 2, "accelerator": 1}


def parse_query_spec(spec) -> QueryExpr:
    """One wire-DSL object → one :class:`QueryExpr` (ValueError on junk)."""
    if not isinstance(spec, dict) or len(spec) != 1:
        raise ValueError(
            f"each query must be a single-key object like "
            f'{{"marginal": [...]}}; got {spec!r}'
        )
    (kind, arg), = spec.items()
    if kind == "marginal":
        if not isinstance(arg, list) or not all(
            isinstance(a, str) for a in arg
        ):
            raise ValueError(f"marginal takes a list of attribute names: {arg!r}")
        return marginal(*arg)
    if kind == "total":
        return total()
    if kind == "prefix":
        if not isinstance(arg, str):
            raise ValueError(f"prefix takes one attribute name: {arg!r}")
        return prefix(arg)
    if kind == "ranges":
        if not isinstance(arg, str):
            raise ValueError(f"ranges takes one attribute name: {arg!r}")
        return ranges(arg)
    if kind == "count":
        if not isinstance(arg, list):
            raise ValueError(f"count takes a list of conditions: {arg!r}")
        conds = []
        for c in arg:
            if not isinstance(c, dict) or "attr" not in c:
                raise ValueError(f"count condition needs an 'attr': {c!r}")
            ref = A(c["attr"])
            if "eq" in c:
                conds.append(ref.eq(c["eq"]))
            elif "between" in c:
                lo, hi = c["between"]
                conds.append(ref.between(lo, hi))
            else:
                raise ValueError(
                    f"count condition needs 'eq' or 'between': {c!r}"
                )
        return count(*conds)
    raise ValueError(f"unknown query kind {kind!r}")


class ServerApp:
    """Session + robustness mechanisms behind one async ``handle`` method.

    Transport-free: :mod:`repro.server.http` feeds it parsed requests;
    tests can drive it directly with dict payloads.

    Parameters
    ----------
    session:
        The :class:`repro.api.Session` to serve (datasets are registered
        through :meth:`register` or directly on the session).
    max_measure / max_queue / per_dataset:
        Admission geometry (see :class:`AdmissionController`); the
        measurement executor is sized to ``max_measure``.
    default_timeout / max_timeout:
        Per-request deadline when the client sends none, and the cap on
        what a client may ask for.
    commit_grace:
        How long past its deadline a request with a *committed* debit is
        awaited before its spend is reported burned.  The measurement
        itself always runs to completion either way — the grace bounds
        only how long the waiter holds the connection open.
    breaker:
        Cold-fit circuit breaker (default :class:`CircuitBreaker` with
        its stock thresholds).
    """

    def __init__(
        self,
        session: Session,
        max_measure: int = 2,
        max_queue: int = 8,
        per_dataset: int = 2,
        default_timeout: float = 2.0,
        max_timeout: float = 30.0,
        commit_grace: float = 5.0,
        breaker: CircuitBreaker | None = None,
    ):
        self.session = session
        self.admission = AdmissionController(
            max_measure=max_measure,
            max_queue=max_queue,
            per_dataset=per_dataset,
        )
        self.breaker = breaker or CircuitBreaker()
        self.default_timeout = float(default_timeout)
        self.max_timeout = float(max_timeout)
        self.commit_grace = float(commit_grace)
        self.draining = False
        self._executor = ThreadPoolExecutor(
            max_workers=max_measure, thread_name_prefix="measure"
        )
        # Parsed-expression cache keyed by the canonical spec JSON: reusing
        # the same QueryExpr objects across requests keeps the Dataset's
        # compile memo (and everything memoized on the compiled matrices)
        # warm, which is what makes the free path O(lookup).
        self._exprs: dict[tuple[str, str], list[QueryExpr]] = {}

    # -- dataset management --------------------------------------------------
    def register(self, name, schema, data, epsilon_cap=None, policy=None):
        """Register a dataset on the underlying session."""
        return self.session.dataset(
            name, schema=schema, data=data, epsilon_cap=epsilon_cap,
            policy=policy,
        )

    def datasets(self) -> list[str]:
        return self.session.datasets()

    # -- lifecycle / introspection endpoints ---------------------------------
    def healthz(self) -> tuple[int, dict, dict]:
        """Liveness: the process is up and the event loop is turning."""
        return 200, {}, {"status": "ok"}

    def readyz(self) -> tuple[int, dict, dict]:
        """Readiness: drained servers and saturated queues report 503 so a
        load balancer routes around them before requests are shed."""
        ready = not self.draining and self.admission.queued < self.admission.max_queue
        body = {
            "status": "ok" if ready else "unavailable",
            "draining": self.draining,
            "queued": self.admission.queued,
            "executing": self.admission.executing,
            "breaker": self.breaker.state,
        }
        return (200 if ready else 503), {}, body

    def metrics_text(self) -> str:
        if _METRICS.enabled:
            _METRICS.gauge("server.breaker_state").set(self.breaker.state_value)
        return _METRICS.render_text()

    # -- request handling ----------------------------------------------------
    async def handle(self, method: str, path: str, payload) -> tuple[int, dict, bytes]:
        """Dispatch one parsed request to ``(status, headers, body_bytes)``."""
        if method == "GET" and path == "/healthz":
            s, h, b = self.healthz()
        elif method == "GET" and path == "/readyz":
            s, h, b = self.readyz()
        elif method == "GET" and path == "/metrics":
            text = self.metrics_text()
            return 200, {"Content-Type": "text/plain; charset=utf-8"}, text.encode()
        elif method == "GET" and path == "/datasets":
            s, h, b = 200, {}, {"datasets": self.datasets()}
        elif method == "POST" and path == "/query":
            s, h, b = await self.handle_query(payload)
        else:
            s, h, b = 404, {}, {
                "code": "not_found",
                "error": f"no route {method} {path}",
                "retryable": False,
            }
        return s, {"Content-Type": "application/json", **h}, encode_body(b)

    async def handle_query(self, payload) -> tuple[int, dict, dict]:
        """Serve one query request; exceptions become the error table's
        structured responses (simulated crashes stay BaseException and
        propagate — the connection dies with no bytes written, exactly
        like a killed process)."""
        t0 = time.perf_counter()
        track = _METRICS.enabled
        route = "none"
        if track:
            _METRICS.gauge("server.inflight").inc()
        try:
            status, headers, body = await self._handle_query(payload)
            route = body.pop("_route", "none") if isinstance(body, dict) else "none"
        except ShedError as e:
            status, headers, body = error_response(e)
            if track:
                _METRICS.counter("server.shed_total", reason=e.reason).inc()
        except Exception as e:
            status, headers, body = error_response(e)
        finally:
            if track:
                _METRICS.gauge("server.inflight").inc(-1)
        if track:
            _METRICS.counter(
                "server.requests_total", route=route, status=str(status)
            ).inc()
            _METRICS.histogram("server.request_ms").observe(
                (time.perf_counter() - t0) * 1e3
            )
            _METRICS.gauge("server.breaker_state").set(self.breaker.state_value)
        return status, headers, body

    def _parse_request(self, payload):
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        name = payload.get("dataset")
        if not isinstance(name, str):
            raise ValueError("request needs a 'dataset' string")
        if name not in self.session.datasets():
            raise KeyError(name)
        ds = self.session.dataset(name)
        specs = payload.get("queries")
        if not isinstance(specs, list) or not specs:
            raise ValueError("request needs a non-empty 'queries' list")
        cache_key = (
            name,
            json.dumps(specs, sort_keys=True, separators=(",", ":")),
        )
        exprs = self._exprs.get(cache_key)
        if exprs is None:
            exprs = [parse_query_spec(s) for s in specs]
            if len(self._exprs) >= 4096:
                self._exprs.clear()
            self._exprs[cache_key] = exprs
        eps = payload.get("eps")
        if eps is not None:
            eps = float(eps)
            if not eps > 0:
                raise ValueError(f"eps must be positive, got {eps}")
        mechanism = payload.get("mechanism", "laplace")
        if mechanism not in ("laplace", "gaussian"):
            raise ValueError(
                f"mechanism must be 'laplace' or 'gaussian', got {mechanism!r}"
            )
        delta = payload.get("delta")
        if delta is not None:
            if mechanism != "gaussian":
                raise ValueError(
                    "delta only applies to the gaussian mechanism"
                )
            delta = float(validate_budget(delta=delta)["delta"])
            if delta == 0.0:
                raise ValueError(
                    "the gaussian mechanism needs delta > 0 (delta=0 is "
                    "pure ε-DP: use the laplace mechanism)"
                )
        seed = payload.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ValueError(f"seed must be an integer, got {seed!r}")
        timeout = payload.get("timeout", self.default_timeout)
        timeout = min(float(timeout), self.max_timeout)
        if not timeout > 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        return name, ds, exprs, eps, mechanism, delta, seed, timeout

    async def _handle_query(self, payload) -> tuple[int, dict, dict]:
        if self.draining:
            raise ShedError("draining", 503, 1.0)
        name, ds, exprs, eps, mechanism, delta, seed, timeout = (
            self._parse_request(payload)
        )
        deadline = Deadline(timeout)

        # Free path: always admitted, served inline on the event loop.
        # QueryMiss is raised by the engine *before* any budget is touched,
        # so falling through to the measured path costs nothing.
        try:
            with _TRACER.span("server.request", dataset=name, route="free"):
                answers = ds.ask_many(exprs, eps=None)
            return 200, {}, self._body(name, answers, degraded=False)
        except QueryMiss:
            pass

        if eps is None:
            raise ValueError(
                "queries miss every cached reconstruction; pass 'eps' to "
                "measure them (or retry later once cached)"
            )

        # Budget-exhausted degradation: refuse the measured path up front
        # (the body carries the policy's remaining budget in its native
        # unit) instead of burning an executor slot on a charge the
        # accountant would refuse anyway.  The policy-aware check raises
        # the same BudgetExceededError the debit would; the accountant
        # still enforces the cap — this is an optimization, not the
        # enforcement point.
        acct = self.session.service.accountant
        if acct is not None:
            acct.check(name, eps, mechanism=mechanism, delta=delta)

        # Routing decision for the breaker: only genuinely cold requests
        # pass through it; warm/direct misses keep serving while open.
        plan = ds.plan(exprs, eps, mechanism=mechanism, delta=delta)
        cold = any(e.route == "cold" for e in plan.entries)
        if cold:
            self.breaker.allow()

        await self.admission.acquire_measure(name, timeout=deadline.remaining())
        loop = asyncio.get_running_loop()
        fut = loop.run_in_executor(
            self._executor, self._measured, name, ds, exprs, eps,
            mechanism, delta, seed, deadline, cold,
        )
        # The slot is released when the *worker* finishes — not when the
        # waiter gives up — so the executor can never oversubscribe; the
        # exception() read also marks a crashed worker's error retrieved.
        fut.add_done_callback(
            lambda f: (self.admission.release_measure(name), f.exception())
        )
        try:
            answers = await asyncio.wait_for(
                asyncio.shield(fut), deadline.remaining() + 1e-3
            )
        except asyncio.TimeoutError:
            return await self._late(name, deadline, fut)
        return 200, {}, self._body(name, answers, degraded=False)

    async def _late(self, name, deadline, fut) -> tuple[int, dict, dict]:
        """The waiter outlived the deadline.  Which side of the ε-spend
        fence the worker is on decides everything."""
        if not deadline.commit_started:
            # No debit can exist: the worker's next stage check raises and
            # nothing was charged.  Refuse free.
            raise DeadlineExceededError(
                deadline.expired_stage or "wire",
                deadline.elapsed(),
                deadline.timeout,
            )
        # The debit is (possibly) durable: the measurement always runs to
        # completion, we just bound how long this waiter holds the
        # connection for the late answer.
        try:
            answers = await asyncio.wait_for(asyncio.shield(fut), self.commit_grace)
        except asyncio.TimeoutError:
            spent = deadline.committed_epsilon
            return 504, {}, {
                "code": "deadline_exceeded",
                "error": (
                    "deadline exceeded after the budget debit committed; "
                    "the spend is burned, not refunded"
                ),
                "retryable": True,
                "burned": True,
                "dataset": name,
                "epsilon_spent": 0.0 if spent is None else spent,
            }
        body = self._body(name, answers, degraded=False)
        body["late"] = True
        return 200, {}, body

    def _measured(self, name, ds, exprs, eps, mechanism, delta, seed, deadline, cold):
        """Executor-side measured request (worker thread): the root span
        opens here so it parents ``session.ask`` in the thread-local
        tracer, and breaker accounting sees the true fit outcome."""
        kwargs = {} if mechanism == "laplace" else {
            "mechanism": mechanism, **({} if delta is None else {"delta": delta})
        }
        try:
            with _TRACER.span("server.request", dataset=name, route="measured"):
                answers = ds.ask_many(
                    exprs, eps=eps, rng=seed, deadline=deadline, **kwargs
                )
        except DeadlineExceededError as e:
            if cold and e.stage == "fit":
                self.breaker.record_failure()
            raise
        else:
            if cold:
                self.breaker.record_success()
        return answers

    # -- response assembly ---------------------------------------------------
    def _body(self, name, answers, degraded: bool) -> dict:
        route = "none"
        rank = 0
        out = []
        for a in answers:
            r = _ROUTE_RANK.get(a.route, 0)
            if r > rank:
                rank, route = r, a.route
            out.append(
                {
                    "values": [float(v) for v in a.values],
                    "route": a.route,
                    "epsilon": a.epsilon,
                    "key": a.key,
                    "span_projected": a.span_projected,
                    "mechanism": a.mechanism,
                }
            )
        charged = max((a.epsilon for a in answers), default=0.0)
        body = {
            "answers": out,
            "charged": charged,
            "dataset": name,
            "degraded": degraded,
            "_route": route,
        }
        acct = self.session.service.accountant
        if acct is not None:
            body["remaining"] = acct.remaining(name)
        tid = answers[0].trace_id if answers else None
        if tid is not None:
            body["trace_id"] = tid
        return body

    # -- shutdown ------------------------------------------------------------
    async def drain(self, timeout: float = 10.0) -> bool:
        """Stop admitting, wait for in-flight measured work, then shut the
        executor down (the flush half: every WAL append an admitted
        request will make has happened once this returns True)."""
        self.draining = True
        give_up = time.monotonic() + timeout
        while (
            self.admission.executing > 0 or self.admission.queued > 0
        ) and time.monotonic() < give_up:
            await asyncio.sleep(0.01)
        drained = self.admission.executing == 0 and self.admission.queued == 0
        self._executor.shutdown(wait=drained)
        return drained
