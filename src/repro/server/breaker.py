"""Circuit breaker around cold strategy fits.

A cold ``HDMM.fit`` is the one stage of the request path whose cost is
unbounded in principle (a non-convex optimization over however many
restarts the service is configured for).  When fits start timing out —
an oversized domain, a pathological workload, a CPU-starved host — every
further cold request would burn a full deadline discovering the same
thing while holding an executor slot that warm traffic needed.  The
breaker converts that into fast, *honest* failure:

* **closed** — normal operation; consecutive fit failures are counted,
  successes reset the count;
* **open** — after ``trip_after`` consecutive failures, cold fits are
  refused outright for ``reset_timeout`` seconds.  The request layer
  then degrades: a miss batch eligible for the direct selection
  measurement is served that way (no fit involved), everything else gets
  a structured refusal carrying ``degraded=True`` and ``Retry-After``;
* **half-open** — after the cooldown one probe fit is allowed through;
  success closes the breaker, failure re-opens it with a fresh cooldown.

Only *cold* fits flow through the breaker — warm loads, direct
measurements, and free hits never involve the guarded resource, which is
exactly why the degraded mode stays useful while the breaker is open.

The clock is injectable so tests step through open → half-open without
sleeping.  State changes are reflected in the ``server.breaker_state``
gauge (0 = closed, 1 = half-open, 2 = open) by the caller.
"""

from __future__ import annotations

import threading
import time

__all__ = ["BreakerOpenError", "CircuitBreaker"]

#: Gauge encoding of breaker states (``server.breaker_state``).
_STATE_VALUES = {"closed": 0, "half-open": 1, "open": 2}


class BreakerOpenError(RuntimeError):
    """A cold fit was refused because the breaker is open.

    Maps to a retryable 503 whose ``Retry-After`` is the cooldown
    remaining; the response body carries ``degraded: true``.
    """

    def __init__(self, retry_after: float, failures: int):
        self.retry_after = max(0.0, float(retry_after))
        self.failures = int(failures)
        super().__init__(
            f"cold-fit circuit breaker is open after {failures} consecutive "
            f"failures; retry in {self.retry_after:g}s"
        )


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing.

    Thread-safe: ``allow`` runs on the event loop, ``record_*`` in
    executor threads.
    """

    def __init__(
        self,
        trip_after: int = 3,
        reset_timeout: float = 5.0,
        clock=time.monotonic,
    ):
        if trip_after < 1 or reset_timeout <= 0:
            raise ValueError(
                f"need trip_after >= 1 and reset_timeout > 0, got "
                f"{trip_after}, {reset_timeout}"
            )
        self.trip_after = int(trip_after)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    @property
    def state_value(self) -> int:
        """Numeric state for the ``server.breaker_state`` gauge."""
        return _STATE_VALUES[self.state]

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = "half-open"
            self._probe_inflight = False

    def allow(self) -> None:
        """Gate one cold fit; raises :class:`BreakerOpenError` when the
        circuit refuses (open, or half-open with the probe already out)."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == "closed":
                return
            if self._state == "half-open" and not self._probe_inflight:
                self._probe_inflight = True
                return
            remaining = self.reset_timeout - (self._clock() - self._opened_at)
            raise BreakerOpenError(remaining, self._failures)

    def record_success(self) -> None:
        """A guarded fit completed: close and forget the failure run."""
        with self._lock:
            self._state = "closed"
            self._failures = 0
            self._probe_inflight = False

    def record_failure(self) -> None:
        """A guarded fit timed out or died: count it, trip when the run
        reaches ``trip_after`` (a half-open probe failure re-opens
        immediately — one bad probe is proof enough)."""
        with self._lock:
            self._failures += 1
            if self._state == "half-open" or self._failures >= self.trip_after:
                self._state = "open"
                self._opened_at = self._clock()
                self._probe_inflight = False

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state}, failures={self._failures}/"
            f"{self.trip_after})"
        )
