"""The lazy query planner: compile, canonicalize, dedup, route — then spend.

Expressions compile to implicit workload matrices; the planner
canonicalizes each one to the registry's fingerprint scheme
(:func:`repro.service.fingerprint.workload_fingerprint`), dedups
identical queries across a batch (repeated expressions cost one
compilation, one answer, and — on a miss — one joint ε debit), and
routes every group through the cheapest serving path *before any budget
is spent*:

1. **accelerator** — a cached reconstruction spans the query *and* the
   query decomposes into axis-aligned boxes at compile time
   (:func:`repro.service.accelerator.range_spec_of`): answered free by
   a summed-area corner gather, O(2^k) per query independent of the
   domain size;
2. **cache** — a cached reconstruction's measured span contains the
   query: answered free (Definition 5 post-processing) by a structured
   matvec;
3. **warm**  — the miss union is already prepared (memo or registry):
   measured through the fitted strategy, no cold fit;
4. **direct** — a small unprepared miss batch with narrow joint support:
   the sensitivity-1 selection measurement (no fit at all);
5. **cold**  — everything else: fitting template + one accounted pass.

The emitted :class:`Plan` is inspectable — per-group route, estimated ε
debit, and expected per-query RMSE (Definition 7 via
:func:`repro.core.error.rootmse` where a strategy is already known) —
and its ε estimates are exact: executing the plan debits the accountant
by precisely :attr:`Plan.total_epsilon`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..core.error import rootmse
from ..core.privacy import DEFAULT_DELTA
from ..linalg import Matrix, VStack
from ..privacy.mechanisms import get_mechanism
from ..obs.metrics import REGISTRY as _METRICS
from ..obs.trace import TRACER as _TRACER
from ..service.accelerator import range_spec_of
from ..service.engine import QueryService
from ..service.fingerprint import workload_fingerprint
from .expr import QueryExpr
from .schema import Schema

__all__ = [
    "CompiledBatch",
    "CompiledQuery",
    "Plan",
    "PlanEntry",
    "compile_batch",
    "compile_expr",
    "plan_queries",
]


@dataclass(frozen=True)
class CompiledQuery:
    """One expression, vectorized and canonicalized.

    ``fingerprint`` is the canonical identity used for dedup — two
    expressions that vectorize to the same query set (``total()`` and a
    full-domain range, say) share it.  ``range_spec`` is the accelerator
    eligibility tag, derived structurally at compile time: non-``None``
    exactly when every query row decomposes into axis-aligned boxes, so
    a free hit serves by summed-area gather instead of a matvec.
    """

    expr: QueryExpr
    matrix: Matrix
    fingerprint: str
    rows: int
    schema: Schema
    range_spec: object | None = None

    @property
    def domain(self):
        return self.schema.domain

    def to_workload_matrix(self) -> Matrix:
        return self.matrix

    def __repr__(self) -> str:
        return (
            f"CompiledQuery({self.expr!r}, rows={self.rows}, "
            f"key={self.fingerprint[:12]}…)"
        )


class CompiledBatch:
    """A deduped batch of compiled queries, remembering original order.

    ``queries`` holds the distinct compiled queries;
    ``index_map[i]`` is the position in ``queries`` answering the i-th
    original expression.
    """

    def __init__(self, schema: Schema, queries: list[CompiledQuery], index_map: list[int]):
        self.schema = schema
        self.queries = queries
        self.index_map = index_map

    @property
    def domain(self):
        return self.schema.domain

    def to_workload_matrix(self) -> Matrix:
        mats = [q.matrix for q in self.queries]
        if not mats:
            raise ValueError("empty batch has no workload matrix")
        return mats[0] if len(mats) == 1 else VStack(mats)

    def __len__(self) -> int:
        return len(self.queries)

    def __repr__(self) -> str:
        return (
            f"CompiledBatch({len(self.index_map)} expressions, "
            f"{len(self.queries)} distinct)"
        )


def compile_expr(expr: QueryExpr, schema: Schema) -> CompiledQuery:
    """Vectorize one expression and attach its canonical fingerprint."""
    matrix = expr.compile(schema)
    return CompiledQuery(
        expr=expr,
        matrix=matrix,
        fingerprint=workload_fingerprint(matrix, domain=schema.domain),
        rows=int(matrix.shape[0]),
        schema=schema,
        range_spec=range_spec_of(matrix),
    )


def compile_batch(exprs, schema: Schema, compile_one=None) -> CompiledBatch:
    """Compile a batch, deduping identical queries by fingerprint.

    ``compile_one`` overrides the per-expression compiler — the Session
    layer passes its memoized compile so replanning identical traffic
    reuses compiled matrices (and everything memoized on them: range
    specs, gather plans, span-probe results).
    """
    compile_one = compile_one or compile_expr
    queries: list[CompiledQuery] = []
    by_key: dict[str, int] = {}
    index_map: list[int] = []
    for e in exprs:
        cq = compile_one(e, schema)
        pos = by_key.get(cq.fingerprint)
        if pos is None:
            pos = len(queries)
            by_key[cq.fingerprint] = pos
            queries.append(cq)
        index_map.append(pos)
    return CompiledBatch(schema, queries, index_map)


@dataclass
class PlanEntry:
    """One routed group of compiled queries.

    ``epsilon`` is the exact debit executing this group will record;
    ``None`` means the group *misses* and no ``eps`` was given to the
    planner — executing such a plan raises
    :class:`~repro.service.QueryMiss` before touching the budget.
    """

    route: str  # "accelerator" | "cache" | "warm" | "direct" | "cold"
    indices: tuple[int, ...]  # positions in the deduped batch
    rows: int
    key: str | None
    epsilon: float | None
    expected_rmse: float | None = None
    detail: str = ""
    #: Mechanism this group serves under: the cached reconstruction's
    #: for free hits, the plan's requested mechanism for misses.
    mechanism: str = "laplace"
    #: Expected RMSE under the *other* mechanism at the same budget —
    #: the Laplace-vs-Gaussian comparison surfaced by ``explain()``.
    expected_rmse_alt: float | None = None

    @property
    def rmse_laplace(self) -> float | None:
        return (
            self.expected_rmse
            if self.mechanism == "laplace"
            else self.expected_rmse_alt
        )

    @property
    def rmse_gaussian(self) -> float | None:
        return (
            self.expected_rmse
            if self.mechanism == "gaussian"
            else self.expected_rmse_alt
        )


@dataclass
class Plan:
    """An inspectable, not-yet-executed serving plan for one batch.

    ``total_epsilon`` is the exact accountant debit executing the plan
    will record (0 for an all-hit batch) — *provided the plan is
    executable*: when :attr:`requires_epsilon` is true (there are misses
    but no ``eps`` was given), execution raises
    :class:`~repro.service.QueryMiss` instead of spending.  Nothing is
    measured, charged, or cached until the plan's batch is actually
    served.
    """

    dataset: str
    batch: CompiledBatch
    entries: list[PlanEntry] = field(default_factory=list)
    eps: float | None = None
    mechanism: str = "laplace"
    delta: float = DEFAULT_DELTA

    @property
    def total_epsilon(self) -> float:
        return float(
            sum(e.epsilon for e in self.entries if e.epsilon is not None)
        )

    @property
    def requires_epsilon(self) -> bool:
        """True when the batch has misses but no ``eps`` was supplied —
        executing it would raise before spending anything."""
        return any(e.epsilon is None for e in self.entries)

    @property
    def free_fraction(self) -> float:
        """Fraction of *expressions* (pre-dedup) answered at zero budget."""
        if not self.batch.index_map:
            return 1.0
        free = {
            i
            for e in self.entries
            if e.epsilon == 0.0
            for i in e.indices
        }
        return sum(
            1 for pos in self.batch.index_map if pos in free
        ) / len(self.batch.index_map)

    def explain(self) -> str:
        """A human-readable routing table, one aligned row per group:
        route, group size, exact ε debit, expected per-query RMSE (where
        the error algebra covers the pairing), covering strategy key."""
        head = (
            f"Plan for dataset {self.dataset!r}: "
            f"{len(self.batch.index_map)} expressions, "
            f"{len(self.batch.queries)} distinct, "
            f"estimated ε = {self.total_epsilon:g}"
        )
        if self.mechanism != "laplace":
            head += f", mechanism = {self.mechanism} (δ = {self.delta:g})"

        def _rmse(v: float | None) -> str:
            return f"{v:.3g}" if v is not None else "—"

        header = [
            "route", "queries", "rows", "ε",
            "rmse(lap)≈", "rmse(gauss)≈", "key", "detail",
        ]
        rows = [
            [
                e.route,
                str(len(e.indices)),
                str(e.rows),
                f"{e.epsilon:g}" if e.epsilon is not None else "required",
                _rmse(e.rmse_laplace),
                _rmse(e.rmse_gaussian),
                f"{e.key[:12]}…" if e.key else "—",
                e.detail or "—",
            ]
            for e in self.entries
        ]
        widths = [
            max(len(header[j]), *(len(r[j]) for r in rows), 0)
            if rows
            else len(header[j])
            for j in range(len(header))
        ]

        def fmt(row: list[str]) -> str:
            # Left-align text columns (route, key, detail), right-align
            # the numeric ones.
            cells = [
                row[j].ljust(widths[j]) if j in (0, 6, 7) else row[j].rjust(widths[j])
                for j in range(len(header))
            ]
            return "  " + "  ".join(cells).rstrip()

        lines = [head, fmt(header), "  " + "  ".join("-" * w for w in widths)]
        lines.extend(fmt(r) for r in rows)
        return "\n".join(lines)

    def __repr__(self) -> str:
        routes = {}
        for e in self.entries:
            routes[e.route] = routes.get(e.route, 0) + len(e.indices)
        return (
            f"Plan(dataset={self.dataset!r}, routes={routes}, "
            f"eps={self.total_epsilon:g})"
        )


def _safe_rmse(
    W: Matrix,
    A: Matrix,
    eps: float,
    mechanism: str = "laplace",
    delta: float = DEFAULT_DELTA,
) -> float | None:
    """Definition 7 per-query RMSE under the chosen mechanism, or None
    where the structured error algebra does not cover the (workload,
    strategy) pairing."""
    if eps <= 0:
        return None
    try:
        return float(rootmse(W, A, eps, mechanism=mechanism, delta=delta))
    except Exception:
        return None


def _rmse_pair(
    W: Matrix, A: Matrix, eps: float | None, mechanism: str, delta: float
) -> tuple[float | None, float | None]:
    """(RMSE under ``mechanism``, RMSE under the other mechanism) at the
    same per-group budget — the planner's Laplace-vs-Gaussian column."""
    if eps is None:
        return None, None
    alt = "gaussian" if mechanism == "laplace" else "laplace"
    return (
        _safe_rmse(W, A, eps, mechanism=mechanism, delta=delta),
        _safe_rmse(W, A, eps, mechanism=alt, delta=delta),
    )


def _stack(mats: list[Matrix]) -> Matrix:
    return mats[0] if len(mats) == 1 else VStack(mats)


def plan_queries(
    service: QueryService,
    dataset: str,
    batch: CompiledBatch,
    eps: float | None = None,
    mechanism: str = "laplace",
    delta: float | None = None,
) -> Plan:
    """Route a compiled batch without spending any budget.

    Mirrors :meth:`repro.service.QueryService.answer`'s serving decisions
    exactly — same span checks, same warm-strategy probe, same
    direct-path thresholds — so the plan's routes and ε estimates are
    what execution will do, not a guess.  ``mechanism``/``delta`` select
    the noise mechanism the misses would be measured under; the plan's
    RMSE columns compare Laplace vs Gaussian at the same budget either
    way.
    """
    with _TRACER.span(
        "plan.route", dataset=dataset, queries=len(batch.queries)
    ):
        plan = _plan_queries_impl(service, dataset, batch, eps, mechanism, delta)
    if _METRICS.enabled:
        _METRICS.counter("planner.plans_total", dataset=dataset).inc()
        for e in plan.entries:
            _METRICS.counter(
                "planner.routed_queries_total", dataset=dataset, route=e.route
            ).inc(len(e.indices))
            if e.expected_rmse is not None:
                _METRICS.gauge(
                    "planner.expected_rmse", dataset=dataset, route=e.route
                ).set(e.expected_rmse)
    return plan


def _plan_queries_impl(
    service: QueryService,
    dataset: str,
    batch: CompiledBatch,
    eps: float | None = None,
    mechanism: str = "laplace",
    delta: float | None = None,
) -> Plan:
    mech = get_mechanism(mechanism, delta)
    mech_delta = getattr(mech, "delta", DEFAULT_DELTA)
    plan = Plan(
        dataset=dataset, batch=batch, eps=eps,
        mechanism=mech.name, delta=mech_delta,
    )
    if not batch.queries:
        return plan

    # 1. Free hits from cached reconstructions, grouped by
    # (covering key, serving route) — accelerator-eligible hits serve by
    # summed-area gather, the rest by the span-projection matvec.  The
    # compiled fingerprint memoizes the span probe on the strategy, so
    # re-planning (and execution after planning) never repeats the
    # projection for the same query shape.
    hit_groups: dict[tuple[str, str], list[int]] = {}
    miss: list[int] = []
    for i, cq in enumerate(batch.queries):
        key, route = service.probe_hit(
            dataset, cq.matrix, fingerprint=cq.fingerprint
        )
        if key is None:
            miss.append(i)
        else:
            hit_groups.setdefault((key, route), []).append(i)
    for (key, route), idxs in hit_groups.items():
        recon = service.cached_reconstruction(dataset, key)
        rmse = rmse_alt = None
        hit_mech = "laplace"
        if recon is not None:
            # The RMSE estimate depends only on (strategy, group, ε,
            # mechanism), so re-planning the same traffic reuses it — a
            # warm plan must never cost more than a cold one.  A hit
            # serves from the cached reconstruction, so its column is the
            # mechanism that measurement was actually released under.
            hit_mech = recon.mechanism
            digest = hashlib.sha256(
                "|".join(batch.queries[i].fingerprint for i in idxs).encode()
            ).hexdigest()[:16]
            memo_key = f"plan_rmse:{digest}:{recon.eps!r}:{hit_mech}"
            memo = recon.strategy.cache_get(memo_key)
            if memo is None:
                W = _stack([batch.queries[i].matrix for i in idxs])
                memo = recon.strategy.cache_set(
                    memo_key,
                    _rmse_pair(
                        W, recon.strategy, recon.eps, hit_mech, mech_delta
                    ),
                )
            rmse, rmse_alt = memo
        plan.entries.append(
            PlanEntry(
                route=route,
                indices=tuple(idxs),
                rows=sum(batch.queries[i].rows for i in idxs),
                key=key,
                epsilon=0.0,
                expected_rmse=rmse,
                detail=(
                    "summed-area gather"
                    if route == "accelerator"
                    else "measured-span projection"
                ),
                mechanism=hit_mech,
                expected_rmse_alt=rmse_alt,
            )
        )
    if not miss:
        return plan

    # 2. The misses form one jointly-measured, jointly-accounted group,
    # routed by the engine's own policy (QueryService.route_misses) so
    # the plan cannot drift from what execution does.  With eps=None a
    # miss group is *not executable* (answer() raises QueryMiss before
    # spending): its epsilon estimate is None, never 0.
    blocks = [batch.queries[i].matrix for i in miss]
    W_miss = _stack(blocks)
    rows = sum(batch.queries[i].rows for i in miss)
    mroute = service.route_misses(blocks)
    eps_est: float | None = float(eps) if eps is not None else None

    if mroute.route == "warm":
        rmse, rmse_alt = _rmse_pair(
            W_miss, mroute.strategy, eps_est, mech.name, mech_delta
        )
        plan.entries.append(
            PlanEntry(
                route="warm",
                indices=tuple(miss),
                rows=rows,
                key=mroute.key,
                epsilon=eps_est,
                expected_rmse=rmse,
                detail="strategy already fitted",
                mechanism=mech.name,
                expected_rmse_alt=rmse_alt,
            )
        )
        return plan

    if mroute.route == "direct":
        cols = mroute.support_cols
        if cols.size == 0:
            plan.entries.append(
                PlanEntry(
                    route="direct",
                    indices=tuple(miss),
                    rows=rows,
                    key=None,
                    epsilon=0.0 if eps_est is not None else None,
                    expected_rmse=0.0,
                    detail="empty support: constant 0, data-independent",
                    mechanism=mech.name,
                )
            )
            return plan
        rmse = rmse_alt = None
        if eps_est is not None:
            from ..service.engine import selection_matrix

            S = selection_matrix(cols, batch.domain.size())
            rmse, rmse_alt = _rmse_pair(
                W_miss, S, eps_est, mech.name, mech_delta
            )
        plan.entries.append(
            PlanEntry(
                route="direct",
                indices=tuple(miss),
                rows=rows,
                key=None,
                epsilon=eps_est,
                expected_rmse=rmse,
                detail=f"selection measurement on {cols.size} cells",
                mechanism=mech.name,
                expected_rmse_alt=rmse_alt,
            )
        )
        return plan

    plan.entries.append(
        PlanEntry(
            route="cold",
            indices=tuple(miss),
            rows=rows,
            key=mroute.key,
            epsilon=eps_est,
            expected_rmse=None,
            detail="fitting template will run (RMSE known after SELECT)",
            mechanism=mech.name,
        )
    )
    return plan
