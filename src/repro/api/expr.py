"""Declarative predicate-expression algebra over named schema attributes.

This is the *logical* half of the API redesign: clients state which
counting queries they want in terms of the schema — never which row of
which Kronecker product.  Expressions compose::

    from repro.api import A, marginal, prefix, total

    e1 = A("age").between(30, 40) & A("sex").eq("F")   # one counting query
    e2 = marginal("age", "income")                      # a group-by
    e3 = prefix("income")                               # all CDF queries
    e4 = total()                                        # the grand total
    w  = e2 + 0.25 * e3                                 # weighted union

Every expression compiles against a :class:`~repro.api.schema.Schema` to
an implicit workload matrix — per-attribute indicator sets combined by
Kronecker product (paper Theorem 2) and stacked into weighted unions
(Definition 3) — using exactly the structured matrices the physical
builders produce (``Identity``/``Ones``/``Prefix``/``AllRange``), so a
compiled expression is bit-for-bit the workload a caller would have
hand-built.

Negation is supported on single-attribute conditions (``~A("race").eq``)
via the :class:`~repro.workload.predicates.Not` predicate; conjunction
(``&``) combines conditions across attributes — and within one attribute
by predicate conjunction.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..domain import SchemaMismatchError
from ..linalg import AllRange, Identity, Kronecker, Matrix, Ones, Prefix, VStack, Weighted
from ..workload.predicates import (
    And,
    Equals,
    InSet,
    Not,
    Predicate,
    Range,
    TruePredicate,
    bucket_predicates,
    vectorize_set,
)
from .schema import Schema

__all__ = [
    "A",
    "AttributeRef",
    "Buckets",
    "Condition",
    "Conjunction",
    "QueryExpr",
    "buckets",
    "count",
    "marginal",
    "prefix",
    "ranges",
    "total",
    "union",
]


class QueryExpr:
    """A declarative set of counting queries over named attributes.

    Subclasses implement ``_terms(schema)`` returning the union-of-products
    decomposition ``[(weight, {attr: factor matrix})]``; attributes absent
    from a term implicitly carry the Total factor (neither filtered nor
    grouped).  ``compile`` assembles the implicit workload matrix.

    Algebra: ``e1 + e2`` is the union (rows stacked), ``w * e`` scales a
    term's accuracy weight (Section 3.3 weighted workloads).
    """

    def _terms(self, schema: Schema) -> list[tuple[float, dict[str, Matrix]]]:
        raise NotImplementedError

    def compile(self, schema: Schema) -> Matrix:
        """The implicit workload matrix of this expression over ``schema``."""
        domain = schema.domain
        blocks: list[Matrix] = []
        for w, by_attr in self._terms(schema):
            unknown = set(by_attr) - set(domain.attributes)
            if unknown:
                raise SchemaMismatchError(
                    f"unknown attributes {sorted(unknown)}; this schema has "
                    f"{list(domain.attributes)}"
                )
            factors = [
                by_attr.get(a, Ones(1, domain[a])) for a in domain.attributes
            ]
            kron = Kronecker(factors)
            blocks.append(kron if w == 1.0 else Weighted(kron, w))
        if not blocks:
            raise ValueError(f"expression {self!r} compiles to no queries")
        return blocks[0] if len(blocks) == 1 else VStack(blocks)

    # -- algebra -----------------------------------------------------------
    def __add__(self, other: "QueryExpr") -> "QueryExpr":
        if not isinstance(other, QueryExpr):
            return NotImplemented
        return Union([self, other])

    def __mul__(self, weight) -> "QueryExpr":
        w = float(weight)
        if w <= 0:
            raise ValueError(f"expression weights must be positive, got {w}")
        return self if w == 1.0 else WeightedExpr(self, w)

    __rmul__ = __mul__


class Condition(QueryExpr):
    """A single-attribute filter — itself one counting query.

    Conditions are produced by :class:`AttributeRef` methods and compose:
    ``&`` conjoins (across or within attributes), ``~`` negates the
    underlying predicate.
    """

    def __init__(self, attr: str, make: "callable", label: str):
        self.attr = str(attr)
        self._make = make  # (Attribute) -> Predicate
        self.label = label

    def predicate(self, schema: Schema) -> Predicate:
        return self._make(schema.attribute(self.attr))

    def _terms(self, schema):
        return Conjunction([self])._terms(schema)

    def __and__(self, other) -> "Conjunction":
        return Conjunction([self]) & other

    def __invert__(self) -> "Condition":
        make = self._make
        return Condition(
            self.attr, lambda a: Not(make(a)), f"not ({self.label})"
        )

    def __repr__(self) -> str:
        return self.label


class Conjunction(QueryExpr):
    """A conjunction of per-attribute conditions — one counting query.

    Vectorizes (Theorem 1) as the Kronecker product of the per-attribute
    indicator rows; several conditions on the same attribute conjoin at
    the predicate level.
    """

    def __init__(self, conditions: Sequence[Condition]):
        self.conditions = list(conditions)
        if not self.conditions:
            raise ValueError("conjunction needs at least one condition")

    def _terms(self, schema):
        by_attr: dict[str, list[Predicate]] = {}
        for c in self.conditions:
            by_attr.setdefault(c.attr, []).append(c.predicate(schema))
        factors: dict[str, Matrix] = {}
        for attr, preds in by_attr.items():
            n = schema.attribute(attr).size
            pred = preds[0] if len(preds) == 1 else And(*preds)
            factors[attr] = vectorize_set([pred], n)
        return [(1.0, factors)]

    def __and__(self, other) -> "Conjunction":
        if isinstance(other, Condition):
            return Conjunction(self.conditions + [other])
        if isinstance(other, Conjunction):
            return Conjunction(self.conditions + other.conditions)
        return NotImplemented

    def __repr__(self) -> str:
        return " & ".join(f"({c!r})" for c in self.conditions)


class AttributeRef:
    """A named attribute, awaiting a condition: the ``A("age")`` handle."""

    def __init__(self, name: str):
        self.name = str(name)

    def eq(self, value) -> Condition:
        """``attr == value`` (value may be a vocabulary label)."""
        return Condition(
            self.name,
            lambda a, v=value: Equals(a.encode(v)),
            f"{self.name} == {value!r}",
        )

    def isin(self, values) -> Condition:
        """``attr ∈ values`` — a disjunction of equalities.  An empty
        value set is the unsatisfiable predicate (its indicator row is
        all zeros and the answer is identically 0)."""
        vals = list(values)
        return Condition(
            self.name,
            lambda a, vs=vals: InSet([a.encode(v) for v in vs]),
            f"{self.name} in {vals!r}",
        )

    def between(self, lo, hi) -> Condition:
        """``lo <= attr <= hi`` (inclusive, in domain order).  A range
        covering the whole domain collapses to the Total predicate."""

        def make(a, lo=lo, hi=hi):
            lo_c, hi_c = a.encode(lo), a.encode(hi)
            if lo_c == 0 and hi_c == a.size - 1:
                return TruePredicate()
            return Range(lo_c, hi_c)

        return Condition(self.name, make, f"{lo!r} <= {self.name} <= {hi!r}")

    def ge(self, value) -> Condition:
        """``attr >= value``."""
        return Condition(
            self.name,
            lambda a, v=value: (
                TruePredicate() if a.encode(v) == 0 else Range(a.encode(v), a.size - 1)
            ),
            f"{self.name} >= {value!r}",
        )

    def le(self, value) -> Condition:
        """``attr <= value``."""
        return Condition(
            self.name,
            lambda a, v=value: (
                TruePredicate()
                if a.encode(v) == a.size - 1
                else Range(0, a.encode(v))
            ),
            f"{self.name} <= {value!r}",
        )

    def bucketize(self, *intervals) -> "Buckets":
        """A custom bucketization of this attribute: one counting query
        per inclusive ``(lo, hi)`` interval (a bare value is a singleton
        bucket).  ``A("age").bucketize((0, 17), (18, 64), (65, 74), 75)``."""
        return Buckets(self.name, list(intervals))

    def __repr__(self) -> str:
        return f"A({self.name!r})"


def A(name: str) -> AttributeRef:
    """The attribute handle: ``A("age").between(30, 40)``."""
    return AttributeRef(name)


class Buckets(QueryExpr):
    """A custom bucketization of one attribute: one counting query per
    interval (Section 3.3's predicate-set workloads with arbitrary
    per-attribute interval sets).

    Buckets are inclusive ``(lo, hi)`` pairs in vocabulary labels (a
    bare value is a singleton bucket) and may overlap, nest, or leave
    gaps — age bands, income brackets, top-coded tails.  Compiles
    directly through :func:`~repro.workload.predicates.vectorize_set`
    (no ``workload.logical`` detour), and every bucket row is an
    interval indicator, so the compiled query is accelerator-eligible:
    a free hit answers the whole bucketization in one summed-area
    gather.
    """

    def __init__(self, attr: str, intervals: Sequence):
        self.attr = str(attr)
        self.intervals = [
            (iv[0], iv[1]) if isinstance(iv, (tuple, list)) else (iv, iv)
            for iv in intervals
        ]
        if not self.intervals:
            raise ValueError("bucketization needs at least one bucket")
        for iv in intervals:
            if isinstance(iv, (tuple, list)) and len(iv) != 2:
                raise ValueError(
                    f"bucket {iv!r} must be a (lo, hi) pair or a scalar"
                )

    def _terms(self, schema):
        a = schema.attribute(self.attr)
        coded = []
        for lo, hi in self.intervals:
            lo_c, hi_c = a.encode(lo), a.encode(hi)
            if lo_c > hi_c:
                raise ValueError(
                    f"bucket ({lo!r}, {hi!r}) on {self.attr!r} is empty "
                    f"in domain order"
                )
            coded.append((lo_c, hi_c) if lo_c < hi_c else lo_c)
        return [
            (1.0, {self.attr: vectorize_set(bucket_predicates(coded), a.size)})
        ]

    def __repr__(self) -> str:
        return f"buckets({self.attr!r}, {self.intervals!r})"


class Marginal(QueryExpr):
    """Group-by: one counting query per cell of the named attributes."""

    def __init__(self, attrs: Sequence[str]):
        self.attrs = tuple(dict.fromkeys(attrs))  # ordered, deduped

    def _terms(self, schema):
        return [
            (1.0, {a: Identity(schema.attribute(a).size) for a in self.attrs})
        ]

    def __repr__(self) -> str:
        return f"marginal({', '.join(map(repr, self.attrs))})"


class PrefixExpr(QueryExpr):
    """All prefix (CDF) queries on one ordered attribute."""

    def __init__(self, attr: str):
        self.attr = str(attr)

    def _terms(self, schema):
        return [(1.0, {self.attr: Prefix(schema.attribute(self.attr).size)})]

    def __repr__(self) -> str:
        return f"prefix({self.attr!r})"


class RangesExpr(QueryExpr):
    """All interval queries on one ordered attribute."""

    def __init__(self, attr: str):
        self.attr = str(attr)

    def _terms(self, schema):
        return [(1.0, {self.attr: AllRange(schema.attribute(self.attr).size)})]

    def __repr__(self) -> str:
        return f"ranges({self.attr!r})"


class Total(QueryExpr):
    """The single grand-total query."""

    def _terms(self, schema):
        return [(1.0, {})]

    def __repr__(self) -> str:
        return "total()"


class Union(QueryExpr):
    """A union of expressions: their query rows stacked in order."""

    def __init__(self, exprs: Sequence[QueryExpr]):
        parts: list[QueryExpr] = []
        for e in exprs:
            parts.extend(e.exprs if isinstance(e, Union) else [e])
        if not parts:
            raise ValueError("union needs at least one expression")
        self.exprs = parts

    def _terms(self, schema):
        out = []
        for e in self.exprs:
            out.extend(e._terms(schema))
        return out

    def __repr__(self) -> str:
        return " + ".join(f"({e!r})" for e in self.exprs)


class WeightedExpr(QueryExpr):
    """An expression with an accuracy weight (Section 3.3)."""

    def __init__(self, base: QueryExpr, weight: float):
        self.base = base
        self.weight = float(weight)

    def _terms(self, schema):
        return [(w * self.weight, f) for w, f in self.base._terms(schema)]

    def __repr__(self) -> str:
        return f"{self.weight} * ({self.base!r})"


def marginal(*attrs: str) -> Marginal:
    """The marginal (group-by) over the named attributes; ``marginal()``
    is the grand total."""
    return Marginal(attrs) if attrs else Total()


def prefix(attr: str) -> PrefixExpr:
    """All prefix/CDF queries on an ordered attribute."""
    return PrefixExpr(attr)


def ranges(attr: str) -> RangesExpr:
    """All interval queries on an ordered attribute."""
    return RangesExpr(attr)


def total() -> Total:
    """The single total-count query."""
    return Total()


def buckets(attr: str, *intervals) -> Buckets:
    """A custom bucketization of one attribute: ``buckets("age",
    (0, 17), (18, 64), 75)`` answers one count per interval (scalars are
    singleton buckets; intervals may overlap or leave gaps)."""
    return Buckets(attr, list(intervals))


def count(*conditions: Condition) -> QueryExpr:
    """One counting query: the conjunction of the conditions (or the
    grand total when none are given)."""
    if not conditions:
        return Total()
    out = Conjunction([conditions[0]])
    for c in conditions[1:]:
        out = out & c
    return out


def union(*exprs: QueryExpr, weights: Sequence[float] | None = None) -> QueryExpr:
    """A (weighted) union of expressions."""
    if weights is not None:
        if len(weights) != len(exprs):
            raise ValueError("weights must align with expressions")
        exprs = tuple(w * e for w, e in zip(weights, exprs))
    return Union(exprs)
