"""Declarative query API: say *what* you want over named attributes.

The paper's logical-workload abstraction (Sections 3.2–3.3) hides the
flattened-domain vectorization behind predicate sets; this package
extends that split all the way to the serving stack, in the spirit of
declarative-over-physical database design: clients state intent, a
planner owns vectorization, dedup, and routing.

Three pieces:

* **expressions** (:mod:`~repro.api.expr`) — a composable algebra over
  named schema attributes: ``A("age").between(30, 40) & A("sex").eq("F")``,
  ``marginal("age", "income")``, ``prefix("income")``, ``total()``,
  weighted unions, negation;
* **the planner** (:mod:`~repro.api.planner`) — compiles expressions to
  canonical implicit matrices, dedups identical queries by fingerprint,
  and emits an inspectable :class:`Plan` (route, estimated ε debit,
  expected RMSE) before any budget is spent;
* **the Session facade** (:mod:`~repro.api.session`) — registers data +
  schema once; ``ds.ask(expr)`` / ``ds.ask_many(exprs)`` serve answers
  with per-query provenance through the matrix-level
  :class:`~repro.service.QueryService`, which remains the physical layer
  underneath.
"""

from ..domain import SchemaMismatchError
from .expr import (
    A,
    AttributeRef,
    Buckets,
    Condition,
    Conjunction,
    QueryExpr,
    buckets,
    count,
    marginal,
    prefix,
    ranges,
    total,
    union,
)
from .planner import (
    CompiledBatch,
    CompiledQuery,
    Plan,
    PlanEntry,
    compile_batch,
    compile_expr,
    plan_queries,
)
from .schema import Attribute, Schema
from .session import Answer, Dataset, Session

__all__ = [
    "A",
    "Answer",
    "Attribute",
    "AttributeRef",
    "Buckets",
    "CompiledBatch",
    "CompiledQuery",
    "Condition",
    "Conjunction",
    "Dataset",
    "Plan",
    "PlanEntry",
    "QueryExpr",
    "Schema",
    "SchemaMismatchError",
    "Session",
    "buckets",
    "compile_batch",
    "compile_expr",
    "count",
    "marginal",
    "plan_queries",
    "prefix",
    "ranges",
    "total",
    "union",
]
