"""The ``Session`` facade: declarative datasets over the serving stack.

A :class:`Session` owns a :class:`~repro.service.QueryService` (registry,
accountant, fitted-strategy memo) and hands out :class:`Dataset` handles
that register data + schema once and then answer *expressions*::

    from repro.api import A, Schema, Session, marginal

    sess = Session(registry=..., accountant=...)
    ds = sess.dataset(
        "adult",
        schema=Schema.from_spec({"age": 75, "sex": ["M", "F"]}),
        data=x,
        epsilon_cap=5.0,
    )
    plan = ds.plan([marginal("age"), A("sex").eq("F")], eps=0.5)
    print(plan.explain())            # routes + ε before any spend
    answers = ds.ask_many([marginal("age"), A("sex").eq("F")], eps=0.5)

Execution defers entirely to the physical layer: ``ask_many`` compiles
and dedups the batch, plans it, then serves it through
:meth:`~repro.service.QueryService.answer` — so answers are exactly what
the matrix-level API returns for the same compiled workload, with
per-query provenance (route taken, ε charged, span-projection flag)
attached.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..domain import SchemaMismatchError
from ..obs.trace import TRACER as _TRACER
from ..service.accountant import PrivacyAccountant
from ..service.engine import QueryService
from ..service.registry import StrategyRegistry
from .expr import QueryExpr
from .planner import (
    CompiledBatch,
    CompiledQuery,
    Plan,
    compile_batch,
    compile_expr,
    plan_queries,
)
from .schema import Schema

__all__ = ["Answer", "Dataset", "Session"]


@dataclass
class Answer:
    """One answered expression, with serving provenance.

    ``epsilon`` is the debit of the jointly-measured group this query
    rode in (0 for a free hit; the group's single joint debit is
    reported on each of its members, not split).  ``span_projected``
    marks zero-budget answers served by projecting through a cached
    reconstruction's measured span.  ``remaining`` is the dataset's
    budget left after this batch settled (``inf`` with no accountant) —
    the actionable half of the provenance: a caller that sees it shrink
    toward 0 can stop issuing measured queries *before* the next one is
    refused with a :class:`~repro.service.BudgetExceededError`.
    """

    expr: QueryExpr
    values: np.ndarray
    route: str  # "accelerator" | "cache" | "warm" | "direct" | "cold"
    key: str | None
    epsilon: float
    span_projected: bool
    remaining: float = float("inf")
    #: Trace this answer was served under (None when tracing is off) —
    #: resolvable to the full span tree via ``repro.obs.get_trace``.
    trace_id: str | None = None
    #: Noise mechanism behind the values ("laplace"/"gaussian"): the
    #: mechanism of this batch's measurement for misses, and of the
    #: cached measurement being reused for free hits.
    mechanism: str = "laplace"

    @property
    def value(self) -> float:
        """The scalar answer of a single-row expression."""
        if self.values.size != 1:
            raise ValueError(
                f"expression has {self.values.size} answers; use .values"
            )
        return float(self.values[0])

    def __repr__(self) -> str:
        head = (
            f"{self.values[0]:g}" if self.values.size == 1
            else f"[{self.values.size} values]"
        )
        return (
            f"Answer({self.expr!r} = {head}, route={self.route}, "
            f"eps={self.epsilon:g})"
        )


class Dataset:
    """A registered (data, schema) pair answering declarative queries."""

    def __init__(self, session: "Session", name: str, schema: Schema):
        self.session = session
        self.name = name
        self.schema = schema
        # Compiled-query memo keyed by expression identity: replanning or
        # re-asking the same expression objects reuses their compiled
        # matrices, which keeps everything memoized *on* those matrices
        # warm too (accelerator range specs, gather plans, span probes).
        self._compile_memo: dict[int, tuple[QueryExpr, CompiledQuery]] = {}

    # -- compile / plan (lazy, budget-free) ---------------------------------
    def compile(self, expr: QueryExpr) -> CompiledQuery:
        """Vectorize one expression against this dataset's schema.

        Memoized per expression object (expressions are immutable once
        built); the memo is bounded and simply resets when full.
        """
        hit = self._compile_memo.get(id(expr))
        if hit is not None and hit[0] is expr:
            return hit[1]
        cq = compile_expr(expr, self.schema)
        if len(self._compile_memo) >= 4096:
            self._compile_memo.clear()
        self._compile_memo[id(expr)] = (expr, cq)
        return cq

    def compile_many(self, exprs) -> CompiledBatch:
        """Compile a batch, deduping identical queries by fingerprint."""
        return compile_batch(
            exprs, self.schema, compile_one=lambda e, _s: self.compile(e)
        )

    def plan(
        self,
        exprs,
        eps: float | None = None,
        mechanism: str = "laplace",
        delta: float | None = None,
    ) -> Plan:
        """Route a batch without executing it: inspect before you spend.

        ``mechanism``/``delta`` mirror :meth:`ask_many`'s measurement
        options; either way the plan's RMSE columns compare Laplace vs
        Gaussian at the same budget."""
        return plan_queries(
            self.session.service,
            self.name,
            self.compile_many(exprs),
            eps,
            mechanism=mechanism,
            delta=delta,
        )

    # -- execution ----------------------------------------------------------
    def ask(
        self,
        expr: QueryExpr,
        eps: float | None = None,
        rng: np.random.Generator | int | None = None,
        deadline=None,
        **run_kwargs,
    ) -> Answer:
        """Answer one expression (free when cached; measured under ``eps``
        otherwise — no ``eps`` raises on a miss before any spend)."""
        return self.ask_many(
            [expr], eps=eps, rng=rng, deadline=deadline, **run_kwargs
        )[0]

    def ask_many(
        self,
        exprs,
        eps: float | None = None,
        rng: np.random.Generator | int | None = None,
        deadline=None,
        **run_kwargs,
    ) -> list[Answer]:
        """Answer a batch of expressions with per-query provenance.

        Compiles and dedups the batch (repeated expressions are answered
        once and share one ε debit), plans the routing, then serves the
        distinct queries through the physical
        :meth:`~repro.service.QueryService.answer` — hits free, misses
        jointly measured under scalar ``eps``.  Extra keyword arguments
        (``exact``, ``method``, ...) forward to the measurement pass.
        ``deadline`` (a :class:`repro.server.Deadline` or compatible) is
        threaded down to the engine's stage boundaries; expiry before
        the accountant debit refuses with zero spend.
        """
        exprs = list(exprs)
        if not exprs:
            return []
        with _TRACER.span(
            "session.ask", dataset=self.name, expressions=len(exprs)
        ):
            if deadline is not None:
                deadline.check("plan")  # compile stage boundary
            with _TRACER.span("plan.compile"):
                batch = self.compile_many(exprs)
            # No separate planning pass: answer() makes (and reports, via
            # QueryAnswer.route) the same routing decisions a Plan
            # predicts, so execution does the span checks and probes
            # exactly once.
            result = self.session.service.answer(
                self.name,
                [cq.matrix for cq in batch.queries],
                eps=eps,
                rng=rng,
                deadline=deadline,
                **run_kwargs,
            )
            trace_id = _TRACER.current_trace_id()
        acct = self.session.service.accountant
        remaining = float("inf") if acct is None else acct.remaining(self.name)
        out: list[Answer] = []
        for orig, pos in enumerate(batch.index_map):
            qa = result.answers[pos]
            out.append(
                Answer(
                    expr=exprs[orig],
                    values=qa.values,
                    route=qa.route or ("cache" if qa.hit else "cold"),
                    key=qa.key,
                    epsilon=0.0 if qa.hit else result.charged,
                    span_projected=bool(qa.hit),
                    remaining=remaining,
                    trace_id=trace_id,
                    mechanism=qa.mechanism,
                )
            )
        return out

    # -- budget -------------------------------------------------------------
    @property
    def spent(self) -> float:
        acct = self.session.service.accountant
        return 0.0 if acct is None else acct.spent(self.name)

    @property
    def remaining(self) -> float:
        acct = self.session.service.accountant
        return float("inf") if acct is None else acct.remaining(self.name)

    def __repr__(self) -> str:
        return f"Dataset({self.name!r}, schema={self.schema!r})"


class Session:
    """Entry point of the declarative API: datasets + the serving stack.

    Parameters mirror :class:`~repro.service.QueryService` (and an
    existing service can be passed directly via ``service=``); every
    dataset registered through the session answers expressions compiled
    against its own schema.
    """

    def __init__(
        self,
        registry: StrategyRegistry | None = None,
        accountant: PrivacyAccountant | None = None,
        service: QueryService | None = None,
        **service_kwargs,
    ):
        if service is not None and (
            registry is not None or accountant is not None or service_kwargs
        ):
            raise ValueError(
                "pass either an existing service or construction arguments, "
                "not both"
            )
        self.service = service or QueryService(
            registry=registry, accountant=accountant, **service_kwargs
        )
        self._datasets: dict[str, Dataset] = {}

    def dataset(
        self,
        name: str,
        schema: Schema | None = None,
        data: np.ndarray | None = None,
        epsilon_cap: float | None = None,
        policy=None,
    ) -> Dataset:
        """Register (or fetch) a dataset handle.

        ``data`` is the contingency table: either the flat vector over
        the schema's full domain, or the data tensor of shape
        ``schema.domain.shape()`` (flattened in C order — the same
        vectorization the compiled queries use).  ``epsilon_cap``
        registers a pure-ε budget; ``policy`` registers any
        :class:`~repro.privacy.policy.BudgetPolicy` (an (ε, δ) cap or a
        ρ-zCDP cap) instead.
        """
        if name in self._datasets:
            if (
                schema is not None
                or data is not None
                or epsilon_cap is not None
                or policy is not None
            ):
                raise ValueError(
                    f"dataset {name!r} is already registered; fetch it "
                    "without schema/data/epsilon_cap (budget caps are "
                    "managed through the accountant)"
                )
            return self._datasets[name]
        if schema is None or data is None:
            raise SchemaMismatchError(
                f"dataset {name!r} is not registered; pass schema= and data="
            )
        x = np.asarray(data, dtype=np.float64)
        if x.ndim > 1:
            if x.shape != schema.domain.shape():
                raise SchemaMismatchError(
                    f"dataset {name!r}: data tensor has shape {x.shape}, "
                    f"but the schema's domain is "
                    f"{dict(zip(schema.domain.attributes, schema.domain.sizes))}"
                )
            x = x.reshape(-1)
        elif x.shape[0] != schema.domain.size():
            raise SchemaMismatchError(
                f"dataset {name!r}: data vector has length {x.shape[0]}, but "
                f"the schema's full domain "
                f"{dict(zip(schema.domain.attributes, schema.domain.sizes))} "
                f"has size {schema.domain.size()}"
            )
        self.service.add_dataset(name, x, epsilon_cap=epsilon_cap, policy=policy)
        handle = Dataset(self, name, schema)
        self._datasets[name] = handle
        return handle

    def datasets(self) -> list[str]:
        return sorted(self._datasets)

    def budget_report(self):
        """The ε-spend view of this session's accountant: per-dataset
        spend/cap/remaining plus the debit timeline, reconstructed from
        the accountant's committed WAL records
        (:class:`repro.obs.spend.SpendReport`).  Raises
        :class:`ValueError` when the session runs without an accountant —
        there is no budget to report on.
        """
        from ..obs.spend import report_from_accountant

        acct = self.service.accountant
        if acct is None:
            raise ValueError(
                "session has no accountant: budget reporting needs the "
                "ε ledger an accountant maintains"
            )
        return report_from_accountant(acct)

    def __repr__(self) -> str:
        return f"Session(datasets={self.datasets()}, service={self.service!r})"
