"""Named, value-aware schemas for the declarative query API.

A :class:`Schema` is the client-side view of a relational domain: each
attribute carries not just a size (what :class:`~repro.domain.Domain`
records) but, for categorical attributes, the *vocabulary* of labels its
integer codes stand for.  Expressions in :mod:`repro.api.expr` name
attributes and values symbolically — ``A("sex").eq("F")`` — and the
schema owns the mapping down to the integer-coded domain the physical
layer vectorizes over.

Two attribute kinds:

* **categorical** — declared with an explicit vocabulary (a sequence of
  labels); values in expressions may be labels or raw integer codes, and
  an out-of-vocabulary label raises
  :class:`~repro.domain.SchemaMismatchError` naming the attribute and its
  vocabulary.
* **ordinal** — declared with a size; values are integer codes in
  ``[0, size)`` and support order predicates (ranges, prefixes).
"""

from __future__ import annotations

import numbers
from collections.abc import Mapping, Sequence

from ..domain import Domain, SchemaMismatchError


def _is_integral(value) -> bool:
    """True for int-like codes (including numpy integer scalars), never
    for booleans — the values usable as raw domain codes."""
    return isinstance(value, numbers.Integral) and not isinstance(value, bool)

__all__ = ["Attribute", "Schema"]


class Attribute:
    """One named attribute: a finite domain plus an optional vocabulary.

    Parameters
    ----------
    name:
        Attribute name, as used in expressions.
    size:
        Domain size; required for ordinal attributes, inferred from
        ``values`` for categorical ones.
    values:
        Vocabulary of labels (categorical attributes).  Label ``values[i]``
        encodes to integer ``i``.
    """

    def __init__(
        self,
        name: str,
        size: int | None = None,
        values: Sequence | None = None,
    ):
        self.name = str(name)
        if values is not None:
            self.values = tuple(values)
            if len(set(self.values)) != len(self.values):
                raise ValueError(
                    f"attribute {self.name!r} has duplicate vocabulary values"
                )
            if size is not None and int(size) != len(self.values):
                raise SchemaMismatchError(
                    f"attribute {self.name!r}: size {size} conflicts with "
                    f"vocabulary of {len(self.values)} values"
                )
            self.size = len(self.values)
            self._codes = {v: i for i, v in enumerate(self.values)}
        else:
            if size is None:
                raise ValueError(
                    f"attribute {self.name!r} needs a size or a vocabulary"
                )
            self.values = None
            self.size = int(size)
            self._codes = None
        if self.size <= 0:
            raise ValueError(f"attribute {self.name!r} must have positive size")

    @property
    def categorical(self) -> bool:
        return self.values is not None

    def encode(self, value) -> int:
        """Map a label (or raw integer code) to its integer code.

        Raises :class:`~repro.domain.SchemaMismatchError` naming the
        attribute, the offending value, and the expected domain.
        """
        if self._codes is not None:
            try:
                if value in self._codes:
                    return self._codes[value]
            except TypeError:
                pass  # unhashable value: fall through to the named error
        if not _is_integral(value):
            expected = (
                f"one of {list(self.values)}"
                if self.categorical
                else f"an integer in [0, {self.size})"
            )
            raise SchemaMismatchError(
                f"attribute {self.name!r} has no value {value!r}; "
                f"expected {expected}"
            )
        code = int(value)
        if not 0 <= code < self.size:
            raise SchemaMismatchError(
                f"value {code} is outside attribute {self.name!r}'s domain "
                f"[0, {self.size})"
            )
        return code

    def __repr__(self) -> str:
        kind = "categorical" if self.categorical else "ordinal"
        return f"Attribute({self.name!r}, size={self.size}, {kind})"


class Schema:
    """An ordered collection of named attributes — the declarative domain.

    Build one from a spec mapping each attribute name to either a size
    (ordinal) or a vocabulary (categorical)::

        schema = Schema.from_spec({
            "age": 75,                 # ordinal, codes 0..74
            "sex": ["M", "F"],         # categorical with labels
            "hours": 20,
        })

    ``schema.domain`` is the physical :class:`~repro.domain.Domain` every
    expression compiled against this schema vectorizes over.
    """

    def __init__(self, attributes: Sequence[Attribute]):
        self.attributes = tuple(attributes)
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError("attribute names must be unique")
        if not self.attributes:
            raise ValueError("schema needs at least one attribute")
        self._by_name = {a.name: a for a in self.attributes}
        self.domain = Domain(names, [a.size for a in self.attributes])

    @classmethod
    def from_spec(cls, spec: Mapping[str, int | Sequence]) -> "Schema":
        """Build a schema from ``{name: size | vocabulary}`` (ordered)."""
        attrs = []
        for name, v in spec.items():
            if isinstance(v, bool):
                raise ValueError(f"attribute {name!r}: bool is not a size")
            if _is_integral(v):
                attrs.append(Attribute(name, size=int(v)))
            else:
                attrs.append(Attribute(name, values=v))
        return cls(attrs)

    @classmethod
    def from_domain(cls, domain: Domain) -> "Schema":
        """An all-ordinal schema over an existing physical domain."""
        return cls([Attribute(a, size=n) for a, n in zip(domain.attributes, domain.sizes)])

    def attribute(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaMismatchError(
                f"unknown attribute {name!r}; this schema has "
                f"{[a.name for a in self.attributes]}"
            ) from None

    def encode(self, name: str, value) -> int:
        """Encode one value of the named attribute to its integer code."""
        return self.attribute(name).encode(value)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{a.name}: {list(a.values)!r}" if a.categorical else f"{a.name}: {a.size}"
            for a in self.attributes
        )
        return f"Schema({inner})"
