"""OPT_M: optimized marginal strategies (paper Section 6.3, Problem 4).

Strategies are restricted to weighted unions of the 2^d marginals,
``M(θ)`` with ``θ ∈ R₊^{2^d}``.  The objective moves the sensitivity
``Σθ`` into the loss::

    f(θ) = (Σ_a θ_a)² · ‖W M(θ)⁺‖_F² = (Σθ)² · δᵀ v(θ)

where ``v(θ)`` are the weights of ``(M(θ)ᵀM(θ))⁻¹ = G(v)`` obtained from
the triangular system ``X(θ²) v = e_full`` (Appendix A.4), and δ collects
the per-subset trace/sum statistics of the workload Gram.  Evaluating the
objective and its gradient costs O(4^d) — independent of the domain sizes
— with the gradient computed analytically via the adjoint system
``X(u)ᵀ φ = δ``::

    ∂(δᵀv)/∂u_b = -Σ_c φ_{b&c} C̄(b|c) v_c .
"""

from __future__ import annotations

import numpy as np
from scipy import optimize as sopt

from ..core.error import workload_marginal_traces
from ..linalg import MarginalsAlgebra, MarginalsStrategy, Matrix
from ..linalg.marginals import get_algebra
from ..workload.util import attribute_sizes
from .opt0 import OptResult


def marginals_loss_and_grad(
    theta: np.ndarray, alg: MarginalsAlgebra, delta: np.ndarray
) -> tuple[float, np.ndarray]:
    """Objective f(θ) and its analytic gradient.

    Requires ``theta[-1] > 0`` so the Gram is invertible (the paper forces
    the full-contingency weight strictly positive).  One ``X(u)`` build
    feeds both triangular solves, and on domains within the algebra's
    dense-table limit the build, the solves and the gradient kernel are
    all fully vectorized (no per-subset Python loops).
    """
    theta = np.asarray(theta, dtype=np.float64)
    size = alg.size
    if not np.all(np.isfinite(theta)) or np.abs(theta).max() > 1e30:
        return np.inf, np.zeros(size)
    u = theta**2

    X = alg.x_operator(u)
    e = np.zeros(size)
    e[-1] = 1.0
    try:
        v = alg.solve_upper(X, e)
        phi = alg.solve_lower_t(X, delta)
    except Exception:
        return np.inf, np.zeros(size)
    if not (np.all(np.isfinite(v)) and np.all(np.isfinite(phi))):
        return np.inf, np.zeros(size)

    S = float(theta.sum())
    gval = float(delta @ v)
    loss = S**2 * gval
    if not np.isfinite(loss) or loss <= 0:
        # Ill-conditioned triangular solves (θ_full near its bound) can
        # produce garbage; report infeasible so the optimizer backtracks.
        return np.inf, np.zeros(size)

    # dg/du_b = -Σ_c φ[b&c] · C̄(b|c) · v_c.
    dg_du = -alg.grad_dot(phi, v)

    grad = 2.0 * S * gval + S**2 * dg_du * 2.0 * theta
    return loss, grad


def _marginals_restart(payload) -> tuple[float, np.ndarray]:
    """One OPT_M restart from a fixed initialization (engine task)."""
    alg, delta, theta0, bounds, maxiter = payload

    def fun(x):
        loss, grad = marginals_loss_and_grad(x, alg, delta)
        return loss, grad

    res = sopt.minimize(
        fun,
        theta0,
        jac=True,
        method="L-BFGS-B",
        bounds=bounds,
        options={"maxiter": maxiter},
    )
    # Re-evaluate at the solution: L-BFGS can report the objective of a
    # rejected probe point when it aborts on a failed line search.
    final_loss, _ = marginals_loss_and_grad(np.asarray(res.x), alg, delta)
    return float(final_loss), np.asarray(res.x)


def opt_marginals(
    W: Matrix,
    rng: np.random.Generator | int | None = None,
    restarts: int = 2,
    maxiter: int = 500,
    init: np.ndarray | None = None,
    workers: int | None = 1,
    executor: str = "auto",
) -> OptResult:
    """OPT_M: optimize a marginals strategy for a union-of-products workload.

    Applicable to *any* union of products (the objective only needs the
    trace and sum of each factor Gram), but most effective when the
    workload itself is marginal-like.

    ``workers`` fans the restarts out over the parallel engine; restart
    ``r`` always draws its initialization from child ``r`` of the root
    seed, so results are identical for every worker count given the same
    ``rng`` (see :mod:`repro.optimize.parallel`).

    Returns an :class:`OptResult` whose strategy is a sensitivity-1
    :class:`~repro.linalg.MarginalsStrategy` and whose ``loss`` equals
    ``(Σθ)²‖WM(θ)⁺‖_F²`` — directly comparable to the other operators.
    """
    from .parallel import best_index, run_tasks, spawn_generators

    sizes = attribute_sizes(W)
    alg = get_algebra(tuple(sizes))
    delta = workload_marginal_traces(W)
    size = alg.size

    # θ_full strictly positive keeps the Gram invertible; the bound is set
    # high enough (relative to the O(1) initializations) that the
    # triangular solves stay well-conditioned.
    bounds = [(0.0, None)] * (size - 1) + [(1e-4, None)]

    gens = spawn_generators(rng, restarts)
    inits = []
    for r in range(restarts):
        if r == 0 and init is not None:
            theta0 = np.asarray(init, dtype=np.float64)
        elif r == 0:
            # Deterministic uniform start: well-conditioned and reliably
            # in the good basin, so the first restart never depends on
            # seed luck.
            theta0 = np.ones(size)
        elif r % 2 == 0:
            # Near-uniform initialization: perturbations around the
            # uniform basin.
            theta0 = 1.0 + 0.3 * gens[r].random(size)
        else:
            # Small-scale initialization explores sparser weightings that
            # occasionally beat the uniform basin.
            theta0 = 0.1 * gens[r].random(size) + 1e-3
        inits.append(theta0)

    results = run_tasks(
        _marginals_restart,
        [(alg, delta, theta0, bounds, maxiter) for theta0 in inits],
        workers=workers,
        executor=executor,
        # Per-restart work scales with the 2^d marginals lattice (the
        # O(4^d) algebra), not the domain product — the domain size would
        # flip microsecond restarts onto the process pool.
        size_hint=size,
    )
    idx = best_index([loss for loss, _ in results])
    best_loss, best_theta = (np.inf, None) if idx is None else results[idx]

    # The full-contingency corner θ = e_full (the Identity strategy) lies
    # in the search space but is separated from the uniform basin by a
    # line-search barrier; evaluate it explicitly so OPT_M never returns a
    # local minimum worse than Identity (mirrors opt_0's clamp).
    corner = np.zeros(size)
    corner[-1] = 1.0
    corner_loss, _ = marginals_loss_and_grad(corner, alg, delta)
    if np.isfinite(corner_loss) and corner_loss < best_loss:
        best_loss, best_theta = float(corner_loss), corner

    if best_theta is None:
        # All restarts failed numerically: fall back to the uniform
        # marginal weights, which are always well-conditioned.
        best_theta = np.ones(size)
        best_loss, _ = marginals_loss_and_grad(best_theta, alg, delta)

    # Normalize to sensitivity 1 (the loss already accounts for scale) and
    # zero-out negligible marginals so measurement skips them, keeping the
    # full-contingency weight at its (well-conditioned) bound.
    theta = best_theta / best_theta.sum()
    floor = 1e-4 / best_theta.sum()
    theta[theta < 1e-10 * theta.max()] = 0.0
    theta[-1] = max(theta[-1], floor)
    theta = theta / theta.sum()
    # Report the loss of the *post-processed* strategy so it matches
    # squared_error(W, strategy) exactly.
    final_loss, _ = marginals_loss_and_grad(theta, alg, delta)
    return OptResult(MarginalsStrategy(sizes, theta), float(final_loss), restarts)
