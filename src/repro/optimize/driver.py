"""OPT_HDMM: the fully-automated strategy selection of paper Section 7.1
(Algorithm 2).

Runs a set of optimization operators — by default OPT_⊗ on the whole
workload, OPT_+ on a two-group partition, and OPT_M — across multiple
random restarts, keeping the strategy with least expected error.  The
Identity strategy seeds the search as a universally-supported fallback, so
the returned strategy never does worse than Identity.

Strategy selection is independent of the input data and consumes no
privacy budget (the workload is public).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..linalg import Identity, Kronecker, Matrix
from ..workload.util import as_union_of_products, attribute_sizes
from .opt0 import OptResult
from .opt_kron import opt_kron
from .opt_marginals import opt_marginals
from .opt_union import opt_union

Operator = Callable[[Matrix, np.random.Generator], OptResult]

#: Practical limit on marginal-space size for OPT_M (O(4^d) per iteration).
_MAX_MARGINAL_DIMS = 14


def identity_result(W: Matrix) -> OptResult:
    """The Identity strategy and its error — Algorithm 2's initial best."""
    from ..core.error import squared_error

    sizes = attribute_sizes(W)
    strategy = Kronecker([Identity(n) for n in sizes])
    return OptResult(strategy, squared_error(W, strategy))


def _op_kron(W: Matrix, rng) -> OptResult:
    return opt_kron(W, rng=rng)


def _op_union(W: Matrix, rng) -> OptResult:
    return opt_union(W, rng=rng, groups=2)


def _op_marginals(W: Matrix, rng) -> OptResult:
    return opt_marginals(W, rng=rng)


def default_operators(W: Matrix) -> list[tuple[str, Operator]]:
    """The operator set P used by the paper's instantiation of OPT_HDMM.

    The entries are module-level functions (not closures) so the whole
    operator set can be shipped to worker *processes* by the parallel
    engine; user-supplied operator sets may still be arbitrary callables
    (the engine falls back to threads for anything unpicklable).
    """
    terms = as_union_of_products(W)
    d = len(terms[0][1])
    ops: list[tuple[str, Operator]] = [("OPT_kron", _op_kron)]
    if len(terms) > 1:
        ops.append(("OPT_union", _op_union))
    if d <= _MAX_MARGINAL_DIMS:
        ops.append(("OPT_marginals", _op_marginals))
    return ops


def _run_operator(payload) -> OptResult:
    """One (restart, operator) cell of Algorithm 2's loop (engine task)."""
    W, op, seed = payload
    return op(W, np.random.default_rng(seed))


def opt_hdmm(
    W: Matrix,
    restarts: int = 25,
    rng: np.random.Generator | int | None = None,
    operators: Sequence[tuple[str, Operator]] | None = None,
    verbose: bool = False,
    workers: int | None = 1,
    executor: str = "auto",
) -> OptResult:
    """Algorithm 2: multi-restart, multi-operator strategy selection.

    Parameters
    ----------
    W:
        Implicit workload (union of Kronecker products).
    restarts:
        Maximum random restarts S.  The paper uses 25 but observes the
        local-minima distribution is concentrated and far fewer suffice.
    operators:
        Optional override of the operator set; each entry is
        ``(name, fn(W, rng) -> OptResult)``.
    workers:
        Maximum concurrent ``(restart, operator)`` cells.  Determinism
        contract: restart ``s`` owns child ``s`` of the root seed, and
        operator ``o`` within it owns child ``o`` of that child
        (``SeedSequence.spawn`` both times), so every cell's randomness is
        fixed by ``rng`` alone — the returned strategy and loss are
        bit-identical for every worker count, executor choice, and
        completion order.  The reduction picks the minimum valid loss with
        ties broken by (restart, operator) order.
    executor:
        ``"auto"`` (threads; the restarts spend their time in
        GIL-releasing BLAS/LAPACK), ``"thread"``, or ``"process"``
        (requires picklable operators; falls back to threads otherwise).

    Returns
    -------
    The best :class:`OptResult` found; ``loss`` is the expected squared
    error at sensitivity 1 (``‖A‖₁²·‖WA⁺‖_F²``).
    """
    from .parallel import best_index, run_tasks, spawn_seeds

    if operators is None:
        operators = default_operators(W)

    best = identity_result(W)
    if verbose:
        print(f"Identity baseline: {best.loss:.6g}")

    # One seed per (restart, operator) cell, spawned by index so the
    # assignment is independent of scheduling.
    tasks = []
    labels = []
    for s, restart_seed in enumerate(spawn_seeds(rng, restarts)):
        op_seeds = restart_seed.spawn(len(operators))
        for (name, op), seed in zip(operators, op_seeds):
            tasks.append((W, op, seed))
            labels.append((s, name))
    results = run_tasks(
        _run_operator,
        tasks,
        workers=workers,
        executor=executor,
        size_hint=W.shape[1],
    )

    if verbose:
        for (s, name), result in zip(labels, results):
            print(f"restart {s} {name}: {result.loss:.6g}")
    idx = best_index(
        [r.loss for r in results],
        valid=lambda loss: bool(np.isfinite(loss) and loss > 0),
    )
    if idx is not None and results[idx].loss < best.loss:
        best = results[idx]
    return OptResult(best.strategy, best.loss, restarts)
