"""OPT_HDMM: the fully-automated strategy selection of paper Section 7.1
(Algorithm 2).

Runs a set of optimization operators — by default OPT_⊗ on the whole
workload, OPT_+ on a two-group partition, and OPT_M — across multiple
random restarts, keeping the strategy with least expected error.  The
Identity strategy seeds the search as a universally-supported fallback, so
the returned strategy never does worse than Identity.

Strategy selection is independent of the input data and consumes no
privacy budget (the workload is public).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..linalg import Identity, Kronecker, Matrix
from ..workload.util import as_union_of_products, attribute_sizes
from .opt0 import OptResult
from .opt_kron import opt_kron
from .opt_marginals import opt_marginals
from .opt_union import opt_union

Operator = Callable[[Matrix, np.random.Generator], OptResult]

#: Practical limit on marginal-space size for OPT_M (O(4^d) per iteration).
_MAX_MARGINAL_DIMS = 14


def identity_result(W: Matrix) -> OptResult:
    """The Identity strategy and its error — Algorithm 2's initial best."""
    from ..core.error import squared_error

    sizes = attribute_sizes(W)
    strategy = Kronecker([Identity(n) for n in sizes])
    return OptResult(strategy, squared_error(W, strategy))


def default_operators(W: Matrix) -> list[tuple[str, Operator]]:
    """The operator set P used by the paper's instantiation of OPT_HDMM."""
    terms = as_union_of_products(W)
    d = len(terms[0][1])
    ops: list[tuple[str, Operator]] = [
        ("OPT_kron", lambda w, rng: opt_kron(w, rng=rng))
    ]
    if len(terms) > 1:
        ops.append(("OPT_union", lambda w, rng: opt_union(w, rng=rng, groups=2)))
    if d <= _MAX_MARGINAL_DIMS:
        ops.append(("OPT_marginals", lambda w, rng: opt_marginals(w, rng=rng)))
    return ops


def opt_hdmm(
    W: Matrix,
    restarts: int = 25,
    rng: np.random.Generator | int | None = None,
    operators: Sequence[tuple[str, Operator]] | None = None,
    verbose: bool = False,
) -> OptResult:
    """Algorithm 2: multi-restart, multi-operator strategy selection.

    Parameters
    ----------
    W:
        Implicit workload (union of Kronecker products).
    restarts:
        Maximum random restarts S.  The paper uses 25 but observes the
        local-minima distribution is concentrated and far fewer suffice.
    operators:
        Optional override of the operator set; each entry is
        ``(name, fn(W, rng) -> OptResult)``.

    Returns
    -------
    The best :class:`OptResult` found; ``loss`` is the expected squared
    error at sensitivity 1 (``‖A‖₁²·‖WA⁺‖_F²``).
    """
    rng = np.random.default_rng(rng)
    if operators is None:
        operators = default_operators(W)

    best = identity_result(W)
    if verbose:
        print(f"Identity baseline: {best.loss:.6g}")
    for s in range(restarts):
        for name, op in operators:
            result = op(W, rng)
            if verbose:
                print(f"restart {s} {name}: {result.loss:.6g}")
            valid = np.isfinite(result.loss) and result.loss > 0
            if valid and result.loss < best.loss:
                best = result
    return OptResult(best.strategy, best.loss, restarts)
