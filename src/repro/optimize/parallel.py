"""Deterministic parallel execution engine for multi-restart optimization.

Algorithm 2 (and each operator inside it) runs many *independent* random
restarts; this module provides the machinery that fans them out across
workers without giving up reproducibility:

* **Seed spawning** — every restart draws its randomness from its own
  child of one root :class:`numpy.random.SeedSequence`
  (``root.spawn(n)``), assigned *by restart index*.  The restart → seed
  mapping therefore depends only on the caller's ``rng`` argument and the
  number of restarts, never on how many workers execute them or in which
  order they finish: ``workers=1`` and ``workers=8`` produce bit-identical
  losses for the same seed.
* **Executors** — a shared :class:`~concurrent.futures.ThreadPoolExecutor`
  path (the heavy lifting inside restarts is BLAS/LAPACK work that
  releases the GIL) and a
  :class:`~concurrent.futures.ProcessPoolExecutor` path for pure-Python
  dominated problems, with a transparent fallback to threads when the
  task or its payload cannot be pickled.  ``executor="auto"`` picks
  processes when the caller's ``size_hint`` (domain size) reaches
  :data:`PROCESS_SIZE_THRESHOLD` *and* the host has more than one CPU —
  large domains spend enough time holding the GIL (Python-level factor
  bookkeeping, scipy wrappers) that fork + pickle pays for itself —
  and stays with threads otherwise.  Note the 1-CPU CI container this
  trajectory is benchmarked on never takes the process branch: all
  recorded ``BENCH_PERF.json`` numbers are thread-executor numbers, and
  multi-core hosts should re-benchmark ``executor="process"``.
* **Reduction** — :func:`reduce_best` picks the minimum-loss result, with
  ties broken by the lowest task index, so the winner is deterministic
  even when several restarts reach the same optimum.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any

import numpy as np

__all__ = [
    "PROCESS_SIZE_THRESHOLD",
    "best_index",
    "reduce_best",
    "resolve_executor",
    "resolve_workers",
    "run_tasks",
    "spawn_generators",
    "spawn_seeds",
]

#: Domain size at which ``executor="auto"`` prefers the process pool on
#: multi-core hosts.  Below it, fork + payload pickling costs more than
#: the GIL contention it removes (restarts are BLAS-dominated).
PROCESS_SIZE_THRESHOLD = 1 << 16


def resolve_executor(executor: str, size_hint: int | None = None) -> str:
    """Resolve an ``executor`` argument to ``"thread"`` or ``"process"``.

    ``"auto"`` picks the process pool only when both hold: the problem is
    large (``size_hint``, typically the domain size N, at or above
    :data:`PROCESS_SIZE_THRESHOLD`) and the host has more than one CPU.
    On a single CPU, processes add serialization cost with zero
    parallelism to gain — the 1-CPU CI container therefore always
    records thread-executor numbers.
    """
    if executor not in ("auto", "thread", "process"):
        raise ValueError(f"unknown executor {executor!r}")
    if executor != "auto":
        return executor
    if (
        size_hint is not None
        and size_hint >= PROCESS_SIZE_THRESHOLD
        and (os.cpu_count() or 1) > 1
    ):
        return "process"
    return "thread"


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers`` argument to a positive worker count.

    ``None``, ``0`` and ``1`` mean sequential execution; any negative
    value means "one worker per available CPU".
    """
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return max(1, os.cpu_count() or 1)
    return int(workers)


def _seed_sequence(rng) -> np.random.SeedSequence:
    """Recover a :class:`~numpy.random.SeedSequence` from any rng argument.

    Accepts the same values the optimizers accept for ``rng``: ``None``
    (fresh OS entropy), an integer seed, a ``SeedSequence``, or a
    ``Generator``.  A Generator contributes entropy by *drawing from its
    current stream* (advancing it), not by reusing the sequence it was
    created from: two generators built from the same seed still spawn
    identical children, but repeated optimizer calls sharing one
    generator keep getting fresh randomness — matching the pre-engine
    behaviour of consuming the shared stream (e.g. Monte-Carlo loops that
    reuse one Generator across trials).
    """
    if isinstance(rng, np.random.SeedSequence):
        return rng
    if isinstance(rng, np.random.Generator):
        return np.random.SeedSequence(
            entropy=[int(w) for w in rng.integers(0, 2**32, size=4)]
        )
    return np.random.SeedSequence(rng)


def spawn_seeds(rng, n: int) -> list[np.random.SeedSequence]:
    """``n`` independent child seeds of ``rng``, one per restart index.

    Child ``i`` is always the same for a given root seed — the foundation
    of the ``workers``-independence contract.
    """
    return list(_seed_sequence(rng).spawn(n))


def spawn_generators(rng, n: int) -> list[np.random.Generator]:
    """``n`` independent Generators spawned from ``rng`` (see spawn_seeds)."""
    return [np.random.default_rng(seed) for seed in spawn_seeds(rng, n)]


def _is_picklable(obj) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def run_tasks(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: int | None = 1,
    executor: str = "auto",
    size_hint: int | None = None,
) -> list[Any]:
    """Run ``fn`` over ``payloads``, returning results in payload order.

    Parameters
    ----------
    fn:
        Single-argument task function.  Must be a module-level function
        with picklable payloads for the process executor; anything
        callable works with threads.
    workers:
        Maximum concurrent tasks; ``<= 1`` runs sequentially in order.
    executor:
        ``"auto"`` (threads, switching to processes for large domains on
        multi-core hosts — see :func:`resolve_executor`), ``"thread"``,
        or ``"process"``.  A process pool request silently falls back to
        threads when ``fn`` or a payload cannot be pickled, so callers
        may always pass user-supplied closures.
    size_hint:
        Problem-size hint for ``executor="auto"`` (the optimizers pass
        the domain size N); ``None`` keeps auto on threads.

    Results are collected per payload index, so the output order (and any
    reduction over it) is independent of completion order.
    """
    workers = resolve_workers(workers)
    kind = resolve_executor(executor, size_hint)
    if workers <= 1 or len(payloads) <= 1:
        return [fn(p) for p in payloads]
    # Probe one representative payload only — the optimizers build
    # homogeneous payload lists sharing the same workload object, so
    # serializing all of them up-front would double the pickling cost.
    if kind == "process" and _is_picklable(fn) and _is_picklable(payloads[0]):
        pool_cls = ProcessPoolExecutor
    else:
        pool_cls = ThreadPoolExecutor
    with pool_cls(max_workers=min(workers, len(payloads))) as pool:
        return list(pool.map(fn, payloads))


def best_index(
    losses: Sequence[float], valid: Callable[[float], bool] | None = None
) -> int | None:
    """Index of the smallest valid loss; ties go to the lowest index.

    Returns ``None`` when no loss is valid.  ``valid`` defaults to
    ``np.isfinite``.
    """
    if valid is None:
        valid = np.isfinite
    best = None
    for i, loss in enumerate(losses):
        if not valid(loss):
            continue
        if best is None or loss < losses[best]:
            best = i
    return best


def reduce_best(
    results: Sequence[Any],
    loss: Callable[[Any], float],
    valid: Callable[[float], bool] | None = None,
) -> Any | None:
    """The result with the smallest valid loss (first index wins ties)."""
    idx = best_index([loss(r) for r in results], valid=valid)
    return None if idx is None else results[idx]
