"""OPT_⊗: strategy optimization for (unions of) product workloads
(paper Sections 6.1 and 6.2, Problems 3).

For a single product ``W = W1 ⊗ ... ⊗ Wd``, restricting to product
strategies decomposes the problem into d independent OPT_0 runs
(Theorem 5).  For a union of products, the objective couples the
attributes (Theorem 6)::

    ‖W A⁺‖_F² = Σ_j w_j² Π_i ‖Wᵢ⁽ʲ⁾ Aᵢ⁺‖_F²

and is minimized by block coordinate descent: holding all A_{i'≠i} fixed,
the sub-problem in A_i is an OPT_0 instance on the *surrogate workload*
with Gram ``Σ_j c_j² Gᵢ⁽ʲ⁾`` where ``c_j = w_j Π_{i'≠i} ‖Wᵢ'⁽ʲ⁾Aᵢ'⁺‖_F``
(paper Equation 6).
"""

from __future__ import annotations

import math

import numpy as np

from ..linalg import Kronecker, Matrix
from ..workload.util import as_union_of_products
from .opt0 import OptResult, opt_0

#: Per-attribute parameter heuristic (Section 7.1): p=1 when the predicate
#: set is contained in Total ∪ Identity (extra strategy queries do not
#: help), else n/16.
def default_p(factor_grams: list[np.ndarray], n: int) -> int:
    """Choose p for one attribute from its workload factor Grams.

    A Gram that is a scaled identity plus a scaled all-ones matrix
    corresponds to predicate sets within Total ∪ Identity, for which p=1
    suffices; otherwise use the paper's n/16 heuristic.
    """
    for G in factor_grams:
        diag = np.diag(G).copy()
        off = G - np.diag(diag)
        off_vals = off[~np.eye(n, dtype=bool)]
        uniform_off = off_vals.size == 0 or np.allclose(off_vals, off_vals.flat[0])
        uniform_diag = np.allclose(diag, diag[0])
        if not (uniform_off and uniform_diag):
            return max(1, n // 16)
    return 1


def _factor_grams(W: Matrix) -> tuple[list[float], list[list[np.ndarray]]]:
    """Decompose an implicit workload into weights and dense factor Grams.

    Returns ``(weights, grams)`` with ``grams[j][i]`` the Gram of factor i
    of product j.  Identical factors are cached by id to avoid recomputing
    (marginal workloads share Identity/Total factors heavily).
    """
    terms = as_union_of_products(W)
    cache: dict[int, np.ndarray] = {}
    weights, grams = [], []
    for w, factors in terms:
        row = []
        for f in factors:
            key = id(f)
            if key not in cache:
                cache[key] = f.gram().dense()
            row.append(cache[key])
        weights.append(w)
        grams.append(row)
    return weights, grams


def _opt_attribute(payload) -> OptResult:
    """One per-attribute OPT_0 sub-problem (parallel engine task)."""
    V, p, seed, maxiter = payload
    return opt_0(V, p=p, rng=seed, maxiter=maxiter)


def opt_kron(
    W: Matrix,
    ps: list[int] | None = None,
    rng: np.random.Generator | int | None = None,
    max_cycles: int = 10,
    rtol: float = 1e-4,
    maxiter: int = 500,
    workers: int | None = 1,
    executor: str = "auto",
) -> OptResult:
    """OPT_⊗: optimize a product strategy for a (union of) product workload.

    Parameters
    ----------
    W:
        Implicit workload (Kronecker, Weighted, or VStack of them).
    ps:
        Per-attribute p parameters; defaults to the Section 7.1 heuristic.
    max_cycles:
        Maximum block-coordinate sweeps for union workloads (a single
        product needs exactly one sweep — the problems are independent).
    rtol:
        Relative objective improvement below which the sweep loop stops.
    workers:
        Maximum concurrent per-attribute OPT_0 sub-problems (Theorem 5
        makes them independent for a single product; the initialization
        pass of the union case is equally independent).  Attribute ``i``
        always receives child seed ``i`` of the root ``rng``
        (``SeedSequence.spawn``), so results are identical for every
        worker count given the same seed.

    Returns
    -------
    OptResult with a :class:`Kronecker` strategy of sensitivity 1 and
    ``loss = ‖W A⁺‖_F²``.
    """
    from .parallel import run_tasks, spawn_seeds

    weights, grams = _factor_grams(W)
    k = len(weights)
    d = len(grams[0])
    sizes = [grams[0][i].shape[0] for i in range(d)]
    if ps is None:
        ps = [default_p([grams[j][i] for j in range(k)], sizes[i]) for i in range(d)]
    if len(ps) != d:
        raise ValueError(f"expected {d} p parameters, got {len(ps)}")

    seeds = spawn_seeds(rng, d)

    # The parallel tasks here are *per-attribute* OPT_0 problems, so the
    # auto-executor hint is the largest single-attribute size — the full
    # domain product would flip tiny per-factor tasks onto a process
    # pool whose fork/pickle overhead dwarfs them.
    task_size = max(sizes)
    if k == 1:
        # Theorem 5: independent per-attribute problems.
        results = run_tasks(
            _opt_attribute,
            [(grams[0][i], ps[i], seeds[i], maxiter) for i in range(d)],
            workers=workers,
            executor=executor,
            size_hint=task_size,
        )
        loss = weights[0] ** 2 * math.prod(r.loss for r in results)
        return OptResult(Kronecker([r.strategy for r in results]), loss)

    # Union of products: block coordinate descent on the coupled objective.
    # Stack each attribute's k factor Grams once; every surrogate build and
    # loss update below is a single tensor contraction against the stack.
    stacked = [
        np.stack([grams[j][i] for j in range(k)]) for i in range(d)
    ]  # stacked[i]: (k, n_i, n_i)

    # Initialize each attribute by optimizing its unweighted average Gram
    # (independent problems — fanned out like the k == 1 case).
    init_results = run_tasks(
        _opt_attribute,
        [(stacked[i].mean(axis=0), ps[i], seeds[i], maxiter) for i in range(d)],
        workers=workers,
        executor=executor,
        size_hint=task_size,
    )
    strategies = [r.strategy for r in init_results]
    losses = np.empty((k, d))  # losses[j][i] = tr[(AᵢᵀAᵢ)⁻¹ Gᵢ⁽ʲ⁾]
    for i in range(d):
        gi = strategies[i].gram_inverse()
        losses[:, i] = np.einsum("ij,kji->k", gi, stacked[i])

    w2 = np.asarray(weights) ** 2

    def objective() -> float:
        return float(np.sum(w2 * np.prod(losses, axis=1)))

    prev = objective()
    for _ in range(max_cycles):
        for i in range(d):
            # Surrogate Gram: Σ_j c_j² Gᵢ⁽ʲ⁾, c_j² = w_j² Π_{i'≠i} losses[j,i'].
            c2 = w2 * np.prod(np.delete(losses, i, axis=1), axis=1)
            surrogate = np.tensordot(c2, stacked[i], axes=1)
            # Normalize scale: argmin is invariant, but huge magnitudes
            # (products of per-attribute losses) destabilize L-BFGS.
            scale = np.abs(np.diag(surrogate)).max()
            if scale > 0:
                surrogate = surrogate / scale
            res = opt_0(
                surrogate,
                p=ps[i],
                rng=seeds[i],
                maxiter=maxiter,
                init=strategies[i].theta,
            )
            strategies[i] = res.strategy
            gi = strategies[i].gram_inverse()
            losses[:, i] = np.einsum("ij,kji->k", gi, stacked[i])
        cur = objective()
        if prev - cur <= rtol * max(prev, 1e-12):
            prev = cur
            break
        prev = cur

    # The all-Identity product strategy lies in the search space (Θ=0 per
    # attribute); never return a coupled local minimum that is worse.
    term_traces = np.stack(
        [np.trace(stacked[i], axis1=1, axis2=2) for i in range(d)], axis=1
    )  # (k, d)
    identity_obj = float(np.sum(w2 * np.prod(term_traces, axis=1)))
    if identity_obj < prev:
        from .opt0 import PIdentity

        strategies = [PIdentity(np.zeros((ps[i], sizes[i]))) for i in range(d)]
        prev = identity_obj
    return OptResult(Kronecker(strategies), prev)
