"""OPT_+: union-of-products output strategies (paper Definition 11).

For workloads like ``(R x T) ∪ (T x R)`` a single product strategy forces
a suboptimal pairing of queries across attributes.  OPT_+ partitions the
workload's products into groups, runs OPT_⊗ on each group independently,
and returns the union (vertical stack) of the resulting product
strategies, each scaled by an equal share of the privacy budget so the
stacked strategy has sensitivity 1.
"""

from __future__ import annotations

import numpy as np

from ..linalg import Matrix, VStack, Weighted
from ..workload.logical import union_kron
from ..workload.util import as_union_of_products
from .opt0 import OptResult
from .opt_kron import opt_kron


def partition_products(W: Matrix, groups: int = 2) -> list[Matrix]:
    """The paper's ``g``: form groups from the unioned terms of W.

    Products are grouped by their *shape signature* — which attributes
    carry non-trivial (non-Total) predicate sets — so that structurally
    similar products share a strategy.  Signatures are bucketed into the
    requested number of groups round-robin by total query count.

    The partition is memoized on ``W`` (per group count): OPT_+ re-derives
    it on every restart, and reusing the same group *objects* lets their
    cached factor Grams and decompositions persist across restarts.
    """
    cache_key = f"partition_products_{groups}"
    cached = W.cache_get(cache_key)
    if cached is not None:
        return cached
    terms = as_union_of_products(W)
    signatures: dict[tuple, list] = {}
    for w, factors in terms:
        sig = tuple(f.shape[0] > 1 for f in factors)
        signatures.setdefault(sig, []).append((w, factors))

    buckets: list[list] = [[] for _ in range(min(groups, len(signatures)))]
    # Largest signature groups first, then round-robin for balance.
    ordered = sorted(signatures.values(), key=len, reverse=True)
    for idx, sig_terms in enumerate(ordered):
        buckets[idx % len(buckets)].extend(sig_terms)
    return W.cache_set(
        cache_key, [union_kron(bucket) for bucket in buckets if bucket]
    )


def _opt_group(payload) -> OptResult:
    """OPT_⊗ on one workload group (parallel engine task)."""
    part, ps, seed, kron_kwargs = payload
    return opt_kron(part, ps=ps, rng=seed, **kron_kwargs)


def opt_union(
    W: Matrix | list[Matrix],
    ps: list[int] | None = None,
    rng: np.random.Generator | int | None = None,
    groups: int = 2,
    workers: int | None = 1,
    executor: str = "auto",
    **kron_kwargs,
) -> OptResult:
    """OPT_+: optimize each workload group with OPT_⊗ and stack the results.

    Parameters
    ----------
    W:
        Either an implicit workload (partitioned automatically via
        :func:`partition_products`) or an explicit list of workload groups.
    groups:
        Number of groups when partitioning automatically (the paper's
        instantiation uses two).
    workers:
        Maximum concurrent group optimizations.  Group ``j`` always
        receives child seed ``j`` of the root ``rng``
        (``SeedSequence.spawn``), so the result is identical for every
        worker count given the same seed.

    Returns
    -------
    OptResult whose strategy is a :class:`VStack` of Weighted Kronecker
    products with total sensitivity 1, and whose ``loss`` is the
    budget-split error estimate ``l² Σ_j ‖W_j A_j⁺‖_F²``.
    """
    from .parallel import run_tasks, spawn_seeds

    parts = W if isinstance(W, list) else partition_products(W, groups)
    l = len(parts)
    seeds = spawn_seeds(rng, l)
    results = run_tasks(
        _opt_group,
        [(part, ps, seed, kron_kwargs) for part, seed in zip(parts, seeds)],
        workers=workers,
        executor=executor,
        size_hint=parts[0].shape[1] if parts else None,
    )
    # Scale each sensitivity-1 block by 1/l so the stack has sensitivity 1;
    # group j is then answered with noise scale l, inflating its squared
    # error by l².
    strategy = VStack([Weighted(r.strategy, 1.0 / l) for r in results])
    loss = l**2 * sum(r.loss for r in results)
    return OptResult(strategy, loss)
