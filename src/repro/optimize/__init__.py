"""Strategy optimization operators (paper Sections 5-7).

==================  ============================  =======================
Operator            Input workload                Output strategy
==================  ============================  =======================
``opt_0``           explicit Gram WᵀW             p-Identity matrix A(Θ)
``opt_kron``        (union of) products           single Kronecker product
``opt_union``       union of products             union of Kronecker products
``opt_marginals``   union of products             weighted marginals M(θ)
``opt_general``     explicit Gram WᵀW             full p x n matrix (MM stand-in)
``opt_hdmm``        union of products             best of the above (Algorithm 2)
==================  ============================  =======================

Every operator accepts ``workers`` (and ``executor``): independent random
restarts / sub-problems fan out over the deterministic parallel engine of
:mod:`repro.optimize.parallel`.  Randomness is assigned per task index via
``numpy.random.SeedSequence.spawn``, so for a fixed seed the results are
bit-identical regardless of worker count.
"""

from .driver import default_operators, identity_result, opt_hdmm
from .opt0 import OptResult, PIdentity, opt_0, pidentity_loss_and_grad
from .opt_general import general_loss_and_grad, opt_general
from .opt_kron import default_p, opt_kron
from .opt_marginals import marginals_loss_and_grad, opt_marginals
from .opt_union import opt_union, partition_products
from .parallel import (
    PROCESS_SIZE_THRESHOLD,
    reduce_best,
    resolve_executor,
    resolve_workers,
    run_tasks,
    spawn_generators,
    spawn_seeds,
)

__all__ = [
    "OptResult",
    "PROCESS_SIZE_THRESHOLD",
    "PIdentity",
    "default_operators",
    "default_p",
    "general_loss_and_grad",
    "identity_result",
    "marginals_loss_and_grad",
    "opt_0",
    "opt_general",
    "opt_hdmm",
    "opt_kron",
    "opt_marginals",
    "opt_union",
    "partition_products",
    "pidentity_loss_and_grad",
    "reduce_best",
    "resolve_executor",
    "resolve_workers",
    "run_tasks",
    "spawn_generators",
    "spawn_seeds",
]
