"""OPT_0: parameterized strategy optimization (paper Section 5.2).

Searches the space of *p-Identity strategies* (Definition 9)::

    A(Θ) = [ I ]  D        D = diag(1_N + 1_p Θ)⁻¹,  Θ ∈ R₊^{p x N}
           [ Θ ]

Every A(Θ) supports every workload (it contains a scaled identity) and has
``‖A‖₁ = 1`` by construction, so the constrained Problem 1 reduces to the
unconstrained Problem 2: minimize ``C(Θ) = tr[(AᵀA)⁻¹ WᵀW]``.

The objective and gradient are evaluated in O(pN²) (Theorem 4) using the
Woodbury identity::

    (AᵀA)⁻¹ = D⁻¹ [I - Θᵀ (I_p + ΘΘᵀ)⁻¹ Θ] D⁻¹

Optimization uses scipy's L-BFGS-B with non-negativity bounds on Θ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize as sopt

from ..linalg import Matrix
from ..linalg.base import Dense


class PIdentity(Matrix):
    """A p-Identity strategy A(Θ), stored implicitly via Θ.

    Exposes the structured operations the rest of HDMM needs: sensitivity
    is exactly 1, the Gram inverse has the Woodbury form above, and the
    pseudo-inverse ``A⁺ = (AᵀA)⁻¹Aᵀ`` is applied without materializing A.
    """

    def __init__(self, theta: np.ndarray):
        theta = np.asarray(theta, dtype=np.float64)
        if theta.ndim != 2:
            raise ValueError("theta must be a p x n matrix")
        if np.any(theta < 0):
            raise ValueError("theta must be non-negative")
        self.theta = theta
        p, n = theta.shape
        self.scale = 1.0 + theta.sum(axis=0)  # column scales s = 1 + 1ᵀΘ
        self.shape = (n + p, n)

    @property
    def p(self) -> int:
        return self.theta.shape[0]

    @property
    def n(self) -> int:
        return self.theta.shape[1]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        xs = np.asarray(x, dtype=self.dtype) / self.scale
        return np.concatenate([xs, self.theta @ xs])

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=self.dtype)
        n = self.n
        return (y[:n] + self.theta.T @ y[n:]) / self.scale

    def matmat(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=self.dtype)
        if X.ndim == 1:
            return self.matvec(X)
        Xs = X / self.scale[:, None]
        return np.vstack([Xs, self.theta @ Xs])

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        Y = np.asarray(Y, dtype=self.dtype)
        if Y.ndim == 1:
            return self.rmatvec(Y)
        n = self.n
        return (Y[:n] + self.theta.T @ Y[n:]) / self.scale[:, None]

    def gram(self) -> Dense:
        D = 1.0 / self.scale
        inner = np.eye(self.n) + self.theta.T @ self.theta
        return Dense(inner * np.outer(D, D))

    def gram_inverse(self) -> np.ndarray:
        """(AᵀA)⁻¹ via Woodbury — O(pN² + p³), never O(N³)."""
        B = self.theta
        p = self.p
        R = np.linalg.inv(np.eye(p) + B @ B.T)
        M = np.eye(self.n) - B.T @ (R @ B)
        s = self.scale
        return M * np.outer(s, s)

    def l1_sensitivity(self) -> float:
        return 1.0

    def column_abs_sums(self) -> np.ndarray:
        return np.ones(self.n)

    def column_norms(self) -> np.ndarray:
        # Column j of [I; Θ]/s is (e_j, Θ[:, j]) / s_j.
        return np.sqrt(1.0 + (self.theta**2).sum(axis=0)) / self.scale

    def pinv(self) -> Matrix:
        return Dense(self.gram_inverse()) @ self.T

    def dense(self) -> np.ndarray:
        A = np.vstack([np.eye(self.n), self.theta])
        return A / self.scale

    def to_config(self) -> dict:
        return {"type": "PIdentity", "theta": self.theta}

    @classmethod
    def from_config(cls, config: dict) -> "PIdentity":
        return cls(np.asarray(config["theta"], dtype=np.float64))

    def __repr__(self) -> str:
        return (
            f"PIdentity(p={self.p}, n={self.n}, shape={self.shape}, "
            f"dtype={self.dtype.__name__})"
        )


def pidentity_loss_and_grad(
    theta: np.ndarray, V: np.ndarray
) -> tuple[float, np.ndarray]:
    """Objective ``C = tr[(AᵀA)⁻¹ V]`` and its gradient w.r.t. Θ.

    ``V = WᵀW`` is the (dense, n x n) workload Gram.  Cost O(pn²).

    Derivation: with ``X = AᵀA``, ``∂C/∂A = -2A X⁻¹ V X⁻¹`` (Appendix A.2);
    the chain rule through the column normalization ``D = diag(1+1ᵀΘ)⁻¹``
    yields, for ``G = ∂C/∂A`` partitioned into the identity block G_I and
    the Θ block G_B::

        ∂C/∂Θ_{kl} = G_B[k,l]/s_l - (G_I[l,l] + Σ_i G_B[i,l] Θ[i,l]) / s_l²
    """
    B = np.asarray(theta, dtype=np.float64)
    p, n = B.shape
    V = np.asarray(V, dtype=np.float64)
    if not np.all(np.isfinite(B)) or np.abs(B).max() > 1e30:
        # Line searches can probe wildly large parameters; report an
        # infinite objective so the optimizer backtracks.
        return np.inf, np.zeros((p, n))
    s = 1.0 + B.sum(axis=0)

    try:
        R = np.linalg.inv(np.eye(p) + B @ B.T)  # p x p
    except np.linalg.LinAlgError:
        return np.inf, np.zeros((p, n))
    V1 = V * np.outer(s, s)  # D⁻¹ V D⁻¹
    T1 = B @ V1  # p x n
    T2 = R @ T1  # p x n
    # C = tr[M V1] with M = I - Bᵀ R B
    loss = float(np.einsum("ii->", V1) - np.einsum("ij,ij->", B, T2))

    # Y = X⁻¹ V X⁻¹ = D⁻¹ (M V1 M) D⁻¹
    U = V1 - B.T @ T2  # M V1, n x n
    UBt = U @ B.T  # n x p
    MVM = U - (UBt @ R) @ B  # n x n
    Y = MVM * np.outer(s, s)

    # G = -2 A Y with A = [[D],[B D]]
    gI_diag = -2.0 * np.diag(Y) / s  # diagonal of identity block
    GB = -2.0 * (B / s[None, :]) @ Y  # p x n

    grad = GB / s[None, :] - (gI_diag + np.einsum("il,il->l", GB, B)) / s[None, :] ** 2
    return loss, grad


@dataclass
class OptResult:
    """Outcome of a strategy optimization run.

    Attributes
    ----------
    strategy:
        The optimized strategy, sensitivity 1.
    loss:
        ``‖W A⁺‖_F²`` — squared error of the workload under the strategy
        (with the strategy's sensitivity already normalized to 1).
    restarts:
        Number of random restarts performed.
    """

    strategy: Matrix
    loss: float
    restarts: int = 1


def _opt0_restart(payload) -> tuple[float, np.ndarray]:
    """One OPT_0 restart: L-BFGS-B from a fixed initialization.

    Module-level (and fed a fully-materialized payload) so the parallel
    engine can ship it to worker processes as well as threads.
    """
    V, theta0, maxiter = payload
    p, n = theta0.shape

    def fun(x):
        loss, grad = pidentity_loss_and_grad(x.reshape(p, n), V)
        return loss, grad.ravel()

    res = sopt.minimize(
        fun,
        theta0.ravel(),
        jac=True,
        method="L-BFGS-B",
        bounds=[(0.0, None)] * (p * n),
        options={"maxiter": maxiter},
    )
    return float(res.fun), res.x.reshape(p, n)


def opt_0(
    V: np.ndarray | Matrix,
    p: int | None = None,
    rng: np.random.Generator | int | None = None,
    restarts: int = 1,
    maxiter: int = 500,
    init: np.ndarray | None = None,
    workers: int | None = 1,
    executor: str = "auto",
) -> OptResult:
    """Solve Problem 2 for an explicit workload Gram (paper OPT_0).

    Parameters
    ----------
    V:
        The workload Gram ``WᵀW`` — either a dense ndarray or a
        :class:`Matrix` whose ``dense()`` is affordable.  Accepting the
        Gram directly (rather than W) matches the paper: "we allow OPT_0
        to take WᵀW as input in these special cases".
    p:
        Number of non-identity strategy rows.  Defaults to the paper's
        heuristic ``max(1, n // 16)``.
    rng:
        Seed or Generator for the random restarts.
    restarts:
        Random restarts; the best local minimum is returned.
    init:
        Optional explicit initialization for the first restart.
    workers:
        Maximum concurrent restarts.  Restart ``r`` always draws its
        initialization from child ``r`` of the root seed
        (``SeedSequence.spawn``), and the minimum-loss winner is selected
        with a first-index tie-break, so for a given ``rng`` the result is
        bit-identical for every worker count (``workers=1`` included).
    executor:
        ``"auto"``/``"thread"``/``"process"`` — see
        :func:`repro.optimize.parallel.run_tasks`.
    """
    from .parallel import best_index, run_tasks, spawn_generators

    V = V.dense() if isinstance(V, Matrix) else np.asarray(V, dtype=np.float64)
    n = V.shape[0]
    if V.shape != (n, n):
        raise ValueError(f"V must be square, got {V.shape}")
    if p is None:
        p = max(1, n // 16)
    if p < 1:
        raise ValueError("p must be at least 1")

    # Initializations are drawn up-front, one spawned stream per restart,
    # so the restart → start-point mapping never depends on worker count.
    gens = spawn_generators(rng, restarts)
    inits = []
    for r in range(restarts):
        if r == 0 and init is not None:
            theta0 = np.asarray(init, dtype=np.float64)
            if theta0.shape != (p, n):
                raise ValueError(f"init must have shape {(p, n)}")
        else:
            # Small-scale initialization: large inits drive L-BFGS-B into
            # the Θ=0 corner (a KKT point equal to the Identity strategy).
            theta0 = 0.25 * gens[r].random((p, n))
        inits.append(theta0)

    results = run_tasks(
        _opt0_restart,
        [(V, theta0, maxiter) for theta0 in inits],
        workers=workers,
        executor=executor,
        size_hint=n,
    )
    idx = best_index([loss for loss, _ in results])
    best_loss, best_theta = (np.inf, None) if idx is None else results[idx]

    # Θ = 0 (the Identity strategy) is inside the search space; never
    # return a local minimum that is worse than it.
    identity_loss = float(np.trace(V))
    if best_theta is None or identity_loss < best_loss:
        best_theta = np.zeros((p, n))
        best_loss = identity_loss
    return OptResult(PIdentity(best_theta), best_loss, restarts)
