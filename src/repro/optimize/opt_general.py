"""OPT_general: unrestricted strategy-space optimization (paper Problem 1).

The original Matrix Mechanism solves Problem 1 exactly via a
rank-constrained semidefinite program with O(m⁴(m⁴+N⁴)) complexity —
infeasible beyond toy domains (every Table 3 entry for MM is ``*``).
This module provides the gradient-based stand-in discussed in Section 5.1:
optimize a *full* p x n parameter matrix B ≥ 0 with L1-normalized columns
``A = B·diag(1ᵀB)⁻¹``, so ``‖A‖₁ = 1`` by construction and the objective
is ``tr[(AᵀA)⁻¹ WᵀW]``.  Each iteration costs O(n³) — the honest cost of
searching the unrestricted space, and the reason OPT_0's parameterization
matters (Theorem 4 reduces it to O(pn²)).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize as sopt

from ..linalg import Dense
from .opt0 import OptResult


def general_loss_and_grad(B: np.ndarray, V: np.ndarray) -> tuple[float, np.ndarray]:
    """``C = tr[(AᵀA)⁻¹V]`` for ``A = B diag(1ᵀB)⁻¹`` and its gradient."""
    B = np.asarray(B, dtype=np.float64)
    p, n = B.shape
    s = B.sum(axis=0)
    if np.any(s <= 0):
        return np.inf, np.zeros_like(B)
    A = B / s[None, :]
    X = A.T @ A
    try:
        Xinv = np.linalg.inv(X)
    except np.linalg.LinAlgError:
        Xinv = np.linalg.pinv(X)
    loss = float(np.einsum("ij,ji->", Xinv, V))
    Y = Xinv @ V @ Xinv
    GA = -2.0 * A @ Y  # ∂C/∂A
    grad = GA / s[None, :] - np.einsum("il,il->l", GA, B)[None, :] / s[None, :] ** 2
    return loss, grad


def opt_general(
    V: np.ndarray,
    p: int | None = None,
    rng: np.random.Generator | int | None = None,
    restarts: int = 1,
    maxiter: int = 500,
) -> OptResult:
    """Gradient search over the full (column-normalized) strategy space.

    Parameters mirror :func:`repro.optimize.opt0.opt_0`; ``p`` defaults to
    ``n`` rows (enough for full rank).  Only practical for small n.
    """
    V = np.asarray(V, dtype=np.float64)
    n = V.shape[0]
    if p is None:
        p = n
    if p < n:
        raise ValueError("p >= n required for the strategy to support W")
    rng = np.random.default_rng(rng)

    best, best_loss = None, np.inf
    for _ in range(restarts):
        B0 = rng.random((p, n)) + 0.05

        def fun(x):
            loss, grad = general_loss_and_grad(x.reshape(p, n), V)
            return loss, grad.ravel()

        res = sopt.minimize(
            fun,
            B0.ravel(),
            jac=True,
            method="L-BFGS-B",
            bounds=[(0.0, None)] * (p * n),
            options={"maxiter": maxiter},
        )
        if res.fun < best_loss:
            best_loss = float(res.fun)
            best = res.x.reshape(p, n)

    if best is None or not np.isfinite(best_loss):
        # Every restart diverged (infinite loss, e.g. a zero column that
        # L-BFGS never escaped).  The column-normalized Identity strategy
        # is always feasible — fall back to it, like opt_0 does.
        best = np.vstack([np.eye(n), np.zeros((p - n, n))])
        best_loss = float(np.trace(V))
    A = best / best.sum(axis=0)[None, :]
    return OptResult(Dense(A), best_loss, restarts)
