"""Privacy-budget accounting for the query service.

Each dataset a service instance answers queries about carries a hard
epsilon cap — the total privacy loss its owners have authorized.  The
accountant is the single gate in front of MEASURE: every measurement
debits it *before* any noise is drawn, and a debit that would exceed the
cap raises :class:`BudgetExceededError` with the data untouched, making
over-spending a programming error rather than a silent privacy violation
(the same contract as :class:`~repro.core.privacy.PrivacyLedger`, which
tracks a single pipeline's stages; the accountant tracks many datasets
across many requests).

Two composition rules are supported:

* **sequential** (:meth:`PrivacyAccountant.charge`) — mechanisms run on
  the same data compose additively: the total loss of an ε-sweep is the
  sum of its trials' budgets.
* **parallel** (:meth:`PrivacyAccountant.charge_parallel`) — mechanisms
  run on *disjoint partitions* of the data compose by the maximum: a
  record appears in one partition only, so its worst-case privacy loss is
  the largest branch budget (e.g. DAWA-style per-bucket measurement, or
  per-region serving shards).

Everything downstream of a measurement — reconstruction, workload
answering, ad-hoc queries against a cached x̂ — is post-processing and
never touches the accountant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.solvers import validate_epsilon

__all__ = ["BudgetExceededError", "LedgerEntry", "PrivacyAccountant"]

#: Relative slack on cap comparisons so float accumulation of a budget
#: split into many exact shares never spuriously trips the cap.
_CAP_SLACK = 1e-12


class BudgetExceededError(RuntimeError):
    """A debit would push a dataset past its epsilon cap.

    Raised *before* any measurement noise is drawn — the mechanism that
    attempted the spend never touched the data.
    """


@dataclass
class LedgerEntry:
    """One recorded debit: which dataset, how much, and under which rule."""

    dataset: str
    epsilon: float
    composition: str  # "sequential" | "parallel"
    stage: str = ""


class PrivacyAccountant:
    """Multi-dataset epsilon ledger with hard per-dataset caps.

    Parameters
    ----------
    default_cap:
        Cap auto-registered for datasets first seen by a charge.  With
        the default ``None``, every dataset must be registered explicitly
        — unknown datasets raise ``KeyError`` rather than silently
        spending an unbounded budget.
    """

    def __init__(self, default_cap: float | None = None):
        if default_cap is not None:
            default_cap = float(validate_epsilon(default_cap, "default_cap"))
        self.default_cap = default_cap
        self._caps: dict[str, float] = {}
        self._spent: dict[str, float] = {}
        self.ledger: list[LedgerEntry] = []

    # -- registration ------------------------------------------------------
    def register(self, dataset: str, cap: float) -> None:
        """Set (or raise) the epsilon cap of a dataset.

        A cap below what is already spent is rejected — budgets may be
        extended by the data owner but never retroactively shrunk under
        the amount consumed.
        """
        cap = float(validate_epsilon(cap, "cap"))
        spent = self._spent.get(dataset, 0.0)
        if cap < spent:
            raise ValueError(
                f"cap {cap} for dataset {dataset!r} is below the "
                f"already-spent budget {spent}"
            )
        self._caps[dataset] = cap
        self._spent.setdefault(dataset, 0.0)

    def datasets(self) -> list[str]:
        return sorted(self._caps)

    def _require(self, dataset: str) -> float:
        if dataset not in self._caps:
            if self.default_cap is None:
                raise KeyError(
                    f"dataset {dataset!r} is not registered with the "
                    "accountant (and no default_cap is set)"
                )
            self.register(dataset, self.default_cap)
        return self._caps[dataset]

    # -- inspection --------------------------------------------------------
    def cap(self, dataset: str) -> float:
        return self._require(dataset)

    def spent(self, dataset: str) -> float:
        self._require(dataset)
        return self._spent[dataset]

    def remaining(self, dataset: str) -> float:
        return max(0.0, self.cap(dataset) - self.spent(dataset))

    # -- debits ------------------------------------------------------------
    def check(self, dataset: str, eps) -> float:
        """Validate a prospective sequential debit without recording it.

        Returns the total that :meth:`charge` would debit; raises
        :class:`BudgetExceededError` if it does not fit.
        """
        total = float(np.sum(validate_epsilon(eps)))
        cap = self._require(dataset)
        spent = self._spent[dataset]
        if spent + total > cap * (1 + _CAP_SLACK):
            raise BudgetExceededError(
                f"privacy budget exceeded for dataset {dataset!r}: "
                f"spent {spent} + requested {total} > cap {cap}"
            )
        return total

    def charge(self, dataset: str, eps, stage: str = "") -> float:
        """Debit under sequential composition: the *sum* of the budgets.

        ``eps`` may be a scalar or an array of per-mechanism budgets run
        on the same data (an ε-sweep debits its grid total).  Returns the
        amount debited.
        """
        total = self.check(dataset, eps)
        self._spent[dataset] += total
        self.ledger.append(LedgerEntry(dataset, total, "sequential", stage))
        return total

    def charge_parallel(self, dataset: str, eps, stage: str = "") -> float:
        """Debit under parallel composition: the *maximum* branch budget.

        For mechanisms applied to disjoint partitions of the dataset —
        each record is touched by exactly one branch, so the collective
        release is max(ε)-DP.  Returns the amount debited.
        """
        branch_max = float(np.max(validate_epsilon(eps)))
        cap = self._require(dataset)
        spent = self._spent[dataset]
        if spent + branch_max > cap * (1 + _CAP_SLACK):
            raise BudgetExceededError(
                f"privacy budget exceeded for dataset {dataset!r}: "
                f"spent {spent} + requested {branch_max} (parallel) > cap {cap}"
            )
        self._spent[dataset] += branch_max
        self.ledger.append(LedgerEntry(dataset, branch_max, "parallel", stage))
        return branch_max

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{d}: {self._spent[d]:g}/{self._caps[d]:g}" for d in self.datasets()
        )
        return f"PrivacyAccountant({parts or 'no datasets'})"
