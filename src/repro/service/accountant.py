"""Privacy-budget accounting for the query service.

Each dataset a service instance answers queries about carries a hard
epsilon cap — the total privacy loss its owners have authorized.  The
accountant is the single gate in front of MEASURE: every measurement
debits it *before* any noise is drawn, and a debit that would exceed the
cap raises :class:`BudgetExceededError` with the data untouched, making
over-spending a programming error rather than a silent privacy violation
(the same contract as :class:`~repro.core.privacy.PrivacyLedger`, which
tracks a single pipeline's stages; the accountant tracks many datasets
across many requests).

Two composition rules are supported:

* **sequential** (:meth:`PrivacyAccountant.charge`) — mechanisms run on
  the same data compose additively: the total loss of an ε-sweep is the
  sum of its trials' budgets.
* **parallel** (:meth:`PrivacyAccountant.charge_parallel`) — mechanisms
  run on *disjoint partitions* of the data compose by the maximum: a
  record appears in one partition only, so its worst-case privacy loss is
  the largest branch budget (e.g. DAWA-style per-bucket measurement, or
  per-region serving shards).

Everything downstream of a measurement — reconstruction, workload
answering, ad-hoc queries against a cached x̂ — is post-processing and
never touches the accountant.

Durability
----------
With ``wal_path=`` (or via :meth:`PrivacyAccountant.recover`), the
accountant is backed by a :class:`~repro.service.ledger.WriteAheadLedger`:
every register/debit is checksummed and **fsync'd before the method
returns** — i.e. before the caller draws any noise — so no crash can
leave released noise unaccounted.  On startup, committed records are
replayed (a torn tail from a crashed writer is truncated) and the
in-memory state is exactly the pre-crash committed prefix.  Debits run
as a cross-process **compare-and-debit**: under the ledger's file lock,
records appended by other processes are replayed first, then the cap is
checked, then the new record is appended — two processes sharing a
ledger path can never jointly overdraw a cap.  All public methods are
additionally thread-safe behind one re-entrant lock.
"""

from __future__ import annotations

import contextlib
import logging
import threading
from dataclasses import dataclass

import numpy as np

from ..core.solvers import validate_epsilon
from ..obs.metrics import REGISTRY as _METRICS
from ..privacy.accounting import SpendCurve, fold_debit
from ..privacy.mechanisms import get_mechanism
from ..privacy.policy import (
    CAP_SLACK as _CAP_SLACK,
    BudgetPolicy,
    PureEpsilonPolicy,
    policy_from_dict,
)
from .ledger import WriteAheadLedger

__all__ = ["BudgetExceededError", "LedgerEntry", "PrivacyAccountant"]

logger = logging.getLogger(__name__)


class BudgetExceededError(RuntimeError):
    """A debit would push a dataset past its budget policy's cap.

    Raised *before* any measurement noise is drawn — the mechanism that
    attempted the spend never touched the data.  Carries the full budget
    picture as attributes (``dataset``, ``cap``, ``spent``, ``requested``,
    ``remaining``, ``composition`` — all ε-denominated for backward
    compatibility, plus ``policy_kind`` and ``native_remaining``, the
    unspent budget in the policy's own unit: ``{"epsilon": …}``,
    ``{"epsilon": …, "delta": …}``, or ``{"rho": …}``) so callers can act
    on the remaining budget instead of parsing the message.
    """

    def __init__(
        self,
        dataset: str,
        cap: float,
        spent: float,
        requested: float,
        composition: str = "sequential",
        *,
        policy_kind: str = "epsilon",
        native_remaining: dict | None = None,
    ):
        self.dataset = dataset
        self.cap = float(cap)
        self.spent = float(spent)
        self.requested = float(requested)
        self.remaining = max(0.0, self.cap - self.spent)
        self.composition = composition
        self.policy_kind = policy_kind
        self.native_remaining = (
            {"epsilon": self.remaining}
            if native_remaining is None
            else dict(native_remaining)
        )
        native = ""
        if policy_kind != "epsilon":
            parts = ", ".join(
                f"{k}={v:g}" for k, v in sorted(self.native_remaining.items())
            )
            native = f" [{policy_kind} policy; native remaining: {parts}]"
        super().__init__(
            f"privacy budget exceeded for dataset {dataset!r}: requested "
            f"debit {self.requested:g} ({composition}) but only "
            f"{self.remaining:g} of cap {self.cap:g} remains "
            f"(spent {self.spent:g})" + native
        )


@dataclass
class LedgerEntry:
    """One recorded debit: which dataset, how much, and under which rule."""

    dataset: str
    epsilon: float
    composition: str  # "sequential" | "parallel"
    stage: str = ""
    mechanism: str = "laplace"
    delta: float = 0.0
    rho: float = 0.0


class PrivacyAccountant:
    """Multi-dataset epsilon ledger with hard per-dataset caps.

    Parameters
    ----------
    default_cap:
        Cap auto-registered for datasets first seen by a charge.  With
        the default ``None``, every dataset must be registered explicitly
        — unknown datasets raise ``KeyError`` rather than silently
        spending an unbounded budget.
    wal_path:
        Path of the write-ahead ledger file backing this accountant.
        ``None`` (default) keeps state in memory only — a crash forgets
        everything, acceptable for tests and synthetic benchmarks, never
        for real data.  An existing file is recovered on construction:
        committed records are replayed and a torn tail is truncated.
    lock_timeout:
        Bound (seconds) on waiting for the ledger's cross-process lock.
        ``None`` (default) blocks indefinitely — the library semantics.
        Serving callers set it so a stuck peer raises
        :class:`repro.service.ledger.LockTimeoutError` (retryable, zero
        spend) instead of parking a request thread forever.
    """

    def __init__(
        self,
        default_cap: float | None = None,
        wal_path: str | None = None,
        lock_timeout: float | None = None,
    ):
        if default_cap is not None:
            default_cap = float(validate_epsilon(default_cap, "default_cap"))
        self.default_cap = default_cap
        self._caps: dict[str, float] = {}
        self._spent: dict[str, float] = {}
        self._policies: dict[str, BudgetPolicy] = {}
        self._curves: dict[str, SpendCurve] = {}
        self.ledger: list[LedgerEntry] = []
        self._lock = threading.RLock()
        self._wal = (
            None
            if wal_path is None
            else WriteAheadLedger(wal_path, lock_timeout=lock_timeout)
        )
        if self._wal is not None:
            with self._wal.locked():
                records = self._wal.read_new()
                self._apply_records(records)
                dropped = self._wal.truncate_torn_tail()
            if records:
                logger.info(
                    "recovered %d committed record(s) for %d dataset(s) "
                    "from ledger %s%s",
                    len(records),
                    len(self._caps),
                    self._wal.path,
                    f" (dropped {dropped}-byte torn tail)" if dropped else "",
                )

    @classmethod
    def recover(
        cls, wal_path: str, default_cap: float | None = None
    ) -> "PrivacyAccountant":
        """Rebuild an accountant from its write-ahead ledger.

        Replays the committed record prefix (register records restore
        caps, debit records restore per-dataset spend and the in-memory
        :attr:`ledger`), truncating any torn tail a crashed writer left.
        The result is exactly the state every pre-crash ``charge`` call
        had durably committed — never less, so no released noise is ever
        unaccounted.
        """
        return cls(default_cap=default_cap, wal_path=wal_path)

    @property
    def wal_path(self) -> str | None:
        """Path of the backing write-ahead ledger (None = memory only)."""
        return None if self._wal is None else self._wal.path

    # -- WAL plumbing ------------------------------------------------------
    def _apply_records(self, records) -> None:
        """Fold replayed WAL records into memory (no cap re-checking: every
        committed debit passed its check when written, and replaying it
        conservatively — even past a since-shrunk cap — can only keep the
        accounted spend at or above the released noise)."""
        for r in records:
            kind = r.get("kind")
            if kind == "register":
                ds = r["dataset"]
                if "policy" in r:  # v2 register carries a serialized policy
                    policy = policy_from_dict(r["policy"])
                else:  # v1 register: a pure-ε cap
                    policy = PureEpsilonPolicy(float(r["cap"]))
                self._policies[ds] = policy
                self._caps[ds] = policy.epsilon_cap()
                self._spent.setdefault(ds, 0.0)
                self._curves.setdefault(ds, SpendCurve())
            elif kind == "debit":
                ds = r["dataset"]
                if ds not in self._caps and self.default_cap is not None:
                    self._caps[ds] = self.default_cap
                    self._policies[ds] = PureEpsilonPolicy(self.default_cap)
                self._spent[ds] = self._spent.get(ds, 0.0) + float(r["epsilon"])
                cost = fold_debit(self._curves.setdefault(ds, SpendCurve()), r)
                self.ledger.append(
                    LedgerEntry(
                        ds,
                        float(r["epsilon"]),
                        r.get("composition", "sequential"),
                        r.get("stage", ""),
                        cost.mechanism,
                        cost.delta,
                        cost.rho,
                    )
                )

    @contextlib.contextmanager
    def _transact(self):
        """One atomic read-check-append cycle: thread lock, then (when a
        WAL is attached) the cross-process file lock with other writers'
        tail replayed before the caller's check runs."""
        with self._lock:
            if self._wal is None:
                yield
            else:
                with self._wal.locked():
                    self._apply_records(self._wal.read_new())
                    yield

    def sync(self) -> None:
        """Fold in records other processes appended since the last look.

        Lock-free read: a record mid-write by a live writer simply fails
        its checksum and is picked up on the next call."""
        with self._lock:
            if self._wal is not None:
                self._apply_records(self._wal.read_new())

    # -- registration ------------------------------------------------------
    def _register_locked(
        self, dataset: str, policy: BudgetPolicy, wal: bool
    ) -> None:
        """Registration core; caller holds whatever locks apply."""
        curve = self._curves.get(dataset, SpendCurve())
        if not policy.covers(curve):
            raise ValueError(
                f"cap {policy.describe()} for dataset {dataset!r} is below "
                f"the already-spent budget {curve.as_dict()}"
            )
        if wal and self._wal is not None and self._policies.get(dataset) != policy:
            if type(policy) is PureEpsilonPolicy:
                # byte-identical to the historical v1 register record
                record = {
                    "v": 1,
                    "kind": "register",
                    "dataset": dataset,
                    "cap": policy.epsilon,
                }
            else:
                record = {
                    "v": 2,
                    "kind": "register",
                    "dataset": dataset,
                    "policy": policy.to_dict(),
                }
            self._wal.append(record)
        self._policies[dataset] = policy
        self._caps[dataset] = policy.epsilon_cap()
        self._spent.setdefault(dataset, 0.0)
        self._curves.setdefault(dataset, SpendCurve())

    def register(
        self,
        dataset: str,
        cap: float | None = None,
        policy: BudgetPolicy | None = None,
    ) -> None:
        """Set (or raise) the budget policy of a dataset.

        ``cap`` (a float) is the historical pure-ε form, equivalent to
        ``policy=PureEpsilonPolicy(cap)``; ``policy`` registers any
        :class:`~repro.privacy.policy.BudgetPolicy` — an (ε, δ) cap or a
        ρ-zCDP cap.  A policy below what is already spent is rejected —
        budgets may be extended by the data owner but never retroactively
        shrunk under the amount consumed.  With a WAL attached, the
        policy is durably recorded before it takes effect (pure-ε caps as
        byte-identical v1 records, other policies as v2 records).
        """
        if (cap is None) == (policy is None):
            raise ValueError("pass exactly one of cap= or policy=")
        if policy is None:
            policy = PureEpsilonPolicy(float(validate_epsilon(cap, "cap")))
        with self._transact():
            self._register_locked(dataset, policy, wal=True)

    def datasets(self) -> list[str]:
        with self._lock:
            return sorted(self._caps)

    def _require(self, dataset: str) -> float:
        if dataset not in self._caps:
            if self.default_cap is None:
                raise KeyError(
                    f"dataset {dataset!r} is not registered with the "
                    "accountant (and no default_cap is set)"
                )
            # default_cap auto-registration is not WAL'd: replaying the
            # ledger under the same default_cap reproduces it, and never
            # writing here keeps WAL appends under the debit lock only.
            self._register_locked(
                dataset, PureEpsilonPolicy(self.default_cap), wal=False
            )
        return self._caps[dataset]

    def _require_policy(self, dataset: str) -> BudgetPolicy:
        self._require(dataset)
        return self._policies[dataset]

    # -- inspection --------------------------------------------------------
    def cap(self, dataset: str) -> float:
        with self._lock:
            return self._require(dataset)

    def spent(self, dataset: str) -> float:
        self.sync()
        with self._lock:
            self._require(dataset)
            return self._spent.get(dataset, 0.0)

    def remaining(self, dataset: str) -> float:
        """ε-denominated unspent budget: the largest single pure-ε debit
        the dataset's policy would still admit (for a pure-ε cap this is
        exactly ``cap - spent``, as before)."""
        self.sync()
        with self._lock:
            policy = self._require_policy(dataset)
            return policy.epsilon_remaining(
                self._curves.get(dataset, SpendCurve())
            )

    def policy(self, dataset: str) -> BudgetPolicy:
        """The dataset's registered budget policy."""
        with self._lock:
            return self._require_policy(dataset)

    def curve(self, dataset: str) -> SpendCurve:
        """A copy of the dataset's composed spend curve (ε, δ, ρ)."""
        self.sync()
        with self._lock:
            self._require(dataset)
            return self._curves.get(dataset, SpendCurve()).copy()

    def native_remaining(self, dataset: str) -> dict:
        """Unspent budget in the policy's native unit(s)."""
        self.sync()
        with self._lock:
            policy = self._require_policy(dataset)
            return policy.remaining(self._curves.get(dataset, SpendCurve()))

    # -- debits ------------------------------------------------------------
    def check(
        self,
        dataset: str,
        eps,
        stage: str = "",
        mechanism: str = "laplace",
        delta: float | None = None,
    ) -> float:
        """Validate a prospective sequential debit without recording it.

        Returns the ε total that :meth:`charge` would debit; raises
        :class:`BudgetExceededError` if it does not fit the dataset's
        policy.  Advisory under concurrency: only :meth:`charge` holds
        the check and the debit under one lock.
        """
        cost = get_mechanism(mechanism, delta).cost(eps)
        self.sync()
        with self._lock:
            self._check(dataset, cost, "sequential")
        return cost.epsilon

    def _check(self, dataset: str, cost, composition: str) -> None:
        cap = self._require(dataset)
        policy = self._policies[dataset]
        curve = self._curves.setdefault(dataset, SpendCurve())
        if not policy.admits(curve, cost):
            raise BudgetExceededError(
                dataset,
                cap,
                self._spent.get(dataset, 0.0),
                cost.epsilon,
                composition,
                policy_kind=policy.kind,
                native_remaining=policy.remaining(curve),
            )

    def _debit(self, dataset: str, cost, composition: str, stage: str) -> float:
        """The compare-and-debit core: check + WAL append + apply, atomic
        across threads and (with a WAL) across processes.  The WAL record
        is fsync'd before the in-memory state moves, so the method returns
        only once the debit is durable — the caller draws noise after."""
        with self._transact():
            try:
                self._check(dataset, cost, composition)
            except BudgetExceededError as e:
                logger.warning(
                    "refused %s debit of %g on dataset %r: %g spent of "
                    "cap %g (stage %r)",
                    composition, cost.epsilon, dataset, e.spent, e.cap, stage,
                )
                if _METRICS.enabled:
                    _METRICS.counter(
                        "accountant.refusals_total", dataset=dataset
                    ).inc()
                raise
            # Pure-ε Laplace debits stay byte-identical v1 records; only
            # Gaussian debits need the v2 fields (δ, native ρ) — a v1
            # record's ρ is derivable (ε²/2) so it is never stored.
            if cost.mechanism == "laplace":
                record = {
                    "v": 1,
                    "kind": "debit",
                    "dataset": dataset,
                    "epsilon": cost.epsilon,
                    "composition": composition,
                    "stage": stage,
                }
            else:
                record = {
                    "v": 2,
                    "kind": "debit",
                    "dataset": dataset,
                    "epsilon": cost.epsilon,
                    "delta": cost.delta,
                    "rho": cost.rho,
                    "mechanism": cost.mechanism,
                    "composition": composition,
                    "stage": stage,
                }
            if self._wal is not None:
                self._wal.append(record)
            self._spent[dataset] += cost.epsilon
            # fold the record (not the cost) so live state and a later
            # replay of the same ledger are bit-equal by construction
            folded = fold_debit(
                self._curves.setdefault(dataset, SpendCurve()), record
            )
            self.ledger.append(
                LedgerEntry(
                    dataset,
                    cost.epsilon,
                    composition,
                    stage,
                    folded.mechanism,
                    folded.delta,
                    folded.rho,
                )
            )
            if _METRICS.enabled:
                _METRICS.counter(
                    "accountant.epsilon_spent", dataset=dataset
                ).inc(cost.epsilon)
                _METRICS.counter(
                    "accountant.debits_total",
                    dataset=dataset,
                    composition=composition,
                ).inc()
        return cost.epsilon

    def charge(
        self,
        dataset: str,
        eps,
        stage: str = "",
        mechanism: str = "laplace",
        delta: float | None = None,
    ) -> float:
        """Debit under sequential composition: the *sum* of the budgets.

        ``eps`` may be a scalar or an array of per-mechanism budgets run
        on the same data (an ε-sweep debits its grid total).  For
        ``mechanism="gaussian"`` the debit additionally carries the
        summed δ and the summed per-trial zCDP cost ρ, recorded as a v2
        WAL record.  Returns the ε amount debited, which is durably
        committed (WAL accountants) before this method returns.
        """
        cost = get_mechanism(mechanism, delta).cost(eps)
        return self._debit(dataset, cost, "sequential", stage)

    def charge_parallel(
        self,
        dataset: str,
        eps,
        stage: str = "",
        mechanism: str = "laplace",
        delta: float | None = None,
    ) -> float:
        """Debit under parallel composition: the *maximum* branch budget.

        For mechanisms applied to disjoint partitions of the dataset —
        each record is touched by exactly one branch, so the collective
        release is max(ε)-DP (and max-ρ zCDP).  Returns the ε amount
        debited.
        """
        branch_max = float(np.max(validate_epsilon(eps)))
        cost = get_mechanism(mechanism, delta).cost(branch_max)
        return self._debit(dataset, cost, "parallel", stage)

    def __repr__(self) -> str:
        with self._lock:
            parts = ", ".join(
                f"{d}: {self._spent[d]:g}/{self._caps[d]:g}"
                for d in self.datasets()
            )
        wal = "" if self._wal is None else f", wal={self._wal.path!r}"
        return f"PrivacyAccountant({parts or 'no datasets'}{wal})"
