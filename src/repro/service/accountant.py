"""Privacy-budget accounting for the query service.

Each dataset a service instance answers queries about carries a hard
epsilon cap — the total privacy loss its owners have authorized.  The
accountant is the single gate in front of MEASURE: every measurement
debits it *before* any noise is drawn, and a debit that would exceed the
cap raises :class:`BudgetExceededError` with the data untouched, making
over-spending a programming error rather than a silent privacy violation
(the same contract as :class:`~repro.core.privacy.PrivacyLedger`, which
tracks a single pipeline's stages; the accountant tracks many datasets
across many requests).

Two composition rules are supported:

* **sequential** (:meth:`PrivacyAccountant.charge`) — mechanisms run on
  the same data compose additively: the total loss of an ε-sweep is the
  sum of its trials' budgets.
* **parallel** (:meth:`PrivacyAccountant.charge_parallel`) — mechanisms
  run on *disjoint partitions* of the data compose by the maximum: a
  record appears in one partition only, so its worst-case privacy loss is
  the largest branch budget (e.g. DAWA-style per-bucket measurement, or
  per-region serving shards).

Everything downstream of a measurement — reconstruction, workload
answering, ad-hoc queries against a cached x̂ — is post-processing and
never touches the accountant.

Durability
----------
With ``wal_path=`` (or via :meth:`PrivacyAccountant.recover`), the
accountant is backed by a :class:`~repro.service.ledger.WriteAheadLedger`:
every register/debit is checksummed and **fsync'd before the method
returns** — i.e. before the caller draws any noise — so no crash can
leave released noise unaccounted.  On startup, committed records are
replayed (a torn tail from a crashed writer is truncated) and the
in-memory state is exactly the pre-crash committed prefix.  Debits run
as a cross-process **compare-and-debit**: under the ledger's file lock,
records appended by other processes are replayed first, then the cap is
checked, then the new record is appended — two processes sharing a
ledger path can never jointly overdraw a cap.  All public methods are
additionally thread-safe behind one re-entrant lock.
"""

from __future__ import annotations

import contextlib
import logging
import threading
from dataclasses import dataclass

import numpy as np

from ..core.solvers import validate_epsilon
from ..obs.metrics import REGISTRY as _METRICS
from .ledger import WriteAheadLedger

__all__ = ["BudgetExceededError", "LedgerEntry", "PrivacyAccountant"]

logger = logging.getLogger(__name__)

#: Relative slack on cap comparisons so float accumulation of a budget
#: split into many exact shares never spuriously trips the cap.
_CAP_SLACK = 1e-12


class BudgetExceededError(RuntimeError):
    """A debit would push a dataset past its epsilon cap.

    Raised *before* any measurement noise is drawn — the mechanism that
    attempted the spend never touched the data.  Carries the full budget
    picture as attributes (``dataset``, ``cap``, ``spent``, ``requested``,
    ``remaining``, ``composition``) so callers can act on the remaining
    budget instead of parsing the message.
    """

    def __init__(
        self,
        dataset: str,
        cap: float,
        spent: float,
        requested: float,
        composition: str = "sequential",
    ):
        self.dataset = dataset
        self.cap = float(cap)
        self.spent = float(spent)
        self.requested = float(requested)
        self.remaining = max(0.0, self.cap - self.spent)
        self.composition = composition
        super().__init__(
            f"privacy budget exceeded for dataset {dataset!r}: requested "
            f"debit {self.requested:g} ({composition}) but only "
            f"{self.remaining:g} of cap {self.cap:g} remains "
            f"(spent {self.spent:g})"
        )


@dataclass
class LedgerEntry:
    """One recorded debit: which dataset, how much, and under which rule."""

    dataset: str
    epsilon: float
    composition: str  # "sequential" | "parallel"
    stage: str = ""


class PrivacyAccountant:
    """Multi-dataset epsilon ledger with hard per-dataset caps.

    Parameters
    ----------
    default_cap:
        Cap auto-registered for datasets first seen by a charge.  With
        the default ``None``, every dataset must be registered explicitly
        — unknown datasets raise ``KeyError`` rather than silently
        spending an unbounded budget.
    wal_path:
        Path of the write-ahead ledger file backing this accountant.
        ``None`` (default) keeps state in memory only — a crash forgets
        everything, acceptable for tests and synthetic benchmarks, never
        for real data.  An existing file is recovered on construction:
        committed records are replayed and a torn tail is truncated.
    lock_timeout:
        Bound (seconds) on waiting for the ledger's cross-process lock.
        ``None`` (default) blocks indefinitely — the library semantics.
        Serving callers set it so a stuck peer raises
        :class:`repro.service.ledger.LockTimeoutError` (retryable, zero
        spend) instead of parking a request thread forever.
    """

    def __init__(
        self,
        default_cap: float | None = None,
        wal_path: str | None = None,
        lock_timeout: float | None = None,
    ):
        if default_cap is not None:
            default_cap = float(validate_epsilon(default_cap, "default_cap"))
        self.default_cap = default_cap
        self._caps: dict[str, float] = {}
        self._spent: dict[str, float] = {}
        self.ledger: list[LedgerEntry] = []
        self._lock = threading.RLock()
        self._wal = (
            None
            if wal_path is None
            else WriteAheadLedger(wal_path, lock_timeout=lock_timeout)
        )
        if self._wal is not None:
            with self._wal.locked():
                records = self._wal.read_new()
                self._apply_records(records)
                dropped = self._wal.truncate_torn_tail()
            if records:
                logger.info(
                    "recovered %d committed record(s) for %d dataset(s) "
                    "from ledger %s%s",
                    len(records),
                    len(self._caps),
                    self._wal.path,
                    f" (dropped {dropped}-byte torn tail)" if dropped else "",
                )

    @classmethod
    def recover(
        cls, wal_path: str, default_cap: float | None = None
    ) -> "PrivacyAccountant":
        """Rebuild an accountant from its write-ahead ledger.

        Replays the committed record prefix (register records restore
        caps, debit records restore per-dataset spend and the in-memory
        :attr:`ledger`), truncating any torn tail a crashed writer left.
        The result is exactly the state every pre-crash ``charge`` call
        had durably committed — never less, so no released noise is ever
        unaccounted.
        """
        return cls(default_cap=default_cap, wal_path=wal_path)

    @property
    def wal_path(self) -> str | None:
        """Path of the backing write-ahead ledger (None = memory only)."""
        return None if self._wal is None else self._wal.path

    # -- WAL plumbing ------------------------------------------------------
    def _apply_records(self, records) -> None:
        """Fold replayed WAL records into memory (no cap re-checking: every
        committed debit passed its check when written, and replaying it
        conservatively — even past a since-shrunk cap — can only keep the
        accounted spend at or above the released noise)."""
        for r in records:
            kind = r.get("kind")
            if kind == "register":
                self._caps[r["dataset"]] = float(r["cap"])
                self._spent.setdefault(r["dataset"], 0.0)
            elif kind == "debit":
                ds = r["dataset"]
                if ds not in self._caps and self.default_cap is not None:
                    self._caps[ds] = self.default_cap
                self._spent[ds] = self._spent.get(ds, 0.0) + float(r["epsilon"])
                self.ledger.append(
                    LedgerEntry(
                        ds,
                        float(r["epsilon"]),
                        r.get("composition", "sequential"),
                        r.get("stage", ""),
                    )
                )

    @contextlib.contextmanager
    def _transact(self):
        """One atomic read-check-append cycle: thread lock, then (when a
        WAL is attached) the cross-process file lock with other writers'
        tail replayed before the caller's check runs."""
        with self._lock:
            if self._wal is None:
                yield
            else:
                with self._wal.locked():
                    self._apply_records(self._wal.read_new())
                    yield

    def sync(self) -> None:
        """Fold in records other processes appended since the last look.

        Lock-free read: a record mid-write by a live writer simply fails
        its checksum and is picked up on the next call."""
        with self._lock:
            if self._wal is not None:
                self._apply_records(self._wal.read_new())

    # -- registration ------------------------------------------------------
    def _register_locked(self, dataset: str, cap: float, wal: bool) -> None:
        """Registration core; caller holds whatever locks apply."""
        spent = self._spent.get(dataset, 0.0)
        if cap < spent:
            raise ValueError(
                f"cap {cap} for dataset {dataset!r} is below the "
                f"already-spent budget {spent}"
            )
        if wal and self._wal is not None and self._caps.get(dataset) != cap:
            self._wal.append(
                {"v": 1, "kind": "register", "dataset": dataset, "cap": cap}
            )
        self._caps[dataset] = cap
        self._spent.setdefault(dataset, 0.0)

    def register(self, dataset: str, cap: float) -> None:
        """Set (or raise) the epsilon cap of a dataset.

        A cap below what is already spent is rejected — budgets may be
        extended by the data owner but never retroactively shrunk under
        the amount consumed.  With a WAL attached, the cap is durably
        recorded before it takes effect.
        """
        cap = float(validate_epsilon(cap, "cap"))
        with self._transact():
            self._register_locked(dataset, cap, wal=True)

    def datasets(self) -> list[str]:
        with self._lock:
            return sorted(self._caps)

    def _require(self, dataset: str) -> float:
        if dataset not in self._caps:
            if self.default_cap is None:
                raise KeyError(
                    f"dataset {dataset!r} is not registered with the "
                    "accountant (and no default_cap is set)"
                )
            # default_cap auto-registration is not WAL'd: replaying the
            # ledger under the same default_cap reproduces it, and never
            # writing here keeps WAL appends under the debit lock only.
            self._register_locked(dataset, self.default_cap, wal=False)
        return self._caps[dataset]

    # -- inspection --------------------------------------------------------
    def cap(self, dataset: str) -> float:
        with self._lock:
            return self._require(dataset)

    def spent(self, dataset: str) -> float:
        self.sync()
        with self._lock:
            self._require(dataset)
            return self._spent.get(dataset, 0.0)

    def remaining(self, dataset: str) -> float:
        with self._lock:
            return max(0.0, self.cap(dataset) - self.spent(dataset))

    # -- debits ------------------------------------------------------------
    def check(self, dataset: str, eps) -> float:
        """Validate a prospective sequential debit without recording it.

        Returns the total that :meth:`charge` would debit; raises
        :class:`BudgetExceededError` if it does not fit.  Advisory under
        concurrency: only :meth:`charge` holds the check and the debit
        under one lock.
        """
        total = float(np.sum(validate_epsilon(eps)))
        self.sync()
        with self._lock:
            self._check(dataset, total, "sequential")
        return total

    def _check(self, dataset: str, amount: float, composition: str) -> None:
        cap = self._require(dataset)
        spent = self._spent[dataset]
        if spent + amount > cap * (1 + _CAP_SLACK):
            raise BudgetExceededError(dataset, cap, spent, amount, composition)

    def _debit(
        self, dataset: str, amount: float, composition: str, stage: str
    ) -> float:
        """The compare-and-debit core: check + WAL append + apply, atomic
        across threads and (with a WAL) across processes.  The WAL record
        is fsync'd before the in-memory state moves, so the method returns
        only once the debit is durable — the caller draws noise after."""
        with self._transact():
            try:
                self._check(dataset, amount, composition)
            except BudgetExceededError as e:
                logger.warning(
                    "refused %s debit of %g on dataset %r: %g spent of "
                    "cap %g (stage %r)",
                    composition, amount, dataset, e.spent, e.cap, stage,
                )
                if _METRICS.enabled:
                    _METRICS.counter(
                        "accountant.refusals_total", dataset=dataset
                    ).inc()
                raise
            if self._wal is not None:
                self._wal.append(
                    {
                        "v": 1,
                        "kind": "debit",
                        "dataset": dataset,
                        "epsilon": amount,
                        "composition": composition,
                        "stage": stage,
                    }
                )
            self._spent[dataset] += amount
            self.ledger.append(LedgerEntry(dataset, amount, composition, stage))
            if _METRICS.enabled:
                _METRICS.counter(
                    "accountant.epsilon_spent", dataset=dataset
                ).inc(amount)
                _METRICS.counter(
                    "accountant.debits_total",
                    dataset=dataset,
                    composition=composition,
                ).inc()
        return amount

    def charge(self, dataset: str, eps, stage: str = "") -> float:
        """Debit under sequential composition: the *sum* of the budgets.

        ``eps`` may be a scalar or an array of per-mechanism budgets run
        on the same data (an ε-sweep debits its grid total).  Returns the
        amount debited, which is durably committed (WAL accountants)
        before this method returns.
        """
        total = float(np.sum(validate_epsilon(eps)))
        return self._debit(dataset, total, "sequential", stage)

    def charge_parallel(self, dataset: str, eps, stage: str = "") -> float:
        """Debit under parallel composition: the *maximum* branch budget.

        For mechanisms applied to disjoint partitions of the dataset —
        each record is touched by exactly one branch, so the collective
        release is max(ε)-DP.  Returns the amount debited.
        """
        branch_max = float(np.max(validate_epsilon(eps)))
        return self._debit(dataset, branch_max, "parallel", stage)

    def __repr__(self) -> str:
        with self._lock:
            parts = ", ".join(
                f"{d}: {self._spent[d]:g}/{self._caps[d]:g}"
                for d in self.datasets()
            )
        wal = "" if self._wal is None else f", wal={self._wal.path!r}"
        return f"PrivacyAccountant({parts or 'no datasets'}{wal})"
