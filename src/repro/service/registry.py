"""Persistent on-disk store of fitted strategies.

SELECT is the expensive stage of HDMM — minutes of optimization for a
workload that may then be served for years (the paper's Census SF1
workload changes once a decade).  The registry amortizes it across
processes: a strategy is fitted once, persisted, and every later process
(or machine sharing the directory) loads it serve-ready.

Layout — one JSON manifest plus one npz per strategy::

    <root>/manifest.json          # key → metadata (human-inspectable)
    <root>/<fingerprint>.npz      # structural config + arrays + solver state
    <root>/quarantine/            # corrupted entries, renamed aside

The npz carries the strategy's :mod:`structural config
<repro.linalg.serialize>` (JSON string under ``__config__``, ndarrays
split out by :func:`~repro.linalg.flatten_arrays`) *and* the factor state
of the structured union Gram solver
(:func:`~repro.core.solvers.export_gram_solver_state`) — the exact
two-term inverse for one- and two-block unions, or the dominant-pair
preconditioner for L ≥ 3 unions — so a loaded strategy answers its first
query without re-running the per-factor Cholesky/eigendecomposition
setup.  All payloads are float64-exact: a reloaded strategy is
bit-identical to the fitted one.

Keys are :func:`~repro.service.fingerprint.workload_fingerprint` values,
so any process that can *construct* the workload can find its strategy —
no shared naming convention required.

Durability and integrity
------------------------
A strategy that silently decodes to the wrong arrays serves wrong
answers with real privacy budget behind them, so every write is atomic
and every read is verified:

* **atomic writes** — npz and manifest are written to a temp file,
  flushed, ``fsync``'d, then ``os.replace``'d into place (with the
  directory fsync'd after), so a reader — or the next process after a
  crash — sees either the old complete file or the new one, never a torn
  write.  Crash-abandoned ``*.tmp-*`` files are ignored by every read
  path.
* **per-entry checksums** — the manifest records the SHA-256 of each npz;
  :meth:`StrategyRegistry.load` verifies it before deserializing.
  Entries written by a pre-checksum registry lack the field and verify
  lazily: their digest is computed and backfilled on first load.
* **quarantine, not crash** — an entry that fails its checksum, fails to
  parse, or has lost its npz is renamed into ``quarantine/`` (preserved
  for forensics), dropped from the manifest, and reported to the caller
  as a miss: :meth:`get` returns ``None``, so
  :meth:`~repro.service.engine.QueryService.route_misses` simply re-fits
  the workload cold instead of failing the request.  A manifest that
  itself fails to parse is quarantined and rebuilt from the npz files
  present (fit metadata is lost; strategies are not).

All cross-process read-modify-write cycles on the manifest run under an
exclusive ``flock`` on a ``.lock`` sidecar, and all filesystem effects
route through the :mod:`~repro.service.faults` fault points
(``registry.npz.write`` / ``.fsync`` / ``.replace``,
``registry.manifest.*``, ``registry.load``) so the crash matrix in
``tests/test_faults.py`` can drive every one.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass, field

import numpy as np

try:
    import fcntl
except ImportError:  # non-POSIX platform — single-process use only
    fcntl = None

from ..linalg import (
    Matrix,
    flatten_arrays,
    matrix_from_config,
    matrix_to_config,
    restore_arrays,
)
from ..core.solvers import export_gram_solver_state, restore_gram_solver_state
from ..domain import Domain
from ..obs.events import emit as _emit
from ..obs.metrics import REGISTRY as _METRICS
from ..server import retry as _retry
from ..workload.logical import LogicalWorkload
from . import faults
from .fingerprint import workload_fingerprint

__all__ = ["RegistryCorruptionError", "StrategyRecord", "StrategyRegistry"]

logger = logging.getLogger(__name__)

_MANIFEST = "manifest.json"
_QUARANTINE = "quarantine"
#: Version 2 adds per-entry ``sha256`` checksums.  Version-1 manifests
#: (pre-checksum) are still accepted; their entries verify lazily — the
#: digest is computed and backfilled on each entry's first load.
_MANIFEST_VERSION = 2
_ACCEPTED_VERSIONS = frozenset({1, _MANIFEST_VERSION})
#: Accelerator tables live beside strategy npz files under this suffix
#: and are tracked in the manifest's ``tables`` section (absent in
#: pre-accelerator manifests — readers use ``.get("tables", {})``).
_TABLE_SUFFIX = ".accel.npz"


class RegistryCorruptionError(RuntimeError):
    """A persisted strategy failed verification and was quarantined.

    :meth:`StrategyRegistry.get` absorbs this into a cold miss; it only
    reaches callers that :meth:`StrategyRegistry.load` a key directly.
    """


@dataclass
class StrategyRecord:
    """A deserialized registry entry, serve-ready.

    Attributes
    ----------
    key:
        The workload fingerprint the strategy is stored under.
    strategy:
        The reconstructed strategy matrix, with its union-Gram solver
        state already attached (no re-factorization on first use).
    loss:
        ``‖W A⁺‖_F²`` recorded at fit time (None if not recorded).
    meta:
        The manifest metadata for the entry (reprs, shapes, timestamps,
        caller extras).
    """

    key: str
    strategy: Matrix
    loss: float | None = None
    meta: dict = field(default_factory=dict)


def _fsync_dir(path: str) -> None:
    """Durably commit a rename: fsync the containing directory."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # platform without directory fds
        return
    try:
        faults.retrying(lambda: os.fsync(fd), site="registry.dir.fsync")
    finally:
        os.close(fd)


def _atomic_write(path: str, data: bytes, site: str) -> None:
    """temp file → write → flush → fsync → replace → dir fsync.

    Ordinary failures clean up the temp file; a :class:`SimulatedCrash`
    (``BaseException``) leaves it behind exactly as a real kill would.
    """
    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as f:

            def _write():
                faults.check(f"{site}.write")
                f.write(faults.mangle(f"{site}.payload", data))
                f.flush()

            def _fsync():
                faults.check(f"{site}.fsync")
                os.fsync(f.fileno())

            faults.retrying(_write, site=f"{site}.write")
            faults.retrying(_fsync, site=f"{site}.fsync")
        faults.check(f"{site}.replace")
        os.replace(tmp, path)
    except Exception:
        with contextlib.suppress(OSError):
            os.remove(tmp)
        raise
    _fsync_dir(os.path.dirname(os.path.abspath(path)))


def _file_sha256(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


class StrategyRegistry:
    """npz + JSON-manifest store of fitted strategies, keyed by fingerprint.

    The root directory is created (and probed for writability) at
    construction, so a service wired to an unusable path fails here with
    a clear error instead of deep inside its first cold fit.
    """

    def __init__(self, root: str):
        self.root = str(root)
        try:
            os.makedirs(self.root, exist_ok=True)
        except OSError as e:
            raise ValueError(
                f"registry root {self.root!r} cannot be created: {e}"
            ) from e
        if not os.path.isdir(self.root):
            raise ValueError(
                f"registry root {self.root!r} exists but is not a directory"
            )
        probe = os.path.join(self.root, f".probe-{os.getpid()}")
        try:
            with open(probe, "w"):
                pass
            os.remove(probe)
        except OSError as e:
            raise ValueError(
                f"registry root {self.root!r} is not writable: {e}"
            ) from e

    # -- manifest plumbing -------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, _MANIFEST)

    @contextlib.contextmanager
    def _locked(self):
        """Exclusive advisory lock over manifest read-modify-write cycles.

        Concurrent writers sharing the directory (the deployment this
        registry exists for) would otherwise lose each other's entries:
        both read, both write, last rename wins.  Uses ``flock`` on a
        sidecar file; on platforms without ``fcntl`` this degrades to no
        locking (single-process use).
        """
        if fcntl is None:
            yield
            return
        with open(os.path.join(self.root, ".lock"), "a") as lock:
            fcntl.flock(lock, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock, fcntl.LOCK_UN)

    def _quarantine_file(self, name: str) -> str | None:
        """Move ``<root>/<name>`` aside into ``quarantine/`` (best effort);
        returns the quarantine path, or None if there was nothing to move."""
        src = os.path.join(self.root, name)
        if not os.path.exists(src):
            return None
        qdir = os.path.join(self.root, _QUARANTINE)
        os.makedirs(qdir, exist_ok=True)
        dst = os.path.join(qdir, f"{name}.{os.getpid()}-{int(time.time())}")
        try:
            os.replace(src, dst)
        except OSError:
            return None
        return dst

    def _rebuild_manifest(self) -> dict:
        """Best-effort manifest from the npz files present (used after the
        manifest itself was quarantined): fit metadata is lost, strategies
        are not — checksums are backfilled on each entry's first load."""
        entries = {}
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".npz") or ".tmp-" in name:
                continue
            if name.endswith(_TABLE_SUFFIX):
                # Accelerator tables are not strategy entries; they are
                # pure caches, rebuilt from x̂ whenever absent.
                continue
            entries[name[:-4]] = {"file": name, "recovered": True}
        return {"version": _MANIFEST_VERSION, "entries": entries}

    def _read_manifest(self) -> dict:
        faults.check("registry.manifest.read")
        try:
            with open(self.manifest_path) as f:
                manifest = json.load(f)
        except FileNotFoundError:
            return {"version": _MANIFEST_VERSION, "entries": {}}
        except ValueError:
            where = self._quarantine_file(_MANIFEST)
            _emit(
                logger,
                "registry.manifest_quarantined",
                path=self.manifest_path,
                quarantined_to=where,
                action="rebuilt from npz files present (fit metadata lost)",
            )
            manifest = self._rebuild_manifest()
            self._write_manifest(manifest)
            return manifest
        if manifest.get("version") not in _ACCEPTED_VERSIONS:
            raise ValueError(
                f"unsupported registry manifest version "
                f"{manifest.get('version')!r} at {self.manifest_path}"
            )
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        manifest["version"] = _MANIFEST_VERSION
        data = json.dumps(manifest, indent=2, sort_keys=True).encode()
        _atomic_write(self.manifest_path, data, site="registry.manifest")

    def _strategy_path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.npz")

    def _table_path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}{_TABLE_SUFFIX}")

    def _write_npz(self, path: str, arrays: dict, site: str) -> str:
        """Atomically write an npz and return its SHA-256.

        The same temp → fsync → replace → dir-fsync dance as the
        manifest, with the digest computed from the temp file *after*
        the ``<site>.payload`` mangle point so injected bit flips are
        visible to the checksum machinery exactly as silent on-disk
        corruption would be.  A :class:`SimulatedCrash` leaves the temp
        file behind, as a real kill would; read paths ignore ``*.tmp-*``.
        """
        tmp = f"{path[:-4]}.tmp-{os.getpid()}.npz"
        try:
            with open(tmp, "wb") as f:

                def _write():
                    faults.check(f"{site}.write")
                    np.savez(f, **arrays)
                    f.flush()

                def _fsync():
                    faults.check(f"{site}.fsync")
                    os.fsync(f.fileno())

                faults.retrying(_write, site=f"{site}.write")
                faults.retrying(_fsync, site=f"{site}.fsync")
            faults.mangle_file(f"{site}.payload", tmp)
            digest = _file_sha256(tmp)
            faults.check(f"{site}.replace")
            os.replace(tmp, path)
            _fsync_dir(self.root)
        except Exception:
            with contextlib.suppress(OSError):
                os.remove(tmp)
            raise
        return digest

    # -- keys --------------------------------------------------------------
    def key_for(
        self,
        workload: Matrix | LogicalWorkload,
        domain: Domain | None = None,
        template: str | None = None,
    ) -> str:
        """The fingerprint this registry files ``workload`` under."""
        return workload_fingerprint(workload, domain=domain, template=template)

    def keys(self) -> list[str]:
        return sorted(self._read_manifest()["entries"])

    def __len__(self) -> int:
        return len(self._read_manifest()["entries"])

    def __contains__(self, key: str) -> bool:
        return key in self._read_manifest()["entries"]

    def entry(self, key: str) -> dict:
        """The manifest metadata of ``key`` (no strategy deserialization)."""
        entries = self._read_manifest()["entries"]
        if key not in entries:
            raise KeyError(f"no strategy registered under {key!r}")
        return dict(entries[key])

    # -- persistence -------------------------------------------------------
    def put(
        self,
        workload: Matrix | LogicalWorkload,
        strategy: Matrix,
        loss: float | None = None,
        domain: Domain | None = None,
        template: str | None = None,
        metadata: dict | None = None,
    ) -> str:
        """Persist a fitted strategy; returns its registry key.

        An existing entry for the same key is replaced (re-fitting a
        workload updates the served strategy).  The npz is written
        atomically (temp + fsync + replace) and its SHA-256 is recorded
        in the manifest before the entry becomes visible, so no reader
        can ever observe a strategy without the checksum that guards it.
        """
        key = self.key_for(workload, domain=domain, template=template)
        digest, solver = self._write_strategy_npz(key, strategy)

        with self._locked():
            manifest = self._read_manifest()
            manifest["entries"][key] = {
                "file": f"{key}.npz",
                "sha256": digest,
                "strategy": repr(strategy),
                "workload": repr(workload),
                "shape": [int(s) for s in strategy.shape],
                "sensitivity": float(strategy.sensitivity()),
                "loss": None if loss is None else float(loss),
                "template": template or "",
                "solver_state": bool(
                    solver
                    and ("factors" in solver or "precond_factors" in solver)
                ),
                "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "metadata": metadata or {},
            }
            self._write_manifest(manifest)
        return key

    def _write_strategy_npz(self, key: str, strategy: Matrix):
        """Serialize strategy + solver state into ``<key>.npz`` atomically;
        returns ``(sha256, exported_solver_state)``."""
        solver = export_gram_solver_state(strategy)
        payload = {
            "strategy": matrix_to_config(strategy),
            "solver": solver,
        }
        flat, arrays = flatten_arrays(payload)
        # np.savez writes into an open file object verbatim; the atomic
        # temp → fsync → replace dance makes a concurrent load of the
        # same key read either the old complete file or the new one.
        digest = self._write_npz(
            self._strategy_path(key),
            {"__config__": json.dumps(flat), **arrays},
            site="registry.npz",
        )
        # Record how many recycled Ritz vectors the entry now carries so
        # the engine only rewrites the npz when the basis has grown.
        rec = None if solver is None else solver.get("recycle_U")
        strategy.cache_set(
            "persisted_recycle_size",
            0 if rec is None else int(np.asarray(rec).shape[1]),
        )
        return digest, solver

    def refresh_solver_state(self, key: str, strategy: Matrix) -> bool:
        """Re-persist an entry's npz with the strategy's *current* solver
        state (factors, preconditioner, recycled Ritz basis).

        Solver state accrues after ``put`` — most notably the Ritz
        recycling basis, which is harvested during reconstruction, after
        the strategy was registered.  This rewrites the npz in place
        (atomically, checksum updated before the manifest flips) while
        preserving the entry's fit metadata, so a fresh process warm
        loads the strategy already deflated.  Returns ``False`` (no-op)
        when the key is not registered.
        """
        if key not in self._read_manifest()["entries"]:
            return False
        digest, solver = self._write_strategy_npz(key, strategy)
        with self._locked():
            manifest = self._read_manifest()
            entry = manifest["entries"].get(key)
            if entry is None:  # deleted concurrently; npz is orphaned
                return False
            entry["sha256"] = digest
            entry["solver_state"] = bool(
                solver
                and ("factors" in solver or "precond_factors" in solver)
            )
            self._write_manifest(manifest)
        return True

    # -- accelerator tables ------------------------------------------------
    def put_table(self, key: str, arrays: dict, meta: dict | None = None) -> str:
        """Persist an accelerator table under ``key``.

        Tables are derived caches, not sources of truth, but they still
        get the full durability treatment (atomic write, manifest
        sha256): a silently corrupted table would serve wrong answers
        with real privacy budget behind them, exactly like a corrupted
        strategy.  Fault sites: ``registry.table.{write,fsync,payload,
        replace}`` and ``registry.table.load``.
        """
        digest = self._write_npz(
            self._table_path(key), dict(arrays), site="registry.table"
        )
        with self._locked():
            manifest = self._read_manifest()
            tables = manifest.setdefault("tables", {})
            tables[key] = {
                "file": f"{key}{_TABLE_SUFFIX}",
                "sha256": digest,
                "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "metadata": meta or {},
            }
            self._write_manifest(manifest)
        return key

    def get_table(self, key: str) -> dict | None:
        """Load a persisted accelerator table's arrays, or ``None``.

        A checksum mismatch, torn zip, or missing file quarantines the
        table and returns ``None`` — the caller rebuilds the table from
        the cached reconstruction and re-persists it; corruption never
        crashes serving and never produces wrong answers.
        """
        meta = self._read_manifest().get("tables", {}).get(key)
        if meta is None:
            return None
        path = self._table_path(key)
        try:
            faults.check("registry.table.load")
            digest = _file_sha256(path)
            expected = meta.get("sha256")
            if expected is not None and digest != expected:
                raise RegistryCorruptionError(
                    f"table {key!r} failed its checksum: manifest records "
                    f"sha256 {expected[:16]}…, file has {digest[:16]}…"
                )
            with np.load(path, allow_pickle=False) as npz:
                return {name: npz[name] for name in npz.files}
        except Exception as e:  # checksum, torn zip, missing file
            self._quarantine_table(key, f"{type(e).__name__}: {e}")
            return None

    def _quarantine_table(self, key: str, reason: str) -> None:
        """Move a damaged table aside and forget it; the next eligible
        hit rebuilds it from x̂."""
        where = self._quarantine_file(f"{key}{_TABLE_SUFFIX}")
        with self._locked():
            manifest = self._read_manifest()
            tables = manifest.get("tables", {})
            if key in tables:
                del tables[key]
                manifest["tables"] = tables
                self._write_manifest(manifest)
        _emit(
            logger,
            "registry.table_quarantined",
            key=key,
            reason=reason,
            quarantined_to=where,
        )

    def table_keys(self) -> list[str]:
        return sorted(self._read_manifest().get("tables", {}))

    def quarantine(self, key: str, reason: str) -> None:
        """Move a damaged entry aside and drop it from the manifest.

        The npz is preserved under ``quarantine/`` for forensics; the
        manifest forgets the key, so every later lookup is a clean cold
        miss that re-fits and re-persists the strategy.
        """
        where = self._quarantine_file(f"{key}.npz")
        with self._locked():
            manifest = self._read_manifest()
            if key in manifest["entries"]:
                del manifest["entries"][key]
                self._write_manifest(manifest)
        _emit(
            logger,
            "registry.entry_quarantined",
            key=key,
            reason=reason,
            quarantined_to=where,
        )

    def _backfill_checksum(self, key: str, digest: str) -> None:
        """Lazily record the digest of a pre-checksum (version-1) entry."""
        with self._locked():
            manifest = self._read_manifest()
            entry = manifest["entries"].get(key)
            if entry is not None and "sha256" not in entry:
                entry["sha256"] = digest
                self._write_manifest(manifest)

    def load(self, key: str) -> StrategyRecord:
        """Deserialize the strategy stored under ``key``.

        Raises ``KeyError`` on an unknown key.  The npz's SHA-256 is
        verified against the manifest before deserializing (pre-checksum
        entries have their digest backfilled instead); any mismatch,
        parse failure, or missing file quarantines the entry and raises
        :class:`RegistryCorruptionError` — callers going through
        :meth:`get` see a plain miss.
        """
        meta = self.entry(key)
        path = self._strategy_path(key)
        t0 = time.perf_counter()
        try:
            # Transient read faults (EINTR/EAGAIN/ENOSPC) retry under the
            # shared backoff policy before the except-clause below would
            # misclassify them as corruption and quarantine a good entry.
            def _read_verified():
                faults.check("registry.load")
                digest = _file_sha256(path)
                expected = meta.get("sha256")
                if expected is not None and digest != expected:
                    raise RegistryCorruptionError(
                        f"strategy {key!r} failed its checksum: manifest "
                        f"records sha256 {expected[:16]}…, file has "
                        f"{digest[:16]}…"
                    )
                with np.load(path, allow_pickle=False) as npz:
                    payload = restore_arrays(
                        json.loads(npz["__config__"].item()), npz
                    )
                return digest, expected, payload

            digest, expected, payload = _retry.call_retrying(_read_verified)
            strategy = matrix_from_config(payload["strategy"])
            restore_gram_solver_state(strategy, payload["solver"])
            # Stamp how many recycled Ritz vectors the entry carries so
            # the engine can tell when the in-memory basis has outgrown
            # the persisted one and is worth re-persisting.
            rec = strategy.cache_get("gram_recycle_state")
            strategy.cache_set(
                "persisted_recycle_size", 0 if rec is None else rec.size
            )
        except RegistryCorruptionError as e:
            self.quarantine(key, str(e))
            raise
        except Exception as e:  # torn zip, bad JSON, missing file/arrays
            self.quarantine(key, f"{type(e).__name__}: {e}")
            raise RegistryCorruptionError(
                f"strategy {key!r} could not be deserialized and was "
                f"quarantined ({type(e).__name__}: {e})"
            ) from e
        if expected is None:
            self._backfill_checksum(key, digest)
        if _METRICS.enabled:
            _METRICS.histogram("registry.warm_load_ms").observe(
                (time.perf_counter() - t0) * 1e3
            )
        return StrategyRecord(
            key=key, strategy=strategy, loss=meta.get("loss"), meta=meta
        )

    def get(
        self,
        workload: Matrix | LogicalWorkload,
        domain: Domain | None = None,
        template: str | None = None,
    ) -> StrategyRecord | None:
        """Look up the strategy fitted for ``workload``.

        Returns ``None`` on a miss — including the graceful-degradation
        miss where the stored entry turned out to be corrupt and was
        quarantined: the caller re-fits cold rather than failing.
        """
        key = self.key_for(workload, domain=domain, template=template)
        if key not in self:
            return None
        try:
            return self.load(key)
        except RegistryCorruptionError:
            return None
        except KeyError:  # entry vanished between the check and the load
            return None

    def delete(self, key: str) -> None:
        """Remove an entry and its npz file (KeyError on miss)."""
        with self._locked():
            manifest = self._read_manifest()
            if key not in manifest["entries"]:
                raise KeyError(f"no strategy registered under {key!r}")
            del manifest["entries"][key]
            self._write_manifest(manifest)
        try:
            os.remove(self._strategy_path(key))
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:
        return f"StrategyRegistry(root={self.root!r}, entries={len(self)})"
