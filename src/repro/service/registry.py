"""Persistent on-disk store of fitted strategies.

SELECT is the expensive stage of HDMM — minutes of optimization for a
workload that may then be served for years (the paper's Census SF1
workload changes once a decade).  The registry amortizes it across
processes: a strategy is fitted once, persisted, and every later process
(or machine sharing the directory) loads it serve-ready.

Layout — one JSON manifest plus one npz per strategy::

    <root>/manifest.json          # key → metadata (human-inspectable)
    <root>/<fingerprint>.npz      # structural config + arrays + solver state

The npz carries the strategy's :mod:`structural config
<repro.linalg.serialize>` (JSON string under ``__config__``, ndarrays
split out by :func:`~repro.linalg.flatten_arrays`) *and* the factor state
of the structured union Gram solver
(:func:`~repro.core.solvers.export_gram_solver_state`) — the exact
two-term inverse for one- and two-block unions, or the dominant-pair
preconditioner for L ≥ 3 unions — so a loaded strategy answers its first
query without re-running the per-factor Cholesky/eigendecomposition
setup.  All payloads are float64-exact: a reloaded strategy is
bit-identical to the fitted one.

Keys are :func:`~repro.service.fingerprint.workload_fingerprint` values,
so any process that can *construct* the workload can find its strategy —
no shared naming convention required.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from dataclasses import dataclass, field

import numpy as np

try:
    import fcntl
except ImportError:  # non-POSIX platform — single-process use only
    fcntl = None

from ..linalg import (
    Matrix,
    flatten_arrays,
    matrix_from_config,
    matrix_to_config,
    restore_arrays,
)
from ..core.solvers import export_gram_solver_state, restore_gram_solver_state
from ..domain import Domain
from ..workload.logical import LogicalWorkload
from .fingerprint import workload_fingerprint

__all__ = ["StrategyRecord", "StrategyRegistry"]

_MANIFEST = "manifest.json"
_MANIFEST_VERSION = 1


@dataclass
class StrategyRecord:
    """A deserialized registry entry, serve-ready.

    Attributes
    ----------
    key:
        The workload fingerprint the strategy is stored under.
    strategy:
        The reconstructed strategy matrix, with its union-Gram solver
        state already attached (no re-factorization on first use).
    loss:
        ``‖W A⁺‖_F²`` recorded at fit time (None if not recorded).
    meta:
        The manifest metadata for the entry (reprs, shapes, timestamps,
        caller extras).
    """

    key: str
    strategy: Matrix
    loss: float | None = None
    meta: dict = field(default_factory=dict)


class StrategyRegistry:
    """npz + JSON-manifest store of fitted strategies, keyed by fingerprint."""

    def __init__(self, root: str):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    # -- manifest plumbing -------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, _MANIFEST)

    @contextlib.contextmanager
    def _locked(self):
        """Exclusive advisory lock over manifest read-modify-write cycles.

        Concurrent writers sharing the directory (the deployment this
        registry exists for) would otherwise lose each other's entries:
        both read, both write, last rename wins.  Uses ``flock`` on a
        sidecar file; on platforms without ``fcntl`` this degrades to no
        locking (single-process use).
        """
        if fcntl is None:
            yield
            return
        with open(os.path.join(self.root, ".lock"), "a") as lock:
            fcntl.flock(lock, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock, fcntl.LOCK_UN)

    def _read_manifest(self) -> dict:
        try:
            with open(self.manifest_path) as f:
                manifest = json.load(f)
        except FileNotFoundError:
            return {"version": _MANIFEST_VERSION, "entries": {}}
        if manifest.get("version") != _MANIFEST_VERSION:
            raise ValueError(
                f"unsupported registry manifest version "
                f"{manifest.get('version')!r} at {self.manifest_path}"
            )
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        # Write-then-rename so a crashed writer never leaves a truncated
        # manifest behind for the next process.
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(manifest, f, indent=2, sort_keys=True)
        os.replace(tmp, self.manifest_path)

    def _strategy_path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.npz")

    # -- keys --------------------------------------------------------------
    def key_for(
        self,
        workload: Matrix | LogicalWorkload,
        domain: Domain | None = None,
        template: str | None = None,
    ) -> str:
        """The fingerprint this registry files ``workload`` under."""
        return workload_fingerprint(workload, domain=domain, template=template)

    def keys(self) -> list[str]:
        return sorted(self._read_manifest()["entries"])

    def __len__(self) -> int:
        return len(self._read_manifest()["entries"])

    def __contains__(self, key: str) -> bool:
        return key in self._read_manifest()["entries"]

    def entry(self, key: str) -> dict:
        """The manifest metadata of ``key`` (no strategy deserialization)."""
        entries = self._read_manifest()["entries"]
        if key not in entries:
            raise KeyError(f"no strategy registered under {key!r}")
        return dict(entries[key])

    # -- persistence -------------------------------------------------------
    def put(
        self,
        workload: Matrix | LogicalWorkload,
        strategy: Matrix,
        loss: float | None = None,
        domain: Domain | None = None,
        template: str | None = None,
        metadata: dict | None = None,
    ) -> str:
        """Persist a fitted strategy; returns its registry key.

        An existing entry for the same key is replaced (re-fitting a
        workload updates the served strategy).
        """
        key = self.key_for(workload, domain=domain, template=template)
        solver = export_gram_solver_state(strategy)
        payload = {
            "strategy": matrix_to_config(strategy),
            "solver": solver,
        }
        flat, arrays = flatten_arrays(payload)
        # Write-then-rename: a concurrent load of the same key reads
        # either the old complete file or the new one, never a torn write.
        # (np.savez appends .npz to paths that lack it.)
        path = self._strategy_path(key)
        tmp = f"{path[:-4]}.tmp-{os.getpid()}.npz"
        np.savez(tmp, __config__=json.dumps(flat), **arrays)
        os.replace(tmp, path)

        with self._locked():
            manifest = self._read_manifest()
            manifest["entries"][key] = {
                "file": f"{key}.npz",
                "strategy": repr(strategy),
                "workload": repr(workload),
                "shape": [int(s) for s in strategy.shape],
                "sensitivity": float(strategy.sensitivity()),
                "loss": None if loss is None else float(loss),
                "template": template or "",
                "solver_state": bool(
                    solver
                    and ("factors" in solver or "precond_factors" in solver)
                ),
                "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "metadata": metadata or {},
            }
            self._write_manifest(manifest)
        return key

    def load(self, key: str) -> StrategyRecord:
        """Deserialize the strategy stored under ``key`` (KeyError on miss)."""
        meta = self.entry(key)
        with np.load(self._strategy_path(key), allow_pickle=False) as npz:
            payload = restore_arrays(json.loads(npz["__config__"].item()), npz)
        strategy = matrix_from_config(payload["strategy"])
        restore_gram_solver_state(strategy, payload["solver"])
        return StrategyRecord(
            key=key, strategy=strategy, loss=meta.get("loss"), meta=meta
        )

    def get(
        self,
        workload: Matrix | LogicalWorkload,
        domain: Domain | None = None,
        template: str | None = None,
    ) -> StrategyRecord | None:
        """Look up the strategy fitted for ``workload`` (None on miss)."""
        key = self.key_for(workload, domain=domain, template=template)
        if key not in self:
            return None
        return self.load(key)

    def delete(self, key: str) -> None:
        """Remove an entry and its npz file (KeyError on miss)."""
        with self._locked():
            manifest = self._read_manifest()
            if key not in manifest["entries"]:
                raise KeyError(f"no strategy registered under {key!r}")
            del manifest["entries"][key]
            self._write_manifest(manifest)
        try:
            os.remove(self._strategy_path(key))
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:
        return f"StrategyRegistry(root={self.root!r}, entries={len(self)})"
