"""Canonical, stable fingerprints of (workload, domain, template-class).

The strategy registry keys persisted strategies by the *semantic content*
of the workload they were fitted for, so that two processes building the
same workload independently — today and after a restart, on one machine
or across a fleet — agree on the key without coordination.  Three layers
make the key stable:

1. **Structural config** — the workload's ``to_config()`` tree (class
   names + construction parameters), so equality is about what queries
   the matrix encodes, never about Python object identity.
2. **Canonicalization** — semantically-neutral wrappers are normalized
   away before hashing: unit weights are dropped, nested weights are
   multiplied through, nested/singleton stacks are flattened.  ``VStack([W])``
   and ``Weighted(W, 1.0)`` answer exactly the query set of ``W``, so
   they fingerprint identically to it.
3. **Deterministic hashing** — the canonical tree is fed to SHA-256 via a
   type-tagged byte encoding (sorted dict keys, arrays as dtype + shape +
   raw C-order bytes), so the digest is reproducible across processes and
   platforms.

The fingerprint optionally folds in the relational domain (attribute
names and sizes — the same query structure over a different schema is a
different serving key) and the template class used for strategy selection
(an OPT_0 strategy and an OPT_M strategy for the same workload are
distinct registry entries).
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..domain import Domain
from ..linalg import matrix_to_config
from ..workload.logical import as_workload_matrix
from ..workload.util import attribute_sizes

__all__ = ["canonical_config", "config_digest", "workload_fingerprint"]

#: Hex digest length of a fingerprint (128 bits of SHA-256 — ample for
#: key uniqueness while keeping registry paths readable).
DIGEST_CHARS = 32


def canonical_config(config: dict) -> dict:
    """Normalize a matrix config so semantic equals share one form.

    * ``Weighted`` with unit weight collapses to its base;
    * nested ``Weighted`` wrappers multiply into one;
    * ``VStack`` blocks that are themselves ``VStack`` configs are
      flattened in order, and a single-block stack collapses to the block
      (a union of one query set *is* that query set);
    * all nested child configs are canonicalized recursively.
    """
    out = {k: v for k, v in config.items()}
    t = out.get("type")
    if t == "Weighted":
        base = canonical_config(out["base"])
        weight = float(out["weight"])
        if base.get("type") == "Weighted":
            weight *= float(base["weight"])
            base = base["base"]
        if weight == 1.0:
            return base
        return {"type": "Weighted", "base": base, "weight": weight}
    if t == "VStack":
        blocks = []
        for b in out["blocks"]:
            cb = canonical_config(b)
            if cb.get("type") == "VStack":
                blocks.extend(cb["blocks"])
            else:
                blocks.append(cb)
        if len(blocks) == 1:
            return blocks[0]
        return {"type": "VStack", "blocks": blocks}
    if t == "Kronecker":
        out["factors"] = [canonical_config(f) for f in out["factors"]]
    elif t == "Sum":
        out["terms"] = [canonical_config(x) for x in out["terms"]]
    elif t == "Permuted":
        out["base"] = canonical_config(out["base"])
    return out


def _update(h, obj) -> None:
    """Feed one config node into the hash with an unambiguous type tag."""
    if isinstance(obj, dict):
        h.update(b"D")
        for k in sorted(obj):
            h.update(b"K" + str(k).encode() + b"\x00")
            _update(h, obj[k])
    elif isinstance(obj, (list, tuple)):
        h.update(b"L" + str(len(obj)).encode() + b"\x00")
        for v in obj:
            _update(h, v)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(
            b"A" + arr.dtype.str.encode() + str(arr.shape).encode() + b"\x00"
        )
        h.update(arr.tobytes())
    elif isinstance(obj, bool):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"I" + str(int(obj)).encode() + b"\x00")
    elif isinstance(obj, (float, np.floating)):
        # repr of a float is the shortest string that round-trips the
        # exact double, so equal values hash equally and nothing else does.
        h.update(b"F" + repr(float(obj)).encode() + b"\x00")
    elif isinstance(obj, str):
        h.update(b"S" + obj.encode() + b"\x00")
    elif obj is None:
        h.update(b"N")
    else:
        raise TypeError(f"unhashable config value of type {type(obj).__name__}")


def config_digest(config) -> str:
    """Deterministic SHA-256 digest of a (canonical) config tree."""
    h = hashlib.sha256()
    _update(h, config)
    return h.hexdigest()[:DIGEST_CHARS]


def workload_fingerprint(
    workload,
    domain: Domain | None = None,
    template: str | None = None,
) -> str:
    """The registry key of a workload: hash of (queries, domain, template).

    Parameters
    ----------
    workload:
        Implicit workload matrix, a :class:`LogicalWorkload`, or a
        compiled query plan (any ``to_workload_matrix()`` object) —
        vectorized first, with its own domain used unless overridden.
    domain:
        The relational schema being served.  Defaults to the workload's
        own domain when logical, else the per-attribute sizes recovered
        from the union-of-products decomposition (falling back to the
        flat domain size for matrices without product structure).
    template:
        Identifier of the strategy template class the key is for (e.g.
        ``"opt_hdmm"``, ``"opt_marginals"``); strategies fitted by
        different templates never collide.
    """
    workload, domain = as_workload_matrix(workload, domain)
    if domain is not None:
        dom = {"attributes": list(domain.attributes), "sizes": list(domain.sizes)}
    else:
        try:
            dom = {"attributes": None, "sizes": list(attribute_sizes(workload))}
        except ValueError:
            dom = {"attributes": None, "sizes": [int(workload.shape[1])]}
    payload = {
        "workload": canonical_config(matrix_to_config(workload)),
        "domain": dom,
        "template": template or "",
    }
    return config_digest(payload)
