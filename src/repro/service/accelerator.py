"""Summed-area accelerator tables: the O(1) read path over cached x̂.

A "free" span hit still costs a structured matvec against the cached
reconstruction (~0.25 ms on the benchmark domain), which caps
single-dataset read throughput at a few thousand QPS.  This module makes
the hit path independent of the domain size for the queries that
dominate real traffic — axis-aligned boxes and everything built from
them (ranges, prefixes, marginal cells, totals, bucketizations, unions
and weighted/negated combinations thereof):

* :class:`AcceleratorTable` folds x̂ into its domain-shaped cube and
  computes the inclusive prefix-sum (summed-area) table — one
  ``np.cumsum`` sweep per dimension.  Any box sum over ``k`` axes is
  then the 2^k-corner inclusion–exclusion identity::

      sum(x[lo:hi+1, ...]) = Σ_{c ∈ {0,1}^k} (-1)^(k-|c|) P[c ? hi+1 : lo]

  and a whole workload (every cell of a marginal, every prefix, a batch
  of 100k ranges) is a single vectorized gather on precomputed
  corner-index arrays — one ``take`` + one small matmul + one
  ``bincount`` for the entire batch, instead of one matvec per query.

* :class:`RangeSpec` is the compile-time eligibility tag: a flattened
  term list ``(row, coeff, lo, hi)`` meaning query row ``row`` includes
  the box ``[lo, hi]`` scaled by ``coeff``.  :func:`range_spec_of`
  derives it *structurally* from the implicit matrix — Kronecker factors
  pattern-match to their box decompositions (``Identity``/``Ones``/
  ``Prefix``/``AllRange``/``WidthRange``), dense factor rows decompose
  into maximal constant-value runs (an interval row is one run, a
  negated interval two, a bucketization one per bucket), ``Weighted``
  scales, ``VStack`` concatenates.  Anything that does not decompose
  (hash-like rows, wavelets, more runs than
  :data:`MAX_BOXES_PER_ROW` per factor row) returns ``None`` and falls
  through to the span-projection matvec path unchanged.

* :func:`strategy_spans_everything` is the structural full-column-rank
  certificate that lets the engine skip the per-query span projection
  entirely: a strategy containing a scaled identity block (every
  p-Identity product, every marginals strategy with a positive
  full-contingency weight) spans *every* query, so membership needs no
  linear algebra at all.

Tables are float64, built lazily on first eligible hit, invalidated with
their reconstruction, and persisted through
:meth:`~repro.service.registry.StrategyRegistry.put_table` under the
PR 6 durability contracts (atomic write, sha256 in the manifest,
quarantine-and-rebuild from x̂ on corruption — never a crash).

Exactness: the table path evaluates the same sums as ``Q @ x̂`` in a
different association order.  For exactly-representable data (integer
counts below 2^53 — every contingency table) both orders are exact, so
accelerator answers are *bit-identical* to the matvec path; for already-
noised float x̂ they agree to machine precision.
"""

from __future__ import annotations

import hashlib
import logging
from itertools import product as _iproduct

import numpy as np

from ..linalg import (
    AllRange,
    Dense,
    Diagonal,
    Identity,
    Kronecker,
    Matrix,
    Ones,
    Prefix,
    VStack,
    Weighted,
)
from ..linalg.structured import Permuted, WidthRange
from ..obs.events import emit as _emit

__all__ = [
    "AcceleratorTable",
    "RangeSpec",
    "range_spec_of",
    "strategy_spans_everything",
    "table_key",
    "load_table",
    "store_table",
]

logger = logging.getLogger(__name__)

#: A dense factor row decomposing into more constant-value runs than this
#: is not worth gathering — at that point the summed-area evaluation does
#: as many memory touches as the matvec it replaces.
MAX_BOXES_PER_ROW = 16

#: Hard cap on the flattened term count of one spec (gather width is
#: ``terms x 2^k``); beyond it the batch is served by the matvec path.
MAX_TERMS = 1 << 21

#: Largest ``rows x cols`` an *unrecognized* factor may have before the
#: derivation refuses to densify it for run decomposition.
MAX_DENSE_FACTOR_CELLS = 1 << 22

#: Largest domain for which :func:`strategy_spans_everything` falls back
#: to a numeric rank computation when no structural rule applies.
NUMERIC_RANK_LIMIT = 512

_SPEC_KEY = "accel_range_spec"
_SPAN_KEY = "accel_full_span"
_INELIGIBLE = "ineligible"  # memo sentinel: derivation ran, found nothing


class RangeSpec:
    """A workload as a flat list of scaled axis-aligned boxes.

    ``row_idx[t]``, ``coeff[t]``, ``lo[t]``, ``hi[t]`` say that output
    row ``row_idx[t]`` accumulates ``coeff[t]`` times the box sum over
    the inclusive corner pair ``lo[t] .. hi[t]`` of the domain cube
    ``shape``.  The corner-index arrays of the inclusion–exclusion
    gather are precomputed lazily (they depend only on the spec, not the
    table) and cached on the instance, so a reused compiled query pays
    the derivation once.
    """

    __slots__ = (
        "shape", "rows", "row_idx", "coeff", "lo", "hi",
        "one_box_per_row", "_corner_idx", "_signs",
    )

    def __init__(self, shape, rows, row_idx, coeff, lo, hi):
        self.shape = tuple(int(s) for s in shape)
        self.rows = int(rows)
        self.row_idx = np.ascontiguousarray(row_idx, dtype=np.intp)
        self.coeff = np.ascontiguousarray(coeff, dtype=np.float64)
        d = len(self.shape)
        self.lo = np.ascontiguousarray(lo, dtype=np.int64).reshape(-1, d)
        self.hi = np.ascontiguousarray(hi, dtype=np.int64).reshape(-1, d)
        # The common fast case — every row is exactly one box in row
        # order (ranges, prefixes, marginals) — skips the bincount.
        self.one_box_per_row = self.row_idx.size == self.rows and bool(
            np.array_equal(self.row_idx, np.arange(self.rows))
        )
        self._corner_idx = None
        self._signs = None

    @property
    def terms(self) -> int:
        return self.row_idx.size

    def gather_plan(self) -> tuple[np.ndarray, np.ndarray]:
        """``(corner_idx, signs)`` of the inclusion–exclusion gather.

        ``corner_idx`` is ``(terms, 2^d)`` flat indices into the padded
        table; ``signs`` the ±1 weights.  Sum over each row of
        ``table.flat[corner_idx] @ signs`` is the box sum.
        """
        if self._corner_idx is None:
            d = len(self.shape)
            padded = np.asarray([s + 1 for s in self.shape], dtype=np.int64)
            strides = np.ones(d, dtype=np.int64)
            for j in range(d - 2, -1, -1):
                strides[j] = strides[j + 1] * padded[j + 1]
            hi1 = self.hi + 1
            ncorners = 1 << d
            idx = np.empty((self.row_idx.size, ncorners), dtype=np.int64)
            signs = np.empty(ncorners)
            for c in range(ncorners):
                bits = np.array(
                    [(c >> j) & 1 for j in range(d)], dtype=bool
                )
                pick = np.where(bits[None, :], hi1, self.lo)
                idx[:, c] = pick @ strides
                signs[c] = -1.0 if (d - int(bits.sum())) % 2 else 1.0
            self._corner_idx = idx
            self._signs = signs
        return self._corner_idx, self._signs

    def scaled(self, weight: float) -> "RangeSpec":
        return RangeSpec(
            self.shape, self.rows, self.row_idx,
            self.coeff * float(weight), self.lo, self.hi,
        )

    def __repr__(self) -> str:
        return (
            f"RangeSpec(shape={self.shape}, rows={self.rows}, "
            f"terms={self.terms})"
        )


def _concat_specs(specs: list[RangeSpec]) -> RangeSpec:
    shape = specs[0].shape
    offsets = np.cumsum([0] + [s.rows for s in specs[:-1]])
    return RangeSpec(
        shape,
        sum(s.rows for s in specs),
        np.concatenate([s.row_idx + off for s, off in zip(specs, offsets)]),
        np.concatenate([s.coeff for s in specs]),
        np.concatenate([s.lo for s in specs], axis=0),
        np.concatenate([s.hi for s in specs], axis=0),
    )


# -- per-factor box decompositions ----------------------------------------


def _dense_factor_terms(arr: np.ndarray):
    """Decompose each row into maximal runs of constant nonzero value.

    An interval indicator is one run, its negation at most two, a
    bucketization one run per bucket.  A row with more than
    :data:`MAX_BOXES_PER_ROW` runs makes the whole factor ineligible —
    the gather would no longer beat the matvec.
    """
    rows, coeffs, los, his = [], [], [], []
    for r, v in enumerate(arr):
        cuts = np.flatnonzero(np.diff(v)) + 1
        bounds = np.concatenate([[0], cuts, [v.size]])
        count = 0
        for s, e in zip(bounds[:-1], bounds[1:]):
            val = v[s]
            if val == 0.0:
                continue
            count += 1
            if count > MAX_BOXES_PER_ROW:
                return None
            rows.append(r)
            coeffs.append(val)
            los.append(s)
            his.append(e - 1)
    return (
        np.asarray(rows, dtype=np.intp),
        np.asarray(coeffs, dtype=np.float64),
        np.asarray(los, dtype=np.int64),
        np.asarray(his, dtype=np.int64),
    )


def _factor_terms(f: Matrix):
    """``(m, n, row, coeff, lo, hi)`` box terms of one Kronecker factor,
    or ``None`` when the factor has no bounded box decomposition."""
    m, n = f.shape
    if isinstance(f, Weighted):
        base = _factor_terms(f.base)
        if base is None:
            return None
        _, _, row, coeff, lo, hi = base
        return m, n, row, coeff * f.weight, lo, hi
    if isinstance(f, Identity):
        idx = np.arange(n)
        return m, n, idx.astype(np.intp), np.ones(n), idx, idx.copy()
    if isinstance(f, Ones):
        row = np.arange(m, dtype=np.intp)
        return (
            m, n, row, np.ones(m),
            np.zeros(m, dtype=np.int64),
            np.full(m, n - 1, dtype=np.int64),
        )
    if isinstance(f, Prefix):
        idx = np.arange(n)
        return (
            m, n, idx.astype(np.intp), np.ones(n),
            np.zeros(n, dtype=np.int64), idx,
        )
    if isinstance(f, AllRange):
        cnt = np.arange(n, 0, -1)
        lo = np.repeat(np.arange(n, dtype=np.int64), cnt)
        hi = np.concatenate(
            [np.arange(i, n, dtype=np.int64) for i in range(n)]
        )
        return m, n, np.arange(m, dtype=np.intp), np.ones(m), lo, hi
    if isinstance(f, WidthRange):
        lo = np.arange(m, dtype=np.int64)
        return (
            m, n, lo.astype(np.intp), np.ones(m), lo, lo + f.width - 1,
        )
    if isinstance(f, Dense) or m * n <= MAX_DENSE_FACTOR_CELLS:
        try:
            arr = f.dense()
        except Exception:
            return None
        terms = _dense_factor_terms(np.asarray(arr, dtype=np.float64))
        if terms is None:
            return None
        return (m, n) + terms
    return None


def _kron_spec(factors: list[Matrix]) -> RangeSpec | None:
    """Cross the per-factor box terms: a Kronecker row is the product of
    one row per factor, so its boxes are all combinations of the
    per-factor boxes (row-major row order, coefficients multiplied)."""
    per = []
    total_terms = 1
    for f in factors:
        t = _factor_terms(f)
        if t is None:
            return None
        per.append(t)
        total_terms *= t[2].size
        if total_terms > MAX_TERMS:
            return None
    d = len(per)
    shape = tuple(t[1] for t in per)
    rows = 1
    for t in per:
        rows *= t[0]
    if total_terms == 0:
        return RangeSpec(
            shape, rows,
            np.empty(0, dtype=np.intp), np.empty(0),
            np.empty((0, d), dtype=np.int64), np.empty((0, d), dtype=np.int64),
        )
    grids = np.meshgrid(
        *[np.arange(t[2].size) for t in per], indexing="ij"
    )
    flat = [g.reshape(-1) for g in grids]
    row_idx = np.zeros(total_terms, dtype=np.intp)
    coeff = np.ones(total_terms)
    lo = np.empty((total_terms, d), dtype=np.int64)
    hi = np.empty((total_terms, d), dtype=np.int64)
    for j, (m_j, _n_j, row_j, coeff_j, lo_j, hi_j) in enumerate(per):
        row_idx = row_idx * m_j + row_j[flat[j]]
        coeff = coeff * coeff_j[flat[j]]
        lo[:, j] = lo_j[flat[j]]
        hi[:, j] = hi_j[flat[j]]
    return RangeSpec(shape, rows, row_idx, coeff, lo, hi)


def _derive_spec(Q: Matrix) -> RangeSpec | None:
    if isinstance(Q, Weighted):
        base = _derive_spec(Q.base)
        return None if base is None else base.scaled(Q.weight)
    if isinstance(Q, VStack):
        specs = []
        for b in Q.blocks:
            s = _derive_spec(b)
            if s is None or (specs and s.shape != specs[0].shape):
                return None
            specs.append(s)
        if sum(s.terms for s in specs) > MAX_TERMS:
            return None
        return _concat_specs(specs)
    if isinstance(Q, Kronecker):
        return _kron_spec(Q.factors)
    # Single-axis queries (ad-hoc rows, structured 1-D workloads) index
    # the flat domain: their table is the 1-D prefix sum over x̂.
    t = _factor_terms(Q)
    if t is None:
        return None
    m, n, row, coeff, lo, hi = t
    if row.size > MAX_TERMS:
        return None
    return RangeSpec((n,), m, row, coeff, lo[:, None], hi[:, None])


def range_spec_of(Q: Matrix) -> RangeSpec | None:
    """The accelerator eligibility tag of a query matrix, memoized on the
    instance: its :class:`RangeSpec` when every row decomposes into a
    bounded number of axis-aligned boxes, else ``None`` (the query stays
    on the span-projection matvec path)."""
    memo = Q.cache_get(_SPEC_KEY)
    if memo is not None:
        return None if memo is _INELIGIBLE else memo
    spec = _derive_spec(Q)
    Q.cache_set(_SPEC_KEY, _INELIGIBLE if spec is None else spec)
    return spec


# -- full-span certificate -------------------------------------------------


def _full_column_rank(A: Matrix) -> bool:
    if isinstance(A, (Identity, Prefix, AllRange)):
        return True
    if isinstance(A, Diagonal):
        return bool(np.all(A.d != 0))
    if isinstance(A, Ones):
        return A.shape[1] == 1
    if isinstance(A, Weighted):
        return A.weight != 0 and _full_column_rank(A.base)
    if isinstance(A, Permuted):
        return _full_column_rank(A.base)
    if isinstance(A, Kronecker):
        return all(_full_column_rank(f) for f in A.factors)
    if isinstance(A, VStack):
        if any(_full_column_rank(b) for b in A.blocks):
            return True
    from ..linalg.marginals import MarginalsStrategy
    if isinstance(A, MarginalsStrategy):
        # theta[-1] weights the full-contingency marginal — a scaled
        # Identity block over the whole domain.
        return bool(A.theta[-1] > 0)
    from ..optimize.opt0 import PIdentity
    if isinstance(A, PIdentity):
        return True  # identity block over the column scales
    m, n = A.shape
    if m < n:
        return False
    from ..linalg.base import cache_enabled
    if n <= NUMERIC_RANK_LIMIT and cache_enabled():
        # One-time (memoized) numeric fallback for small unrecognized
        # strategies; skipped when memoization is globally off — a
        # per-query O(n^3) would dwarf what the certificate saves.
        try:
            return int(np.linalg.matrix_rank(A.dense())) == n
        except Exception:
            return False
    return False


def strategy_spans_everything(A: Matrix) -> bool:
    """Structural certificate that ``rowspace(A)`` is all of R^n.

    A full-column-rank strategy answers *every* linear query from its
    reconstruction, so a certified strategy lets the hit path skip the
    per-query span projection (the dominant cost of a cache hit) and
    serve straight from the accelerator table.  Sound but not complete:
    ``False`` only means the engine falls back to the projection test.
    """
    cached = A.cache_get(_SPAN_KEY)
    if cached is None:
        cached = _full_column_rank(A)
        A.cache_set(_SPAN_KEY, cached)
    return bool(cached)


# -- the table -------------------------------------------------------------


class AcceleratorTable:
    """The inclusive summed-area table of one cached reconstruction.

    ``flat`` is the zero-padded cumulative cube flattened C-order: entry
    ``P[i1, ..., id]`` (padded shape ``n_j + 1``) is the sum of
    ``x̂`` over cells ``[0, i1) x ... x [0, id)``, so a box sum is the
    2^d-corner alternating sum and a whole workload is one gather.
    """

    __slots__ = ("shape", "flat")

    def __init__(self, x_hat: np.ndarray, shape):
        shape = tuple(int(s) for s in shape)
        cube = np.asarray(x_hat, dtype=np.float64).reshape(shape)
        for axis in range(cube.ndim):
            cube = np.cumsum(cube, axis=axis)
        padded = np.zeros(tuple(s + 1 for s in shape))
        padded[tuple(slice(1, None) for _ in shape)] = cube
        self.shape = shape
        self.flat = padded.reshape(-1)

    @classmethod
    def from_flat(cls, flat: np.ndarray, shape) -> "AcceleratorTable":
        """Rewrap a persisted table without recomputing the prefix sums."""
        self = object.__new__(cls)
        self.shape = tuple(int(s) for s in shape)
        self.flat = np.ascontiguousarray(flat, dtype=np.float64).reshape(-1)
        expected = 1
        for s in self.shape:
            expected *= s + 1
        if self.flat.size != expected:
            raise ValueError(
                f"table has {self.flat.size} entries, padded shape "
                f"{self.shape} needs {expected}"
            )
        return self

    @property
    def nbytes(self) -> int:
        return int(self.flat.nbytes)

    def answer(self, spec: RangeSpec) -> np.ndarray:
        """Evaluate every row of ``spec`` in one vectorized gather."""
        if spec.shape != self.shape:
            raise ValueError(
                f"spec over cube {spec.shape} cannot read a table over "
                f"{self.shape}"
            )
        corner_idx, signs = spec.gather_plan()
        box_sums = self.flat.take(corner_idx) @ signs
        if spec.one_box_per_row:
            return spec.coeff * box_sums
        return np.bincount(
            spec.row_idx,
            weights=spec.coeff * box_sums,
            minlength=spec.rows,
        )


# -- persistence (PR 6 durability contracts) -------------------------------


def _x_digest(x_hat: np.ndarray) -> np.ndarray:
    """The reconstruction's content hash, as an npz-storable array."""
    digest = hashlib.sha256(
        np.ascontiguousarray(x_hat, dtype=np.float64).tobytes()
    ).digest()
    return np.frombuffer(digest, dtype=np.uint8)


def table_key(dataset: str, recon_key: str, shape) -> str:
    """The registry key one (dataset, reconstruction, cube shape) table
    is persisted under."""
    ident = f"{dataset}|{recon_key}|{','.join(str(int(s)) for s in shape)}"
    return "accel-" + hashlib.sha256(ident.encode()).hexdigest()[:32]


def load_table(registry, dataset: str, recon, shape) -> "AcceleratorTable | None":
    """A persisted table for this exact reconstruction, or ``None``.

    Checksum failures and torn files were already quarantined by the
    registry; a stale table (persisted for an older x̂ of the same
    strategy) is simply ignored — the caller rebuilds and overwrites.
    """
    arrays = registry.get_table(table_key(dataset, recon.key, shape))
    if arrays is None:
        return None
    try:
        if tuple(int(s) for s in arrays["shape"]) != tuple(
            int(s) for s in shape
        ):
            return None
        if not np.array_equal(arrays["x_digest"], _x_digest(recon.x_hat)):
            return None  # stale: the reconstruction was re-measured
        return AcceleratorTable.from_flat(arrays["table"], shape)
    except (KeyError, ValueError):
        return None


def store_table(registry, dataset: str, recon, shape, table: AcceleratorTable) -> None:
    """Best-effort persistence: serving must survive a read-only registry."""
    try:
        registry.put_table(
            table_key(dataset, recon.key, shape),
            {
                "table": table.flat,
                "shape": np.asarray(table.shape, dtype=np.int64),
                "x_digest": _x_digest(recon.x_hat),
            },
            meta={
                "dataset": dataset,
                "strategy_key": recon.key,
                "shape": [int(s) for s in table.shape],
            },
        )
    except OSError as e:
        _emit(
            logger,
            "accelerator.persist_failed",
            dataset=dataset,
            key=recon.key,
            reason=str(e),
        )
