"""The query service: fitted-once strategies serving ad-hoc traffic.

This is the layer between the optimize/measure/reconstruct engines and a
deployment.  A :class:`QueryService` owns datasets (data vectors with
privacy caps), a :class:`~repro.service.registry.StrategyRegistry` of
persisted strategies, and a
:class:`~repro.service.accountant.PrivacyAccountant` gating every
measurement.  The serving rules:

* **SELECT is amortized** — :meth:`QueryService.prepare` resolves a
  workload to a strategy via fingerprint lookup (in-memory memo → disk
  registry → cold ``HDMM.fit``, persisting the result).  Strategy
  selection is data-independent (paper Theorem 7), so it spends no
  budget no matter how often it runs.
* **MEASURE is accounted** — :meth:`QueryService.measure` debits the
  accountant under sequential composition *before any noise is drawn*;
  a sweep that does not fit the dataset's cap raises with the data
  untouched.  Measurement runs through the batched
  :meth:`~repro.core.hdmm.HDMM.run_batch` engine, so an (ε-grid x
  trials) sweep is one multi-RHS solve, and ``exact=True`` keeps the
  bit-for-bit equivalence to the sequential loop.
* **post-processing is free** — every measurement caches its most
  accurate reconstruction x̂, and :meth:`QueryService.query` answers any
  linear query inside the measured span from that cache with **zero**
  accountant debit (Definition 5's post-processing invariance).
  :meth:`QueryService.answer` routes a mixed batch: cache hits are
  answered free, and the misses are stacked into one ad-hoc union
  workload measured in a single accounted ``run_batch`` pass.
* **hits are O(1) in the domain** — a hit whose query decomposes into
  axis-aligned boxes (:func:`~repro.service.accelerator.range_spec_of`)
  is served from the reconstruction's summed-area
  :class:`~repro.service.accelerator.AcceleratorTable` by a vectorized
  corner gather (route ``"accelerator"``) instead of a structured
  matvec; tables are built lazily per (reconstruction, cube shape),
  invalidated with the reconstruction, and persisted through the
  registry under the PR 6 durability contracts.  The full routing
  order is **accelerator → cache → warm → direct → cold**.
* **small cold misses skip SELECT entirely** — an *unprepared* one-off
  miss batch at or below ``direct_miss_threshold`` query rows (touching
  at most ``DIRECT_MISS_SUPPORT_LIMIT`` domain cells) is not worth a
  full strategy fit: the service measures a sensitivity-1 selection
  matrix over the queries' joint support instead (Laplace on the touched
  cells only), reconstructs by transposition, and caches the result like
  any other measurement so repeated ad-hoc traffic on the same support
  becomes free hits.  A miss union that is already prepared (memo or
  registry — :meth:`QueryService.probe`) is measured through its fitted
  strategy instead: warm beats direct in the routing order, because the
  fitted measurement is more accurate and costs no fit either.
"""

from __future__ import annotations

import logging
import os
import time
from collections import Counter as _RouteCounter
from dataclasses import dataclass, field

import numpy as np

from ..core.hdmm import HDMM
from ..core.privacy import DEFAULT_DELTA
from ..core.reconstruct import resolves_to_pinv
from ..core.solvers import (
    cg_gram_solve,
    union_gram_inverse,
    union_gram_preconditioner,
    validate_epsilon,
    validate_positive_int,
)
from ..domain import Domain, SchemaMismatchError
from ..linalg import Dense, Matrix, VStack
from ..workload.logical import as_workload_matrix
from .accelerator import (
    AcceleratorTable,
    load_table,
    range_spec_of,
    store_table,
    strategy_spans_everything,
)
from . import faults
from .accountant import PrivacyAccountant
from .registry import StrategyRegistry
from ..obs.metrics import REGISTRY as _METRICS
from ..obs.trace import TRACER as _TRACER

logger = logging.getLogger(__name__)

__all__ = [
    "BatchResult",
    "MissRoute",
    "QueryAnswer",
    "QueryMiss",
    "QueryService",
    "Reconstruction",
    "SchemaMismatchError",
    "ServeResult",
    "in_measured_span",
    "joint_support",
    "selection_matrix",
]

#: Largest joint query support (touched cells) the cold-miss fast path
#: will measure directly.  Beyond it the selection strategy stops being
#: cheap — its dense span-check algebra scales with the support — and a
#: fitted strategy answers broad queries far more accurately than
#: noisy per-cell measurements anyway, so wide misses take the full
#: fitting path regardless of row count.
DIRECT_MISS_SUPPORT_LIMIT = 256

#: Keyword options :meth:`QueryService.answer` accepts for its miss
#: measurement.  The fitting path forwards them to ``measure`` →
#: ``run_batch``; the closed-form direct path has no solver to configure,
#: but still validates against this set so a misspelled option fails the
#: same way regardless of which path the batch size selects.
ANSWER_MEASURE_OPTIONS = frozenset(
    {
        "domain",
        "cache",
        "method",
        "warm_start",
        "exact",
        "atol",
        "btol",
        "maxiter",
        "rtol",
        "dense_pinv_limit",
        "mechanism",
        "delta",
    }
)

#: Default relative tolerance for the measured-span membership test.
#: Structured pseudo-inverse paths (notably the marginals algebra's
#: triangular solves) carry ~1e-7 of numerical noise on supported
#: queries, while out-of-span residuals are O(1) — 1e-6 separates the
#: two with orders of magnitude to spare on either side.
SPAN_TOL = 1e-6


class QueryMiss(LookupError):
    """No cached reconstruction can answer the query for free."""


def _as_query_matrix(q: Matrix | np.ndarray) -> Matrix:
    """Normalize an ad-hoc query to an implicit matrix (rows = queries).

    Accepts implicit matrices, raw 1-/2-D arrays, and compiled query
    plans (objects with ``to_workload_matrix()``, e.g. from
    :mod:`repro.api`).
    """
    if isinstance(q, Matrix):
        return q
    if hasattr(q, "to_workload_matrix"):
        return as_workload_matrix(q)[0]
    arr = np.asarray(q, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ValueError(f"query must be a matrix or 1-/2-D array, got {q!r}")
    return Dense(arr)


def selection_matrix(cols: np.ndarray, n: int) -> Matrix:
    """The sensitivity-1 selection matrix over the given support cells —
    the strategy the direct miss path measures (``S⁺ = Sᵀ``).  Shared
    with the planner so expected-error estimates are computed on exactly
    the matrix execution will measure."""
    import scipy.sparse as sp

    from ..linalg.structured import SparseMatrix

    return SparseMatrix(
        sp.csr_matrix(
            (np.ones(cols.size), (np.arange(cols.size), cols)),
            shape=(cols.size, n),
        )
    )


def joint_support(blocks: list[Matrix], n: int) -> np.ndarray:
    """Boolean mask of the domain cells touched by any query row.

    Row-at-a-time via ``rmatvec`` keeps the transient memory O(n):
    densifying a whole block first would allocate rows x n before a
    support limit can reject the batch.
    """
    support = np.zeros(n, dtype=bool)
    for Q in blocks:
        e = np.zeros(Q.shape[0])
        for i in range(Q.shape[0]):
            e[i] = 1.0
            support |= Q.rmatvec(e) != 0
            e[i] = 0.0
    return support


def in_measured_span(A: Matrix, q: Matrix | np.ndarray, tol: float = SPAN_TOL) -> bool:
    """Whether every row of ``q`` lies in the row space of strategy ``A``.

    Queries in ``rowspace(A)`` are exactly those the least-squares
    reconstruction answers with bounded, data-independent error — the
    queries a cached x̂ can serve for free.  The membership test projects
    ``qᵀ`` through ``A⁺A = (AᵀA)⁺(AᵀA)`` using the strategy's own
    structured machinery (structured pseudo-inverse, the two-term union
    Gram inverse, or batched CG — which converges to the pseudo-inverse
    solve because Krylov iterates stay in ``range(AᵀA)``), and accepts
    when the projection residual is below ``tol`` relative to the query
    norm.  Full-row-rank strategies (anything containing a scaled
    identity, e.g. every p-Identity product) span everything.
    """
    Q = _as_query_matrix(q)
    if Q.shape[1] != A.shape[1]:
        return False
    Qt = np.ascontiguousarray(Q.dense().T)  # n x k
    if resolves_to_pinv(A, "auto"):
        proj = A.pinv().matmat(A.matmat(Qt))
    else:
        B = A.gram().matmat(Qt)
        Ginv = union_gram_inverse(A)
        if Ginv is not None:
            proj = Ginv.matmat(B)
        else:
            # L ≥ 3 unions: the dominant-pair preconditioner cuts the CG
            # projection cost.  Its existence implies the Gram is positive
            # definite (full span), so preconditioning cannot perturb the
            # rank-deficient projection semantics.
            M = union_gram_preconditioner(A)
            proj = cg_gram_solve(A.gram(), B, preconditioner=M).x
    scale = np.maximum(np.abs(Qt).sum(axis=0), 1.0)
    return bool(np.max(np.abs(proj - Qt).max(axis=0) / scale) <= tol)


@dataclass
class ServeResult:
    """Outcome of one accounted measurement pass.

    ``answers``/``x_hat`` carry :meth:`~repro.core.hdmm.HDMM.run_batch`
    sweep shapes — ``(len(eps_grid), trials, ·)``.
    """

    answers: np.ndarray
    x_hat: np.ndarray
    key: str
    eps: np.ndarray
    trials: int
    charged: float
    loss: float | None
    from_registry: bool
    #: Trace this measurement was recorded under (None when tracing off).
    trace_id: str | None = None
    #: Noise mechanism that produced the measurements.
    mechanism: str = "laplace"


@dataclass
class QueryAnswer:
    """One served ad-hoc query.

    ``hit`` marks a zero-budget answer from a cached reconstruction;
    ``key`` names the strategy fingerprint whose measurement produced the
    reconstruction used; ``route`` records which serving path produced
    the answer (``"accelerator"`` / ``"cache"`` / ``"warm"`` /
    ``"direct"`` / ``"cold"``) — the provenance the declarative layer
    surfaces per query.  ``"accelerator"`` and ``"cache"`` are both free
    hits; they differ only in how ``Q @ x̂`` was evaluated (summed-area
    corner gather vs structured matvec).
    """

    values: np.ndarray
    hit: bool
    key: str | None = None
    route: str | None = None
    #: Trace this answer was served under (None when tracing off).
    trace_id: str | None = None
    #: Mechanism whose noise is in the answer ("laplace"/"gaussian" for
    #: fresh measurements; hits inherit the cached measurement's).
    mechanism: str = "laplace"


@dataclass
class MissRoute:
    """The routing decision for one miss batch — shared by the planner.

    ``route`` is ``"warm"`` (strategy already in memo/registry),
    ``"direct"`` (small unprepared batch with narrow support: selection
    measurement, no fit) or ``"cold"`` (fitting template).  For the
    direct route ``support_cols`` carries the joint-support cells the
    selection matrix will measure (possibly empty: an all-zero batch is
    answered free).  Computing a route never touches data or budget.
    """

    route: str
    key: str | None
    strategy: Matrix | None
    loss: float | None
    support_cols: np.ndarray | None = None


@dataclass
class BatchResult:
    """A served query batch: per-query answers plus the joint debit."""

    answers: list[QueryAnswer]
    charged: float
    hits: int
    misses: int
    trace_id: str | None = None


@dataclass
class Reconstruction:
    """A cached post-measurement reconstruction: the free-serving asset.

    ``key`` is the fingerprint of the strategy whose measurement produced
    ``x_hat``; ``eps`` the budget that measurement spent (higher ε =
    more accurate cache).  Queries in ``strategy``'s measured span are
    answered from ``x_hat`` at zero additional budget.
    """

    key: str
    strategy: Matrix
    x_hat: np.ndarray
    eps: float
    #: Mechanism of the measurement that produced x̂ (provenance only —
    #: serving from x̂ is post-processing either way).
    mechanism: str = "laplace"


@dataclass
class _DatasetState:
    x: np.ndarray
    reconstructions: dict[str, Reconstruction] = field(default_factory=dict)
    #: (reconstruction key, cube shape) → summed-area table over its x̂.
    #: Entries are dropped whenever the reconstruction is replaced.
    accel: dict = field(default_factory=dict)


class QueryService:
    """Serve linear queries from persisted strategies and cached x̂.

    Parameters
    ----------
    registry:
        Strategy store shared across processes; ``None`` keeps fitted
        strategies in memory only.
    accountant:
        Budget gate; ``None`` disables accounting (useful for synthetic
        benchmarks — never for real data).
    restarts, rng, fit_kwargs:
        Forwarded to :class:`~repro.core.hdmm.HDMM` for cold fits.
    template:
        Template-class tag folded into registry keys (strategies fitted
        under different templates never collide).
    direct_miss_threshold:
        Miss batches in :meth:`answer` totalling at most this many query
        rows (and touching at most :data:`DIRECT_MISS_SUPPORT_LIMIT`
        domain cells) take the cold-miss fast path: a direct
        sensitivity-1 selection measurement on the queries' joint support
        instead of a full strategy fit.  ``0`` disables the fast path
        (every miss batch runs the fitting template).
    """

    def __init__(
        self,
        registry: StrategyRegistry | str | os.PathLike | None = None,
        accountant: PrivacyAccountant | None = None,
        restarts: int = 25,
        rng: np.random.Generator | int | None = None,
        template: str = "opt_hdmm",
        span_tol: float = SPAN_TOL,
        fit_kwargs: dict | None = None,
        direct_miss_threshold: int = 32,
    ):
        # Every constructor argument is validated here, with the failure
        # naming the argument — a service wired up wrong must refuse to
        # start, not fail deep inside its first request (possibly after
        # budget was spent).  A path-like ``registry`` is convenience for
        # ``StrategyRegistry(path)``; the construction itself verifies the
        # directory exists (or is creatable) and is writable.
        if isinstance(registry, (str, os.PathLike)):
            registry = StrategyRegistry(registry)
        elif registry is not None and not isinstance(registry, StrategyRegistry):
            raise TypeError(
                "registry must be a StrategyRegistry, a directory path, or "
                f"None, got {type(registry).__name__}"
            )
        if accountant is not None and not isinstance(
            accountant, PrivacyAccountant
        ):
            raise TypeError(
                "accountant must be a PrivacyAccountant or None, got "
                f"{type(accountant).__name__} (to disable accounting — "
                "synthetic benchmarks only — pass None explicitly)"
            )
        self.registry = registry
        self.accountant = accountant
        self.restarts = validate_positive_int("restarts", restarts)
        self.rng = np.random.default_rng(rng)
        self.template = template
        span_tol = float(span_tol)
        if not np.isfinite(span_tol) or span_tol <= 0:
            raise ValueError(
                f"span_tol must be a finite positive float, got {span_tol!r}"
            )
        self.span_tol = span_tol
        self.fit_kwargs = dict(fit_kwargs or {})
        if (
            isinstance(direct_miss_threshold, bool)
            or not isinstance(direct_miss_threshold, (int, np.integer))
            or direct_miss_threshold < 0
        ):
            raise ValueError(
                "direct_miss_threshold must be a non-negative integer "
                f"(0 disables the direct fast path), got "
                f"{direct_miss_threshold!r}"
            )
        self.direct_miss_threshold = int(direct_miss_threshold)
        self._datasets: dict[str, _DatasetState] = {}
        self._prepared: dict[str, tuple[Matrix, float | None]] = {}

    # -- datasets ----------------------------------------------------------
    def add_dataset(
        self,
        name: str,
        x: np.ndarray,
        epsilon_cap: float | None = None,
        policy=None,
    ) -> None:
        """Register a data vector; ``epsilon_cap`` (a pure-ε cap) or
        ``policy`` (any :class:`~repro.privacy.policy.BudgetPolicy`, e.g.
        an (ε, δ) or ρ-zCDP cap) also registers its budget."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError(f"data vector must be 1-D, got shape {x.shape}")
        self._datasets[name] = _DatasetState(x=x)
        if epsilon_cap is not None or policy is not None:
            if self.accountant is None:
                raise ValueError(
                    "a budget cap was given but the service has no accountant"
                )
            self.accountant.register(name, epsilon_cap, policy=policy)

    def _dataset(self, name: str) -> _DatasetState:
        if name not in self._datasets:
            raise KeyError(f"unknown dataset {name!r}; call add_dataset first")
        return self._datasets[name]

    # -- SELECT (amortized, budget-free) ------------------------------------
    def probe(
        self,
        workload,
        domain: Domain | None = None,
    ) -> tuple[str, Matrix | None, float | None]:
        """Resolve a workload to a *warm* strategy without ever fitting.

        Returns ``(key, strategy, loss)`` with ``strategy=None`` when
        neither the in-memory memo nor the registry holds one — the
        planner's view of the routing table: a non-``None`` strategy
        means the workload serves without a cold ``HDMM.fit``.  A
        registry hit is memoized, so probing is idempotent and cheap.
        A persisted entry that fails its checksum is quarantined by the
        registry and surfaces here as a plain miss — the request falls
        through to a cold fit (which re-persists a good copy) instead of
        crashing.  Never touches data or budget.
        """
        workload, domain = as_workload_matrix(workload, domain)
        if self.registry is not None:
            key = self.registry.key_for(
                workload, domain=domain, template=self.template
            )
        else:
            from .fingerprint import workload_fingerprint

            key = workload_fingerprint(
                workload, domain=domain, template=self.template
            )
        if key in self._prepared:
            strategy, loss = self._prepared[key]
            return key, strategy, loss
        if self.registry is not None:
            record = self.registry.get(
                workload, domain=domain, template=self.template
            )
            if record is not None:
                self._prepared[key] = (record.strategy, record.loss)
                return key, record.strategy, record.loss
        return key, None, None

    def prepare(
        self,
        workload,
        domain: Domain | None = None,
        deadline=None,
    ) -> tuple[str, Matrix, float | None, bool]:
        """Resolve a workload to a serve-ready strategy.

        Returns ``(key, strategy, loss, from_registry)``.  Resolution
        order: in-memory memo → registry → cold fit (persisted back to
        the registry).  Never touches data or budget.

        ``deadline`` (duck-typed, see :mod:`repro.server.deadline`) is
        consulted at the ``fit`` stage boundary — on entry, so a request
        with no fit budget left is refused before the optimizer starts,
        and on exit, so a fit that blew the budget is attributed to the
        fit stage (the strategy is still memoized and persisted: the
        *next* request gets it warm).
        """
        workload, domain = as_workload_matrix(workload, domain)
        key, strategy, loss = self.probe(workload, domain=domain)
        if strategy is not None:
            return key, strategy, loss, True
        if deadline is not None:
            deadline.check("fit")
        mech = HDMM(restarts=self.restarts, rng=self.rng)
        t0 = time.perf_counter()
        with _TRACER.span("select.fit", key=key[:12]):
            # Latency/kill fault point for the serving edge's chaos tests
            # (a slow or dying optimizer, not a broken one).
            faults.check("engine.fit")
            mech.fit(workload, **self.fit_kwargs)
        loss = mech.result.loss
        logger.info(
            "cold-fitted strategy %s in %.3fs (loss %s)",
            key[:12],
            time.perf_counter() - t0,
            loss,
        )
        if _METRICS.enabled:
            _METRICS.counter("service.cold_fits_total").inc()
        if self.registry is not None:
            self.registry.put(
                workload,
                mech.strategy,
                loss=loss,
                domain=domain,
                template=self.template,
            )
        self._prepared[key] = (mech.strategy, loss)
        if deadline is not None:
            deadline.check("fit")  # exit check: attribute a slow fit here
        return key, mech.strategy, loss, False

    # -- MEASURE (accounted) -------------------------------------------------
    def measure(
        self,
        dataset: str,
        workload,
        eps: float | np.ndarray,
        trials: int = 1,
        rng: np.random.Generator | int | None = None,
        domain: Domain | None = None,
        stage: str = "",
        cache: bool = True,
        deadline=None,
        mechanism: str = "laplace",
        delta: float | None = None,
        **run_kwargs,
    ) -> ServeResult:
        """Run an accounted (ε-grid x trials) measurement sweep.

        The accountant is debited ``trials * Σ eps`` (sequential
        composition) *before* any noise is drawn; on
        :class:`~repro.service.accountant.BudgetExceededError` the data
        is untouched.  ``mechanism="gaussian"`` draws Gaussian noise
        calibrated through zCDP at ``delta`` (default
        :data:`~repro.core.privacy.DEFAULT_DELTA`) and debits a v2
        record carrying the per-trial δ and ρ totals alongside the same
        ε.  Extra keyword arguments (``exact``,
        ``warm_start``, ``method``, solver tolerances) forward to
        :meth:`~repro.core.hdmm.HDMM.run_batch`, so
        ``exact=True, warm_start=False`` serves answers bit-identical to
        the sequential single-shot loop at the same seeds.

        With ``cache=True`` the reconstruction of the highest-ε first
        trial is kept for zero-budget :meth:`query` serving — unless a
        higher-ε (more accurate) reconstruction for the same strategy is
        already cached, which is retained instead.
        """
        with _TRACER.span("service.measure", dataset=dataset, stage=stage):
            result = self._measure_impl(
                dataset,
                workload,
                eps,
                trials=trials,
                rng=rng,
                domain=domain,
                stage=stage,
                cache=cache,
                deadline=deadline,
                mechanism=mechanism,
                delta=delta,
                **run_kwargs,
            )
            result.trace_id = _TRACER.current_trace_id()
        if _METRICS.enabled:
            _METRICS.counter("service.measures_total", dataset=dataset).inc()
        return result

    def _measure_impl(
        self,
        dataset: str,
        workload,
        eps: float | np.ndarray,
        trials: int = 1,
        rng: np.random.Generator | int | None = None,
        domain: Domain | None = None,
        stage: str = "",
        cache: bool = True,
        deadline=None,
        mechanism: str = "laplace",
        delta: float | None = None,
        **run_kwargs,
    ) -> ServeResult:
        from ..privacy.mechanisms import get_mechanism

        ds = self._dataset(dataset)
        mech_obj = get_mechanism(mechanism, delta)
        workload, domain = as_workload_matrix(workload, domain)
        eps_arr = np.atleast_1d(validate_epsilon(eps))
        if eps_arr.ndim != 1:
            raise ValueError(
                f"eps must be a scalar or 1-D grid, got shape {eps_arr.shape}"
            )
        trials = validate_positive_int("trials", trials)
        if mech_obj.name == "laplace":
            # the historical scalar debit — v1 records stay byte-identical
            charge_eps: float | np.ndarray = float(eps_arr.sum()) * trials
            total = charge_eps
        else:
            # per-trial grid: the Gaussian debit's δ and ρ compose per
            # release (Σρ_j is tighter than converting the summed ε)
            charge_eps = np.ascontiguousarray(np.repeat(eps_arr, trials))
            total = float(np.sum(charge_eps))
        # Every cheap precondition runs before the debit: a programming
        # error (wrong dataset/workload pairing) must not burn budget.
        if workload.shape[1] != ds.x.shape[0]:
            raise SchemaMismatchError(
                f"workload domain size {workload.shape[1]} does not match "
                f"dataset {dataset!r}, whose data vector has length "
                f"{ds.x.shape[0]}"
                + (
                    f" (expected domain {dict(zip(domain.attributes, domain.sizes))})"
                    if domain is not None
                    else ""
                )
            )

        if deadline is not None:
            deadline.check("warm")  # registry probe/load stage boundary
        with _TRACER.span("select.prepare"):
            key, strategy, loss, from_registry = self.prepare(
                workload, domain=domain, deadline=deadline
            )
        if self.accountant is not None:
            if deadline is not None:
                # The ε-spend fence (see repro.server.deadline): the last
                # budget check a deadline can ever fail happens *here*,
                # while refusal is still free.  begin_commit() flips the
                # deadline into possibly-committed before the WAL append
                # inside charge(); a cap refusal or lock timeout below
                # raises strictly before that append, and the server maps
                # those exceptions explicitly, so the conservative flag is
                # never read on that path.
                deadline.check("charge")
                deadline.begin_commit()
            with _TRACER.span("accountant.charge", epsilon=total):
                self.accountant.charge(
                    dataset,
                    charge_eps,
                    stage=stage or f"measure:{key[:8]}",
                    mechanism=mech_obj.name,
                    delta=getattr(mech_obj, "delta", None),
                )
            if deadline is not None:
                deadline.mark_committed(total)

        mech = HDMM(restarts=self.restarts, rng=self.rng)
        mech.workload = workload
        mech.strategy = strategy
        with _TRACER.span(
            "measure.run_batch", grid=len(eps_arr), trials=trials
        ):
            # Post-commit kill/latency point: a crash or stall here is the
            # burned-budget case the WAL invariant exists for.
            faults.check("engine.measure.noise")
            answers, x_hat = mech.run_batch(
                ds.x,
                eps_arr,
                trials=trials,
                rng=rng,
                return_data_vector=True,
                mechanism=mech_obj.name,
                delta=getattr(mech_obj, "delta", DEFAULT_DELTA),
                **run_kwargs,
            )
        if cache:
            best = int(np.argmax(eps_arr))
            existing = ds.reconstructions.get(key)
            if existing is None or float(eps_arr[best]) >= existing.eps:
                ds.reconstructions[key] = Reconstruction(
                    key=key,
                    strategy=strategy,
                    x_hat=np.ascontiguousarray(x_hat[best, 0]),
                    eps=float(eps_arr[best]),
                    mechanism=mech_obj.name,
                )
                self._invalidate_tables(ds, key)
        self._refresh_persisted_solver_state(key, strategy)
        return ServeResult(
            answers=answers,
            x_hat=x_hat,
            key=key,
            eps=eps_arr,
            trials=trials,
            charged=total,
            loss=loss,
            from_registry=from_registry,
            mechanism=mech_obj.name,
        )

    def _refresh_persisted_solver_state(self, key: str, strategy: Matrix) -> None:
        """Re-persist a registered strategy whose recycled Ritz basis has
        grown since it was last written.

        The basis is harvested *during* reconstruction — after ``put``
        serialized the entry — so without this hook every fresh process
        re-harvests from scratch.  ``persisted_recycle_size`` is stamped
        on the strategy by the registry at write and load time; a
        strategy that never went through this registry carries no stamp
        and is left alone.  Best-effort: persistence failures must not
        fail the measurement that triggered them.
        """
        if self.registry is None:
            return
        rec = strategy.cache_get("gram_recycle_state")
        persisted = strategy.cache_get("persisted_recycle_size")
        if rec is None or persisted is None or rec.size <= persisted:
            return
        try:
            self.registry.refresh_solver_state(key, strategy)
        except OSError:
            pass

    # -- free post-processing ------------------------------------------------
    def _find_cover(
        self,
        ds: _DatasetState,
        Q: Matrix,
        fingerprint: str | None = None,
    ) -> Reconstruction | None:
        """Newest cached reconstruction whose measured span contains Q.

        Span membership is established as cheaply as possible: the
        structural full-rank certificate
        (:func:`~repro.service.accelerator.strategy_spans_everything`)
        first — a certified strategy spans every query, no algebra at
        all — then, for queries carrying a compile-time ``fingerprint``,
        a per-(strategy, fingerprint) memo of the projection verdict, so
        a planning pass or repeated traffic pays the ~0.25 ms
        :func:`in_measured_span` projection at most once per query shape.
        The certificate choosing a reconstruction never changes *which*
        one is chosen: certified ⟹ the projection test would accept too.
        """
        for recon in reversed(list(ds.reconstructions.values())):
            if Q.shape[1] != recon.strategy.shape[1]:
                continue
            if strategy_spans_everything(recon.strategy):
                return recon
            if fingerprint is not None:
                memo_key = f"span:{fingerprint}"
                memo = recon.strategy.cache_get(memo_key)
                if memo is None:
                    memo = recon.strategy.cache_set(
                        memo_key,
                        in_measured_span(recon.strategy, Q, tol=self.span_tol),
                    )
                if memo:
                    return recon
                continue
            if in_measured_span(recon.strategy, Q, tol=self.span_tol):
                return recon
        return None

    def _serve_hit(
        self, dataset: str, ds: _DatasetState, Q: Matrix, recon: Reconstruction
    ) -> QueryAnswer:
        """Answer a free hit, via the summed-area table when the query
        decomposes into boxes, else the structured matvec.  Both evaluate
        exactly ``Q @ x̂``."""
        spec = range_spec_of(Q)
        if spec is not None:
            table = self._accel_table(dataset, ds, recon, spec.shape)
            return QueryAnswer(
                values=table.answer(spec),
                hit=True,
                key=recon.key,
                route="accelerator",
                mechanism=recon.mechanism,
            )
        values = np.asarray(Q.matvec(recon.x_hat)).reshape(-1)
        return QueryAnswer(
            values=values, hit=True, key=recon.key, route="cache",
            mechanism=recon.mechanism,
        )

    def _accel_table(
        self, dataset: str, ds: _DatasetState, recon: Reconstruction, shape
    ) -> AcceleratorTable:
        """The (reconstruction, cube shape) summed-area table: in-memory
        cache → registry (checksum-verified; corrupt or stale entries
        come back ``None``) → build from x̂ and persist best-effort."""
        k = (recon.key, shape)
        table = ds.accel.get(k)
        if table is None:
            if self.registry is not None:
                table = load_table(self.registry, dataset, recon, shape)
            if table is None:
                table = AcceleratorTable(recon.x_hat, shape)
                if self.registry is not None:
                    store_table(self.registry, dataset, recon, shape, table)
            ds.accel[k] = table
        return table

    def _invalidate_tables(self, ds: _DatasetState, key: str) -> None:
        """Drop in-memory tables of a replaced reconstruction.  Persisted
        tables self-invalidate: they carry the x̂ content digest, so a
        stale load is ignored and overwritten on the next eligible hit."""
        for k in [k for k in ds.accel if k[0] == key]:
            del ds.accel[k]

    def covering_key(self, dataset: str, q: Matrix | np.ndarray) -> str | None:
        """Fingerprint of the cached reconstruction that would answer ``q``
        for free, or ``None`` — the planner's free-hit probe.  Spends no
        budget and records nothing."""
        return self.probe_hit(dataset, q)[0]

    def probe_hit(
        self,
        dataset: str,
        q: Matrix | np.ndarray,
        fingerprint: str | None = None,
    ) -> tuple[str | None, str | None]:
        """The planner's hit probe: ``(covering key, serving route)``.

        ``(None, None)`` when no cached reconstruction spans ``q``; else
        the reconstruction's key and the route :meth:`answer` would use
        for it (``"accelerator"`` for box-decomposable queries,
        ``"cache"`` otherwise) — keeping planned routes equal to executed
        routes by construction.  ``fingerprint`` (from a compiled query)
        memoizes the span projection across planning passes.  Spends no
        budget and records nothing.
        """
        Q = _as_query_matrix(q)
        recon = self._find_cover(
            self._dataset(dataset), Q, fingerprint=fingerprint
        )
        if recon is None:
            return None, None
        route = "accelerator" if range_spec_of(Q) is not None else "cache"
        return recon.key, route

    def cached_reconstruction(
        self, dataset: str, key: str
    ) -> Reconstruction | None:
        """The cached :class:`Reconstruction` under ``key``, if any."""
        return self._dataset(dataset).reconstructions.get(key)

    def route_misses(self, blocks: list[Matrix]) -> MissRoute:
        """Decide the serving path of a miss batch — the single routing
        policy both :meth:`answer` and the declarative planner consult,
        so a plan's routes are by construction what execution does.

        Cheapest first: a **warm** strategy for the exact miss union
        (memo or registry — more accurate than per-cell measurement,
        never fits) → the **direct** selection measurement for a small
        unprepared batch whose joint support fits
        :data:`DIRECT_MISS_SUPPORT_LIMIT` → the **cold** fitting
        template.  Budget-free and side-effect-free apart from memoizing
        a registry hit.
        """
        key = None
        # Warm is impossible with no registry and an empty memo — skip
        # the canonicalize-and-hash of the miss union (O(rows x n) for
        # dense ad-hoc queries) that probing would spend finding out.
        if self.registry is not None or self._prepared:
            W_miss = blocks[0] if len(blocks) == 1 else VStack(blocks)
            key, strategy, loss = self.probe(W_miss)
            if strategy is not None:
                return MissRoute("warm", key, strategy, loss)
        rows = sum(Q.shape[0] for Q in blocks)
        if 0 < rows <= self.direct_miss_threshold:
            cols = np.flatnonzero(joint_support(blocks, blocks[0].shape[1]))
            if cols.size <= DIRECT_MISS_SUPPORT_LIMIT:
                return MissRoute("direct", None, None, None, cols)
        return MissRoute("cold", key, None, None)

    def query(
        self,
        dataset: str,
        q: Matrix | np.ndarray,
        eps: float | None = None,
        rng: np.random.Generator | int | None = None,
        stage: str = "",
        **run_kwargs,
    ) -> QueryAnswer:
        """Answer a single linear query — free when cached, else measured.

        Scans the dataset's reconstructions newest-first and answers from
        the first whose measured span contains the query (Definition 5
        post-processing: no accountant debit).  On a cache miss the query
        delegates to the same miss-batching path as :meth:`answer` — so a
        cold single query benefits from the direct-measure fast path and
        its support-keyed caching exactly like a batch of one.  With no
        ``eps``, a miss raises :class:`QueryMiss` before touching the
        budget — callers decide whether to spend.
        """
        ds = self._dataset(dataset)
        Q = _as_query_matrix(q)
        recon = self._find_cover(ds, Q)
        if recon is not None:
            track = _METRICS.enabled
            if not track and not _TRACER.enabled:
                return self._serve_hit(dataset, ds, Q, recon)
            with _TRACER.span("service.query", dataset=dataset):
                t0 = time.perf_counter() if track else 0.0
                with _TRACER.span("serve.hit"):
                    qa = self._serve_hit(dataset, ds, Q, recon)
                if track:
                    dt_ms = (time.perf_counter() - t0) * 1e3
                    if qa.route == "accelerator":
                        _METRICS.histogram(
                            "accelerator.gather_ms", dataset=dataset
                        ).observe(dt_ms)
                    _METRICS.counter(
                        "service.answers_total", dataset=dataset, route=qa.route
                    ).inc()
                    if qa.key is not None:
                        _METRICS.counter(
                            "service.support_hits", dataset=dataset, key=qa.key
                        ).inc()
                qa.trace_id = _TRACER.current_trace_id()
            return qa
        if eps is None:
            raise QueryMiss(
                f"no cached reconstruction of dataset {dataset!r} spans the "
                "query (pass eps= to measure it)"
            )
        batch = self.answer(
            dataset, [Q], eps=eps, rng=rng, stage=stage, **run_kwargs
        )
        return batch.answers[0]

    def _measure_misses_direct(
        self,
        dataset: str,
        blocks: list[Matrix],
        eps: float,
        rng: np.random.Generator | int | None,
        stage: str,
        cache: bool = True,
        cols: np.ndarray | None = None,
        deadline=None,
        mechanism: str = "laplace",
        delta: float | None = None,
    ) -> tuple[str, np.ndarray, float] | None:
        """Cold-miss fast path: direct measurement of the queries' support.

        One-off ad-hoc misses below :attr:`direct_miss_threshold` skip
        the fitting template entirely.  The strategy is the sensitivity-1
        selection matrix ``S`` of the miss queries' joint support (a
        weighted identity restricted to the touched cells), measured once
        under ``eps``; its pseudo-inverse is ``Sᵀ``, so RECONSTRUCT is a
        scatter.  Returns ``(key, x̂, charged)`` and caches x̂ under a
        support-derived key so identical ad-hoc traffic later hits for
        free — ``in_measured_span`` accepts exactly the queries supported
        on the measured cells.  Returns ``None`` when the joint support
        exceeds :data:`DIRECT_MISS_SUPPORT_LIMIT` (a few wide queries can
        touch the whole domain; measuring — and later span-checking — a
        domain-sized selection would cost domain-sized dense algebra, and
        a fitted strategy answers broad queries more accurately): the
        caller then takes the full fitting path.
        """
        import hashlib

        import scipy.sparse as sp

        from ..linalg.structured import SparseMatrix
        from ..privacy.mechanisms import get_mechanism

        mech_obj = get_mechanism(mechanism, delta)
        charged = float(validate_epsilon(eps, "eps"))
        ds = self._dataset(dataset)
        n = ds.x.shape[0]
        if cols is None:
            cols = np.flatnonzero(joint_support(blocks, n))
        if cols.size > DIRECT_MISS_SUPPORT_LIMIT:
            return None
        key = f"direct:{hashlib.sha256(cols.tobytes()).hexdigest()[:16]}"
        if cols.size == 0:
            # All-zero queries: the answer is the constant 0, independent
            # of the data — pure post-processing.  Cache the (exact,
            # budget-free) empty reconstruction so identical traffic
            # later hits in query() instead of re-entering this path.
            if cache:
                S_empty = SparseMatrix(sp.csr_matrix((0, n)))
                ds.reconstructions.setdefault(
                    key,
                    Reconstruction(
                        key=key, strategy=S_empty, x_hat=np.zeros(n), eps=np.inf
                    ),
                )
            return key, np.zeros(n), 0.0
        if self.accountant is not None:
            if deadline is not None:
                # Same ε-spend fence as _measure_impl: last free refusal
                # point, then the debit is possibly durable.
                deadline.check("charge")
                deadline.begin_commit()
            self.accountant.charge(
                dataset,
                charged,
                stage=stage or "answer:direct",
                mechanism=mech_obj.name,
                delta=getattr(mech_obj, "delta", None),
            )
            if deadline is not None:
                deadline.mark_committed(charged)
        S = selection_matrix(cols, n)
        faults.check("engine.measure.noise")
        y = mech_obj.measure(S, ds.x, charged, rng)
        x_hat = np.zeros(n)
        x_hat[cols] = y  # S⁺ = Sᵀ for a selection matrix
        if cache:
            existing = ds.reconstructions.get(key)
            if existing is None or charged >= existing.eps:
                ds.reconstructions[key] = Reconstruction(
                    key=key, strategy=S, x_hat=x_hat, eps=charged,
                    mechanism=mech_obj.name,
                )
                self._invalidate_tables(ds, key)
        return key, x_hat, charged

    def answer(
        self,
        dataset: str,
        queries,
        eps: float | None = None,
        rng: np.random.Generator | int | None = None,
        stage: str = "",
        deadline=None,
        **run_kwargs,
    ) -> BatchResult:
        """Serve a batch of ad-hoc queries: free hits, one accounted pass
        for the misses.

        Every query answerable from a cached reconstruction is served
        with zero debit.  The misses are stacked into one union workload
        and routed through the cheapest remaining path, in order:

        1. **warm strategy** — if the miss union is already prepared (in
           the memo or the registry), it is measured through that fitted
           strategy: more accurate than per-cell measurement, and never
           triggers a fit;
        2. **direct measurement** — an unprepared miss batch totalling at
           most :attr:`direct_miss_threshold` query rows whose joint
           support does not exceed :data:`DIRECT_MISS_SUPPORT_LIMIT`
           cells takes the cold-miss fast path
           (:meth:`_measure_misses_direct`): a selection measurement on
           the joint query support, no strategy fit, with solver-related
           keyword arguments not applicable (the direct reconstruction
           is closed-form and deterministic);
        3. **cold fit** — everything else runs the fitting template and
           is measured through one
           :meth:`~repro.core.hdmm.HDMM.run_batch` call under ``eps``.
        Either way sequential composition debits ``eps`` once for the
        whole miss batch — jointly measured, jointly accounted.  ``eps``
        must be a scalar and the pass runs one trial: each miss query
        gets exactly one answer, so there is no grid to choose from.
        With no ``eps`` and at least one miss, raises :class:`QueryMiss`
        before touching the budget.
        """
        if eps is not None and np.ndim(eps) != 0:
            raise ValueError(
                "answer() measures misses in a single (eps, trial) cell; "
                f"eps must be a scalar, got shape {np.shape(eps)}"
            )
        if "trials" in run_kwargs:
            raise ValueError(
                "answer() does not accept trials; use measure() for sweeps"
            )
        ds = self._dataset(dataset)
        mats = [_as_query_matrix(q) for q in queries]
        n = ds.x.shape[0]
        for Q in mats:
            if Q.shape[1] != n:
                raise SchemaMismatchError(
                    f"query over {Q.shape[1]} domain cells does not match "
                    f"dataset {dataset!r}, whose data vector has length {n}"
                )
        t0 = time.perf_counter() if _METRICS.enabled else 0.0
        with _TRACER.span(
            "service.answer", dataset=dataset, queries=len(mats)
        ):
            result = self._answer_impl(
                dataset, ds, mats, eps, rng, stage, run_kwargs,
                deadline=deadline,
            )
            tid = _TRACER.current_trace_id()
        if tid is not None:
            result.trace_id = tid
            for qa in result.answers:
                qa.trace_id = tid
        if _METRICS.enabled:
            by_route = _RouteCounter(
                (qa.route, qa.key) for qa in result.answers
            )
            for (route, key), count in by_route.items():
                _METRICS.counter(
                    "service.answers_total", dataset=dataset, route=route
                ).inc(count)
                if key is not None and route in ("accelerator", "cache"):
                    _METRICS.counter(
                        "service.support_hits", dataset=dataset, key=key
                    ).inc(count)
            _METRICS.histogram("service.answer_ms", dataset=dataset).observe(
                (time.perf_counter() - t0) * 1e3
            )
        return result

    def _answer_impl(
        self,
        dataset: str,
        ds: _DatasetState,
        mats: list[Matrix],
        eps: float | None,
        rng: np.random.Generator | int | None,
        stage: str,
        run_kwargs: dict,
        deadline=None,
    ) -> BatchResult:
        answers: list[QueryAnswer | None] = [None] * len(mats)
        miss_idx: list[int] = []
        with _TRACER.span("serve.hits") as hits_span:
            for i, Q in enumerate(mats):
                recon = self._find_cover(ds, Q)
                if recon is not None:
                    answers[i] = self._serve_hit(dataset, ds, Q, recon)
                else:
                    miss_idx.append(i)
            if hits_span is not None:
                hits_span.attrs["hits"] = len(mats) - len(miss_idx)

        charged = 0.0
        if miss_idx:
            if eps is None:
                raise QueryMiss(
                    f"{len(miss_idx)} queries miss the reconstruction cache "
                    "and no eps was provided to measure them"
                )
            blocks = [mats[i] for i in miss_idx]
            if deadline is not None:
                deadline.check("plan")  # routing-decision stage boundary
            with _TRACER.span("plan.route", misses=len(miss_idx)) as rspan:
                mroute = self.route_misses(blocks)
                if rspan is not None:
                    rspan.attrs["route"] = mroute.route
            if mroute.route == "direct":
                # Cold-miss fast path: measure the joint query support
                # directly instead of fitting a strategy for a one-off.
                # Solver-related run_kwargs (method=, exact=, ...) do not
                # apply here — the direct reconstruction is closed-form
                # (S⁺ = Sᵀ) and deterministic by construction, a strictly
                # stronger contract than any solver option requests — but
                # unknown option names must fail just like on the fitting
                # path, not vanish because the batch happened to be small.
                unknown = set(run_kwargs) - ANSWER_MEASURE_OPTIONS
                if unknown:
                    raise TypeError(
                        f"answer() got unknown measure options {sorted(unknown)}; "
                        f"valid options are {sorted(ANSWER_MEASURE_OPTIONS)}"
                    )
                from ..privacy.mechanisms import get_mechanism

                mech_name = get_mechanism(
                    run_kwargs.get("mechanism", "laplace"),
                    run_kwargs.get("delta"),
                ).name
                with _TRACER.span("serve.measure", route="direct"):
                    key, x_hat, charged = self._measure_misses_direct(
                        dataset,
                        blocks,
                        eps,
                        rng,
                        stage,
                        cache=run_kwargs.get("cache", True),
                        cols=mroute.support_cols,
                        deadline=deadline,
                        mechanism=run_kwargs.get("mechanism", "laplace"),
                        delta=run_kwargs.get("delta"),
                    )
                for i in miss_idx:
                    values = np.asarray(mats[i].matvec(x_hat)).reshape(-1)
                    answers[i] = QueryAnswer(
                        values=values, hit=False, key=key, route="direct",
                        mechanism=mech_name,
                    )
                return BatchResult(
                    answers=list(answers),  # type: ignore[arg-type]
                    charged=charged,
                    hits=len(mats) - len(miss_idx),
                    misses=len(miss_idx),
                )
            W_miss = blocks[0] if len(blocks) == 1 else VStack(blocks)
            with _TRACER.span("serve.measure", route=mroute.route):
                result = self.measure(
                    dataset,
                    W_miss,
                    eps,
                    rng=rng,
                    stage=stage or "answer:misses",
                    deadline=deadline,
                    **run_kwargs,
                )
            charged = result.charged
            flat = np.asarray(result.answers).reshape(-1)
            offset = 0
            for i in miss_idx:
                rows = mats[i].shape[0]
                answers[i] = QueryAnswer(
                    values=flat[offset : offset + rows],
                    hit=False,
                    key=result.key,
                    route="warm" if result.from_registry else "cold",
                    mechanism=result.mechanism,
                )
                offset += rows
        return BatchResult(
            answers=list(answers),  # type: ignore[arg-type]
            charged=charged,
            hits=len(mats) - len(miss_idx),
            misses=len(miss_idx),
        )

    def reconstructions(self, dataset: str) -> list[str]:
        """Fingerprints with a cached x̂ for ``dataset`` (oldest first)."""
        return list(self._dataset(dataset).reconstructions)

    def __repr__(self) -> str:
        return (
            f"QueryService(datasets={sorted(self._datasets)}, "
            f"prepared={len(self._prepared)}, registry={self.registry!r})"
        )
