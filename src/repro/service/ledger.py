"""Append-only, checksummed write-ahead ledger for the privacy accountant.

An overdrawn privacy budget is not a retryable error — once noise
calibrated to an unauthorized ε has been released, no recovery code can
un-release it.  So the accountant's durable state follows the classic
WAL discipline with the mechanism, not the database, as the thing being
protected: **a debit is fsync'd to the ledger before any noise is
drawn**.  A crash after the fsync wastes at most one debit's worth of
budget (conservative, safe); a crash before it loses a record for which
no measurement ever happened (also safe).  At no kill-point can the
replayed spend be *less* than the noise actually released.

WAL format
----------
One JSON object per line (JSONL), append-only::

    {"crc": "9f…16hex", "dataset": "adult", "epsilon": 0.5,
     "kind": "debit", "composition": "sequential", "stage": "…", "v": 1}

``crc`` is the first 16 hex chars of SHA-256 over the record's canonical
JSON (sorted keys, compact separators) *without* the crc field.  Two
record kinds: ``"register"`` (dataset + cap) and ``"debit"``
(dataset + epsilon + composition + stage).

Recovery semantics
------------------
:meth:`WriteAheadLedger.read_new` replays records in order and stops at
the first line that is incomplete (no trailing newline), unparsable, or
checksum-mismatched — everything from there on is the **torn tail** a
crashed writer left behind, and only the committed prefix counts.  The
tail is physically truncated the next time a writer holds the lock
(:meth:`WriteAheadLedger.truncate_torn_tail`), so the file never grows
garbage in the middle.

Lock protocol
-------------
Every read-check-append cycle runs under an exclusive ``flock`` on a
``<path>.lock`` sidecar (the WAL file itself is never the lock target —
O_APPEND re-opens must not drop a held lock).  The accountant's
compare-and-debit is: **lock → replay other writers' tail → check cap →
append+fsync → apply in memory → unlock**, which makes the cap check and
the debit one atomic step across processes: two accountants sharing a
ledger path can never jointly overdraw a cap.  Within a process, a
``threading.RLock`` serializes threads first, so the flock only
arbitrates between processes.  On platforms without ``fcntl`` the file
lock degrades to thread-only safety (single-process use).

By default acquisition blocks indefinitely — correct for the library's
batch callers, where the lock holder is always making progress.  A
*serving* caller holds a request deadline and must not park a thread
behind a stuck or dead-slow peer: constructing the ledger with
``lock_timeout`` switches acquisition to non-blocking attempts under
jittered backoff (:mod:`repro.server.retry`) and raises
:class:`LockTimeoutError` — a retryable condition, mapped to 503 at the
serving edge — once the timeout elapses.  A lock timeout can only happen
*before* the read-check-append cycle begins, so it never strands a
committed debit.
"""

from __future__ import annotations

import contextlib
import errno as _errno
import hashlib
import json
import logging
import os
import time

try:
    import fcntl
except ImportError:  # non-POSIX platform — single-process use only
    fcntl = None

from ..obs.metrics import REGISTRY as _METRICS
from ..server.retry import RetryPolicy as _RetryPolicy
from . import faults

__all__ = [
    "LockTimeoutError",
    "TornRecordError",
    "WriteAheadLedger",
    "decode_line",
    "encode_record",
]

logger = logging.getLogger(__name__)

_CRC_CHARS = 16
LEDGER_VERSION = 1

#: Backoff schedule for timed lock acquisition: decorrelated jitter up
#: front (so colliding lockers spread out), then steady cap-paced polls.
_LOCK_RETRY_POLICY = _RetryPolicy(retries=64, base=0.0005, cap=0.01)

#: ``flock(LOCK_NB)`` signals "held by someone else" with either of
#: these depending on the platform.
_LOCK_HELD_ERRNOS = frozenset({_errno.EAGAIN, _errno.EACCES})


class TornRecordError(ValueError):
    """A ledger line failed to parse or verify — the torn-tail marker."""


class LockTimeoutError(TimeoutError):
    """Timed acquisition of the ledger's cross-process lock gave up.

    Raised only when the ledger was constructed with ``lock_timeout``;
    always *before* any record was read or written, so retrying is safe
    and spend state is untouched.
    """

    def __init__(self, path: str, timeout: float, waited: float):
        self.path = str(path)
        self.timeout = float(timeout)
        self.waited = float(waited)
        super().__init__(
            f"could not acquire ledger lock {self.path!r} within "
            f"{self.timeout:g}s (waited {self.waited:.3f}s)"
        )


def _canonical(record: dict) -> bytes:
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode()


def encode_record(record: dict) -> bytes:
    """Serialize one record to its checksummed JSONL line (with newline)."""
    crc = hashlib.sha256(_canonical(record)).hexdigest()[:_CRC_CHARS]
    return _canonical({**record, "crc": crc}) + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse and verify one ledger line; :class:`TornRecordError` on any
    damage (bad JSON, missing/forged crc) — the caller treats the rest of
    the file as a torn tail."""
    try:
        record = json.loads(line)
    except ValueError as e:
        raise TornRecordError(f"unparsable ledger line: {e}") from None
    if not isinstance(record, dict):
        raise TornRecordError(f"ledger line is not an object: {record!r}")
    crc = record.pop("crc", None)
    expect = hashlib.sha256(_canonical(record)).hexdigest()[:_CRC_CHARS]
    if crc != expect:
        raise TornRecordError(
            f"ledger record checksum mismatch: stored {crc!r}, computed {expect!r}"
        )
    return record


class WriteAheadLedger:
    """The accountant's durable half: an append-only checksummed JSONL file.

    The ledger tracks ``offset`` — the byte position up to which *this
    process* has replayed committed records — so :meth:`read_new` returns
    exactly the records other writers (or a pre-crash self) appended
    since, and :meth:`append` writes land after them.
    """

    def __init__(self, path: str, lock_timeout: float | None = None):
        self.path = str(path)
        self.offset = 0  # bytes of committed records consumed so far
        self._torn_at: int | None = None  # file offset of a detected torn tail
        if lock_timeout is not None and not lock_timeout > 0:
            raise ValueError(
                f"lock_timeout must be positive or None, got {lock_timeout!r}"
            )
        self.lock_timeout = lock_timeout
        parent = os.path.dirname(os.path.abspath(self.path))
        if not os.path.isdir(parent):
            raise ValueError(
                f"ledger directory {parent!r} does not exist — create it "
                "before opening a write-ahead ledger there"
            )

    @property
    def torn_offset(self) -> int | None:
        """File offset of the torn tail the last read detected (``None``
        when the file ended on a committed record) — the read-only spend
        view (:mod:`repro.obs.spend`) reports it without truncating."""
        return self._torn_at

    # -- locking -------------------------------------------------------------
    @contextlib.contextmanager
    def locked(self):
        """Exclusive cross-process lock for read-check-append cycles."""
        if fcntl is None:
            yield
            return
        faults.check("ledger.lock")
        with open(self.path + ".lock", "a") as lock:
            if self.lock_timeout is None:
                fcntl.flock(lock, fcntl.LOCK_EX)
            else:
                self._flock_timed(lock)
            try:
                yield
            finally:
                fcntl.flock(lock, fcntl.LOCK_UN)

    def _flock_timed(self, lock) -> None:
        """Non-blocking ``flock`` attempts under jittered backoff until
        ``lock_timeout`` elapses, then :class:`LockTimeoutError`."""
        start = time.monotonic()
        give_up = start + self.lock_timeout
        delays = _LOCK_RETRY_POLICY.delays()
        while True:
            try:
                fcntl.flock(lock, fcntl.LOCK_EX | fcntl.LOCK_NB)
                return
            except OSError as e:
                if e.errno not in _LOCK_HELD_ERRNOS:
                    raise
            now = time.monotonic()
            if now >= give_up:
                raise LockTimeoutError(
                    self.path + ".lock", self.lock_timeout, now - start
                )
            # After the jittered schedule runs out, keep polling at the cap.
            delay = next(delays, _LOCK_RETRY_POLICY.cap)
            time.sleep(min(delay, give_up - now))

    # -- reading -------------------------------------------------------------
    def read_new(self) -> list[dict]:
        """Replay committed records appended since our offset.

        Stops (without advancing past) the first torn/corrupt line.  Safe
        to call without the lock: a half-written record simply fails its
        checksum and is retried on the next call; truncation of a real
        torn tail only ever happens under the lock.
        """
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size == self.offset and self._torn_at is None:
            return []
        records: list[dict] = []
        with open(self.path, "rb") as f:
            f.seek(self.offset)
            data = f.read()
        pos = 0
        self._torn_at = None
        while pos < len(data):
            nl = data.find(b"\n", pos)
            if nl < 0:  # incomplete final line — a write in flight or torn
                self._torn_at = self.offset + pos
                break
            try:
                records.append(decode_line(data[pos : nl + 1]))
            except TornRecordError:
                self._torn_at = self.offset + pos
                break
            pos = nl + 1
        self.offset += pos
        return records

    def truncate_torn_tail(self) -> int:
        """Physically drop a detected torn tail (call under the lock only:
        with the lock held, any writer of that tail is provably dead).
        Returns the number of bytes removed."""
        if self._torn_at is None:
            return 0
        removed = os.path.getsize(self.path) - self._torn_at
        with open(self.path, "r+b") as f:
            f.truncate(self._torn_at)
            f.flush()

            def _fsync():
                faults.check("ledger.truncate.fsync")
                os.fsync(f.fileno())

            faults.retrying(_fsync, site="ledger.truncate.fsync")
        self._torn_at = None
        if removed:
            logger.warning(
                "truncated %d-byte torn tail from ledger %s (a crashed "
                "writer's uncommitted record)",
                removed,
                self.path,
            )
            if _METRICS.enabled:
                _METRICS.counter("ledger.torn_tails_total").inc()
        return removed

    # -- writing -------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Durably append one record: encode → write → flush → **fsync**.

        Call under :meth:`locked` after :meth:`read_new`; returns only
        once the record is on stable storage, so the caller may then
        safely release the irreversible effect the record authorizes
        (draw noise, apply the debit in memory).  A detected torn tail is
        truncated first so the new record lands after the committed
        prefix, not after garbage that would mask it from every future
        replay.
        """
        if self._torn_at is not None:
            self.truncate_torn_tail()
        line = faults.mangle("ledger.append.payload", encode_record(record))
        with open(self.path, "ab") as f:

            def _write():
                faults.check("ledger.append.write")
                f.write(line)
                f.flush()

            def _fsync():
                faults.check("ledger.append.fsync")
                os.fsync(f.fileno())

            faults.retrying(_write, site="ledger.append.write")
            if _METRICS.enabled:
                t0 = time.perf_counter()
                faults.retrying(_fsync, site="ledger.append.fsync")
                _METRICS.histogram("ledger.fsync_ms").observe(
                    (time.perf_counter() - t0) * 1e3
                )
            else:
                faults.retrying(_fsync, site="ledger.append.fsync")
        # Kill-point between the durable write and the caller's in-memory
        # apply: a crash here leaves a committed record the next recovery
        # replays — budget conservatively spent, never overdrawn.
        faults.check("ledger.append.commit")
        self.offset += len(line)
