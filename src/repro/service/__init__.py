"""Serving layer: persisted strategies + privacy-accounted query traffic.

HDMM's economics (paper Section 3.6): SELECT is expensive but
data-independent — fit once, reuse forever; MEASURE spends privacy
budget — spend once, post-process forever.  This package turns those two
facts into a service:

* :mod:`~repro.service.fingerprint` — canonical workload keys, so
  semantically equal workloads resolve to the same strategy anywhere;
* :mod:`~repro.service.registry` — on-disk store (npz + JSON manifest)
  of fitted strategies, persisted with their solver factorizations;
* :mod:`~repro.service.accountant` — per-dataset epsilon ledger
  (sequential + parallel composition, hard caps, raises before noise);
* :mod:`~repro.service.ledger` — the accountant's durable half: an
  append-only checksummed write-ahead ledger, fsync'd before noise is
  drawn, replayed (torn tail truncated) by
  :meth:`PrivacyAccountant.recover`, with an ``flock``-serialized
  cross-process compare-and-debit;
* :mod:`~repro.service.engine` — the :class:`QueryService` front end:
  free answers from cached reconstructions, batched accounted
  measurement for everything else;
* :mod:`~repro.service.accelerator` — summed-area tables over cached
  reconstructions: box-decomposable hits (ranges, prefixes, marginals,
  totals, bucketizations) answer by an O(2^k) corner gather independent
  of domain size — the first route in the serving table (accelerator →
  cache → warm → direct → cold);
* :mod:`~repro.service.faults` — deterministic fault injection
  (kill-points, bit flips, transient errnos) at every write/fsync/
  replace/load site the two stores perform, driven by the crash matrix
  in ``tests/test_faults.py``.
"""

from ..domain import SchemaMismatchError
from .accelerator import (
    AcceleratorTable,
    RangeSpec,
    range_spec_of,
    strategy_spans_everything,
)
from .accountant import BudgetExceededError, LedgerEntry, PrivacyAccountant
from .ledger import WriteAheadLedger
from .engine import (
    BatchResult,
    MissRoute,
    QueryAnswer,
    QueryMiss,
    QueryService,
    Reconstruction,
    ServeResult,
    in_measured_span,
)
from .fingerprint import canonical_config, config_digest, workload_fingerprint
from .registry import RegistryCorruptionError, StrategyRecord, StrategyRegistry

__all__ = [
    "AcceleratorTable",
    "BatchResult",
    "BudgetExceededError",
    "LedgerEntry",
    "MissRoute",
    "PrivacyAccountant",
    "QueryAnswer",
    "QueryMiss",
    "QueryService",
    "RangeSpec",
    "Reconstruction",
    "RegistryCorruptionError",
    "SchemaMismatchError",
    "ServeResult",
    "StrategyRecord",
    "StrategyRegistry",
    "WriteAheadLedger",
    "canonical_config",
    "config_digest",
    "in_measured_span",
    "range_spec_of",
    "strategy_spans_everything",
    "workload_fingerprint",
]
