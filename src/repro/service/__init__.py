"""Serving layer: persisted strategies + privacy-accounted query traffic.

HDMM's economics (paper Section 3.6): SELECT is expensive but
data-independent — fit once, reuse forever; MEASURE spends privacy
budget — spend once, post-process forever.  This package turns those two
facts into a service:

* :mod:`~repro.service.fingerprint` — canonical workload keys, so
  semantically equal workloads resolve to the same strategy anywhere;
* :mod:`~repro.service.registry` — on-disk store (npz + JSON manifest)
  of fitted strategies, persisted with their solver factorizations;
* :mod:`~repro.service.accountant` — per-dataset epsilon ledger
  (sequential + parallel composition, hard caps, raises before noise);
* :mod:`~repro.service.engine` — the :class:`QueryService` front end:
  free answers from cached reconstructions, batched accounted
  measurement for everything else.
"""

from ..domain import SchemaMismatchError
from .accountant import BudgetExceededError, LedgerEntry, PrivacyAccountant
from .engine import (
    BatchResult,
    MissRoute,
    QueryAnswer,
    QueryMiss,
    QueryService,
    Reconstruction,
    ServeResult,
    in_measured_span,
)
from .fingerprint import canonical_config, config_digest, workload_fingerprint
from .registry import StrategyRecord, StrategyRegistry

__all__ = [
    "BatchResult",
    "BudgetExceededError",
    "LedgerEntry",
    "MissRoute",
    "PrivacyAccountant",
    "QueryAnswer",
    "QueryMiss",
    "QueryService",
    "Reconstruction",
    "SchemaMismatchError",
    "ServeResult",
    "StrategyRecord",
    "StrategyRegistry",
    "canonical_config",
    "config_digest",
    "in_measured_span",
    "workload_fingerprint",
]
