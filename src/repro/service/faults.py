"""Deterministic fault injection for the durability subsystem.

The write-ahead ledger (:mod:`~repro.service.ledger`) and the strategy
registry (:mod:`~repro.service.registry`) make crash-consistency claims —
no kill-point overdraws a budget, no torn write serves a corrupt
strategy.  Claims like that are only as good as the tests that drive a
fault through *every* write/fsync/replace/load site, so both modules
route their filesystem effects through the named fault points defined
here.  In production no injector is active and every hook is a single
``None`` check.

Under test, a :class:`FaultInjector` is armed with deterministic plans
(no randomness, no clocks — the N-th operation at a site fires, every
run) and installed with :meth:`FaultInjector.active`:

* :meth:`~FaultInjector.crash` — the N-th hit of a site raises
  :class:`SimulatedCrash`, which derives from ``BaseException`` so
  ordinary ``except Exception`` cleanup cannot swallow the kill (a real
  ``SIGKILL`` is not catchable either);
* :meth:`~FaultInjector.fail` — K consecutive hits raise ``OSError``
  with a chosen errno (``ENOSPC``, ``EINTR``, ...), exercising the
  bounded-retry paths;
* :meth:`~FaultInjector.flip_bit` — a byte-level corruption applied to
  data flowing through the site (:func:`mangle`) or to the file just
  written there (:func:`mangle_file`), exercising the checksum /
  quarantine paths;
* :meth:`~FaultInjector.delay` — injected latency: chosen hits of a
  site sleep for a fixed duration before proceeding, exercising the
  serving edge's deadline, admission-queue, and circuit-breaker paths
  (a slow dependency, not a dead one).

Sites are plain strings (``"ledger.append.fsync"``,
``"registry.npz.replace"``, ...); the full list lives in the modules
that declare them.  :func:`retrying` is the production-side companion:
bounded exponential-backoff retry around transient ``EINTR``/``EAGAIN``/
``ENOSPC`` failures, with an injectable sleep so tests stay instant.
"""

from __future__ import annotations

import contextlib
import errno
import os
import threading
import time
from dataclasses import dataclass, field

from ..server import retry as _retry

__all__ = [
    "FaultInjector",
    "SimulatedCrash",
    "RETRYABLE_ERRNOS",
    "active_injector",
    "check",
    "mangle",
    "mangle_file",
    "retrying",
]

#: Transient errnos :func:`retrying` considers worth another attempt.
#: ``ENOSPC`` is transient in the deployments this service targets
#: (log rotation / compaction frees space); anything else is a real
#: failure the caller must surface.
RETRYABLE_ERRNOS = frozenset({errno.EINTR, errno.EAGAIN, errno.ENOSPC})


class SimulatedCrash(BaseException):
    """An armed kill-point fired.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so that
    recovery-oriented ``except Exception`` blocks in the code under test
    cannot accidentally absorb the simulated kill — the process under a
    real crash gets no chance to run cleanup either.
    """

    def __init__(self, site: str, op: int):
        self.site = site
        self.op = op
        super().__init__(f"simulated crash at {site!r} (operation #{op})")


@dataclass
class _Plan:
    kind: str  # "crash" | "error" | "flip" | "delay"
    after: int = 1  # fire on the after-th hit of the site (1-based)
    times: int = 1  # "error"/"delay": how many consecutive hits fire
    err: int = errno.ENOSPC
    byte: int = 0  # "flip": byte offset (negative = from the end)
    bit: int = 0  # "flip": bit index within the byte
    seconds: float = 0.0  # "delay": injected latency per firing hit
    fired: int = 0


@dataclass
class FaultInjector:
    """A deterministic schedule of faults, keyed by site name.

    Counters are per-site and start at 1 on the first hit; every plan
    fires at an exact operation number, so a failing test replays
    identically.  Thread-safe: the stress tests hammer one injector from
    many threads.
    """

    _plans: dict[str, list[_Plan]] = field(default_factory=dict)
    _counts: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    #: Every fault fired, as ``(site, kind, op)`` — assert on it to prove
    #: a fault actually exercised the path under test.
    fired: list[tuple[str, str, int]] = field(default_factory=list)

    # -- arming --------------------------------------------------------------
    def crash(self, site: str, after: int = 1) -> "FaultInjector":
        """Arm a kill-point: the ``after``-th hit of ``site`` raises
        :class:`SimulatedCrash`."""
        self._plans.setdefault(site, []).append(_Plan("crash", after=after))
        return self

    def fail(
        self, site: str, err: int = errno.ENOSPC, times: int = 1, after: int = 1
    ) -> "FaultInjector":
        """Arm a transient failure: hits ``after .. after+times-1`` of
        ``site`` raise ``OSError(err)``."""
        self._plans.setdefault(site, []).append(
            _Plan("error", after=after, times=times, err=err)
        )
        return self

    def flip_bit(
        self, site: str, byte: int = 0, bit: int = 0, after: int = 1
    ) -> "FaultInjector":
        """Arm a corruption: the ``after``-th mangle at ``site`` flips one
        bit of the payload (``byte`` may be negative, counting from the
        end)."""
        self._plans.setdefault(site, []).append(
            _Plan("flip", after=after, byte=byte, bit=bit)
        )
        return self

    def delay(
        self, site: str, seconds: float, times: int = 1, after: int = 1
    ) -> "FaultInjector":
        """Arm injected latency: hits ``after .. after+times-1`` of
        ``site`` sleep ``seconds`` before the operation proceeds.  The
        operation still *succeeds* — this simulates a slow dependency
        (contended lock, cold cache, starved CPU), the failure mode that
        deadlines and circuit breakers exist for and that crash/error
        plans cannot produce."""
        if seconds < 0:
            raise ValueError(f"delay must be >= 0, got {seconds!r}")
        self._plans.setdefault(site, []).append(
            _Plan("delay", after=after, times=times, seconds=seconds)
        )
        return self

    # -- introspection -------------------------------------------------------
    def op_count(self, site: str) -> int:
        """How many times ``site`` has been hit while this injector was
        active — run a workload once with a passive injector to *discover*
        the operation numbers a kill matrix should sweep."""
        return self._counts.get(site, 0)

    # -- firing --------------------------------------------------------------
    def _hit(self, site: str) -> tuple[int, list[_Plan]]:
        with self._lock:
            op = self._counts.get(site, 0) + 1
            self._counts[site] = op
            due = []
            for plan in self._plans.get(site, ()):
                if plan.kind in ("error", "delay"):
                    if plan.after <= op < plan.after + plan.times:
                        plan.fired += 1
                        due.append(plan)
                elif plan.after == op:
                    plan.fired += 1
                    due.append(plan)
            for plan in due:
                self.fired.append((site, plan.kind, op))
        return op, due

    def _sleep_delays(self, due: list[_Plan]) -> None:
        # Latency lands before any other plan on the same hit: a slow
        # operation that then fails is the realistic composite.
        for plan in due:
            if plan.kind == "delay" and plan.seconds:
                time.sleep(plan.seconds)

    def check(self, site: str) -> None:
        op, due = self._hit(site)
        self._sleep_delays(due)
        for plan in due:
            if plan.kind == "crash":
                raise SimulatedCrash(site, op)
            if plan.kind == "error":
                raise OSError(plan.err, os.strerror(plan.err), site)

    def mangle(self, site: str, data: bytes) -> bytes:
        """Count a hit at ``site`` and apply any due corruption to
        ``data`` (crash/error/delay plans armed on the same site fire
        too)."""
        op, due = self._hit(site)
        self._sleep_delays(due)
        for plan in due:
            if plan.kind == "crash":
                raise SimulatedCrash(site, op)
            if plan.kind == "error":
                raise OSError(plan.err, os.strerror(plan.err), site)
            if plan.kind == "flip" and data:
                buf = bytearray(data)
                buf[plan.byte % len(buf)] ^= 1 << (plan.bit & 7)
                data = bytes(buf)
        return data

    def mangle_file(self, site: str, path: str) -> None:
        """Like :meth:`mangle`, for sites where the payload is written by
        third-party code (``np.savez``): corrupts the file in place."""
        op, due = self._hit(site)
        self._sleep_delays(due)
        for plan in due:
            if plan.kind == "crash":
                raise SimulatedCrash(site, op)
            if plan.kind == "error":
                raise OSError(plan.err, os.strerror(plan.err), site)
            if plan.kind == "flip":
                with open(path, "r+b") as f:
                    f.seek(0, os.SEEK_END)
                    size = f.tell()
                    if size == 0:
                        continue
                    f.seek(plan.byte % size)
                    b = f.read(1)
                    f.seek(plan.byte % size)
                    f.write(bytes([b[0] ^ (1 << (plan.bit & 7))]))

    # -- installation --------------------------------------------------------
    @contextlib.contextmanager
    def active(self):
        """Install this injector as the process-wide active one."""
        global _ACTIVE
        prev = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = prev


_ACTIVE: FaultInjector | None = None


def active_injector() -> FaultInjector | None:
    return _ACTIVE


def check(site: str) -> None:
    """Production-side fault point: no-op unless an injector is active."""
    if _ACTIVE is not None:
        _ACTIVE.check(site)


def mangle(site: str, data: bytes) -> bytes:
    """Pass payload bytes through a fault point (bit-flip plans apply)."""
    if _ACTIVE is not None:
        return _ACTIVE.mangle(site, data)
    return data


def mangle_file(site: str, path: str) -> None:
    """File-level fault point for payloads written by third-party code."""
    if _ACTIVE is not None:
        _ACTIVE.mangle_file(site, path)


def retrying(
    fn,
    site: str,
    retries: int = 4,
    backoff: float = 0.001,
    sleep=time.sleep,
):
    """Run ``fn()``, retrying transient ``OSError``s with bounded backoff.

    Only :data:`RETRYABLE_ERRNOS` are retried, at most ``retries`` times,
    sleeping ``backoff * 2**attempt`` between attempts (tests pass a
    no-op ``sleep``).  Anything else — including a transient errno that
    persists past the budget — propagates to the caller, which must leave
    durable state consistent (that is what the fault matrix proves).

    The loop itself lives in :func:`repro.server.retry.call_retrying`
    (the serving edge shares it, with jitter and a process-wide retry
    budget); this wrapper pins ``jitter=False`` and an uncapped schedule
    so the deterministic ``backoff * 2**attempt`` delays the fault
    matrix asserts on are preserved exactly.
    """
    policy = _retry.RetryPolicy(
        retries=retries,
        base=backoff,
        cap=backoff * (2 ** max(retries, 1)),
        jitter=False,
    )
    return _retry.call_retrying(
        fn,
        policy=policy,
        retryable=lambda e: isinstance(e, OSError)
        and e.errno in RETRYABLE_ERRNOS,
        sleep=sleep,
    )
