"""Dataset schemas used in the paper's experiments (Section 8.1).

Five datasets cover the low- and high-dimensional cases.  Most compared
algorithms are data-independent — their error depends only on the schema —
so these domains are the load-bearing artifact; the synthetic generators
in :mod:`repro.data.datasets` supply data vectors for the two
data-dependent algorithms (DAWA, PrivBayes).
"""

from __future__ import annotations

from ..domain import Domain


def patent_domain(n: int = 1024) -> Domain:
    """Patent (DPBench): 1-D histogram domain, default size 1024."""
    return Domain(["value"], [n])


def taxi_domain(n: int = 256) -> Domain:
    """BeijingTaxiE (DPBench): 2-D spatial grid, default 256 x 256."""
    return Domain(["x", "y"], [n, n])


def adult_domain() -> Domain:
    """UCI Adult: age, education, race, sex, hours-per-week.

    Table 3 lists the domain as 75 x 16 x 5 x 2 x 20.
    """
    return Domain(
        ["age", "education", "race", "sex", "hours"], [75, 16, 5, 2, 20]
    )


def cps_domain() -> Domain:
    """March-2000 Current Population Survey: income, age, marital status,
    race, sex.  Table 3 lists the domain as 100 x 50 x 7 x 4 x 2."""
    return Domain(["income", "age", "marital", "race", "sex"], [100, 50, 7, 4, 2])


def cph_domain(include_state: bool = True) -> Domain:
    """Census of Population and Housing (Section 2): the SF1 schema."""
    from ..workload.sf1 import cph_domain as _cph

    return _cph(include_state)


def synthetic_domain(d: int, n: int) -> Domain:
    """d attributes of equal size n (the scalability experiments)."""
    return Domain([f"a{i}" for i in range(d)], [n] * d)
