"""Dataset schemas and synthetic data generators (Section 8.1)."""

from .datasets import (
    DPBENCH_1D,
    clustered_1d,
    correlated_tensor,
    powerlaw_1d,
    spatial_2d,
)
from .schemas import (
    adult_domain,
    cph_domain,
    cps_domain,
    patent_domain,
    synthetic_domain,
    taxi_domain,
)

__all__ = [
    "DPBENCH_1D",
    "adult_domain",
    "clustered_1d",
    "correlated_tensor",
    "cph_domain",
    "cps_domain",
    "patent_domain",
    "powerlaw_1d",
    "spatial_2d",
    "synthetic_domain",
    "taxi_domain",
]
