"""Synthetic data-vector generators (DESIGN.md substitution).

The paper's data-dependent experiments use DPBench datasets (Patent,
BeijingTaxiE, Hepth, Medcost, Nettrace, Searchlogs) and Census microdata,
none of which ship with the paper.  These generators produce data vectors
with the distributional features those experiments exercise:

* ``clustered_1d`` — a few dense uniform regions over a sparse background
  (the structure DAWA's partitioning detects; Nettrace/Searchlogs-like);
* ``powerlaw_1d``  — heavy-tailed counts (Patent/Medcost/Hepth-like);
* ``spatial_2d``   — Gaussian hot-spots on a grid (Taxi-like);
* ``correlated_tensor`` — multi-attribute data with pairwise correlations
  (what PrivBayes' network learning feeds on).

Each generator takes ``scale`` (total record count) and a seed, so any
experiment is reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..domain import Domain


def _normalize_to_scale(x: np.ndarray, scale: float) -> np.ndarray:
    total = x.sum()
    if total <= 0:
        x = np.ones_like(x)
        total = x.sum()
    return np.round(x * (scale / total))


def clustered_1d(
    n: int,
    scale: float = 10_000,
    regions: int = 6,
    rng: np.random.Generator | int | None = 0,
) -> np.ndarray:
    """A piecewise-near-uniform histogram: dense clusters on a flat floor."""
    rng = np.random.default_rng(rng)
    x = rng.random(n) * 0.5  # sparse background
    for _ in range(regions):
        start = int(rng.integers(0, n))
        width = int(rng.integers(max(n // 64, 1), max(n // 8, 2)))
        height = float(rng.lognormal(3.0, 1.0))
        x[start : min(start + width, n)] += height * (
            0.9 + 0.2 * rng.random(min(width, n - start))
        )
    return _normalize_to_scale(x, scale)


def powerlaw_1d(
    n: int,
    scale: float = 10_000,
    alpha: float = 1.3,
    rng: np.random.Generator | int | None = 0,
) -> np.ndarray:
    """Heavy-tailed counts: sorted Zipf mass with shuffled tail."""
    rng = np.random.default_rng(rng)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    mass = ranks**-alpha
    mass *= 1.0 + 0.1 * rng.random(n)
    return _normalize_to_scale(mass, scale)


def spatial_2d(
    n1: int,
    n2: int,
    scale: float = 100_000,
    hotspots: int = 8,
    rng: np.random.Generator | int | None = 0,
) -> np.ndarray:
    """Gaussian hot-spots on an n1 x n2 grid, flattened row-major."""
    rng = np.random.default_rng(rng)
    yy, xx = np.meshgrid(np.arange(n2), np.arange(n1))
    x = np.full((n1, n2), 0.1)
    for _ in range(hotspots):
        cx, cy = rng.integers(0, n1), rng.integers(0, n2)
        sx = rng.uniform(n1 / 40 + 1, n1 / 8)
        sy = rng.uniform(n2 / 40 + 1, n2 / 8)
        amp = rng.lognormal(2.0, 1.0)
        x += amp * np.exp(-(((xx - cx) / sx) ** 2 + ((yy - cy) / sy) ** 2))
    return _normalize_to_scale(x.reshape(-1), scale)


def correlated_tensor(
    domain: Domain,
    scale: float = 50_000,
    correlation: float = 0.6,
    rng: np.random.Generator | int | None = 0,
) -> np.ndarray:
    """A multi-attribute histogram with chained pairwise correlations.

    Records are sampled from a Markov chain over the attribute order: the
    i-th attribute's value is correlated with the (i-1)-th through a
    shared latent percentile, mimicking real demographic dependence (age
    vs income vs marital status...) without any real microdata.
    """
    rng = np.random.default_rng(rng)
    sizes = domain.shape()
    n_records = int(scale)
    latent = rng.random(n_records)
    records = np.empty((n_records, len(sizes)), dtype=np.intp)
    for i, n in enumerate(sizes):
        jitter = rng.random(n_records)
        mixed = correlation * latent + (1.0 - correlation) * jitter
        records[:, i] = np.minimum((mixed * n).astype(np.intp), n - 1)
    x = np.zeros(sizes)
    np.add.at(x, tuple(records.T), 1.0)
    return x.reshape(-1)


#: Named 1-D generators standing in for the five DPBench datasets used in
#: Table 6 (Hepth, Medcost, Nettrace, Patent, Searchlogs).
DPBENCH_1D = {
    "hepth": lambda n, scale, seed: powerlaw_1d(n, scale, alpha=1.1, rng=seed),
    "medcost": lambda n, scale, seed: powerlaw_1d(n, scale, alpha=1.6, rng=seed),
    "nettrace": lambda n, scale, seed: clustered_1d(n, scale, regions=4, rng=seed),
    "patent": lambda n, scale, seed: powerlaw_1d(n, scale, alpha=1.3, rng=seed),
    "searchlogs": lambda n, scale, seed: clustered_1d(n, scale, regions=10, rng=seed),
}
