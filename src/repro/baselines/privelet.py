"""Privelet: differential privacy via wavelet transforms [Xiao et al. 2011].

The strategy is the Haar wavelet basis over each (power-of-two padded)
attribute domain; in multiple dimensions the strategy is the Kronecker
product of per-attribute wavelets (the paper's multi-dimensional nonstandard
decomposition).  Designed for range-query workloads: any range is a
combination of O(log n) wavelet coefficients, so reconstruction noise grows
polylogarithmically — but the strategy is fixed, not workload-adaptive.
"""

from __future__ import annotations

import numpy as np

from ..linalg import Dense, Kronecker, Matrix, SparseMatrix, haar_wavelet
from ..workload.util import attribute_sizes
from .base import StrategyMechanism


def _padded_wavelet(n: int) -> Matrix:
    """Haar wavelet on n columns, truncating a padded power-of-two basis."""
    size = 1 << (n - 1).bit_length()
    H = haar_wavelet(size)
    if size == n:
        return H
    # Drop the padding columns; rows that become all-zero are removed.
    D = H.dense()[:, :n]
    keep = np.abs(D).sum(axis=1) > 0
    return Dense(D[keep])


class Privelet(StrategyMechanism):
    """Haar-wavelet strategy, one wavelet per attribute."""

    name = "Privelet"

    def select(self, W: Matrix) -> Matrix:
        sizes = attribute_sizes(W)
        factors = [_padded_wavelet(n) for n in sizes]
        return factors[0] if len(factors) == 1 else Kronecker(factors)
