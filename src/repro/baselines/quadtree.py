"""QuadTree: 2-D spatial decompositions [Cormode et al. 2012].

The strategy measures, at every level l, the partition of the 2-D grid
into 2^l x 2^l blocks — the nodes of a quadtree whose root covers the
whole domain and whose leaves are single cells.  Each level is a Kronecker
product of per-axis interval partitions, so the strategy stacks matched
levels (unlike HB's kron-of-hierarchies, which crosses all level pairs).
Sensitivity equals the number of levels.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import sparse as sp

from ..linalg import Kronecker, Matrix, SparseMatrix, VStack
from ..workload.util import attribute_sizes
from .base import StrategyMechanism


def level_partition(n: int, cells: int) -> SparseMatrix:
    """Aggregation matrix splitting [0, n) into ``cells`` near-equal blocks."""
    cells = min(cells, n)
    bounds = np.linspace(0, n, cells + 1).round().astype(int)
    rows, cols = [], []
    for r in range(cells):
        for c in range(bounds[r], bounds[r + 1]):
            rows.append(r)
            cols.append(c)
    M = sp.coo_matrix((np.ones(len(rows)), (rows, cols)), shape=(cells, n))
    return SparseMatrix(M)


class QuadTree(StrategyMechanism):
    """Matched-level grid hierarchy for two-dimensional domains."""

    name = "QuadTree"

    def select(self, W: Matrix) -> Matrix:
        sizes = attribute_sizes(W)
        if len(sizes) != 2:
            raise ValueError("QuadTree is defined for 2-D domains only")
        n1, n2 = sizes
        levels = max(math.ceil(math.log2(max(n1, n2))), 1) + 1
        blocks = [
            Kronecker([level_partition(n1, 1 << l), level_partition(n2, 1 << l)])
            for l in range(levels)
        ]
        return VStack(blocks)

    def squared_error(self, W: Matrix) -> float:
        # The quadtree is measured as one strategy (not budget-split), so
        # compute the exact Definition 7 error; large domains use the
        # stochastic trace estimator.
        from ..core.error import coherent_stack_error

        return coherent_stack_error(W, self.select(W), rng=0)
