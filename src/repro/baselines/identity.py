"""The Identity baseline (paper Section 8.1).

Adds Laplace noise to every cell of the data vector and answers the
workload from the noisy vector.  Sensitivity 1, works for any workload in
any dimension; accurate when workload queries aggregate few cells, poor
when they aggregate many (each aggregated cell contributes noise).
"""

from __future__ import annotations

from ..linalg import Identity as IdentityMatrix
from ..linalg import Kronecker, Matrix
from ..workload.util import attribute_sizes
from .base import StrategyMechanism


class IdentityMechanism(StrategyMechanism):
    """Strategy = the identity matrix over the full domain."""

    name = "Identity"

    def select(self, W: Matrix) -> Matrix:
        sizes = attribute_sizes(W)
        return Kronecker([IdentityMatrix(n) for n in sizes])
