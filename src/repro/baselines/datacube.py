"""DataCube: greedy marginal-set selection [Ding et al. 2011].

Takes a workload of marginals and greedily chooses a *different* set of
marginals to measure.  Each measured marginal gets an equal share of the
privacy budget; a workload marginal over attribute set ``a`` is answered
by aggregating the measured marginal over the smallest superset ``b ⊇ a``,
inflating per-cell variance by ``Π_{i∈b∖a} n_i`` (the number of cells
summed) and by ``|S|²`` (the budget split).  The greedy loop adds the
candidate marginal that most reduces the total expected squared error of
the workload, stopping when no candidate improves it.

Expected error uses DataCube's native direct-aggregation estimator (the
algorithm does not perform least-squares inference).
"""

from __future__ import annotations

import math

import numpy as np

from ..linalg import Kronecker, MarginalsStrategy, Matrix, Ones
from ..workload.util import as_union_of_products, attribute_sizes
from .base import StrategyMechanism


def _workload_subsets(W: Matrix) -> tuple[list[int], list[float], list[int]]:
    """Identify the marginal subset of each workload product.

    Returns per-product subset bitmasks, weights, and attribute sizes.
    Raises ``ValueError`` for non-marginal products (DataCube is defined
    only for marginal workloads).
    """
    from ..linalg import Identity

    sizes = attribute_sizes(W)
    d = len(sizes)
    subsets, weights = [], []
    for w, factors in as_union_of_products(W):
        mask = 0
        for i, f in enumerate(factors):
            if isinstance(f, Ones) and f.shape[0] == 1:
                continue
            is_identity = isinstance(f, Identity) or (
                f.shape == (sizes[i], sizes[i])
                and np.allclose(f.dense(), np.eye(sizes[i]))
            )
            if is_identity:
                mask |= 1 << (d - 1 - i)
            else:
                raise ValueError(
                    "DataCube requires a workload of marginals "
                    f"(factor {i} of shape {f.shape} is not Identity/Total)"
                )
        subsets.append(mask)
        weights.append(w)
    return subsets, weights, sizes


def _cells(mask: int, sizes, d: int) -> int:
    out = 1
    for i in range(d):
        if (mask >> (d - 1 - i)) & 1:
            out *= sizes[i]
    return out


class DataCube(StrategyMechanism):
    """Greedy marginal-selection strategy for marginal workloads."""

    name = "DataCube"

    def __init__(self, max_rounds: int | None = None):
        self.max_rounds = max_rounds

    def _select_masks(self, W: Matrix) -> tuple[list[int], float]:
        subsets, weights, sizes = _workload_subsets(W)
        d = len(sizes)
        universe = 1 << d
        full = universe - 1

        def answer_cost(a: int, measured: list[int]) -> float:
            """Cheapest variance multiplier for answering marginal a."""
            best = math.inf
            cells_a = _cells(a, sizes, d)
            for b in measured:
                if a & b == a:  # b is a superset of a
                    agg = _cells(b & ~a, sizes, d)  # cells summed per answer
                    best = min(best, cells_a * agg)
            return best

        def unsplit_cost(measured: list[int]) -> float:
            total = 0.0
            for a, w in zip(subsets, weights):
                c = answer_cost(a, measured)
                if not math.isfinite(c):
                    return math.inf
                total += w**2 * c
            return total

        # Greedily order additions by unsplit gain, then pick the prefix
        # whose |S|²-split total error is least.  Evaluating the split at
        # each prefix (rather than per addition) avoids the greedy horizon
        # problem: a single addition always looks bad because it doubles
        # the split before its aggregation savings can compound.
        sequence = [full]  # the minimal single cover
        costs = [unsplit_cost(sequence)]
        rounds = self.max_rounds or min(universe, 64)
        candidates = sorted(set(subsets) - {full})
        for _ in range(rounds):
            best_candidate, best_cost = None, costs[-1]
            for cand in candidates:
                if cand in sequence:
                    continue
                c = unsplit_cost(sequence + [cand])
                if c < best_cost:
                    best_candidate, best_cost = cand, c
            if best_candidate is None or best_cost > costs[-1] * 0.999:
                break
            sequence.append(best_candidate)
            costs.append(best_cost)

        totals = [(len(sequence[: i + 1]) ** 2) * c for i, c in enumerate(costs)]
        best_idx = int(np.argmin(totals))
        return sequence[: best_idx + 1], float(totals[best_idx])

    def select(self, W: Matrix) -> Matrix:
        sizes = attribute_sizes(W)
        masks, _ = self._select_masks(W)
        theta = np.zeros(1 << len(sizes))
        for m in masks:
            theta[m] = 1.0
        theta /= theta.sum()
        return MarginalsStrategy(sizes, theta)

    def squared_error(self, W: Matrix) -> float:
        # Native direct-aggregation estimator (no least-squares inference).
        _, err = self._select_masks(W)
        return err
