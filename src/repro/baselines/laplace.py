"""The Laplace Mechanism baseline (LM, paper Section 8.1).

Answers each workload query directly with Laplace noise scaled to the
workload's own L1 sensitivity — the classic per-query approach that fails
to exploit workload structure.  There is no reconstruction step, so its
expected total squared error is ``m · 2(‖W‖₁/ε)²``.
"""

from __future__ import annotations

import numpy as np

from ..core.error import laplace_mechanism_error
from ..core.measure import laplace_measure
from ..linalg import Matrix
from .base import StrategyMechanism


class LaplaceMechanism(StrategyMechanism):
    """Direct noisy answering of the workload (strategy = workload)."""

    name = "LM"

    def select(self, W: Matrix) -> Matrix:
        return W

    def squared_error(self, W: Matrix) -> float:
        # No inference: every query independently carries the full noise,
        # rather than the least-squares error of Definition 7.
        return laplace_mechanism_error(W)

    def expected_error(self, W: Matrix, eps: float = 1.0) -> float:
        return 2.0 / eps**2 * laplace_mechanism_error(W)

    def answer(
        self,
        W: Matrix,
        x: np.ndarray,
        eps: float,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        return laplace_measure(W, x, eps, rng)
