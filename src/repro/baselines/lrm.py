"""LRM: the Low-Rank Mechanism [Yuan et al. 2012].

LRM factorizes the workload ``W = B L`` with a low-rank strategy ``L``
(r x n) and minimizes ``‖L‖₁² ‖B‖_F²`` — exactly the matrix-mechanism
objective restricted to rank-r strategies.  With ``B = W L⁺`` optimal for
fixed L, the problem reduces to gradient search over column-normalized
r x n strategies: ``min_L tr[(LᵀL)⁺ WᵀW]``, which is what
:func:`repro.optimize.opt_general` solves.  Each iteration costs O(n³)
because nothing constrains the search space — LRM is only feasible on
domains where the workload fits as a dense matrix, reproducing the
scalability wall of Figure 1.
"""

from __future__ import annotations

import numpy as np

from ..linalg import Matrix
from ..optimize.opt_general import opt_general
from .base import StrategyMechanism

#: Beyond this domain size the dense optimization is declared infeasible,
#: mirroring the paper's 30-minute timeout behaviour.
LRM_MAX_DOMAIN = 16384


class LRM(StrategyMechanism):
    """Alternating low-rank factorization via full-space gradient search."""

    name = "LRM"

    def __init__(
        self,
        rank: int | None = None,
        restarts: int = 1,
        maxiter: int = 300,
        rng: int | None = 0,
    ):
        self.rank = rank
        self.restarts = restarts
        self.maxiter = maxiter
        self.rng = rng

    def select(self, W: Matrix) -> Matrix:
        n = W.shape[1]
        if n > LRM_MAX_DOMAIN:
            raise MemoryError(
                f"LRM requires dense optimization over N={n} — infeasible "
                f"(limit {LRM_MAX_DOMAIN}); see paper Figure 1"
            )
        V = W.gram().dense()
        # Rank must reach rank(W) for support; default to full rank of V.
        r = self.rank or n
        result = opt_general(
            V, p=max(r, n), rng=self.rng, restarts=self.restarts,
            maxiter=self.maxiter,
        )
        return result.strategy
