"""Common interface for the comparison mechanisms of paper Section 8.

Data-independent mechanisms are *strategy mechanisms*: they choose a
measurement strategy from the workload alone, so their expected error has
the closed form of Definition 7 and can be compared analytically.
Data-dependent mechanisms (DAWA, PrivBayes) expose ``answer`` instead and
are compared by Monte-Carlo estimation of their error.
"""

from __future__ import annotations

import numpy as np

from ..core.error import expected_error, squared_error
from ..core.measure import laplace_measure
from ..core.reconstruct import answer_workload, least_squares
from ..linalg import Matrix


class StrategyMechanism:
    """A select-measure-reconstruct mechanism defined by its strategy rule.

    Subclasses implement :meth:`select`, mapping a workload to a
    sensitivity-normalized strategy matrix.
    """

    name: str = "strategy-mechanism"

    def select(self, W: Matrix) -> Matrix:
        """Choose a measurement strategy for the workload (data-free)."""
        raise NotImplementedError

    def squared_error(self, W: Matrix) -> float:
        """``‖A‖₁²·‖WA⁺‖_F²`` — expected total squared error at ε = √2."""
        return squared_error(W, self.select(W))

    def expected_error(self, W: Matrix, eps: float = 1.0) -> float:
        """Definition 7 expected total squared error."""
        return expected_error(W, self.select(W), eps)

    def answer(
        self,
        W: Matrix,
        x: np.ndarray,
        eps: float,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """Run select-measure-reconstruct and answer the workload."""
        A = self.select(W)
        y = laplace_measure(A, x, eps, rng)
        x_hat = least_squares(A, y)
        return answer_workload(W, x_hat)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class DataDependentMechanism:
    """A mechanism whose error depends on the input data.

    Subclasses implement :meth:`answer`; error is estimated empirically by
    :meth:`estimate_squared_error` over repeated trials (the paper uses
    average error across 25 random trials for DAWA and PrivBayes).
    """

    name: str = "data-dependent-mechanism"

    def answer(
        self,
        W: Matrix,
        x: np.ndarray,
        eps: float,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        raise NotImplementedError

    def estimate_squared_error(
        self,
        W: Matrix,
        x: np.ndarray,
        eps: float = 1.0,
        trials: int = 25,
        rng: np.random.Generator | int | None = None,
    ) -> float:
        """Average total squared error over Monte-Carlo trials.

        Returned on the same scale as
        :meth:`StrategyMechanism.expected_error` so ratios are comparable.
        """
        rng = np.random.default_rng(rng)
        truth = W.matvec(np.asarray(x, dtype=np.float64))
        total = 0.0
        for _ in range(trials):
            est = self.answer(W, x, eps, rng)
            total += float(np.sum((est - truth) ** 2))
        return total / trials

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
