"""PrivBayes: private synthetic data via Bayesian networks [Zhang et al. 2017].

Three phases:

1. **Structure learning** (ε/2): greedily build a Bayesian network — the
   next attribute's parent set (at most ``degree`` already-placed
   attributes) is chosen by the exponential mechanism with mutual
   information as the quality score.
2. **Parameter learning** (ε/2): measure the joint marginal of each
   attribute with its parents using the Laplace mechanism (budget split
   evenly), clamp negatives, and normalize into conditional distributions.
3. **Sampling**: draw synthetic records ancestrally and answer the
   workload on the synthetic data vector.

The input here is the data *vector* (histogram) rather than raw records —
equivalent information; marginal counts are exact contractions of the
histogram tensor.  Error is data-dependent: use
``estimate_squared_error``.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from ..domain import Domain
from ..linalg import Matrix
from .base import DataDependentMechanism


def mutual_information(joint: np.ndarray) -> float:
    """MI of a 2-way contingency table (child cells x parent cells)."""
    total = joint.sum()
    if total <= 0:
        return 0.0
    p = joint / total
    px = p.sum(axis=1, keepdims=True)
    py = p.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = p * np.log(p / (px * py))
    return float(np.nansum(terms))


def _marginal_counts(tensor: np.ndarray, axes: tuple[int, ...]) -> np.ndarray:
    """Contract the histogram tensor down to the given axes (in order)."""
    drop = tuple(i for i in range(tensor.ndim) if i not in axes)
    out = tensor.sum(axis=drop) if drop else tensor
    # Reorder to match the requested axis order.
    kept = [i for i in range(tensor.ndim) if i in axes]
    order = [kept.index(a) for a in axes]
    return np.transpose(out, order)


class PrivBayes(DataDependentMechanism):
    """Bayesian-network synthetic data generator.

    Parameters
    ----------
    domain:
        The attribute domain of the data vector.
    degree:
        Maximum number of parents per attribute (the original paper
        chooses it by θ-usefulness; 2 is its common operating point).
    sample_factor:
        Synthetic records drawn as ``sample_factor x`` the true count.
    """

    name = "PrivBayes"

    def __init__(self, domain: Domain, degree: int = 2, sample_factor: float = 1.0):
        self.domain = domain
        self.degree = degree
        self.sample_factor = sample_factor

    # -- phase 1: structure ---------------------------------------------------
    def _learn_structure(
        self, tensor: np.ndarray, eps1: float, rng: np.random.Generator
    ) -> list[tuple[int, tuple[int, ...]]]:
        d = tensor.ndim
        n_rec = max(tensor.sum(), 1.0)
        # Sensitivity bound for MI on add/remove-one-record neighbours.
        sens = (2.0 / n_rec) * math.log((n_rec + 1) / 2.0) + (
            (n_rec - 1) / n_rec
        ) * math.log((n_rec + 1) / (n_rec - 1)) if n_rec > 1 else 1.0

        order = [int(rng.integers(d))]
        network: list[tuple[int, tuple[int, ...]]] = [(order[0], ())]
        eps_step = eps1 / max(d - 1, 1)
        remaining = [i for i in range(d) if i != order[0]]
        while remaining:
            candidates: list[tuple[int, tuple[int, ...]]] = []
            for attr in remaining:
                max_p = min(self.degree, len(order))
                for size in range(0, max_p + 1):
                    for parents in itertools.combinations(order, size):
                        candidates.append((attr, parents))
            scores = np.empty(len(candidates))
            for idx, (attr, parents) in enumerate(candidates):
                joint = _marginal_counts(tensor, (attr, *parents))
                scores[idx] = mutual_information(
                    joint.reshape(joint.shape[0], -1)
                )
            # Exponential mechanism over candidate (attribute, parents).
            logits = eps_step * scores / (2.0 * sens)
            logits -= logits.max()
            probs = np.exp(logits)
            probs /= probs.sum()
            pick = candidates[int(rng.choice(len(candidates), p=probs))]
            network.append(pick)
            order.append(pick[0])
            remaining.remove(pick[0])
        return network

    # -- phase 2 + 3: parameters and sampling ----------------------------------
    def _synthesize(
        self,
        tensor: np.ndarray,
        network: list[tuple[int, tuple[int, ...]]],
        eps2: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        sizes = tensor.shape
        d = tensor.ndim
        eps_each = eps2 / len(network)
        conditionals = {}
        for attr, parents in network:
            joint = _marginal_counts(tensor, (attr, *parents)).astype(float)
            joint += rng.laplace(0.0, 1.0 / eps_each, joint.shape)
            joint = np.clip(joint, 0.0, None)
            flat = joint.reshape(joint.shape[0], -1)
            col_sums = flat.sum(axis=0, keepdims=True)
            uniform = np.full_like(flat, 1.0 / flat.shape[0])
            probs = np.where(col_sums > 0, flat / np.maximum(col_sums, 1e-12), uniform)
            conditionals[attr] = (parents, probs.reshape(joint.shape))

        n_samples = int(round(self.sample_factor * max(tensor.sum(), 1.0)))
        records = np.zeros((n_samples, d), dtype=np.intp)
        for attr, parents in network:
            _, probs = conditionals[attr]
            if not parents:
                p = probs.reshape(-1)
                p = p / p.sum()
                records[:, attr] = rng.choice(sizes[attr], size=n_samples, p=p)
            else:
                parent_vals = records[:, list(parents)]
                # Group samples by parent configuration for vectorized draws.
                flat_probs = probs.reshape(probs.shape[0], -1)
                parent_sizes = [sizes[p_] for p_ in parents]
                config = np.ravel_multi_index(parent_vals.T, parent_sizes)
                for cfg in np.unique(config):
                    mask = config == cfg
                    p = flat_probs[:, cfg]
                    s = p.sum()
                    p = p / s if s > 0 else np.full(len(p), 1.0 / len(p))
                    records[mask, attr] = rng.choice(
                        sizes[attr], size=int(mask.sum()), p=p
                    )
        synthetic = np.zeros(sizes)
        np.add.at(synthetic, tuple(records.T), 1.0)
        return synthetic.reshape(-1)

    def answer(
        self,
        W: Matrix,
        x: np.ndarray,
        eps: float,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        rng = np.random.default_rng(rng)
        tensor = np.asarray(x, dtype=np.float64).reshape(self.domain.shape())
        network = self._learn_structure(tensor, eps / 2.0, rng)
        synthetic = self._synthesize(tensor, network, eps / 2.0, rng)
        return W.matvec(synthetic)
