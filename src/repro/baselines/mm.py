"""MM: the original Matrix Mechanism [Li et al. 2010/2015].

The exact MM solves a rank-constrained semidefinite program with
O(m⁴(m⁴+N⁴)) complexity — infeasible on any non-trivial input (every MM
cell of the paper's Table 3 is ``*``).  This class reproduces that
behaviour: it refuses domains above a small threshold, and below it runs
the full-space gradient solver (the best tractable approximation of the
SDP's search space) with several restarts.
"""

from __future__ import annotations

from ..linalg import Matrix
from ..optimize.opt_general import opt_general
from .base import StrategyMechanism

#: The SDP-equivalent search is only attempted on tiny domains.
MM_MAX_DOMAIN = 256


class MatrixMechanism(StrategyMechanism):
    """Full strategy-space search; infeasible beyond toy domains."""

    name = "MM"

    def __init__(self, restarts: int = 3, maxiter: int = 1000, rng: int | None = 0):
        self.restarts = restarts
        self.maxiter = maxiter
        self.rng = rng

    def select(self, W: Matrix) -> Matrix:
        n = W.shape[1]
        if n > MM_MAX_DOMAIN:
            raise MemoryError(
                f"Matrix Mechanism SDP is infeasible for N={n} "
                f"(limit {MM_MAX_DOMAIN}); see paper Section 5.1"
            )
        V = W.gram().dense()
        result = opt_general(
            V, rng=self.rng, restarts=self.restarts, maxiter=self.maxiter
        )
        return result.strategy
