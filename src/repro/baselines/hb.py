"""HB: hierarchical strategies with optimized branching [Qardaji et al. 2013].

HB measures a b-ary tree of interval sums over the domain and picks the
branching factor b that minimizes an analytic estimate of average range-
query error — *regardless of the actual input workload* (the narrowness
the paper contrasts HDMM against).  A range query decomposes into at most
``2(b-1)`` nodes per level, and each node carries noise scaled to the tree
height h, giving the classic score ``(b-1)·h(b)³`` to minimize over b.

In d dimensions the strategy is the Kronecker product of per-attribute
hierarchies (each with its own optimized branching factor).
"""

from __future__ import annotations

import math

from ..linalg import Kronecker, Matrix, hierarchical
from ..workload.util import attribute_sizes
from .base import StrategyMechanism


def hb_branching(n: int, max_b: int = 32) -> int:
    """The branching factor minimizing ``(b-1)·ceil(log_b n)³``."""
    if n <= 2:
        return 2
    best_b, best_score = 2, math.inf
    for b in range(2, min(max_b, n) + 1):
        h = math.ceil(math.log(n, b)) + 1  # levels including leaves
        score = (b - 1) * h**3
        if score < best_score:
            best_b, best_score = b, score
    return best_b


class HB(StrategyMechanism):
    """Adaptive-branching hierarchical strategy (per attribute)."""

    name = "HB"

    def __init__(self, branching: int | None = None):
        self.branching = branching

    def select(self, W: Matrix) -> Matrix:
        sizes = attribute_sizes(W)
        factors = [
            hierarchical(n, self.branching or hb_branching(n)) for n in sizes
        ]
        return factors[0] if len(factors) == 1 else Kronecker(factors)
