"""GreedyH: workload-aware weighted hierarchies [Li et al. 2014].

DAWA's second stage: a binary hierarchy of interval sums whose *per-level
weights* are tuned to the input workload.  The original algorithm sets
weights greedily level by level; we solve the same search space exactly —
minimize the closed-form error over the (log n)-dimensional weight vector
with L-BFGS — which can only improve on the greedy schedule (the search
space, a weighted b=2 hierarchy, is identical).

With level Grams ``G_l`` (block-diagonal ones matrices) and weights λ, the
strategy ``A = [λ_0 H_0; ...; λ_h H_h]`` has sensitivity ``Σλ_l`` and
error ``(Σλ)² · tr[(Σ λ_l² G_l)⁻¹ WᵀW]``.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla
from scipy import optimize as sopt
from scipy import sparse as sp

from ..linalg import Matrix, SparseMatrix, VStack, Weighted
from ..workload.util import attribute_sizes
from .base import StrategyMechanism


def _level_matrices(n: int) -> list[SparseMatrix]:
    """Binary-hierarchy levels from the root interval down to singletons."""
    levels = []
    bounds = [0, n]
    while True:
        rows, cols = [], []
        for r in range(len(bounds) - 1):
            for c in range(bounds[r], bounds[r + 1]):
                rows.append(r)
                cols.append(c)
        M = sp.coo_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(len(bounds) - 1, n)
        )
        levels.append(SparseMatrix(M))
        if len(bounds) - 1 >= n:
            return levels
        # Split every interval of size > 1 in half.
        new_bounds = [0]
        for r in range(len(bounds) - 1):
            lo, hi = bounds[r], bounds[r + 1]
            if hi - lo > 1:
                new_bounds.append(lo + (hi - lo) // 2)
            new_bounds.append(hi)
        bounds = new_bounds


def optimize_level_weights(
    grams: list[np.ndarray], V: np.ndarray, maxiter: int = 200
) -> np.ndarray:
    """Minimize ``f(λ) = (Σλ)² tr[(Σλ²G_l)⁻¹ V]`` over positive weights.

    Optimizes in log space with the analytic gradient::

        ∂f/∂λ_l = 2(Σλ)·tr[X⁻¹V] - (Σλ)²·2λ_l·tr[G_l X⁻¹VX⁻¹]

    where the per-level traces come from a single ``S = X⁻¹VX⁻¹``
    (elementwise products with the block-structured G_l are cheap).
    """
    L = len(grams)
    n = V.shape[0]

    def objective(log_lam: np.ndarray):
        lam = np.exp(np.clip(log_lam, -30, 30))
        X = np.zeros((n, n))
        for l, G in enumerate(grams):
            X += lam[l] ** 2 * G
        try:
            cho = sla.cho_factor(X, check_finite=False)
        except (np.linalg.LinAlgError, ValueError):
            return np.inf, np.zeros(L)
        Y = sla.cho_solve(cho, V, check_finite=False)  # X⁻¹V
        trace = float(np.trace(Y))
        S = sla.cho_solve(cho, Y.T, check_finite=False)  # X⁻¹VᵀX⁻¹ = X⁻¹VX⁻¹
        total = lam.sum()
        f = total**2 * trace
        grad_lam = np.empty(L)
        for l, G in enumerate(grams):
            tr_l = float(np.sum(G * S.T))
            grad_lam[l] = 2.0 * total * trace - total**2 * 2.0 * lam[l] * tr_l
        return f, grad_lam * lam  # chain rule through λ = exp(log λ)

    res = sopt.minimize(
        objective,
        np.zeros(L),
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": maxiter},
    )
    return np.exp(np.clip(res.x, -30, 30))


class GreedyH(StrategyMechanism):
    """Weighted binary hierarchy tuned to the workload (1-D only)."""

    name = "GreedyH"

    def __init__(self, maxiter: int = 200):
        self.maxiter = maxiter

    def select(self, W: Matrix) -> Matrix:
        sizes = attribute_sizes(W)
        if len(sizes) != 1:
            raise ValueError("GreedyH is defined for one-dimensional domains")
        n = sizes[0]
        levels = _level_matrices(n)
        grams = [H.gram().dense() for H in levels]
        V = W.gram().dense()
        lam = optimize_level_weights(grams, V, self.maxiter)
        # Normalize: each level contributes λ_l to every column sum.
        lam = lam / lam.sum()
        return VStack(
            [Weighted(H, float(l)) for H, l in zip(levels, lam) if l > 1e-12]
        )

    def squared_error(self, W: Matrix) -> float:
        # The stacked hierarchy is a single coherent 1-D strategy (not a
        # budget-split union), so compute the exact Definition 7 error.
        from ..core.error import coherent_stack_error

        return coherent_stack_error(W, self.select(W), rng=0)
