"""The comparison mechanisms of paper Section 8.

===============  ======================  ==============================
Mechanism        Scope                   Search space
===============  ======================  ==============================
Identity         any                     {I}
LaplaceMechanism any                     {W}
Privelet         range workloads         Haar wavelet (fixed)
HB               range workloads         b-ary hierarchies
QuadTree         2-D range workloads     matched-level grid hierarchy
GreedyH          1-D workloads           weighted binary hierarchy
DataCube         marginal workloads      sets of marginals (greedy)
LRM              any (small N)           rank-r strategies (gradient)
MatrixMechanism  any (tiny N)            full space (SDP stand-in)
DAWA             1-D, data-dependent     partition + weighted hierarchy
PrivBayes        any, data-dependent     Bayesian network synthesis
===============  ======================  ==============================
"""

from .base import DataDependentMechanism, StrategyMechanism
from .datacube import DataCube
from .dawa import DAWA
from .greedyh import GreedyH
from .hb import HB, hb_branching
from .identity import IdentityMechanism
from .laplace import LaplaceMechanism
from .lrm import LRM
from .mm import MatrixMechanism
from .privbayes import PrivBayes
from .privelet import Privelet
from .quadtree import QuadTree

__all__ = [
    "DAWA",
    "DataCube",
    "DataDependentMechanism",
    "GreedyH",
    "HB",
    "IdentityMechanism",
    "LRM",
    "LaplaceMechanism",
    "MatrixMechanism",
    "PrivBayes",
    "Privelet",
    "QuadTree",
    "StrategyMechanism",
    "hb_branching",
]
