"""DAWA: the Data- and Workload-Aware mechanism [Li et al. 2014].

Two stages over a one-dimensional domain:

1. **Private partitioning** — spend ``ratio·ε`` to find contiguous buckets
   that are approximately uniform.  Candidate intervals have power-of-two
   lengths (as in the original algorithm); bucket costs combine the
   within-bucket deviation of a noise-perturbed data vector with a noise
   penalty per bucket, and dynamic programming finds the least-cost
   partition.  *Substitution (DESIGN.md):* we use squared deviation
   instead of absolute deviation so all O(n log n) interval costs come
   from prefix sums; both cost functions reward merging uniform regions,
   which is the behaviour the experiments depend on.
2. **Workload-aware measurement** — spend the remaining budget measuring
   the bucket totals with a strategy optimized for the *reduced* workload
   ``W̃ = W·U`` (U = uniform-expansion matrix).  The original uses
   GreedyH; Appendix B.3 of the paper swaps in HDMM's OPT_0, which is the
   ``stage2="hdmm"`` option here (reproducing Table 6).

Error is data-dependent; compare mechanisms with
``estimate_squared_error`` (Monte-Carlo, 25 trials in the paper).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from ..core.measure import laplace_measure, laplace_noise
from ..core.reconstruct import least_squares
from ..linalg import Dense, Matrix, SparseMatrix
from ..optimize.opt0 import opt_0
from .base import DataDependentMechanism
from .greedyh import GreedyH


def partition_costs(noisy: np.ndarray, penalty: float) -> tuple[np.ndarray, list]:
    """Least-cost partition of the domain into power-of-two-length buckets.

    Returns the DP table and the list of bucket ``(start, end)`` pairs
    (end exclusive).  Bucket cost = squared deviation of the noisy counts
    within the bucket plus a constant noise ``penalty`` per bucket.
    """
    n = len(noisy)
    prefix = np.concatenate([[0.0], np.cumsum(noisy)])
    prefix2 = np.concatenate([[0.0], np.cumsum(noisy**2)])

    best = np.full(n + 1, np.inf)
    best[0] = 0.0
    choice = np.zeros(n + 1, dtype=int)
    lengths = [1 << l for l in range((n).bit_length()) if (1 << l) <= n]
    for j in range(1, n + 1):
        for length in lengths:
            i = j - length
            if i < 0:
                break
            seg_sum = prefix[j] - prefix[i]
            seg_sq = prefix2[j] - prefix2[i]
            dev = seg_sq - seg_sum**2 / length
            cost = best[i] + dev + penalty
            if cost < best[j]:
                best[j] = cost
                choice[j] = length
    buckets = []
    j = n
    while j > 0:
        length = choice[j]
        buckets.append((j - length, j))
        j -= length
    buckets.reverse()
    return best, buckets


def expansion_matrix(buckets: list, n: int) -> SparseMatrix:
    """Uniform-expansion matrix U (n x k): cell i of bucket b gets 1/|b|."""
    rows, cols, vals = [], [], []
    for b, (lo, hi) in enumerate(buckets):
        size = hi - lo
        for i in range(lo, hi):
            rows.append(i)
            cols.append(b)
            vals.append(1.0 / size)
    return SparseMatrix(sp.coo_matrix((vals, (rows, cols)), shape=(n, len(buckets))))


def aggregation_matrix(buckets: list, n: int) -> SparseMatrix:
    """Bucket-total matrix P (k x n): row b sums the cells of bucket b."""
    rows, cols = [], []
    for b, (lo, hi) in enumerate(buckets):
        for i in range(lo, hi):
            rows.append(b)
            cols.append(i)
    vals = np.ones(len(rows))
    return SparseMatrix(sp.coo_matrix((vals, (rows, cols)), shape=(len(buckets), n)))


class DAWA(DataDependentMechanism):
    """Two-stage data-aware mechanism for 1-D workloads.

    Parameters
    ----------
    ratio:
        Fraction of ε spent on partitioning (0.25 in the original paper).
    stage2:
        ``"greedyh"`` (original) or ``"hdmm"`` (OPT_0 on the reduced
        workload — the paper's Appendix B.3 modification).
    """

    name = "DAWA"

    def __init__(self, ratio: float = 0.25, stage2: str = "greedyh"):
        if not 0 < ratio < 1:
            raise ValueError("ratio must be in (0, 1)")
        if stage2 not in ("greedyh", "hdmm"):
            raise ValueError(f"unknown stage2 {stage2!r}")
        self.ratio = ratio
        self.stage2 = stage2

    def answer(
        self,
        W: Matrix,
        x: np.ndarray,
        eps: float,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        rng = np.random.default_rng(rng)
        x = np.asarray(x, dtype=np.float64)
        n = len(x)
        eps1 = self.ratio * eps
        eps2 = eps - eps1

        # Stage 1: partition from a noisy copy of the data.
        noisy = x + laplace_noise(1.0 / eps1, n, rng)
        penalty = 2.0 / eps2**2  # expected per-bucket noise variance
        _, buckets = partition_costs(noisy, penalty)
        k = len(buckets)

        # Stage 2: measure bucket totals with a workload-aware strategy.
        U = expansion_matrix(buckets, n)
        P = aggregation_matrix(buckets, n)
        reduced_W = Dense(W.matmat(U.dense()))  # W·U, m x k
        bucket_totals = P.matvec(x)

        if self.stage2 == "greedyh":
            strategy = GreedyH().select(reduced_W)
        else:
            res = opt_0(reduced_W.gram().dense(), rng=rng)
            strategy = res.strategy

        y = laplace_measure(strategy, bucket_totals, eps2, rng)
        s_hat = least_squares(strategy, y)
        return reduced_W.matvec(s_hat)
