"""Improving a state-of-the-art data-dependent mechanism with HDMM.

Reproduces the idea of the paper's Appendix B.3: DAWA first partitions the
domain into approximately-uniform buckets, then measures bucket statistics
with a workload-aware strategy.  Swapping DAWA's GreedyH second stage for
HDMM's OPT_0 lowers error with no change to the privacy guarantee.

Run:  python examples/dawa_hybrid.py
"""

import numpy as np

from repro.baselines import DAWA
from repro.data import DPBENCH_1D
from repro.workload import prefix_1d

DOMAIN = 1024
SCALE = 100_000
EPS = float(np.sqrt(2.0))  # the ε used in the paper's Table 6
TRIALS = 10


def main() -> None:
    W = prefix_1d(DOMAIN)
    print(f"Prefix workload on n={DOMAIN}, ε=√2, {TRIALS} trials per dataset\n")
    print(f"{'dataset':12s} {'DAWA':>12s} {'DAWA+HDMM':>12s} {'improvement':>12s}")
    for name, gen in DPBENCH_1D.items():
        x = gen(DOMAIN, SCALE, 0)
        original = DAWA(stage2="greedyh").estimate_squared_error(
            W, x, eps=EPS, trials=TRIALS, rng=1
        )
        improved = DAWA(stage2="hdmm").estimate_squared_error(
            W, x, eps=EPS, trials=TRIALS, rng=1
        )
        print(
            f"{name:12s} {original:12.3g} {improved:12.3g} "
            f"{np.sqrt(original / improved):11.2f}x"
        )


if __name__ == "__main__":
    main()
