"""Quickstart: answer a range-query workload under differential privacy.

Builds the workload of *all* range queries over a 1-D domain, lets HDMM
select an optimized measurement strategy, runs the private mechanism, and
compares its accuracy against the two baselines everyone starts from —
the Laplace Mechanism (noise per query) and Identity (noise per cell).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import HDMM, workload
from repro.baselines import IdentityMechanism, LaplaceMechanism
from repro.core import error_ratio

DOMAIN_SIZE = 256
EPS = 1.0


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. The workload: all contiguous range queries on a domain of 256 bins.
    W = workload.all_range(DOMAIN_SIZE)
    print(f"workload: {W.shape[0]} range queries over {DOMAIN_SIZE} bins")

    # 2. SELECT — data-independent, reusable across datasets and ε values.
    mech = HDMM(restarts=3, rng=0).fit(W)
    print(f"selected strategy: {mech.strategy}")

    # 3. MEASURE + RECONSTRUCT on a synthetic histogram.
    x = rng.poisson(100, DOMAIN_SIZE).astype(float)
    answers = mech.run(x, eps=EPS, rng=1)
    truth = W.matvec(x)
    emp_rmse = np.sqrt(np.mean((answers - truth) ** 2))
    print(f"empirical per-query RMSE at ε={EPS}: {emp_rmse:.2f}")
    print(f"expected per-query RMSE (closed form): {mech.expected_rootmse(EPS):.2f}")

    # 4. How much did optimization buy us?
    for baseline in (LaplaceMechanism(), IdentityMechanism()):
        ratio = np.sqrt(baseline.squared_error(W) / mech.result.loss)
        print(f"error ratio vs {baseline.name}: {ratio:.2f}x better")

    # 5. Batched ε sweep — the serving engine answers a whole grid of
    # (ε, noise-trial) pairs in one call: the strategy answers are
    # computed once, each trial draws noise from its own spawned seed
    # child, and all inferences are solved as one multi-RHS least
    # squares.  The closed-form expected RMSE vectorizes over the same
    # grid for comparison.
    eps_grid = np.array([0.1, 0.5, 1.0, 2.0])
    sweep = mech.run_batch(x, eps_grid, trials=8, rng=2)  # (4, 8, m)
    emp = np.sqrt(((sweep - truth) ** 2).mean(axis=(1, 2)))
    expected = mech.expected_rootmse(eps_grid)
    print("\nbatched ε sweep (8 trials each):")
    for e, emp_r, exp_r in zip(eps_grid, emp, expected):
        print(f"  ε={e:4.1f}: empirical RMSE {emp_r:8.2f}   expected {exp_r:8.2f}")


if __name__ == "__main__":
    main()
