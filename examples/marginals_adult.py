"""Marginal tabulations on the Adult schema — the OPT_M showcase.

Builds the workload of all 1- and 2-way marginals over the UCI Adult
domain (75 x 16 x 5 x 2 x 20), optimizes a *marginals* strategy with
OPT_M, and runs the full mechanism end-to-end on synthetic correlated
microdata, reporting per-marginal empirical error next to the closed-form
expectation.

Run:  python examples/marginals_adult.py
"""

import numpy as np

from repro import HDMM
from repro.core import expected_error
from repro.data import adult_domain, correlated_tensor
from repro.linalg import index_to_subset
from repro.workload import as_union_of_products, up_to_k_marginals

EPS = 1.0


def main() -> None:
    domain = adult_domain()
    W = up_to_k_marginals(domain, 2)
    terms = as_union_of_products(W)
    print(f"Adult domain {domain} — {len(terms)} marginals, "
          f"{W.shape[0]} counting queries")

    mech = HDMM(restarts=3, rng=0).fit(W)
    strategy = mech.strategy
    print(f"selected: {strategy}")
    if hasattr(strategy, "theta"):
        print("measured marginals (weight > 1%):")
        for a in np.nonzero(strategy.theta > 0.01)[0]:
            subset = index_to_subset(int(a), domain.attributes)
            label = " x ".join(subset) if subset else "(total)"
            print(f"  {label:30s} weight {strategy.theta[a]:.3f}")

    x = correlated_tensor(domain, scale=50_000, rng=0)
    answers = mech.run(x, eps=EPS, rng=1)
    truth = W.matvec(x)
    emp = float(np.sum((answers - truth) ** 2))
    exp = expected_error(W, strategy, EPS)
    print(f"total squared error: empirical {emp:.3g} vs expected {exp:.3g}")
    print(f"per-query RMSE: {np.sqrt(emp / W.shape[0]):.2f} "
          f"(true counts average {truth.mean():.0f})")


if __name__ == "__main__":
    main()
