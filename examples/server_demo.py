"""The resilient HTTP front-end, exercised end to end from a client.

Starts the asyncio server (`repro.server`) on a background thread over a
WAL-backed session, then plays the request patterns the front-end is
built for:

1. a **measured** query (debits the ε-ledger, returns provenance and
   remaining budget over the wire),
2. the same query again — served **free** from the cached
   reconstruction through the accelerator route,
3. an **induced overload**: one slow measurement pins the single
   executor slot while a burst of measured requests arrives — the
   admission controller sheds the excess with structured 429/503 +
   ``Retry-After`` while free reads keep serving underneath,
4. a **degraded** request: budget exhausted → 403 with the exact
   remaining ε; covered queries still answer for free,
5. a **deadline** too tight for its work → 504 with zero ε spent,
6. graceful drain: in-flight work finishes its WAL append, then the
   server stops.

Run:  PYTHONPATH=src python examples/server_demo.py
"""

import http.client
import json
import threading
import time

import numpy as np

from repro.api import Schema, Session
from repro.server.app import ServerApp
from repro.server.http import serve_in_thread
from repro.service import PrivacyAccountant, faults


def post(port: int, payload: dict, timeout: float = 30.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(
            "POST", "/query", json.dumps(payload),
            {"Content-Type": "application/json"},
        )
        r = conn.getresponse()
        return r.status, dict(r.getheaders()), json.loads(r.read())
    finally:
        conn.close()


def show(tag: str, status: int, body: dict) -> None:
    keys = (
        "charged", "remaining", "code", "reason", "degraded",
        "remaining_epsilon", "stage", "epsilon_spent",
    )
    brief = {k: body[k] for k in keys if k in body}
    if "answers" in body:
        brief["answers"] = [
            {"route": a["route"], "epsilon": a["epsilon"],
             "values": [round(v, 2) for v in a["values"][:4]] + ["..."]}
            for a in body["answers"]
        ]
    print(f"  [{tag}] HTTP {status} {json.dumps(brief)}")


def main() -> None:
    schema = Schema.from_spec({"age": 16, "income": 8, "sex": ["M", "F"]})
    data = (
        np.random.default_rng(7).poisson(25, schema.domain.shape())
        .astype(float)
    )
    # direct_miss_threshold=0 routes every miss through a strategy fit
    # (route "cold") so the demo exercises the breaker-guarded path; the
    # default keeps small miss batches on the fit-free direct route.
    session = Session(
        accountant=PrivacyAccountant(default_cap=2.0),
        direct_miss_threshold=0,
    )
    app = ServerApp(session, max_measure=1, max_queue=1, per_dataset=1)
    app.register("adult", schema, data, epsilon_cap=2.0)
    # One dataset per demonstration: a measured request only happens when
    # no cached reconstruction covers the query, and on a small domain a
    # single measurement covers nearly everything — fresh tenants keep
    # each scenario honest.  (The strategy fit is memoized per workload
    # fingerprint, so these all share the one fit.)
    for name in ("slow", "burst0", "burst1", "burst2", "fresh", "cold"):
        app.register(name, schema, data, epsilon_cap=2.0)

    with serve_in_thread(app) as srv:
        print(f"serving on 127.0.0.1:{srv.port}")

        print("\n1. measured query (cold fit + ε debit):")
        marginal_age = {"dataset": "adult", "queries": [{"marginal": ["age"]}]}
        s, _, b = post(srv.port, {**marginal_age, "eps": 0.5, "seed": 1,
                                  "timeout": 30.0})
        show("measured", s, b)

        print("\n2. same query again — free from the cached reconstruction:")
        s, _, b = post(srv.port, marginal_age)
        show("free", s, b)

        print("\n3. overload: slow measurement pins the one slot, burst sheds:")
        inj = faults.FaultInjector().delay("engine.measure.noise", 0.8, times=4)
        with inj.active():
            slow_result = {}

            def slow():
                slow_result["r"] = post(srv.port, {
                    "dataset": "slow", "queries": [{"marginal": ["age"]}],
                    "eps": 0.5, "seed": 2, "timeout": 10.0,
                })

            t = threading.Thread(target=slow)
            t.start()
            time.sleep(0.25)  # let it occupy the executor slot
            burst_results = [None] * 3

            def burst(i):
                burst_results[i] = post(srv.port, {
                    "dataset": f"burst{i}",
                    "queries": [{"marginal": ["age"]}],
                    "eps": 0.1, "seed": 10 + i, "timeout": 0.3,
                })

            burst_threads = [
                threading.Thread(target=burst, args=(i,)) for i in range(3)
            ]
            for bt in burst_threads:
                bt.start()
            for bt in burst_threads:
                bt.join()
            for i, (s, h, b) in enumerate(burst_results):
                b["retry_after"] = h.get("Retry-After")
                show(f"burst {i}", s, b)
            s, _, b = post(srv.port, marginal_age)  # free read still serves
            show("free during overload", s, b)
            t.join()
        s, b = slow_result["r"][0], slow_result["r"][2]
        show("slow request completed", s, b)

        print("\n4. budget exhaustion — refused with exact remaining ε:")
        s, _, b = post(srv.port, {
            "dataset": "fresh", "queries": [{"marginal": ["income", "sex"]}],
            "eps": 5.0, "seed": 3,
        })
        show("over budget", s, b)
        s, _, b = post(srv.port, marginal_age)  # degraded: free still works
        show("free while exhausted", s, b)

        print("\n5. deadline too tight for a fresh fit — 504, zero ε spent:")
        spent_before = session.service.accountant.spent("cold")
        inj = faults.FaultInjector().delay("engine.fit", 0.5)
        with inj.active():
            s, _, b = post(srv.port, {
                "dataset": "cold",
                "queries": [{"count": [{"attr": "sex", "eq": "F"}]}],
                "eps": 0.1, "seed": 4, "timeout": 0.1,
            })
        show("deadline", s, b)
        spent = session.service.accountant.spent("cold")
        assert spent == spent_before == 0.0
        print(f"  accountant spend on 'cold' after the refusal: {spent}")

        print("\n6. health + metrics, then drain:")
        conn = http.client.HTTPConnection("127.0.0.1", srv.port, timeout=10)
        conn.request("GET", "/readyz")
        r = conn.getresponse()
        print(f"  /readyz -> HTTP {r.status} {r.read().decode()}")
        conn.close()
    print("drained and stopped.")


if __name__ == "__main__":
    main()
