"""Service walkthrough: fit once, restart, serve from cache for free.

HDMM's two economic facts (paper Section 3.6):

* SELECT is expensive but **data-independent** — a strategy fitted for a
  workload is reusable forever, across datasets and ε values;
* MEASURE spends privacy budget, but everything after the noisy
  measurement is **post-processing** — answering more queries from an
  existing reconstruction costs zero additional budget.

This demo walks the serving layer built on those facts:

1. a "first process" fits a strategy for the range-total union workload
   and persists it in a :class:`~repro.service.StrategyRegistry`;
2. a "restarted process" (fresh ``QueryService`` over the same
   directory) loads it serve-ready — no re-optimization, no
   re-factorization — and runs one accounted measurement sweep;
3. ad-hoc linear queries inside the measured span are then answered from
   the cached reconstruction with **zero** accountant debit, and a
   request that would blow the dataset's ε cap is refused before any
   noise is drawn.

Run:  python examples/service_demo.py
"""

import tempfile
import time

import numpy as np

from repro import workload
from repro.service import (
    BudgetExceededError,
    PrivacyAccountant,
    QueryService,
    StrategyRegistry,
)

DOMAIN_1D = 32  # per-axis size of the 2-D range-total union workload
EPS_CAP = 5.0


def main() -> None:
    # Fresh directory per run so the cold-vs-warm comparison is honest; a
    # real deployment points every process at one shared location.
    registry_dir = tempfile.mkdtemp(prefix="repro-service-demo-")
    W = workload.range_total_union(DOMAIN_1D)
    n = W.shape[1]
    rng = np.random.default_rng(0)
    x = rng.poisson(40, n).astype(float)

    # ------------------------------------------------------------------
    # Process 1: fit once, persist.
    # ------------------------------------------------------------------
    registry = StrategyRegistry(registry_dir)
    svc1 = QueryService(registry=registry, restarts=5, rng=0)
    t0 = time.perf_counter()
    key, strategy, loss, from_registry = svc1.prepare(W)
    t_first = time.perf_counter() - t0
    print(f"process 1: prepared {key[:12]}… in {t_first:.2f}s "
          f"(from_registry={from_registry})")
    print(f"  strategy: {strategy}")

    # ------------------------------------------------------------------
    # Process 2 (simulated restart): same directory, fresh everything.
    # ------------------------------------------------------------------
    accountant = PrivacyAccountant()
    svc2 = QueryService(
        registry=StrategyRegistry(registry_dir),
        accountant=accountant,
        restarts=5,
        rng=0,
    )
    svc2.add_dataset("taxi", x, epsilon_cap=EPS_CAP)
    t0 = time.perf_counter()
    key2, _, _, warm = svc2.prepare(W)
    t_warm = time.perf_counter() - t0
    assert warm and key2 == key, "restart must find the persisted strategy"
    print(f"process 2: warm load in {t_warm * 1e3:.1f}ms "
          f"({t_first / max(t_warm, 1e-9):.0f}x faster than the cold fit)")

    # One accounted measurement sweep: debited *before* noise is drawn.
    eps_grid = np.array([0.5, 1.0])
    served = svc2.measure("taxi", W, eps_grid, trials=1, rng=7)
    print(f"measured ε-sweep {eps_grid.tolist()}: charged "
          f"{served.charged:.2f}, spent {accountant.spent('taxi'):.2f}"
          f"/{EPS_CAP:.2f}")

    # ------------------------------------------------------------------
    # Ad-hoc queries: free post-processing from the cached x̂.
    # ------------------------------------------------------------------
    # "How many records in the first quarter of axis 0?" — a range never
    # asked verbatim by the workload, but inside the measured span.
    q_corner = np.kron(
        (np.arange(DOMAIN_1D) < DOMAIN_1D // 4).astype(float),
        np.ones(DOMAIN_1D),
    )
    spent_before = accountant.spent("taxi")
    answer = svc2.query("taxi", q_corner)
    assert accountant.spent("taxi") == spent_before, "span queries are free"
    print(f"ad-hoc range query: answer {answer.values[0]:.0f} "
          f"(truth {q_corner @ x:.0f}) — zero budget spent")

    batch = svc2.answer("taxi", [q_corner, np.ones(n)])
    print(f"batch of {len(batch.answers)} ad-hoc queries: "
          f"{batch.hits} free hits, {batch.misses} misses, "
          f"charged {batch.charged:.2f}")

    # ------------------------------------------------------------------
    # The cap is a hard gate: refused before any noise is drawn.
    # ------------------------------------------------------------------
    try:
        svc2.measure("taxi", W, eps=100.0, rng=8)
    except BudgetExceededError as e:
        print(f"over-cap request refused: {e}")
    print(f"final ledger: {accountant}")


if __name__ == "__main__":
    main()
