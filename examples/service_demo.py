"""Service walkthrough: declare queries over a schema, let the planner
route them — with the matrix-level physical API shown underneath.

HDMM's two economic facts (paper Section 3.6):

* SELECT is expensive but **data-independent** — a strategy fitted for a
  workload is reusable forever, across datasets and ε values;
* MEASURE spends privacy budget, but everything after the noisy
  measurement is **post-processing** — answering more queries from an
  existing reconstruction costs zero additional budget.

The declarative layer (`repro.api`) puts those facts behind a planner:

1. a `Session` registers data + schema once; clients then *say what they
   want* over named attributes — `A("x").between(...)`,
   `marginal("x", "y")`, `total()` — never which row of which Kronecker
   product;
2. `ds.plan(exprs, eps)` shows the routing table (accelerator / cache /
   warm / direct / cold) and the exact ε debit **before** any budget is
   spent;
3. `ds.ask_many` compiles, dedups, and serves: repeated expressions cost
   one answer and one debit, and everything inside a measured span is
   free;
4. a request that would blow the dataset's ε cap is refused before any
   noise is drawn;
5. with `repro.obs` enabled, every answer carries a trace ID resolvable
   to the full span tree, the metrics registry counts answers by
   dataset × route, and `sess.budget_report()` renders the ε position
   replayed from the accountant's ledger;
6. the mechanism is a per-batch choice: the same plan prints expected
   RMSE under Laplace *and* Gaussian at the same budget, `ask_many(...,
   mechanism="gaussian", delta=...)` measures under (ε, δ)-DP via zCDP,
   and an (ε, δ) budget policy refuses over-cap requests with a 403
   body reporting the remaining budget in the policy's native unit.

`matrix_level_demo` keeps the physical `QueryService` flow (hand-built
implicit matrices) — the layer the planner compiles down to.

Run:  python examples/service_demo.py
"""

import tempfile
import time

import numpy as np

import repro.obs as obs
from repro import workload
from repro.api import A, Schema, Session, buckets, marginal, total
from repro.privacy import ApproxDPPolicy
from repro.server.errors import error_response
from repro.service import (
    BudgetExceededError,
    PrivacyAccountant,
    QueryService,
    StrategyRegistry,
)

GRID = 32  # per-axis size of the 2-D taxi-style grid
EPS_CAP = 5.0


def declarative_demo(registry_dir: str) -> None:
    print("=" * 64)
    print("Declarative API: Session + expressions + lazy plans")
    print("=" * 64)
    schema = Schema.from_spec({"x": GRID, "y": GRID})
    rng = np.random.default_rng(0)
    data = rng.poisson(40, schema.domain.size()).astype(float)

    sess = Session(
        registry=StrategyRegistry(registry_dir),
        accountant=PrivacyAccountant(),
        restarts=5,
        rng=0,
    )
    ds = sess.dataset("taxi", schema=schema, data=data, epsilon_cap=EPS_CAP)

    # A mixed batch — two duplicates on purpose: the planner dedups them.
    exprs = [
        A("x").between(0, GRID // 4 - 1),          # "first quarter of x"
        marginal("x"),                              # the x histogram
        A("x").between(0, GRID // 4 - 1),          # duplicate of query 1
        total(),
        A("x").between(8, 15) & A("y").between(8, 15),  # a 2-D block
    ]

    # The plan is inspectable *before* any budget is spent.
    plan = ds.plan(exprs, eps=1.0)
    print(plan.explain())
    print()

    spent_before = ds.spent
    answers = ds.ask_many(exprs, eps=1.0, rng=7)
    print(f"served {len(answers)} expressions; "
          f"ε spent {ds.spent - spent_before:g} "
          f"(plan estimated {plan.total_epsilon:g})")
    for a in answers[:2] + answers[3:]:
        print(f"  {a}")
    print()

    # Everything in the measured span is now free post-processing.
    plan2 = ds.plan(exprs + [A("y").between(0, 7)], eps=1.0)
    print("replay + one new query inside the span:")
    print(plan2.explain())
    again = ds.ask(A("y").between(0, 7))
    print(f"  new ad-hoc query served {again.route} "
          f"(ε charged {again.epsilon:g})")
    # Note the plan's RMSE column: the y-range lies in the measured span
    # (so it is *free*), but the strategy was optimized for x-heavy
    # traffic — the estimate warns that this free answer is inaccurate,
    # and that re-measuring under its own budget would be wiser.
    print()

    # O(1) reads: hits whose rows decompose into axis-aligned boxes ride
    # the summed-area accelerator — each answer is a 2^k-corner lookup
    # on a prefix-sum table over the cached reconstruction, bit-identical
    # to the matvec path but microseconds per query at any domain size.
    # Per-query route provenance says which path actually served it.
    block = A("x").between(8, 15) & A("y").between(8, 15)
    ds.ask(block)  # first hit builds (and persists) the table
    reps = 200
    t0 = time.perf_counter()
    for _ in range(reps):
        hit = ds.ask(block)
    us = (time.perf_counter() - t0) / reps * 1e6
    print(f"accelerated 2-D block count: route={hit.route!r} "
          f"ε={hit.epsilon:g}  ~{us:.0f}µs/query end-to-end")
    bands = ds.ask(buckets("x", (0, 7), (8, 23), (24, GRID - 1)))
    print(f"custom x bands via buckets(): {bands.values.round().tolist()} "
          f"— route={bands.route!r}, free")
    print()

    # The cap is a hard gate: refused before any noise is drawn.  (On
    # "taxi" everything above is covered by the measured span, so the
    # refusal needs a dataset with no reconstruction to hit a miss.)
    fresh = sess.dataset(
        "taxi-fresh", schema=schema, data=data, epsilon_cap=EPS_CAP
    )
    try:
        fresh.ask(marginal("x", "y"), eps=100.0)
    except BudgetExceededError as e:
        print(f"over-cap request refused: {e}")
    print(f"ledger: spent {ds.spent:g} / cap {EPS_CAP:g}\n")

    observability_demo(sess, ds)
    mechanism_demo(sess, schema, data)


def mechanism_demo(sess: Session, schema: Schema, data: np.ndarray) -> None:
    print("=" * 64)
    print("Mechanism choice: Laplace vs Gaussian at the same budget")
    print("=" * 64)
    # An (ε, δ) budget policy instead of a pure-ε cap: δ > 0 admits the
    # Gaussian mechanism (δ = 0 would forbid it before any noise).
    ds = sess.dataset(
        "taxi-dp",
        schema=schema,
        data=data,
        policy=ApproxDPPolicy(2.0, 1e-5),
    )
    exprs = [marginal("x"), total(), A("y").between(0, 7)]

    # One plan, both mechanisms' expected error: the rmse(lap)/rmse(gauss)
    # columns compare the noise each mechanism would add for the *same*
    # ε (Gaussian calibrated through zCDP at this δ, from L2 instead of
    # L1 sensitivity).  The mechanism= header records which one the
    # batch would actually measure under.
    plan = ds.plan(exprs, eps=1.0, mechanism="gaussian", delta=1e-6)
    print(plan.explain())
    print()

    answers = ds.ask_many(exprs, eps=1.0, mechanism="gaussian",
                          delta=1e-6, rng=11)
    # Replanning against the fitted strategy fills both RMSE columns:
    # the side-by-side is the σ/b gap between L2- and L1-calibrated
    # noise on this strategy, at identical ε.
    print("replanned against the fitted strategy (both columns priced):")
    print(ds.plan(exprs, eps=1.0, mechanism="gaussian", delta=1e-6).explain())
    print()
    acct = sess.service.accountant
    curve = acct.curve("taxi-dp")
    print(f"measured under mechanism={answers[0].mechanism!r}: "
          f"ε spent {curve.epsilon:g}, δ spent {curve.delta:g}, "
          f"ρ position {curve.rho:.4g}")
    print(f"remaining (native units): {acct.native_remaining('taxi-dp')}")
    print()

    # Over-cap refusal, as the HTTP front-end reports it: the 403 body
    # names the active policy and the exact remaining (ε, δ).
    try:
        acct.check("taxi-dp", 100.0, mechanism="gaussian", delta=1e-6)
    except BudgetExceededError as e:
        status, _, body = error_response(e)
        print(f"over-cap request → HTTP {status}: policy={body['policy']!r} "
              f"remaining={body['remaining']}")
    print()


def observability_demo(sess: Session, ds) -> None:
    print("=" * 64)
    print("Observability: traces, metrics, and the ε-spend report")
    print("=" * 64)
    # Everything above ran uninstrumented (the default: the disabled
    # layer costs an attribute check per call site).  Flip it on and the
    # same session starts producing traces and counters.
    obs.enable()
    try:
        answers = ds.ask_many(
            [marginal("x"), total(), A("y").between(0, 7)], eps=None
        )
        tid = answers[0].trace_id
        print(f"trace {tid} for a 3-expression batch:")
        for sp in obs.get_trace(tid):
            indent = "    " if sp.parent_id is not None else "  "
            attrs = f"  {sp.attrs}" if sp.attrs else ""
            print(f"{indent}{sp.name:<16} {sp.duration_ms:8.3f}ms{attrs}")
        print()

        print("ε-spend report replayed from the accountant's ledger:")
        print(sess.budget_report().render())
        print()

        print("Prometheus exposition (service counters):")
        for line in obs.render_text().splitlines():
            if line.startswith(("service_answers_total", "# TYPE service_")):
                print(f"  {line}")
    finally:
        obs.disable()
        obs.reset()
    print()


def matrix_level_demo(registry_dir: str) -> None:
    print("=" * 64)
    print("Physical API: QueryService over hand-built implicit matrices")
    print("=" * 64)
    W = workload.range_total_union(GRID)
    n = W.shape[1]
    x = np.random.default_rng(0).poisson(40, n).astype(float)

    # Process 1: fit once, persist.
    registry = StrategyRegistry(registry_dir)
    svc1 = QueryService(registry=registry, restarts=5, rng=0)
    t0 = time.perf_counter()
    key, strategy, loss, from_registry = svc1.prepare(W)
    t_first = time.perf_counter() - t0
    print(f"process 1: prepared {key[:12]}… in {t_first:.2f}s "
          f"(from_registry={from_registry})")

    # Process 2 (simulated restart): same directory, fresh everything.
    accountant = PrivacyAccountant()
    svc2 = QueryService(
        registry=StrategyRegistry(registry_dir),
        accountant=accountant,
        restarts=5,
        rng=0,
    )
    svc2.add_dataset("taxi", x, epsilon_cap=EPS_CAP)
    t0 = time.perf_counter()
    key2, _, _, warm = svc2.prepare(W)
    t_warm = time.perf_counter() - t0
    assert warm and key2 == key, "restart must find the persisted strategy"
    print(f"process 2: warm load in {t_warm * 1e3:.1f}ms "
          f"({t_first / max(t_warm, 1e-9):.0f}x faster than the cold fit)")

    # One accounted measurement sweep: debited *before* noise is drawn.
    eps_grid = np.array([0.5, 1.0])
    served = svc2.measure("taxi", W, eps_grid, trials=1, rng=7)
    print(f"measured ε-sweep {eps_grid.tolist()}: charged "
          f"{served.charged:.2f}, spent {accountant.spent('taxi'):.2f}"
          f"/{EPS_CAP:.2f}")

    # Ad-hoc queries: free from the cached x̂ when inside the span, and a
    # cold *single* query reaches the direct fast path via query(eps=...).
    q_corner = np.kron(
        (np.arange(GRID) < GRID // 4).astype(float), np.ones(GRID)
    )
    answer = svc2.query("taxi", q_corner)
    assert answer.hit
    print(f"ad-hoc range query: answer {answer.values[0]:.0f} "
          f"(truth {q_corner @ x:.0f}) — route={answer.route!r}, "
          f"zero budget spent")
    batch = svc2.answer("taxi", [q_corner, np.ones(n)])
    print(f"batch of {len(batch.answers)} ad-hoc queries: "
          f"{batch.hits} free hits, {batch.misses} misses, "
          f"charged {batch.charged:.2f}")
    print(f"final ledger: {accountant}")


def main() -> None:
    # Fresh directories per run so the cold-vs-warm comparisons are
    # honest; a real deployment points every process at one location.
    declarative_demo(tempfile.mkdtemp(prefix="repro-api-demo-"))
    matrix_level_demo(tempfile.mkdtemp(prefix="repro-service-demo-"))


if __name__ == "__main__":
    main()
