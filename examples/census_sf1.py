"""The paper's motivating use case: Census Summary File 1 tabulations.

Builds the SF1 proxy workload over the CPH Person schema
(Hispanic x Sex x Race x Relationship x Age — 500,480 cells; plus State
for SF1+ at 25.5M cells), selects an HDMM strategy, and reports the
error improvement over the Identity and Laplace baselines.  The strategy
selection never touches data, mirroring how a statistical agency would
fix the strategy once per decennial workload.

Run:  python examples/census_sf1.py [--plus]
"""

import argparse
import time

import numpy as np

from repro.baselines import IdentityMechanism, LaplaceMechanism
from repro.optimize import opt_hdmm
from repro.workload import implicit_vectorize, sf1_workload


def main(plus: bool = False) -> None:
    name = "SF1+" if plus else "SF1"
    wl = sf1_workload(plus=plus)
    W = implicit_vectorize(wl)
    print(f"{name}: {len(wl)} products, {wl.num_queries()} counting queries, "
          f"domain size {W.shape[1]:,}")

    t0 = time.time()
    result = opt_hdmm(W, restarts=3, rng=0)
    print(f"strategy selection took {time.time() - t0:.1f}s "
          f"→ {type(result.strategy).__name__}")

    for mech in (IdentityMechanism(), LaplaceMechanism()):
        ratio = np.sqrt(mech.squared_error(W) / result.loss)
        print(f"  {mech.name}: {ratio:.2f}x higher error than HDMM")

    # Per-query expected RMSE across a whole ε grid — one vectorized call
    # (strategy error is ε-independent, so the sweep costs one strategy
    # evaluation).  An agency would quote these numbers when negotiating
    # the privacy budget for the decennial release.
    from repro.core import rootmse

    eps_grid = np.array([0.1, 0.25, 0.5, 1.0, 2.0])
    rmses = rootmse(W, result.strategy, eps_grid)
    print("expected per-query RMSE (batched ε sweep):")
    for e, r in zip(eps_grid, rmses):
        print(f"  ε={e:5.2f}: {r:10.1f} persons")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--plus", action="store_true", help="use SF1+ (state level)")
    main(parser.parse_args().plus)
