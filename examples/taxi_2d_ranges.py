"""2-D spatial range queries on a Taxi-like grid.

The Prefix-Identity workload (P x I ∪ I x P) over a 64 x 64 spatial grid:
cumulative counts along each axis combined with per-row/column histograms.
HDMM's OPT_+ finds a union-of-products strategy; we compare against the
specialized 2-D baselines (QuadTree, HB, Privelet) and run the mechanism
on synthetic hot-spot data.

Run:  python examples/taxi_2d_ranges.py
"""

import numpy as np

from repro import HDMM
from repro.baselines import HB, IdentityMechanism, Privelet, QuadTree
from repro.data import spatial_2d
from repro.workload import prefix_identity

GRID = 64
EPS = 1.0


def main() -> None:
    W = prefix_identity(GRID)
    print(f"workload: {W.shape[0]} queries over a {GRID}x{GRID} grid")

    mech = HDMM(restarts=3, rng=0).fit(W)
    print(f"selected strategy: {type(mech.strategy).__name__}, "
          f"expected loss {mech.result.loss:.4g}")

    print("baseline error ratios (higher = worse than HDMM):")
    for baseline in (IdentityMechanism(), Privelet(), HB(), QuadTree()):
        ratio = np.sqrt(baseline.squared_error(W) / mech.result.loss)
        print(f"  {baseline.name:10s} {ratio:5.2f}x")

    x = spatial_2d(GRID, GRID, scale=200_000, rng=0)
    answers = mech.run(x, eps=EPS, rng=1)
    truth = W.matvec(x)
    print(f"empirical per-query RMSE at ε={EPS}: "
          f"{np.sqrt(np.mean((answers - truth) ** 2)):.1f} trips "
          f"(truth mean {truth.mean():.0f})")


if __name__ == "__main__":
    main()
