"""Accelerator-table acceptance tests.

The PR 7 contracts:

* accelerator answers are **bit-identical** (exact ``==``, no tolerance)
  to the cached-reconstruction matvec path across range / prefix /
  marginal / total / union / weighted / negated / bucketized queries on
  1-D through 4-D domains — on integer-valued reconstructions (every
  summation order is exact below 2^53, so the two association orders
  must agree to the bit);
* eligibility is structural and sound: anything that does not decompose
  into a bounded number of axis-aligned boxes falls through to the
  span-projection matvec path unchanged;
* tables obey the PR 6 durability contracts: atomic write, sha256 in
  the manifest, quarantine-and-rebuild from x̂ on corruption — never a
  crash, never a wrong answer;
* the recycled Ritz basis round-trips through the registry (PR 4
  carried-over gap);
* routing provenance: free box-decomposable hits report
  ``route="accelerator"`` with ε = 0 through both the engine and the
  declarative layer, and planned routes equal executed routes.
"""

import os

import numpy as np
import pytest

from repro.api import A, Schema, Session, buckets, compile_expr, marginal, prefix, total
from repro.linalg import (
    AllRange,
    Dense,
    Identity,
    Kronecker,
    Ones,
    Prefix,
    VStack,
    Weighted,
)
from repro.linalg.structured import WidthRange
from repro.service import (
    AcceleratorTable,
    PrivacyAccountant,
    QueryService,
    StrategyRegistry,
    range_spec_of,
    strategy_spans_everything,
)
from repro.service import faults
from repro.service.accelerator import MAX_BOXES_PER_ROW
from repro.service.engine import Reconstruction
from repro.workload.predicates import (
    Equals,
    Not,
    Range,
    bucket_predicates,
    vectorize_set,
)


def integer_x(n: int, seed: int = 0) -> np.ndarray:
    """Integer-valued float data: every summation order is exact."""
    return np.random.default_rng(seed).integers(0, 1000, size=n).astype(float)


DOMAINS = [(64,), (16, 4), (8, 2, 4), (3, 4, 2, 3)]


def queries_for(shape):
    """A spread of box-decomposable workloads over one domain shape."""
    d = len(shape)
    ident = [Identity(s) for s in shape]
    ones = [Ones(1, s) for s in shape]

    def kron(factors):
        return Kronecker(factors) if d > 1 else factors[0]

    qs = {
        "total": kron(ones),
        "marginal0": kron([ident[0]] + ones[1:]),
        "prefix0": kron([Prefix(shape[0])] + ones[1:]),
        "allrange0": kron([AllRange(shape[0])] + ones[1:]),
        "full_identity": kron(ident),
        "weighted": Weighted(kron([Prefix(shape[0])] + ones[1:]), 0.25),
        "union": VStack(
            [kron([ident[0]] + ones[1:]), kron(ones)]
        ),
    }
    if shape[0] >= 3:
        qs["width"] = kron([WidthRange(shape[0], 2)] + ones[1:])
    if d > 1:
        qs["marginal01"] = kron([ident[0], ident[1]] + ones[2:])
        # Negated interval on axis 0: two boxes per row.
        neg = vectorize_set([Not(Range(1, shape[0] - 1))], shape[0])
        qs["negated"] = kron([neg] + ones[1:])
        # Custom bucketization on axis 0 (overlap + gap + singleton).
        bks = vectorize_set(
            bucket_predicates([(0, 1), (1, shape[0] - 1), 0]), shape[0]
        )
        qs["buckets"] = kron([bks] + ones[1:])
    return qs


class TestBitIdentity:
    @pytest.mark.parametrize("shape", DOMAINS, ids=lambda s: f"{len(s)}d")
    def test_all_query_families_bit_identical(self, shape):
        n = int(np.prod(shape))
        x = integer_x(n)
        table = None
        for name, Q in queries_for(shape).items():
            spec = range_spec_of(Q)
            assert spec is not None, f"{name} should be eligible"
            assert spec.rows == Q.shape[0]
            if table is None or table.shape != spec.shape:
                table = AcceleratorTable(x, spec.shape)
            got = table.answer(spec)
            want = np.asarray(Q.matvec(x)).reshape(-1)
            # Exact ==, not a tolerance: integer data makes every
            # association order exact, so any difference is a bug.
            assert np.array_equal(got, want), name

    def test_one_d_prefix_and_ranges_bit_identical_on_floats(self):
        # 1-D Prefix/AllRange matvecs are themselves cumsum-based, so
        # the summed-area identity is the *same* float algebra — bitwise
        # equality holds for arbitrary float data, not just integers.
        x = np.random.default_rng(3).standard_normal(128)
        for Q in (Prefix(128), AllRange(128)):
            spec = range_spec_of(Q)
            table = AcceleratorTable(x, spec.shape)
            assert np.array_equal(table.answer(spec), Q.matvec(x))

    def test_dense_adhoc_rows(self):
        n = 64
        x = integer_x(n, seed=1)
        row = np.zeros(n)
        row[5:20] = 1.0
        Q = Dense(np.stack([row, 1.0 - row, np.full(n, 0.5)]))
        spec = range_spec_of(Q)
        assert spec is not None
        table = AcceleratorTable(x, spec.shape)
        assert np.array_equal(table.answer(spec), Q.matvec(x))

    def test_zero_row_answers_zero(self):
        n = 16
        Q = Dense(np.zeros((2, n)))
        spec = range_spec_of(Q)
        assert spec is not None and spec.rows == 2
        table = AcceleratorTable(integer_x(n), spec.shape)
        assert np.array_equal(table.answer(spec), np.zeros(2))


class TestEligibility:
    def test_alternating_mask_is_ineligible(self):
        n = 4 * MAX_BOXES_PER_ROW
        alt = np.zeros(n)
        alt[::2] = 1.0  # n/2 runs per row > MAX_BOXES_PER_ROW
        assert range_spec_of(Dense(alt[None, :])) is None

    def test_alternating_kron_factor_poisons_product(self):
        alt = np.zeros(2 * MAX_BOXES_PER_ROW + 2)
        alt[::2] = 1.0
        Q = Kronecker([Dense(alt[None, :]), Identity(4)])
        assert range_spec_of(Q) is None

    def test_mixed_vstack_shapes_are_ineligible(self):
        # Blocks folding the domain into different cubes cannot share a
        # table: the union falls back to the matvec path.
        Q = VStack(
            [Kronecker([Identity(4), Ones(1, 4)]), Dense(np.ones((1, 16)))]
        )
        assert range_spec_of(Q) is None

    def test_spec_is_memoized_on_the_instance(self):
        Q = Kronecker([Prefix(8), Ones(1, 4)])
        assert range_spec_of(Q) is range_spec_of(Q)
        bad = np.zeros(4 * MAX_BOXES_PER_ROW)
        bad[::2] = 1.0
        D = Dense(bad[None, :])
        assert range_spec_of(D) is None and range_spec_of(D) is None


class TestSpanCertificate:
    def test_structural_full_rank(self):
        assert strategy_spans_everything(Identity(8))
        assert strategy_spans_everything(Prefix(8))
        assert strategy_spans_everything(
            Kronecker([Identity(4), Prefix(3)])
        )
        assert strategy_spans_everything(
            VStack([Ones(1, 8), Weighted(Identity(8), 0.5)])
        )
        assert not strategy_spans_everything(Ones(1, 8))

    def test_pidentity_certifies(self):
        from repro.optimize.opt0 import PIdentity

        assert strategy_spans_everything(PIdentity(np.ones((2, 8))))

    def test_marginals_strategy_theta(self):
        from repro.linalg.marginals import MarginalsStrategy

        theta = np.zeros(8)
        theta[3] = 1.0
        partial = MarginalsStrategy((8, 2, 4), theta)
        assert not strategy_spans_everything(partial)
        theta2 = theta.copy()
        theta2[-1] = 1e-5  # any positive full-contingency weight
        assert strategy_spans_everything(MarginalsStrategy((8, 2, 4), theta2))


def _service_with_integer_recon(tmp_path, shape=(8, 2, 4)):
    """A service whose dataset holds one cached *integer* reconstruction
    under a certified full-rank strategy — white-box, so the bit-identity
    contract is testable end-to-end (real measurements add float noise)."""
    n = int(np.prod(shape))
    svc = QueryService(
        registry=StrategyRegistry(tmp_path / "reg"), accountant=None
    )
    svc.add_dataset("d", integer_x(n, seed=2))
    strategy = Kronecker([Identity(s) for s in shape])
    x_hat = integer_x(n, seed=7)
    svc._datasets["d"].reconstructions["k"] = Reconstruction(
        key="k", strategy=strategy, x_hat=x_hat, eps=1.0
    )
    return svc, x_hat, shape


class TestEngineRouting:
    def test_accelerator_route_and_bit_identity(self, tmp_path):
        svc, x_hat, shape = _service_with_integer_recon(tmp_path)
        Q = Kronecker(
            [Prefix(shape[0])] + [Ones(1, s) for s in shape[1:]]
        )
        ans = svc.query("d", Q)
        assert ans.hit and ans.route == "accelerator" and ans.key == "k"
        assert np.array_equal(
            ans.values, np.asarray(Q.matvec(x_hat)).reshape(-1)
        )

    def test_non_decomposable_hit_stays_on_cache_route(self, tmp_path):
        svc, x_hat, shape = _service_with_integer_recon(tmp_path)
        n = int(np.prod(shape))
        bad = np.zeros(n)
        bad[::2] = 1.0  # too many runs: ineligible
        ans = svc.query("d", bad)
        assert ans.hit and ans.route == "cache"
        assert np.array_equal(ans.values, bad[None, :] @ x_hat)

    def test_probe_hit_matches_execution(self, tmp_path):
        svc, _, shape = _service_with_integer_recon(tmp_path)
        Q = Kronecker([Identity(s) for s in shape])
        key, route = svc.probe_hit("d", Q)
        assert (key, route) == ("k", "accelerator")
        assert svc.covering_key("d", Q) == "k"
        assert svc.query("d", Q).route == route

    def test_batch_answer_routes_accelerator(self, tmp_path):
        svc, x_hat, shape = _service_with_integer_recon(tmp_path)
        qs = [
            Kronecker([Identity(s) for s in shape]),
            Kronecker([AllRange(shape[0])] + [Ones(1, s) for s in shape[1:]]),
        ]
        res = svc.answer("d", qs)
        assert res.charged == 0.0 and res.hits == 2
        for Q, qa in zip(qs, res.answers):
            assert qa.route == "accelerator"
            assert np.array_equal(
                qa.values, np.asarray(Q.matvec(x_hat)).reshape(-1)
            )

    def test_table_reused_across_queries(self, tmp_path):
        svc, _, shape = _service_with_integer_recon(tmp_path)
        svc.query("d", Kronecker([Identity(s) for s in shape]))
        ds = svc._datasets["d"]
        assert ("k", shape) in ds.accel
        t1 = ds.accel[("k", shape)]
        svc.query(
            "d", Kronecker([Prefix(shape[0])] + [Ones(1, s) for s in shape[1:]])
        )
        assert ds.accel[("k", shape)] is t1


class TestDurability:
    def test_table_persists_and_reloads(self, tmp_path):
        svc, x_hat, shape = _service_with_integer_recon(tmp_path)
        Q = Kronecker([Identity(s) for s in shape])
        v1 = svc.query("d", Q).values
        ds = svc._datasets["d"]
        assert svc.registry.table_keys()  # persisted alongside the npz
        ds.accel.clear()  # force the registry load path
        v2 = svc.query("d", Q).values
        assert np.array_equal(v1, v2)

    def test_bit_flipped_table_quarantines_and_rebuilds(self, tmp_path):
        svc, x_hat, shape = _service_with_integer_recon(tmp_path)
        Q = Kronecker([Identity(s) for s in shape])
        v1 = svc.query("d", Q).values
        root = svc.registry.root
        (tfile,) = [f for f in os.listdir(root) if f.endswith(".accel.npz")]
        path = os.path.join(root, tfile)
        data = bytearray(open(path, "rb").read())
        data[-200] ^= 0x08  # silent on-disk corruption
        open(path, "wb").write(bytes(data))
        svc._datasets["d"].accel.clear()
        ans = svc.query("d", Q)  # checksum catches it: rebuild, no crash
        assert ans.route == "accelerator"
        assert np.array_equal(ans.values, v1)
        qdir = os.path.join(root, "quarantine")
        assert any(f.startswith(tfile) for f in os.listdir(qdir))
        # The rebuild re-persisted a good copy.
        assert svc.registry.table_keys()

    def test_write_time_flip_caught_at_load(self, tmp_path):
        # The payload is mangled before the digest is computed, so the
        # manifest sha matches the corrupted file — the npz zip CRC is
        # the layer that catches this one.  Either way: quarantine, None.
        reg = StrategyRegistry(tmp_path / "reg")
        inj = faults.FaultInjector().flip_bit(
            "registry.table.payload", byte=-150, bit=2
        )
        with inj.active():
            reg.put_table("accel-test", {"table": np.arange(9.0)})
        assert inj.fired
        assert reg.get_table("accel-test") is None
        assert "accel-test" not in reg.table_keys()

    def test_missing_table_file_is_a_miss(self, tmp_path):
        reg = StrategyRegistry(tmp_path / "reg")
        reg.put_table("accel-gone", {"table": np.arange(4.0)})
        os.remove(os.path.join(reg.root, "accel-gone.accel.npz"))
        assert reg.get_table("accel-gone") is None

    def test_stale_table_ignored_after_remeasure(self, tmp_path):
        svc, x_hat, shape = _service_with_integer_recon(tmp_path)
        Q = Kronecker([Identity(s) for s in shape])
        svc.query("d", Q)
        ds = svc._datasets["d"]
        # Re-measurement replaces the reconstruction: in-memory tables
        # must drop, and the persisted table (keyed to the old x̂ digest)
        # must be ignored and overwritten.
        new_x = x_hat + 1.0
        ds.reconstructions["k"] = Reconstruction(
            key="k", strategy=ds.reconstructions["k"].strategy,
            x_hat=new_x, eps=2.0,
        )
        svc._invalidate_tables(ds, "k")
        assert ("k", shape) not in ds.accel
        ans = svc.query("d", Q)
        assert np.array_equal(
            ans.values, np.asarray(Q.matvec(new_x)).reshape(-1)
        )

    def test_rebuilt_manifest_skips_table_files(self, tmp_path):
        reg = StrategyRegistry(tmp_path / "reg")
        W = Kronecker([Identity(4), Ones(1, 3)])
        key = reg.put(W, W)
        reg.put_table("accel-x", {"table": np.arange(5.0)})
        # Corrupt the manifest: the rebuild must recover the strategy
        # entry but never mistake a table file for one.
        open(reg.manifest_path, "w").write("{ not json")
        fresh = StrategyRegistry(reg.root)
        assert fresh.keys() == [key]


def _l3_union():
    return VStack(
        [
            Kronecker([Identity(4), Ones(1, 3)]),
            Kronecker([Ones(1, 4), Identity(3)]),
            Kronecker([Prefix(4), Prefix(3)]),
        ]
    )


class TestRitzPersistence:
    def test_recycle_basis_round_trips(self, tmp_path):
        from repro.core.solvers import gram_recycle_state

        A_strat = _l3_union()
        rng = np.random.default_rng(5)
        rec = gram_recycle_state(A_strat)
        rec.U = rng.standard_normal((12, 3))
        rec.GU = np.asarray(A_strat.gram().matmat(rec.U))
        rec.ritz_values = np.array([3.0, 2.0, 1.0])

        reg = StrategyRegistry(tmp_path / "reg")
        key = reg.put(A_strat, A_strat)
        assert A_strat.cache_get("persisted_recycle_size") == 3

        loaded = reg.load(key).strategy
        got = loaded.cache_get("gram_recycle_state")
        assert got is not None and got.size == 3
        # float64-exact: a warm process starts from the identical basis.
        assert np.array_equal(got.U, rec.U)
        assert np.array_equal(got.GU, rec.GU)
        assert np.array_equal(got.ritz_values, rec.ritz_values)
        assert loaded.cache_get("persisted_recycle_size") == 3

    def test_refresh_persists_grown_basis(self, tmp_path):
        from repro.core.solvers import gram_recycle_state

        A_strat = _l3_union()
        rng = np.random.default_rng(6)
        rec = gram_recycle_state(A_strat)
        rec.U = rng.standard_normal((12, 2))
        rec.GU = np.asarray(A_strat.gram().matmat(rec.U))
        rec.ritz_values = np.array([2.0, 1.0])
        reg = StrategyRegistry(tmp_path / "reg")
        key = reg.put(A_strat, A_strat)

        # The basis grows during later reconstructions...
        rec.U = rng.standard_normal((12, 5))
        rec.GU = np.asarray(A_strat.gram().matmat(rec.U))
        rec.ritz_values = np.arange(5.0)
        assert reg.refresh_solver_state(key, A_strat)
        assert A_strat.cache_get("persisted_recycle_size") == 5
        got = reg.load(key).strategy.cache_get("gram_recycle_state")
        assert got.size == 5 and np.array_equal(got.U, rec.U)

    def test_refresh_unknown_key_is_noop(self, tmp_path):
        reg = StrategyRegistry(tmp_path / "reg")
        assert not reg.refresh_solver_state("nope", _l3_union())

    def test_strategy_without_basis_round_trips_unchanged(self, tmp_path):
        A_strat = _l3_union()
        reg = StrategyRegistry(tmp_path / "reg")
        key = reg.put(A_strat, A_strat)
        loaded = reg.load(key).strategy
        assert loaded.cache_get("gram_recycle_state") is None
        assert loaded.cache_get("persisted_recycle_size") == 0


class TestBucketization:
    def small_schema(self):
        return Schema.from_spec({"age": 8, "sex": ["M", "F"], "hours": 4})

    def test_buckets_compile_and_answer(self):
        s = self.small_schema()
        e = buckets("age", (0, 2), (3, 5), 7)  # gap at 6, singleton 7
        Q = e.compile(s)
        assert Q.shape == (3, s.domain.size())
        x = integer_x(s.domain.size())
        cube = x.reshape(8, 2, 4)
        want = np.array(
            [
                cube[0:3].sum(),
                cube[3:6].sum(),
                cube[7].sum(),
            ]
        )
        assert np.allclose(np.asarray(Q.matvec(x)).reshape(-1), want)

    def test_buckets_are_accelerator_eligible(self):
        s = self.small_schema()
        cq = compile_expr(buckets("age", (0, 3), (2, 6), 5), s)
        assert cq.range_spec is not None
        assert cq.range_spec.rows == 3

    def test_bucketize_attribute_handle_with_labels(self):
        s = self.small_schema()
        Q = A("sex").bucketize("M", "F", ("M", "F")).compile(s)
        x = integer_x(s.domain.size())
        cube = x.reshape(8, 2, 4)
        want = np.array([cube[:, 0].sum(), cube[:, 1].sum(), cube.sum()])
        assert np.allclose(np.asarray(Q.matvec(x)).reshape(-1), want)

    def test_empty_bucket_rejected(self):
        s = self.small_schema()
        with pytest.raises(ValueError, match="empty"):
            buckets("age", (5, 2)).compile(s)
        with pytest.raises(ValueError, match="at least one"):
            buckets("age")
        with pytest.raises(ValueError, match="pair"):
            buckets("age", (1, 2, 3))

    def test_buckets_end_to_end_accelerator_route(self, tmp_path):
        sess = Session(
            registry=StrategyRegistry(tmp_path / "reg"),
            accountant=PrivacyAccountant(default_cap=100.0),
            restarts=1,
            rng=0,
        )
        s = self.small_schema()
        x = integer_x(s.domain.size())
        ds = sess.dataset("d", schema=s, data=x)
        ds.ask_many([marginal("age")], eps=1.0, rng=1)  # seed the cache
        ans = ds.ask(buckets("age", (0, 3), (4, 7)))
        assert ans.route == "accelerator" and ans.epsilon == 0.0


def test_bench_accelerator_scenario_quick():
    """The benchmark scenario rides tier-1 in quick mode, and the
    committed trajectory must carry the acceptance-level record — the
    O(1) read path cannot silently rot."""
    import json
    import sys

    bench_dir = os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
    sys.path.insert(0, bench_dir)
    try:
        from bench_perf_regression import bench_accelerator
    finally:
        sys.path.remove(bench_dir)
    ac = bench_accelerator(shape=(8, 4, 4), reps=10, build_reps=1)
    assert ac["single_hit_values_exact"] and ac["batch_values_exact"]
    assert ac["batch_answers_per_sec"] > 100_000
    assert ac["single_hit_speedup"] > 1.0

    with open(os.path.join(bench_dir, os.pardir, "BENCH_PERF.json")) as f:
        recorded = json.load(f)
    rec = recorded["accelerator"]
    assert rec["single_hit_speedup"] >= 50.0
    assert rec["batch_answers_per_sec"] >= 100_000
    assert rec["single_hit_values_exact"] and rec["batch_values_exact"]
    # Satellite contract: planning against a warm cache must not cost
    # more than the cold plan did.
    assert recorded["api_planner"]["plan_warm_le_cold"]


class TestSessionProvenance:
    def test_plan_and_execution_agree_on_accelerator(self, tmp_path):
        sess = Session(
            registry=StrategyRegistry(tmp_path / "reg"),
            accountant=PrivacyAccountant(default_cap=100.0),
            restarts=1,
            rng=0,
        )
        s = Schema.from_spec({"age": 8, "sex": ["M", "F"], "hours": 4})
        x = integer_x(s.domain.size())
        ds = sess.dataset("d", schema=s, data=x)
        exprs = [marginal("age", "sex"), prefix("age"), total()]
        ds.ask_many(exprs, eps=1.0, rng=1)
        plan = ds.plan(exprs)
        assert [e.route for e in plan.entries] == ["accelerator"]
        assert plan.total_epsilon == 0.0
        assert "summed-area gather" in plan.explain()
        answers = ds.ask_many(exprs)
        assert all(
            a.route == "accelerator" and a.epsilon == 0.0 for a in answers
        )
