"""Tests for OPT_M (Section 6.3, Problem 4)."""

import numpy as np
import pytest

from repro.core.error import squared_error, workload_marginal_traces
from repro.domain import Domain
from repro.linalg import MarginalsAlgebra, MarginalsStrategy
from repro.optimize import marginals_loss_and_grad, opt_kron, opt_marginals
from repro.workload import (
    all_marginals,
    k_way_marginals,
    prefix_identity,
    up_to_k_marginals,
)


@pytest.fixture
def dom():
    return Domain(["a", "b", "c"], [3, 4, 2])


class TestLossAndGrad:
    def test_loss_matches_dense(self, dom, rng):
        W = up_to_k_marginals(dom, 2)
        alg = MarginalsAlgebra(dom.sizes)
        delta = workload_marginal_traces(W)
        theta = rng.random(8) + 0.05
        loss, _ = marginals_loss_and_grad(theta, alg, delta)
        M = MarginalsStrategy(dom.sizes, theta)
        D = M.dense()
        Wd = W.dense()
        direct = (
            np.abs(D).sum(axis=0).max() ** 2
            * np.linalg.norm(Wd @ np.linalg.pinv(D), "fro") ** 2
        )
        assert np.isclose(loss, direct, rtol=1e-6)

    def test_gradient_matches_finite_differences(self, dom, rng):
        W = up_to_k_marginals(dom, 2)
        alg = MarginalsAlgebra(dom.sizes)
        delta = workload_marginal_traces(W)
        theta = rng.random(8) + 0.05
        _, grad = marginals_loss_and_grad(theta, alg, delta)
        h = 1e-6
        for a in range(8):
            tp, tm = theta.copy(), theta.copy()
            tp[a] += h
            tm[a] -= h
            fd = (
                marginals_loss_and_grad(tp, alg, delta)[0]
                - marginals_loss_and_grad(tm, alg, delta)[0]
            ) / (2 * h)
            assert np.isclose(grad[a], fd, rtol=1e-4), a

    def test_scale_invariance(self, dom, rng):
        """f(cθ) = f(θ): the sensitivity factor cancels the noise scale."""
        W = up_to_k_marginals(dom, 2)
        alg = MarginalsAlgebra(dom.sizes)
        delta = workload_marginal_traces(W)
        theta = rng.random(8) + 0.05
        l1, _ = marginals_loss_and_grad(theta, alg, delta)
        l2, _ = marginals_loss_and_grad(3.0 * theta, alg, delta)
        assert np.isclose(l1, l2, rtol=1e-9)


class TestOptMarginals:
    def test_loss_consistent_with_error(self, dom):
        W = up_to_k_marginals(dom, 2)
        res = opt_marginals(W, rng=0)
        assert np.isclose(res.loss, squared_error(W, res.strategy), rtol=1e-4)

    def test_strategy_normalized(self, dom):
        res = opt_marginals(all_marginals(dom), rng=0)
        assert np.isclose(res.strategy.sensitivity(), 1.0)

    def test_beats_identity_on_low_order_marginals(self):
        """For 1-way marginals, measuring marginals directly crushes the
        full identity (which pays the whole domain's noise per cell)."""
        dom = Domain(["a", "b", "c", "d"], [6, 6, 6, 6])
        W = up_to_k_marginals(dom, 1)
        res = opt_marginals(W, rng=0)
        from repro.optimize.driver import identity_result

        assert res.loss < identity_result(W).loss / 4

    def test_beats_or_matches_kron_on_marginal_workloads(self):
        dom = Domain(["a", "b", "c"], [5, 5, 5])
        W = k_way_marginals(dom, 2)
        marg = opt_marginals(W, rng=0).loss
        kron = opt_kron(W, rng=0).loss
        assert marg <= kron * 1.05

    def test_applicable_to_non_marginal_workloads(self):
        """OPT_M accepts any union of products (Section 6.3)."""
        res = opt_marginals(prefix_identity(6), rng=0)
        assert res.loss > 0

    def test_full_table_workload_picks_full_marginal(self, dom):
        W = k_way_marginals(dom, 3)  # the full contingency table
        res = opt_marginals(W, rng=0)
        theta = res.strategy.theta
        assert theta[-1] > 0.5  # essentially all weight on the full table
