"""Tests for the experiment workload builders."""

import numpy as np
import pytest

from repro.domain import Domain
from repro.workload import (
    all_3way_ranges,
    all_marginals,
    all_range,
    all_range_2d,
    as_union_of_products,
    attribute_sizes,
    k_way_marginals,
    marginal,
    num_attributes,
    permuted_range,
    prefix_1d,
    prefix_2d,
    prefix_3d,
    prefix_identity,
    range_marginals,
    range_total_union,
    up_to_k_marginals,
    weighted_union,
    width_range,
)


@pytest.fixture
def dom():
    return Domain(["a", "b", "c", "d"], [3, 4, 2, 5])


class Test1D:
    def test_all_range_count(self):
        assert all_range(8).shape[0] == 36

    def test_prefix_shape(self):
        assert prefix_1d(8).shape == (8, 8)

    def test_width_range(self):
        W = width_range(64, 32)
        assert W.shape == (33, 64)
        assert np.all(W.dense().sum(axis=1) == 32)

    def test_permuted_range_is_column_permutation(self):
        W = permuted_range(8, seed=1)
        base = all_range(8).dense()
        D = W.dense()
        assert sorted(map(tuple, D.T.tolist())) == sorted(map(tuple, base.T.tolist()))

    def test_permuted_range_differs_from_base(self):
        assert not np.allclose(permuted_range(8, seed=1).dense(), all_range(8).dense())


class Test2D3D:
    def test_prefix_2d(self):
        W = prefix_2d(4)
        assert W.shape == (16, 16)

    def test_prefix_2d_rectangular(self):
        assert prefix_2d(4, 8).shape == (32, 32)

    def test_prefix_3d(self):
        assert prefix_3d(4).shape == (64, 64)

    def test_all_range_2d(self):
        W = all_range_2d(4)
        assert W.shape == (100, 16)

    def test_prefix_identity_union(self):
        W = prefix_identity(4)
        assert len(as_union_of_products(W)) == 2
        assert W.shape == (32, 16)

    def test_range_total_union(self):
        W = range_total_union(4)
        assert W.shape == (20, 16)
        terms = as_union_of_products(W)
        assert len(terms) == 2


class TestMarginals:
    def test_single_marginal(self, dom):
        W = marginal(dom, ["a", "c"])
        assert W.shape == (6, 120)
        D = W.dense()
        assert np.all(D.sum(axis=0) == 1)  # partition of the domain

    def test_unknown_attr_rejected(self, dom):
        with pytest.raises(KeyError):
            marginal(dom, ["z"])

    def test_k_way_count(self, dom):
        W = k_way_marginals(dom, 2)
        assert len(as_union_of_products(W)) == 6

    def test_k_validation(self, dom):
        with pytest.raises(ValueError):
            k_way_marginals(dom, 5)

    def test_up_to_k(self, dom):
        W = up_to_k_marginals(dom, 1)
        assert len(as_union_of_products(W)) == 5  # total + 4 one-way

    def test_all_marginals(self, dom):
        W = all_marginals(dom)
        assert len(as_union_of_products(W)) == 16

    def test_zero_way_is_total(self, dom):
        W = k_way_marginals(dom, 0)
        assert W.shape == (1, 120)
        assert np.allclose(W.dense(), 1.0)


class TestRangeMarginals:
    def test_numeric_attributes_get_ranges(self, dom):
        W = range_marginals(dom, numeric={"b"}, k=1)
        terms = as_union_of_products(W)
        assert len(terms) == 4
        # The b-marginal uses AllRange (10 rows), others Identity.
        shapes = sorted(t[1][1].shape[0] for t in terms)
        assert 10 in [f.shape[0] for _, fs in terms for f in fs]

    def test_all_3way_ranges(self, dom):
        W = all_3way_ranges(dom)
        assert len(as_union_of_products(W)) == 4


class TestUtil:
    def test_attribute_sizes(self, dom):
        assert attribute_sizes(k_way_marginals(dom, 2)) == [3, 4, 2, 5]

    def test_num_attributes(self, dom):
        assert num_attributes(all_marginals(dom)) == 4

    def test_1d_workload_single_factor(self):
        terms = as_union_of_products(prefix_1d(8))
        assert len(terms) == 1
        assert len(terms[0][1]) == 1

    def test_weighted_union(self):
        W = weighted_union([prefix_2d(4), all_range_2d(4)], [1.0, 3.0])
        terms = as_union_of_products(W)
        assert [w for w, _ in terms] == [1.0, 3.0]

    def test_weighted_union_validates(self):
        with pytest.raises(ValueError):
            weighted_union([prefix_2d(4)], [1.0, 2.0])

    def test_nested_weighted_vstack_decomposition(self):
        from repro.linalg import VStack, Weighted

        W = Weighted(VStack([prefix_2d(4), Weighted(all_range_2d(4), 2.0)]), 3.0)
        terms = as_union_of_products(W)
        assert [w for w, _ in terms] == [3.0, 6.0]
