"""Tests for the MEASURE and RECONSTRUCT stages (Section 7.2)."""

import numpy as np
import pytest

from repro.core.measure import laplace_measure, laplace_noise, measurement_variance
from repro.core.reconstruct import answer_workload, least_squares
from repro.linalg import (
    Dense,
    Identity,
    Kronecker,
    MarginalsStrategy,
    Prefix,
    VStack,
    Weighted,
)
from repro.optimize import PIdentity


class TestLaplaceNoise:
    def test_zero_scale_is_zero(self):
        assert np.all(laplace_noise(0.0, 5) == 0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            laplace_noise(-1.0, 5)

    def test_variance_statistics(self, rng):
        samples = laplace_noise(2.0, 200_000, rng)
        # Laplace(b) variance = 2b².
        assert abs(samples.var() - 8.0) / 8.0 < 0.05
        assert abs(samples.mean()) < 0.05

    def test_reproducible_with_seed(self):
        a = laplace_noise(1.0, 10, 42)
        b = laplace_noise(1.0, 10, 42)
        assert np.allclose(a, b)


class TestLaplaceMeasure:
    def test_noise_scaled_to_sensitivity(self, rng):
        A = Prefix(16)  # sensitivity 16
        x = np.zeros(16)
        trials = np.stack(
            [laplace_measure(A, x, eps=1.0, rng=s) for s in range(400)]
        )
        emp_var = trials.var()
        assert abs(emp_var - measurement_variance(A, 1.0)) / emp_var < 0.15

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            laplace_measure(Identity(4), np.zeros(4), eps=0.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            laplace_measure(Identity(4), np.zeros(5), eps=1.0)

    def test_exact_at_huge_eps(self):
        A = Prefix(8)
        x = np.arange(8.0)
        y = laplace_measure(A, x, eps=1e12, rng=0)
        assert np.allclose(y, A.matvec(x), atol=1e-6)


class TestLeastSquares:
    def test_pidentity_roundtrip(self, rng):
        A = PIdentity(rng.random((3, 8)))
        x = rng.standard_normal(8)
        y = A.matvec(x)
        assert np.allclose(least_squares(A, y), x, atol=1e-8)

    def test_kron_roundtrip(self, rng):
        A = Kronecker([PIdentity(rng.random((2, 5))), PIdentity(rng.random((2, 4)))])
        x = rng.standard_normal(20)
        assert np.allclose(least_squares(A, A.matvec(x)), x, atol=1e-8)

    def test_marginals_roundtrip(self, rng):
        theta = rng.random(8) + 0.05
        A = MarginalsStrategy((3, 2, 4), theta)
        x = rng.standard_normal(24)
        assert np.allclose(least_squares(A, A.matvec(x)), x, atol=1e-7)

    def test_lsmr_on_union_strategy(self, rng):
        A = VStack(
            [
                Weighted(Kronecker([Identity(4), Identity(5)]), 0.5),
                Weighted(Kronecker([Prefix(4), Identity(5)]), 0.125),
            ]
        )
        x = rng.standard_normal(20)
        got = least_squares(A, A.matvec(x), method="lsmr")
        assert np.allclose(got, x, atol=1e-6)

    def test_noisy_least_squares_matches_numpy(self, rng):
        A = PIdentity(rng.random((3, 6)))
        y = rng.standard_normal(9)
        ours = least_squares(A, y)
        ref, *_ = np.linalg.lstsq(A.dense(), y, rcond=None)
        assert np.allclose(ours, ref, atol=1e-8)

    def test_method_validation(self, rng):
        with pytest.raises(ValueError):
            least_squares(Identity(4), np.zeros(4), method="bogus")

    def test_y_shape_validation(self):
        with pytest.raises(ValueError):
            least_squares(Identity(4), np.zeros(5))

    def test_pinv_forced_on_union_raises(self, rng):
        A = VStack([Weighted(Kronecker([Identity(4), Identity(5)]), 0.5)])
        with pytest.raises(ValueError, match="union"):
            least_squares(A, np.zeros(A.shape[0]), method="pinv")

    def test_multi_rhs_kron_roundtrip(self, rng):
        A = Kronecker([PIdentity(rng.random((2, 5))), PIdentity(rng.random((2, 4)))])
        X = rng.standard_normal((20, 6))
        got = least_squares(A, A.matmat(X))
        assert got.shape == (20, 6)
        assert np.allclose(got, X, atol=1e-8)

    def test_multi_rhs_union_roundtrip(self, rng):
        A = VStack(
            [
                Weighted(Kronecker([Identity(4), Identity(5)]), 0.5),
                Weighted(Kronecker([Prefix(4), Identity(5)]), 0.125),
            ]
        )
        X = rng.standard_normal((20, 3))
        assert np.allclose(least_squares(A, A.matmat(X)), X, atol=1e-6)

    def test_answer_workload(self, rng):
        W = Prefix(6)
        x = rng.standard_normal(6)
        assert np.allclose(answer_workload(W, x), np.cumsum(x))

    def test_answer_workload_batched(self, rng):
        W = Prefix(6)
        X = rng.standard_normal((6, 4))
        assert np.allclose(answer_workload(W, X), np.cumsum(X, axis=0))


class TestBatchedMeasureSmoke:
    def test_batch_matches_spawned_loop(self, rng):
        from repro.core.measure import laplace_measure_batch
        from repro.optimize.parallel import spawn_seeds

        A = Prefix(10)
        x = rng.poisson(30, 10).astype(float)
        eps = np.array([0.5, 1.0, 2.0])
        Y = laplace_measure_batch(A, x, eps, rng=13)
        seeds = spawn_seeds(13, 3)
        for j, e in enumerate(eps):
            assert np.array_equal(Y[:, j], laplace_measure(A, x, float(e), seeds[j]))
