"""The resilient serving front-end: deadlines, admission, retry, breaker.

Covers the PR 9 contracts:

* **retry** — shared policy delays (decorrelated jitter bounds, exact
  legacy exponential schedule), retry budget veto, errno classifier
  parity with the fault matrix's;
* **deadline** — per-stage cumulative cutoffs, the commit fence
  (``begin_commit``/``mark_committed`` silence every later check), and
  the ε-spend invariant end to end: expiry before the charge leaves
  zero WAL records; expiry after the fsync'd debit yields either the
  late answer or a burned-spend 504, never a refund;
* **admission** — bounded queue + per-dataset limiter shedding with
  structured 429/503 + Retry-After, free routes admitted at saturation;
* **breaker** — consecutive fit-timeout trips, half-open probing,
  degraded direct serving while open;
* **ledger lock timeout** — non-blocking acquisition raises
  :class:`LockTimeoutError` under contention, default stays blocking;
* **error table** — every library exception maps to its documented
  status / code / retryable / canonical body;
* **HTTP chaos** — concurrent clients under injected latency, kill-point
  crashes aborting connections with zero response bytes, bit-flipped
  registry entries quarantined without failing requests, torn WAL
  tails: replayed spend equals in-memory spend exactly, no overdraw,
  and every 2xx measured body is bit-identical to a direct in-process
  ``Session.ask_many`` with the same seed.
"""

import asyncio
import errno
import http.client
import json
import os
import threading
import time

import numpy as np
import pytest

import repro.obs as obs
from repro.api import Schema, Session, marginal, prefix, ranges, total
from repro.server.admission import AdmissionController, ShedError
from repro.server.app import ServerApp, parse_query_spec
from repro.server.breaker import BreakerOpenError, CircuitBreaker
from repro.server.deadline import Deadline, DeadlineExceededError
from repro.server.errors import encode_body, error_response
from repro.server.http import serve_in_thread
from repro.server.retry import (
    DEFAULT_POLICY,
    RetryBudget,
    RetryPolicy,
    call_retrying,
    retryable_oserror,
    _TRANSIENT_ERRNOS,
)
from repro.service import PrivacyAccountant, StrategyRegistry
from repro.service import faults
from repro.service.accountant import BudgetExceededError
from repro.service.engine import QueryMiss
from repro.service.faults import FaultInjector, SimulatedCrash
from repro.service.ledger import LockTimeoutError, WriteAheadLedger
from repro.service.registry import RegistryCorruptionError
from repro.domain import SchemaMismatchError
from repro.obs.spend import replay  # noqa: F401  (also exercises obs.spend lazy import)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def small_schema():
    return Schema.from_spec({"age": 8, "sex": ["M", "F"]})


def poisson_data(schema):
    rng = np.random.default_rng(5)
    return rng.poisson(20, schema.domain.shape()).astype(float)


def make_app(tmp_path=None, cap=100.0, wal=False, registry=False,
             session_kwargs=None, **app_kwargs):
    acct_kw = {}
    if wal:
        acct_kw["wal_path"] = str(tmp_path / "eps.wal")
    reg = (
        StrategyRegistry(str(tmp_path / "registry")) if registry else None
    )
    sess = Session(
        registry=reg,
        accountant=PrivacyAccountant(default_cap=cap, **acct_kw),
        **(session_kwargs or {}),
    )
    app = ServerApp(sess, **app_kwargs)
    schema = small_schema()
    app.register("adult", schema, poisson_data(schema), epsilon_cap=cap)
    return app


def post(port, payload, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(
            "POST", "/query", json.dumps(payload),
            {"Content-Type": "application/json"},
        )
        r = conn.getresponse()
        return r.status, dict(r.getheaders()), json.loads(r.read())
    finally:
        conn.close()


def get(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        r = conn.getresponse()
        return r.status, r.read()
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_exponential_delays_without_jitter(self):
        p = RetryPolicy(retries=4, base=0.001, cap=1.0, jitter=False)
        assert list(p.delays()) == [0.001, 0.002, 0.004, 0.008]

    def test_cap_bounds_every_delay(self):
        p = RetryPolicy(retries=6, base=0.01, cap=0.02, jitter=False)
        assert max(p.delays()) == 0.02

    def test_jittered_delays_stay_in_band(self):
        p = RetryPolicy(retries=50, base=0.001, cap=0.05, jitter=True)
        ds = list(p.delays(np.random.default_rng(0)))
        assert len(ds) == 50
        assert all(p.base <= d <= p.cap for d in ds)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base=0.1, cap=0.01)

    def test_call_retrying_recovers_after_transient(self):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError(errno.EAGAIN, "try again")
            return "ok"

        slept = []
        out = call_retrying(
            fn,
            RetryPolicy(retries=4, base=0.001, cap=1.0, jitter=False),
            sleep=slept.append,
        )
        assert out == "ok"
        assert calls["n"] == 3
        assert slept == [0.001, 0.002]

    def test_call_retrying_nonretryable_raises_immediately(self):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            raise OSError(errno.EBADF, "bad fd")

        with pytest.raises(OSError):
            call_retrying(fn, sleep=lambda d: None)
        assert calls["n"] == 1

    def test_call_retrying_exhausts_budget_and_raises(self):
        def fn():
            raise OSError(errno.EINTR, "interrupted")

        with pytest.raises(OSError):
            call_retrying(
                fn,
                RetryPolicy(retries=3, base=0.001, cap=1.0, jitter=False),
                sleep=lambda d: None,
            )

    def test_retry_budget_vetoes(self):
        t = [0.0]
        budget = RetryBudget(tokens=2.0, refill_per_sec=0.0, clock=lambda: t[0])
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            raise OSError(errno.EAGAIN, "again")

        with pytest.raises(OSError):
            call_retrying(
                fn,
                RetryPolicy(retries=10, base=0.001, cap=1.0, jitter=False),
                sleep=lambda d: None,
                budget=budget,
            )
        # 1 initial attempt + 2 budgeted retries, then the veto.
        assert calls["n"] == 3
        assert budget.remaining == 0.0

    def test_retry_budget_refills(self):
        t = [0.0]
        budget = RetryBudget(tokens=4.0, refill_per_sec=2.0, clock=lambda: t[0])
        assert budget.try_spend(4.0)
        assert not budget.try_spend(1.0)
        t[0] = 1.0  # 2 tokens refilled
        assert budget.try_spend(2.0)

    def test_errno_classifier_matches_fault_matrix(self):
        assert _TRANSIENT_ERRNOS == faults.RETRYABLE_ERRNOS
        assert retryable_oserror(OSError(errno.EINTR, "x"))
        assert not retryable_oserror(OSError(errno.EBADF, "x"))
        assert not retryable_oserror(ValueError("x"))

    def test_faults_retrying_preserves_legacy_schedule(self):
        """The delegated loop must sleep the exact backoff * 2**k delays
        the fault matrix has always asserted on."""
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] < 4:
                raise OSError(errno.ENOSPC, "full")
            return 7

        slept = []
        assert faults.retrying(fn, site="t", backoff=0.01, sleep=slept.append) == 7
        assert slept == [0.01, 0.02, 0.04]

    def test_on_retry_observer(self):
        seen = []

        def fn():
            if len(seen) < 2:
                raise OSError(errno.EAGAIN, "again")
            return 1

        call_retrying(
            fn,
            RetryPolicy(retries=5, base=0.001, cap=1.0, jitter=False),
            sleep=lambda d: None,
            on_retry=lambda e, attempt, delay: seen.append((attempt, delay)),
        )
        assert seen == [(0, 0.001), (1, 0.002)]


# ---------------------------------------------------------------------------
# deadline
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_stage_checks_pass_then_fail(self):
        t = [0.0]
        dl = Deadline(1.0, clock=lambda: t[0])
        dl.check("plan")
        t[0] = 0.5
        dl.check("warm")
        t[0] = 1.0
        with pytest.raises(DeadlineExceededError) as ei:
            dl.check("fit")
        assert ei.value.stage == "fit"
        assert dl.expired_stage == "fit"

    def test_charge_stage_reserves_headroom(self):
        t = [0.95]
        dl = Deadline(1.0, clock=lambda: 0.0)
        dl._start = -0.95  # elapsed = 0.95: inside the wire deadline...
        dl.check("fit")  # ...so any ordinary stage still passes
        with pytest.raises(DeadlineExceededError):
            dl.check("charge")  # ...but the 0.9 charge cutoff refuses

    def test_commit_fence_silences_checks(self):
        t = [0.0]
        dl = Deadline(0.1, clock=lambda: t[0])
        dl.begin_commit()
        t[0] = 99.0
        dl.check("anything")  # no raise: the debit may be durable
        dl.mark_committed(0.5)
        assert dl.committed_epsilon == 0.5
        assert dl.commit_started

    def test_remaining_and_expired(self):
        t = [0.0]
        dl = Deadline(2.0, clock=lambda: t[0])
        assert dl.remaining() == 2.0
        t[0] = 3.0
        assert dl.remaining() == 0.0
        assert dl.expired()

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_queue_full_sheds_503(self):
        async def run():
            adm = AdmissionController(max_measure=1, max_queue=0)
            await adm.acquire_measure("a")
            with pytest.raises(ShedError) as ei:
                await adm.acquire_measure("b")
            assert ei.value.status == 503
            assert ei.value.reason == "queue_full"
            adm.release_measure("a")
            assert adm.executing == 0

        asyncio.run(run())

    def test_per_dataset_limit_sheds_429(self):
        async def run():
            adm = AdmissionController(max_measure=4, max_queue=4, per_dataset=1)
            await adm.acquire_measure("a")
            with pytest.raises(ShedError) as ei:
                await adm.acquire_measure("a")
            assert ei.value.status == 429
            assert ei.value.reason == "dataset_concurrency"
            await adm.acquire_measure("b")  # other datasets unaffected
            adm.release_measure("a")
            await adm.acquire_measure("a")  # freed slot admits again
            adm.release_measure("a")
            adm.release_measure("b")

        asyncio.run(run())

    def test_queue_timeout_sheds(self):
        async def run():
            adm = AdmissionController(max_measure=1, max_queue=2)
            await adm.acquire_measure("a")
            with pytest.raises(ShedError) as ei:
                await adm.acquire_measure("b", timeout=0.02)
            assert ei.value.reason == "queue_timeout"
            assert adm.queued == 0  # bookkeeping restored after the shed
            adm.release_measure("a")

        asyncio.run(run())

    def test_shed_counts_by_reason(self):
        async def run():
            adm = AdmissionController(max_measure=1, max_queue=0, per_dataset=1)
            await adm.acquire_measure("a")
            for _ in range(3):
                with pytest.raises(ShedError):
                    await adm.acquire_measure("a")
            with pytest.raises(ShedError):
                await adm.acquire_measure("b")
            assert adm.shed_counts == {
                "dataset_concurrency": 3, "queue_full": 1,
            }
            adm.release_measure("a")

        asyncio.run(run())


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


class TestBreaker:
    def test_trips_after_consecutive_failures(self):
        t = [0.0]
        br = CircuitBreaker(trip_after=3, reset_timeout=5.0, clock=lambda: t[0])
        for _ in range(2):
            br.record_failure()
        br.allow()  # still closed
        br.record_failure()
        assert br.state == "open"
        with pytest.raises(BreakerOpenError) as ei:
            br.allow()
        assert 0 < ei.value.retry_after <= 5.0

    def test_success_resets_the_run(self):
        br = CircuitBreaker(trip_after=2)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"

    def test_half_open_probe_then_close(self):
        t = [0.0]
        br = CircuitBreaker(trip_after=1, reset_timeout=1.0, clock=lambda: t[0])
        br.record_failure()
        assert br.state == "open"
        t[0] = 1.5
        assert br.state == "half-open"
        br.allow()  # the single probe
        with pytest.raises(BreakerOpenError):
            br.allow()  # second concurrent probe refused
        br.record_success()
        assert br.state == "closed"
        br.allow()

    def test_half_open_probe_failure_reopens(self):
        t = [0.0]
        br = CircuitBreaker(trip_after=3, reset_timeout=1.0, clock=lambda: t[0])
        for _ in range(3):
            br.record_failure()
        t[0] = 1.5
        br.allow()
        br.record_failure()  # one bad probe re-opens immediately
        assert br.state == "open"

    def test_state_values_for_gauge(self):
        t = [0.0]
        br = CircuitBreaker(trip_after=1, reset_timeout=1.0, clock=lambda: t[0])
        assert br.state_value == 0
        br.record_failure()
        assert br.state_value == 2
        t[0] = 2.0
        assert br.state_value == 1


# ---------------------------------------------------------------------------
# error table
# ---------------------------------------------------------------------------


class TestErrorTable:
    def test_budget_exceeded_403_with_remaining(self):
        e = BudgetExceededError("adult", 5.0, 4.0, 2.0, "sequential")
        status, headers, body = error_response(e)
        assert status == 403
        assert body["code"] == "budget_exceeded"
        assert body["retryable"] is False
        assert body["dataset"] == "adult"
        assert body["remaining_epsilon"] == 1.0
        assert body["requested_epsilon"] == 2.0

    def test_schema_mismatch_400(self):
        status, _, body = error_response(SchemaMismatchError("bad shape"))
        assert (status, body["code"], body["retryable"]) == (
            400, "schema_mismatch", False,
        )

    def test_query_miss_503_degraded(self):
        status, headers, body = error_response(QueryMiss("no cover"))
        assert status == 503
        assert body["code"] == "measurement_unavailable"
        assert body["degraded"] is True
        assert "Retry-After" in headers

    def test_registry_corruption_503_retryable(self):
        status, headers, body = error_response(
            RegistryCorruptionError("checksum")
        )
        assert (status, body["code"], body["retryable"]) == (
            503, "registry_corruption", True,
        )

    def test_lock_timeout_503_with_retry_after(self):
        e = LockTimeoutError("/x.lock", 0.5, 0.51)
        status, headers, body = error_response(e)
        assert status == 503
        assert body["code"] == "ledger_lock_timeout"
        assert headers["Retry-After"] == "0.5"

    def test_deadline_504_zero_spend(self):
        e = DeadlineExceededError("fit", 0.2, 0.1)
        status, _, body = error_response(e)
        assert status == 504
        assert body["code"] == "deadline_exceeded"
        assert body["stage"] == "fit"
        assert body["epsilon_spent"] == 0.0

    def test_shed_maps_its_own_status(self):
        status, headers, body = error_response(ShedError("queue_full", 503, 0.25))
        assert status == 503
        assert body["code"] == "overloaded"
        assert body["reason"] == "queue_full"
        assert headers["Retry-After"] == "0.25"
        status, _, body = error_response(
            ShedError("dataset_concurrency", 429, 0.05)
        )
        assert status == 429

    def test_breaker_open_503_degraded(self):
        status, headers, body = error_response(BreakerOpenError(1.5, 3))
        assert status == 503
        assert body["code"] == "breaker_open"
        assert body["degraded"] is True
        assert headers["Retry-After"] == "1.5"

    def test_unknown_dataset_404(self):
        status, _, body = error_response(KeyError("nope"))
        assert (status, body["code"]) == (404, "unknown_dataset")
        assert body["dataset"] == "nope"

    def test_unrecognized_is_opaque_500(self):
        status, _, body = error_response(RuntimeError("secret internals"))
        assert (status, body["code"]) == (500, "internal")
        assert "secret" not in body["error"]

    def test_bodies_encode_canonically(self):
        _, _, body = error_response(QueryMiss("x"))
        raw = encode_body(body)
        assert raw == json.dumps(
            json.loads(raw), sort_keys=True, separators=(",", ":")
        ).encode()

    def test_specificity_order(self):
        # SchemaMismatchError subclasses KeyError: must map to 400, not 404.
        status, _, body = error_response(SchemaMismatchError("dataset 'x'"))
        assert status == 400


# ---------------------------------------------------------------------------
# ledger lock timeout
# ---------------------------------------------------------------------------


class TestLedgerLockTimeout:
    def test_contended_lock_times_out(self, tmp_path):
        path = str(tmp_path / "eps.wal")
        holder = WriteAheadLedger(path)
        waiter = WriteAheadLedger(path, lock_timeout=0.15)
        entered = threading.Event()
        release = threading.Event()

        def hold():
            with holder.locked():
                entered.set()
                release.wait(5)

        t = threading.Thread(target=hold)
        t.start()
        try:
            assert entered.wait(5)
            t0 = time.monotonic()
            with pytest.raises(LockTimeoutError) as ei:
                with waiter.locked():
                    pass
            waited = time.monotonic() - t0
            assert 0.1 <= waited < 2.0
            assert ei.value.timeout == 0.15
        finally:
            release.set()
            t.join(5)
        # Lock released: the timed ledger acquires immediately now.
        with waiter.locked():
            pass

    def test_default_stays_blocking(self, tmp_path):
        path = str(tmp_path / "eps.wal")
        holder = WriteAheadLedger(path)
        blocking = WriteAheadLedger(path)
        entered = threading.Event()

        def hold():
            with holder.locked():
                entered.set()
                time.sleep(0.15)

        t = threading.Thread(target=hold)
        t.start()
        assert entered.wait(5)
        with blocking.locked():  # waits, never raises
            pass
        t.join(5)

    def test_invalid_timeout_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLedger(str(tmp_path / "w.wal"), lock_timeout=0.0)

    def test_accountant_forwards_lock_timeout(self, tmp_path):
        acct = PrivacyAccountant(
            default_cap=5.0,
            wal_path=str(tmp_path / "eps.wal"),
            lock_timeout=0.25,
        )
        assert acct._wal.lock_timeout == 0.25
        acct.charge("d", 1.0)  # uncontended timed path still works
        assert acct.spent("d") == 1.0


# ---------------------------------------------------------------------------
# latency fault plans
# ---------------------------------------------------------------------------


class TestDelayPlans:
    def test_delay_fires_on_scheduled_hits(self):
        inj = FaultInjector().delay("site", 0.05, times=2)
        with inj.active():
            t0 = time.perf_counter()
            faults.check("site")
            faults.check("site")
            slow = time.perf_counter() - t0
            t0 = time.perf_counter()
            faults.check("site")  # third hit: plan exhausted
            fast = time.perf_counter() - t0
        assert slow >= 0.1
        assert fast < 0.05
        assert [k for (_, k, _) in inj.fired] == ["delay", "delay"]

    def test_delay_composes_with_error(self):
        inj = (
            FaultInjector()
            .delay("s", 0.02)
            .fail("s", errno.EINTR, times=1)
        )
        with inj.active():
            t0 = time.perf_counter()
            with pytest.raises(OSError):
                faults.check("s")
            assert time.perf_counter() - t0 >= 0.02

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().delay("s", -1.0)


# ---------------------------------------------------------------------------
# wire DSL
# ---------------------------------------------------------------------------


class TestWireDsl:
    def test_all_kinds_parse(self):
        specs = [
            {"marginal": ["age", "sex"]},
            {"total": True},
            {"prefix": "age"},
            {"ranges": "age"},
            {"count": [{"attr": "sex", "eq": "F"},
                       {"attr": "age", "between": [2, 5]}]},
        ]
        exprs = [parse_query_spec(s) for s in specs]
        assert len(exprs) == 5

    @pytest.mark.parametrize("bad", [
        "marginal",
        {},
        {"marginal": ["age"], "total": True},
        {"marginal": "age"},
        {"prefix": 3},
        {"count": [{"eq": 1}]},
        {"count": [{"attr": "age"}]},
        {"nope": 1},
    ])
    def test_junk_raises_valueerror(self, bad):
        with pytest.raises(ValueError):
            parse_query_spec(bad)


# ---------------------------------------------------------------------------
# HTTP integration
# ---------------------------------------------------------------------------


class TestHttpIntegration:
    def test_measure_then_free_and_lifecycle(self, tmp_path):
        app = make_app(tmp_path)
        with serve_in_thread(app) as srv:
            s, h, b = post(srv.port, {
                "dataset": "adult",
                "queries": [{"marginal": ["age"]}],
                "eps": 0.5, "seed": 3,
            })
            assert s == 200
            assert b["charged"] == 0.5
            assert b["remaining"] == 99.5
            assert b["degraded"] is False
            assert h["Content-Type"] == "application/json"
            # Same query again: covered by the measured reconstruction.
            s, _, b = post(srv.port, {
                "dataset": "adult", "queries": [{"marginal": ["age"]}],
            })
            assert s == 200
            assert b["charged"] == 0.0
            assert all(
                a["route"] in ("accelerator", "cache") for a in b["answers"]
            )
            s, raw = get(srv.port, "/healthz")
            assert (s, json.loads(raw)["status"]) == (200, "ok")
            s, raw = get(srv.port, "/readyz")
            assert s == 200
            s, raw = get(srv.port, "/datasets")
            assert json.loads(raw)["datasets"] == ["adult"]
            s, raw = get(srv.port, "/nope")
            assert s == 404

    def test_keep_alive_reuses_one_connection(self, tmp_path):
        app = make_app(tmp_path)
        with serve_in_thread(app) as srv:
            conn = http.client.HTTPConnection("127.0.0.1", srv.port, timeout=30)
            try:
                for _ in range(5):
                    conn.request("GET", "/healthz")
                    r = conn.getresponse()
                    assert r.status == 200
                    r.read()
            finally:
                conn.close()

    def test_error_paths_over_the_wire(self, tmp_path):
        app = make_app(tmp_path, cap=1.0)
        with serve_in_thread(app) as srv:
            s, _, b = post(srv.port, {
                "dataset": "nope", "queries": [{"total": True}],
            })
            assert (s, b["code"]) == (404, "unknown_dataset")
            s, _, b = post(srv.port, {
                "dataset": "adult", "queries": [{"prefix": "age"}],
            })  # miss without eps
            assert (s, b["code"]) == (400, "bad_request")
            s, _, b = post(srv.port, {
                "dataset": "adult", "queries": [{"prefix": "age"}],
                "eps": 5.0,
            })  # beyond the 1.0 cap: free-route-only degradation
            assert (s, b["code"]) == (403, "budget_exceeded")
            assert b["remaining_epsilon"] == 1.0
            s, _, b = post(srv.port, {"dataset": "adult"})
            assert (s, b["code"]) == (400, "bad_request")
            conn = http.client.HTTPConnection("127.0.0.1", srv.port, timeout=30)
            try:
                conn.request("POST", "/query", "{not json",
                             {"Content-Type": "application/json"})
                r = conn.getresponse()
                assert r.status == 400
                assert json.loads(r.read())["code"] == "bad_json"
            finally:
                conn.close()

    def test_wire_bodies_are_canonical_and_bit_identical(self, tmp_path):
        """Every 2xx body equals the canonical encoding of itself, and the
        answers are float-exact against a direct in-process session
        replaying the same request sequence with the same seeds."""
        app = make_app(tmp_path)
        schema = small_schema()
        mirror = Session(accountant=PrivacyAccountant(default_cap=100.0))
        mds = mirror.dataset(
            "adult", schema=schema, data=poisson_data(schema), epsilon_cap=100.0
        )
        requests = [
            ([marginal("age")], [{"marginal": ["age"]}], 0.7, 11),
            ([prefix("age")], [{"prefix": "age"}], 0.4, 12),
            ([marginal("age")], [{"marginal": ["age"]}], None, None),
            ([total()], [{"total": True}], 0.3, 13),
            ([ranges("age"), marginal("sex")],
             [{"ranges": "age"}, {"marginal": ["sex"]}], 0.9, 14),
        ]
        with serve_in_thread(app) as srv:
            for exprs, specs, eps, seed in requests:
                payload = {"dataset": "adult", "queries": specs}
                if eps is not None:
                    payload.update(eps=eps, seed=seed)
                s, _, body = post(srv.port, payload)
                assert s == 200
                direct = mds.ask_many(exprs, eps=eps, rng=seed)
                assert len(body["answers"]) == len(direct)
                for wire, ans in zip(body["answers"], direct):
                    assert wire["values"] == [float(v) for v in ans.values]
                    assert wire["route"] == ans.route
                    assert wire["epsilon"] == ans.epsilon
        assert app.session.service.accountant.spent("adult") == pytest.approx(
            mirror.service.accountant.spent("adult")
        )


# ---------------------------------------------------------------------------
# deadline/spend invariant
# ---------------------------------------------------------------------------


class TestDeadlineSpendInvariant:
    def test_expiry_before_charge_spends_nothing(self, tmp_path):
        """A deadline that dies at any pre-charge stage leaves zero spend
        and zero WAL records."""
        app = make_app(tmp_path, wal=True)
        wal = tmp_path / "eps.wal"
        base = wal.stat().st_size  # register record from setup
        t = [0.0]
        dl = Deadline(1.0, clock=lambda: t[0])
        t[0] = 2.0  # already expired before the request begins
        ds = app.session.dataset("adult")
        with pytest.raises(DeadlineExceededError):
            ds.ask_many([prefix("age")], eps=0.5, deadline=dl)
        assert app.session.service.accountant.spent("adult") == 0.0
        assert wal.stat().st_size == base  # not one byte appended
        assert dl.committed_epsilon is None

    def test_fit_timeout_spends_nothing(self, tmp_path):
        """A slow cold fit blows the deadline at the fit-exit check —
        strictly before the charge, so refusal is free."""
        app = make_app(
            tmp_path, wal=True, session_kwargs={"direct_miss_threshold": 0}
        )
        ds = app.session.dataset("adult")
        inj = FaultInjector().delay("engine.fit", 0.15)
        with inj.active():
            with pytest.raises(DeadlineExceededError) as ei:
                ds.ask_many([marginal("age")], eps=0.5, deadline=Deadline(0.05))
        assert ei.value.stage == "fit"
        assert app.session.service.accountant.spent("adult") == 0.0
        assert replay(str(tmp_path / "eps.wal")).spent("adult") == 0.0

    def test_expiry_after_commit_completes_and_burns_nothing_extra(self, tmp_path):
        """Once the debit is fsync'd the measurement always completes; the
        deadline never claws back committed spend."""
        app = make_app(tmp_path, wal=True)
        ds = app.session.dataset("adult")
        inj = FaultInjector().delay("engine.measure.noise", 0.1)
        dl = Deadline(0.05)
        with inj.active():
            answers = ds.ask_many(
                [marginal("age")], eps=0.5, rng=1, deadline=dl
            )
        # Completed despite the wire deadline having passed mid-measure.
        assert len(answers) == 1
        assert dl.committed_epsilon == 0.5
        acct = app.session.service.accountant
        assert acct.spent("adult") == 0.5
        assert replay(str(tmp_path / "eps.wal")).spent("adult") == 0.5

    def test_http_504_before_charge_is_free(self, tmp_path):
        app = make_app(
            tmp_path, wal=True, session_kwargs={"direct_miss_threshold": 0}
        )
        inj = FaultInjector().delay("engine.fit", 0.3)
        with inj.active():
            with serve_in_thread(app) as srv:
                s, _, b = post(srv.port, {
                    "dataset": "adult",
                    "queries": [{"marginal": ["age"]}],
                    "eps": 0.5, "timeout": 0.05,
                })
        assert s == 504
        assert b["code"] == "deadline_exceeded"
        assert b["epsilon_spent"] == 0.0
        assert app.session.service.accountant.spent("adult") == 0.0
        assert replay(str(tmp_path / "eps.wal")).spent("adult") == 0.0

    def test_http_late_answer_within_commit_grace(self, tmp_path):
        """Deadline expires after the debit commits: the waiter holds on
        (bounded by commit_grace) and delivers the late answer."""
        app = make_app(tmp_path, wal=True, commit_grace=10.0)
        inj = FaultInjector().delay("engine.measure.noise", 0.25)
        with inj.active():
            with serve_in_thread(app) as srv:
                s, _, b = post(srv.port, {
                    "dataset": "adult",
                    "queries": [{"marginal": ["age"]}],
                    "eps": 0.5, "seed": 2, "timeout": 0.1,
                })
        assert s == 200
        assert b.get("late") is True
        assert b["charged"] == 0.5
        assert app.session.service.accountant.spent("adult") == 0.5

    def test_http_504_after_commit_reports_burned_spend(self, tmp_path):
        """Grace exhausted with the debit committed: 504 reporting the
        spend as burned — and the WAL still shows exactly that debit."""
        app = make_app(tmp_path, wal=True, commit_grace=0.05)
        inj = FaultInjector().delay("engine.measure.noise", 0.4)
        with inj.active():
            with serve_in_thread(app) as srv:
                s, _, b = post(srv.port, {
                    "dataset": "adult",
                    "queries": [{"marginal": ["age"]}],
                    "eps": 0.5, "timeout": 0.1,
                })
                # Let the measurement finish before tearing the server down.
                time.sleep(0.45)
        assert s == 504
        assert b["burned"] is True
        assert b["epsilon_spent"] == 0.5
        assert b["retryable"] is True
        acct = app.session.service.accountant
        assert acct.spent("adult") == 0.5
        assert replay(str(tmp_path / "eps.wal")).spent("adult") == 0.5


# ---------------------------------------------------------------------------
# admission + degradation over HTTP
# ---------------------------------------------------------------------------


class TestOverloadBehavior:
    def test_free_routes_admitted_at_saturation(self, tmp_path):
        """With the one measure slot pinned by a slow request, cached
        reads still serve instantly."""
        app = make_app(tmp_path, max_measure=1, max_queue=0)
        with serve_in_thread(app) as srv:
            # Prime a reconstruction so marginal("age") hits for free.
            s, _, _ = post(srv.port, {
                "dataset": "adult", "queries": [{"marginal": ["age"]}],
                "eps": 0.5, "seed": 1,
            })
            assert s == 200
            inj = FaultInjector().delay("engine.measure.noise", 0.5)
            with inj.active():
                slow_status = {}

                def slow():
                    slow_status["r"] = post(srv.port, {
                        "dataset": "adult", "queries": [{"prefix": "sex"}],
                        "eps": 0.2, "seed": 2, "timeout": 5.0,
                    })

                t = threading.Thread(target=slow)
                t.start()
                time.sleep(0.15)  # let it occupy the only slot
                t0 = time.perf_counter()
                s, _, b = post(srv.port, {
                    "dataset": "adult", "queries": [{"marginal": ["age"]}],
                })
                free_ms = (time.perf_counter() - t0) * 1e3
                assert s == 200
                assert b["charged"] == 0.0
                assert free_ms < 300  # served while the slot was pinned
                t.join(10)
            assert slow_status["r"][0] == 200

    def test_concurrent_measured_sheds_structured(self, tmp_path):
        app = make_app(tmp_path, max_measure=1, max_queue=0, per_dataset=1)
        schema = small_schema()
        app.register("census", schema, poisson_data(schema), epsilon_cap=100.0)
        inj = FaultInjector().delay("engine.measure.noise", 0.4, times=4)
        with serve_in_thread(app) as srv:
            with inj.active():
                results = {}

                def ask(name, dataset, q):
                    results[name] = post(srv.port, {
                        "dataset": dataset, "queries": [q],
                        "eps": 0.2, "seed": 5, "timeout": 5.0,
                    })

                t1 = threading.Thread(
                    target=ask, args=("slow", "adult", {"marginal": ["age"]})
                )
                t1.start()
                time.sleep(0.15)
                # Same dataset at its concurrency limit → 429.
                ask("same", "adult", {"prefix": "age"})
                # Other dataset, but zero queue depth left → 503.
                ask("other", "census", {"marginal": ["sex"]})
                t1.join(10)
            assert results["slow"][0] == 200
            s, h, b = results["same"]
            assert (s, b["code"], b["reason"]) == (
                429, "overloaded", "dataset_concurrency"
            )
            assert "Retry-After" in h
            s, h, b = results["other"]
            assert (s, b["reason"]) == (503, "queue_full")
            assert b["retryable"] is True

    def test_draining_sheds_and_readyz_flips(self, tmp_path):
        app = make_app(tmp_path)
        with serve_in_thread(app) as srv:
            app.draining = True
            s, raw = get(srv.port, "/readyz")
            assert s == 503
            assert json.loads(raw)["draining"] is True
            s, _, b = post(srv.port, {
                "dataset": "adult", "queries": [{"total": True}], "eps": 0.1,
            })
            assert (s, b["reason"]) == (503, "draining")
            app.draining = False

    def test_graceful_drain_completes_inflight_work(self, tmp_path):
        """stop() waits for the in-flight measured request's WAL append
        and answer before the server goes away."""
        app = make_app(tmp_path, wal=True)
        srv = serve_in_thread(app)
        inj = FaultInjector().delay("engine.measure.noise", 0.3)
        result = {}
        with inj.active():
            def slow():
                result["r"] = post(srv.port, {
                    "dataset": "adult", "queries": [{"marginal": ["age"]}],
                    "eps": 0.5, "seed": 9, "timeout": 5.0,
                })

            t = threading.Thread(target=slow)
            t.start()
            time.sleep(0.1)  # request is measuring
            srv.stop()  # drain-then-flush
            t.join(10)
        assert result["r"][0] == 200
        assert app.admission.executing == 0
        assert app.session.service.accountant.spent("adult") == 0.5
        assert replay(str(tmp_path / "eps.wal")).spent("adult") == 0.5


# ---------------------------------------------------------------------------
# circuit breaker over HTTP
# ---------------------------------------------------------------------------


class TestBreakerIntegration:
    def test_fit_timeouts_trip_then_degraded_refusal(self, tmp_path):
        app = make_app(
            tmp_path,
            session_kwargs={"direct_miss_threshold": 0},
            breaker=CircuitBreaker(trip_after=1, reset_timeout=60.0),
        )
        inj = FaultInjector().delay("engine.fit", 0.3, times=10)
        with serve_in_thread(app) as srv:
            with inj.active():
                s, _, b = post(srv.port, {
                    "dataset": "adult", "queries": [{"marginal": ["age"]}],
                    "eps": 0.5, "timeout": 0.05,
                })
                assert s == 504
                # The worker finishes its slow fit, records the failure,
                # and the breaker trips.
                deadline = time.monotonic() + 5
                while app.breaker.state != "open":
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                s, h, b = post(srv.port, {
                    "dataset": "adult", "queries": [{"prefix": "age"}],
                    "eps": 0.5,
                })
                assert s == 503
                assert b["code"] == "breaker_open"
                assert b["degraded"] is True
                assert "Retry-After" in h
        assert app.session.service.accountant.spent("adult") == 0.0

    def test_direct_route_serves_while_breaker_open(self, tmp_path):
        """Degraded mode: cold fits are refused, but miss batches the
        router sends down the direct path still serve (no fit involved)."""
        breaker = CircuitBreaker(trip_after=1, reset_timeout=60.0)
        breaker.record_failure()  # force open
        app = make_app(tmp_path, breaker=breaker)
        with serve_in_thread(app) as srv:
            s, _, b = post(srv.port, {
                "dataset": "adult",
                "queries": [{"count": [{"attr": "sex", "eq": "F"}]}],
                "eps": 0.3, "seed": 4,
            })
            assert s == 200
            assert b["answers"][0]["route"] == "direct"
            assert b["charged"] == 0.3


# ---------------------------------------------------------------------------
# chaos: concurrency, kill-points, corruption
# ---------------------------------------------------------------------------


class TestChaos:
    def test_concurrent_clients_exact_accounting(self, tmp_path):
        """N concurrent clients, injected measurement latency, mixed
        free/measured traffic: the replayed WAL equals the in-memory
        spend exactly and never overdraws the cap."""
        cap = 4.0
        app = make_app(
            tmp_path, cap=cap, wal=True,
            max_measure=2, max_queue=4, per_dataset=4,
        )
        inj = FaultInjector().delay("engine.measure.noise", 0.02, times=8)
        statuses = []
        lock = threading.Lock()

        def client(i):
            for j in range(4):
                q = (
                    {"marginal": ["age"]}
                    if (i + j) % 2 == 0
                    else {"prefix": "age"}
                )
                s, _, body = post(srv.port, {
                    "dataset": "adult", "queries": [q],
                    "eps": 0.5, "seed": 100 * i + j, "timeout": 10.0,
                })
                with lock:
                    statuses.append((s, body.get("code")))

        with serve_in_thread(app) as srv:
            with inj.active():
                threads = [
                    threading.Thread(target=client, args=(i,)) for i in range(6)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(30)
        codes = {s for s, _ in statuses}
        assert 200 in codes  # some traffic succeeded
        # Only structured outcomes: success, overload, budget, timeout.
        assert codes <= {200, 403, 429, 503, 504}
        acct = app.session.service.accountant
        spent = acct.spent("adult")
        assert spent <= cap * (1 + 1e-9)  # no overdraw, ever
        # Replayed WAL == in-memory: byte-durable and live state agree.
        assert replay(str(tmp_path / "eps.wal")).spent("adult") == spent
        recovered = PrivacyAccountant.recover(str(tmp_path / "eps.wal"))
        assert recovered.spent("adult") == spent

    def test_kill_point_mid_request_aborts_connection(self, tmp_path):
        """A simulated crash between the fsync'd debit and the in-memory
        apply: the client sees a dropped connection (zero response
        bytes), and recovery replays the committed debit — conservative
        burn, never an overdraw, never a half-written answer."""
        app = make_app(tmp_path, wal=True)
        inj = FaultInjector().crash("ledger.append.commit")
        with serve_in_thread(app) as srv:
            with inj.active():
                with pytest.raises(
                    (http.client.BadStatusLine, http.client.RemoteDisconnected,
                     ConnectionError)
                ):
                    post(srv.port, {
                        "dataset": "adult", "queries": [{"marginal": ["age"]}],
                        "eps": 0.5, "seed": 1, "timeout": 5.0,
                    })
            assert inj.fired  # the kill-point actually fired
            # The server survives the crashed request.
            s, raw = get(srv.port, "/healthz")
            assert s == 200
        acct = app.session.service.accountant
        recovered = PrivacyAccountant.recover(str(tmp_path / "eps.wal"))
        # The debit was durable before the crash: replay burns it.
        assert recovered.spent("adult") == 0.5
        # In-memory state may lag (the apply never ran) but never exceeds
        # the durable record.
        assert acct.spent("adult") <= recovered.spent("adult")

    def test_torn_wal_tail_recovery_is_exact(self, tmp_path):
        """Garbage appended to the WAL (a torn final record) is dropped on
        recovery; the committed prefix replays exactly."""
        app = make_app(tmp_path, wal=True)
        with serve_in_thread(app) as srv:
            s, _, _ = post(srv.port, {
                "dataset": "adult", "queries": [{"marginal": ["age"]}],
                "eps": 0.75, "seed": 2,
            })
            assert s == 200
        wal = tmp_path / "eps.wal"
        with open(wal, "ab") as f:
            f.write(b'{"crc":"0000000000000000","dataset":"adult","eps')
        recovered = PrivacyAccountant.recover(str(wal))
        assert recovered.spent("adult") == 0.75
        # The torn tail was physically truncated during recovery.
        assert not open(wal, "rb").read().endswith(b'"eps')

    def test_bit_flipped_registry_entry_degrades_to_refit(self, tmp_path):
        """A corrupted persisted strategy is quarantined and re-fit cold —
        the request succeeds; nothing 5xxes."""
        app = make_app(
            tmp_path, registry=True,
            session_kwargs={"direct_miss_threshold": 0},
        )
        with serve_in_thread(app) as srv:
            s, _, b = post(srv.port, {
                "dataset": "adult", "queries": [{"marginal": ["age"]}],
                "eps": 0.5, "seed": 1,
            })
            assert s == 200
            assert b["answers"][0]["route"] == "cold"
        reg_dir = tmp_path / "registry"
        npz = [p for p in os.listdir(reg_dir) if p.endswith(".npz")]
        assert npz
        path = reg_dir / npz[0]
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        path.write_bytes(bytes(blob))
        # Fresh process over the same registry: the flipped entry must
        # quarantine into a cold re-fit, not an error.
        app2 = make_app(
            tmp_path, registry=True,
            session_kwargs={"direct_miss_threshold": 0},
        )
        with serve_in_thread(app2) as srv:
            s, _, b = post(srv.port, {
                "dataset": "adult", "queries": [{"marginal": ["age"]}],
                "eps": 0.5, "seed": 1,
            })
            assert s == 200
            assert b["answers"][0]["route"] == "cold"  # re-fit, not served corrupt
        q = reg_dir / "quarantine"
        assert q.is_dir() and any(q.iterdir())


# ---------------------------------------------------------------------------
# observability integration
# ---------------------------------------------------------------------------


class TestServerObservability:
    def test_request_metrics_and_shed_counters(self, tmp_path):
        obs.enable()
        app = make_app(tmp_path, max_measure=1, max_queue=0, per_dataset=1)
        with serve_in_thread(app) as srv:
            s, _, _ = post(srv.port, {
                "dataset": "adult", "queries": [{"marginal": ["age"]}],
                "eps": 0.5, "seed": 1,
            })
            assert s == 200
            s, _, _ = post(srv.port, {
                "dataset": "adult", "queries": [{"marginal": ["age"]}],
            })
            assert s == 200
            s, _, b = post(srv.port, {
                "dataset": "nope", "queries": [{"total": True}],
            })
            assert s == 404
        snap = obs.snapshot()
        series = {
            (tuple(sorted(s["labels"].items())), s["value"])
            for s in snap["server.requests_total"]["series"]
        }
        by_labels = dict(series)
        assert by_labels[(("route", "direct"), ("status", "200"))] == 1
        assert by_labels[(("route", "accelerator"), ("status", "200"))] == 1
        assert by_labels[(("route", "none"), ("status", "404"))] == 1
        assert snap["server.request_ms"]["series"][0]["count"] == 3
        inflight = snap["server.inflight"]["series"][0]["value"]
        assert inflight == 0  # gauge returns to zero after the turn
        assert "server.breaker_state" in snap

    def test_shed_total_by_reason(self, tmp_path):
        obs.enable()
        app = make_app(tmp_path, max_measure=1, max_queue=0, per_dataset=1)
        inj = FaultInjector().delay("engine.measure.noise", 0.4)
        with serve_in_thread(app) as srv:
            with inj.active():
                result = {}

                def slow():
                    result["r"] = post(srv.port, {
                        "dataset": "adult", "queries": [{"marginal": ["age"]}],
                        "eps": 0.5, "seed": 1, "timeout": 5.0,
                    })

                t = threading.Thread(target=slow)
                t.start()
                time.sleep(0.15)
                s, _, _ = post(srv.port, {
                    "dataset": "adult", "queries": [{"prefix": "age"}],
                    "eps": 0.2,
                })
                assert s == 429
                t.join(10)
        snap = obs.snapshot()
        reasons = {
            s["labels"]["reason"]: s["value"]
            for s in snap["server.shed_total"]["series"]
        }
        assert reasons == {"dataset_concurrency": 1}

    def test_server_request_span_parents_session_ask(self, tmp_path):
        obs.enable()
        app = make_app(tmp_path)
        with serve_in_thread(app) as srv:
            s, _, body = post(srv.port, {
                "dataset": "adult", "queries": [{"marginal": ["age"]}],
                "eps": 0.5, "seed": 1,
            })
            assert s == 200
            # The free path roots its own server.request span too.
            s, _, free_body = post(srv.port, {
                "dataset": "adult", "queries": [{"marginal": ["age"]}],
            })
            assert s == 200
        trace = obs.get_trace(body["trace_id"])
        assert trace is not None
        by_name = {sp.name: sp for sp in trace}
        root = by_name["server.request"]
        assert root.parent_id is None
        assert root.attrs["route"] == "measured"
        ask = by_name["session.ask"]
        assert ask.parent_id == root.span_id
        trace = obs.get_trace(free_body["trace_id"])
        by_name = {sp.name: sp for sp in trace}
        assert by_name["server.request"].attrs["route"] == "free"
        assert by_name["session.ask"].parent_id == by_name["server.request"].span_id

    def test_metrics_endpoint_renders_prometheus_text(self, tmp_path):
        obs.enable()
        app = make_app(tmp_path)
        with serve_in_thread(app) as srv:
            s, _, _ = post(srv.port, {
                "dataset": "adult", "queries": [{"total": True}],
                "eps": 0.1, "seed": 1,
            })
            assert s == 200
            s, raw = get(srv.port, "/metrics")
        assert s == 200
        text = raw.decode()
        assert "server_requests_total" in text
        assert "server_breaker_state" in text
