"""Tests for the implicit matrix base classes."""

import numpy as np
import pytest

from repro.linalg import Dense, Identity, Matrix


class TestDense:
    def test_matvec_rmatvec(self, rng):
        A = rng.standard_normal((4, 6))
        M = Dense(A)
        x = rng.standard_normal(6)
        y = rng.standard_normal(4)
        assert np.allclose(M.matvec(x), A @ x)
        assert np.allclose(M.rmatvec(y), A.T @ y)

    def test_matmat(self, rng):
        A = rng.standard_normal((4, 6))
        X = rng.standard_normal((6, 3))
        assert np.allclose(Dense(A).matmat(X), A @ X)

    def test_gram(self, rng):
        A = rng.standard_normal((4, 6))
        assert np.allclose(Dense(A).gram().dense(), A.T @ A)

    def test_sensitivity_is_max_abs_col_sum(self):
        A = np.array([[1.0, -2.0], [3.0, 0.5]])
        assert Dense(A).sensitivity() == 4.0

    def test_column_abs_sums(self):
        A = np.array([[1.0, -2.0], [3.0, 0.5]])
        assert np.allclose(Dense(A).column_abs_sums(), [4.0, 2.5])

    def test_pinv(self, rng):
        A = rng.standard_normal((5, 3))
        assert np.allclose(Dense(A).pinv().dense(), np.linalg.pinv(A))

    def test_transpose(self, rng):
        A = rng.standard_normal((4, 6))
        assert np.allclose(Dense(A).T.dense(), A.T)

    def test_trace_square_only(self, rng):
        with pytest.raises(ValueError):
            Dense(rng.standard_normal((3, 4))).trace()
        A = rng.standard_normal((4, 4))
        assert np.isclose(Dense(A).trace(), np.trace(A))

    def test_sum(self, rng):
        A = rng.standard_normal((4, 6))
        assert np.isclose(Dense(A).sum(), A.sum())

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Dense(np.zeros(3))


class TestOperatorSugar:
    def test_matmul_ndarray(self, rng):
        A = rng.standard_normal((4, 6))
        X = rng.standard_normal((6, 2))
        assert np.allclose(Dense(A) @ X, A @ X)

    def test_matmul_matrix_lazy_product(self, rng):
        A = rng.standard_normal((4, 6))
        B = rng.standard_normal((6, 3))
        P = Dense(A) @ Dense(B)
        x = rng.standard_normal(3)
        assert np.allclose(P.matvec(x), A @ B @ x)
        assert np.allclose(P.dense(), A @ B)
        y = rng.standard_normal(4)
        assert np.allclose(P.rmatvec(y), (A @ B).T @ y)

    def test_matmul_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            Dense(rng.standard_normal((4, 6))) @ Dense(rng.standard_normal((5, 3)))

    def test_scalar_multiplication(self, rng):
        A = rng.standard_normal((3, 3))
        W = 2.5 * Dense(A)
        assert np.allclose(W.dense(), 2.5 * A)

    def test_default_dense_via_matmat(self, rng):
        # A Matrix subclass that only implements matvec still densifies.
        class OnlyMatvec(Matrix):
            def __init__(self):
                self.shape = (2, 3)

            def matvec(self, x):
                return np.array([x.sum(), x[0] - x[2]])

        D = OnlyMatvec().dense()
        assert np.allclose(D, [[1, 1, 1], [1, 0, -1]])


class TestLazyTranspose:
    def test_double_transpose_returns_base(self):
        I = Identity(4)
        assert I.T.T is I or np.allclose(I.T.T.dense(), I.dense())

    def test_lazy_transpose_matvec(self, rng):
        A = rng.standard_normal((4, 6))

        class Wrapped(Matrix):
            def __init__(self):
                self.shape = (4, 6)

            def matvec(self, x):
                return A @ x

            def rmatvec(self, y):
                return A.T @ y

        T = Wrapped().T
        y = rng.standard_normal(4)
        assert np.allclose(T.matvec(y), A.T @ y)
        assert np.allclose(T.dense(), A.T)
