"""Tests for VStack, Weighted and Sum."""

import numpy as np
import pytest

from repro.linalg import Dense, Identity, Ones, Sum, VStack, Weighted


class TestWeighted:
    def test_matvec(self, rng):
        A = rng.standard_normal((3, 4))
        W = Weighted(Dense(A), 2.0)
        x = rng.standard_normal(4)
        assert np.allclose(W.matvec(x), 2.0 * A @ x)

    def test_gram_squares_weight(self, rng):
        A = rng.standard_normal((3, 4))
        W = Weighted(Dense(A), 3.0)
        assert np.allclose(W.gram().dense(), 9.0 * A.T @ A)

    def test_sensitivity_scales(self):
        W = Weighted(Identity(4), -2.0)
        assert W.sensitivity() == 2.0

    def test_pinv_inverts_weight(self, rng):
        A = rng.standard_normal((4, 3))
        W = Weighted(Dense(A), 2.0)
        assert np.allclose(W.pinv().dense(), np.linalg.pinv(2.0 * A))

    def test_trace_sum_transpose(self, rng):
        A = rng.standard_normal((3, 3))
        W = Weighted(Dense(A), 2.0)
        assert np.isclose(W.trace(), 2 * np.trace(A))
        assert np.isclose(W.sum(), 2 * A.sum())
        assert np.allclose(W.T.dense(), 2 * A.T)


class TestVStack:
    def test_matvec_concatenates(self, rng):
        A = rng.standard_normal((2, 4))
        B = rng.standard_normal((3, 4))
        S = VStack([Dense(A), Dense(B)])
        x = rng.standard_normal(4)
        assert np.allclose(S.matvec(x), np.concatenate([A @ x, B @ x]))

    def test_rmatvec_sums(self, rng):
        A = rng.standard_normal((2, 4))
        B = rng.standard_normal((3, 4))
        S = VStack([Dense(A), Dense(B)])
        y = rng.standard_normal(5)
        assert np.allclose(S.rmatvec(y), A.T @ y[:2] + B.T @ y[2:])

    def test_gram_is_sum_of_grams(self, rng):
        A = rng.standard_normal((2, 4))
        B = rng.standard_normal((3, 4))
        S = VStack([Dense(A), Dense(B)])
        assert np.allclose(S.gram().dense(), A.T @ A + B.T @ B)

    def test_sensitivity_adds_column_sums(self):
        S = VStack([Identity(3), Ones(1, 3)])
        assert S.sensitivity() == 2.0

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            VStack([Identity(3), Identity(4)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VStack([])

    def test_dense_stacks(self, rng):
        A = rng.standard_normal((2, 4))
        B = rng.standard_normal((3, 4))
        assert np.allclose(
            VStack([Dense(A), Dense(B)]).dense(), np.vstack([A, B])
        )

    def test_transpose_matvec(self, rng):
        A = rng.standard_normal((2, 4))
        B = rng.standard_normal((3, 4))
        S = VStack([Dense(A), Dense(B)])
        y = rng.standard_normal(5)
        assert np.allclose(S.T.matvec(y), np.vstack([A, B]).T @ y)


class TestSum:
    def test_matvec(self, rng):
        A = rng.standard_normal((3, 4))
        B = rng.standard_normal((3, 4))
        S = Sum([Dense(A), Dense(B)])
        x = rng.standard_normal(4)
        assert np.allclose(S.matvec(x), (A + B) @ x)

    def test_dense_trace_sum(self, rng):
        A = rng.standard_normal((3, 3))
        B = rng.standard_normal((3, 3))
        S = Sum([Dense(A), Dense(B)])
        assert np.allclose(S.dense(), A + B)
        assert np.isclose(S.trace(), np.trace(A + B))
        assert np.isclose(S.sum(), (A + B).sum())

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            Sum([Dense(rng.standard_normal((2, 3))), Dense(rng.standard_normal((3, 2)))])
