"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.domain import Domain


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_domain():
    return Domain(["a", "b", "c"], [3, 4, 2])


@pytest.fixture
def medium_domain():
    return Domain(["a", "b", "c", "d"], [6, 5, 4, 3])
