"""Tests for the declarative query API (schema, expressions, planner,
Session) and its acceptance contracts:

* compiled expressions are *structurally identical* to the hand-built
  physical workloads, so `Session.ask_many` answers are bit-identical
  (exact mode) to `QueryService.answer` over the same matrices;
* `Plan` ε estimates equal the accountant's actual debits;
* planner dedup makes repeated expressions in one batch cost one debit.
"""

import numpy as np
import pytest

from repro import HDMM
from repro.api import (
    A,
    Plan,
    Schema,
    SchemaMismatchError,
    Session,
    compile_batch,
    compile_expr,
    count,
    marginal,
    prefix,
    ranges,
    total,
    union,
)
from repro.linalg import AllRange, Dense, Identity, Kronecker, Ones, Prefix, VStack, Weighted
from repro.service import (
    PrivacyAccountant,
    QueryService,
    StrategyRegistry,
    workload_fingerprint,
)
from repro.workload import builders


def small_schema() -> Schema:
    return Schema.from_spec({"age": 8, "sex": ["M", "F"], "hours": 4})


def make_session(tmp_path=None, cap=100.0, **kwargs) -> Session:
    registry = StrategyRegistry(tmp_path / "reg") if tmp_path else None
    return Session(
        registry=registry,
        accountant=PrivacyAccountant(default_cap=cap),
        restarts=1,
        rng=0,
        **kwargs,
    )


def poisson_data(schema: Schema, seed=0):
    return (
        np.random.default_rng(seed)
        .poisson(20, schema.domain.size())
        .astype(float)
    )


class TestSchema:
    def test_from_spec_kinds(self):
        s = small_schema()
        assert s.domain.attributes == ("age", "sex", "hours")
        assert s.domain.sizes == (8, 2, 4)
        assert s.attribute("sex").categorical
        assert not s.attribute("age").categorical

    def test_encode_labels_and_codes(self):
        s = small_schema()
        assert s.encode("sex", "F") == 1
        assert s.encode("sex", 0) == 0
        assert s.encode("age", 3) == 3

    def test_out_of_vocabulary_names_attribute(self):
        s = small_schema()
        with pytest.raises(SchemaMismatchError, match="sex.*'X'.*'M', 'F'"):
            s.encode("sex", "X")

    def test_unhashable_value_names_attribute(self):
        with pytest.raises(SchemaMismatchError, match="sex"):
            small_schema().encode("sex", ["M"])

    def test_out_of_range_ordinal(self):
        with pytest.raises(SchemaMismatchError, match="age"):
            small_schema().encode("age", 99)

    def test_unknown_attribute_names_schema(self):
        with pytest.raises(SchemaMismatchError, match="ghost.*age"):
            small_schema().attribute("ghost")

    def test_from_domain_roundtrip(self):
        s = small_schema()
        assert Schema.from_domain(s.domain).domain == s.domain

    def test_numpy_integer_codes_accepted(self):
        """Codes pulled from numpy arrays (np.int64 etc.) are legal."""
        s = small_schema()
        assert s.encode("age", np.int64(5)) == 5
        assert s.encode("sex", np.int32(1)) == 1
        with pytest.raises(SchemaMismatchError):
            s.encode("age", np.int64(99))
        s2 = Schema.from_spec({"age": np.int64(8)})
        assert s2.domain.sizes == (8,)
        W = compile_expr(A("age").eq(np.int64(2)), s)
        assert W.matrix.shape[0] == 1

    def test_duplicate_vocabulary_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema.from_spec({"sex": ["M", "M"]})


class TestExpressionCompile:
    """Compiled expressions must be structurally identical to the
    physical workloads a caller would hand-build."""

    def test_marginal_matches_builder(self):
        s = small_schema()
        W = compile_expr(marginal("age", "sex"), s).matrix
        ref = builders.marginal(s.domain, ["age", "sex"])
        assert isinstance(W, Kronecker)
        assert np.array_equal(W.dense(), ref.dense())
        assert isinstance(W.factors[0], Identity)
        assert isinstance(W.factors[2], Ones)

    def test_prefix_and_ranges_structured_factors(self):
        s = small_schema()
        Wp = compile_expr(prefix("age"), s).matrix
        assert isinstance(Wp.factors[0], Prefix)
        Wr = compile_expr(ranges("hours"), s).matrix
        assert isinstance(Wr.factors[2], AllRange)

    def test_total_is_ones_row(self):
        s = small_schema()
        W = compile_expr(total(), s).matrix
        assert W.shape == (1, s.domain.size())
        assert all(isinstance(f, Ones) for f in W.factors)

    def test_conjunction_single_row(self):
        s = small_schema()
        e = A("age").between(2, 5) & A("sex").eq("F")
        W = compile_expr(e, s).matrix
        assert W.shape[0] == 1
        dense = W.dense().reshape(s.domain.shape())
        assert dense[2:6, 1, :].sum() == dense.sum()

    def test_same_attribute_conditions_conjoin(self):
        s = small_schema()
        e = A("age").ge(2) & A("age").le(5)
        W = compile_expr(e, s).matrix
        ref = compile_expr(A("age").between(2, 5), s).matrix
        assert np.array_equal(W.dense(), ref.dense())

    def test_negation_on_categorical(self):
        s = small_schema()
        W = compile_expr(~A("sex").eq("F"), s).matrix
        ref = compile_expr(A("sex").eq("M"), s).matrix
        assert np.array_equal(W.dense(), ref.dense())

    def test_weighted_union(self):
        s = small_schema()
        W = compile_expr(marginal("age") + 0.25 * total(), s).matrix
        assert isinstance(W, VStack)
        assert isinstance(W.blocks[1], Weighted)
        assert W.blocks[1].weight == 0.25

    def test_union_factory_with_weights(self):
        s = small_schema()
        W = compile_expr(
            union(marginal("age"), total(), weights=[2.0, 1.0]), s
        ).matrix
        assert isinstance(W.blocks[0], Weighted)
        assert W.blocks[0].weight == 2.0

    def test_count_is_conjunction(self):
        s = small_schema()
        W = compile_expr(count(A("hours").eq(1), A("sex").eq("M")), s).matrix
        assert W.shape[0] == 1

    def test_unknown_attribute_raises(self):
        with pytest.raises(SchemaMismatchError, match="ghost"):
            compile_expr(marginal("ghost"), small_schema())

    def test_labels_resolve_through_vocabulary(self):
        s = small_schema()
        W = compile_expr(A("sex").eq("F"), s).matrix
        dense = W.dense().reshape(s.domain.shape())
        assert dense[:, 1, :].sum() == dense.sum() > 0


class TestCompilerEdgeCases:
    """Satellite: predicate-compiler edge cases."""

    def test_empty_predicate_zero_support(self):
        """isin([]) — the unsatisfiable predicate: an all-zero row."""
        s = small_schema()
        cq = compile_expr(A("hours").isin([]), s)
        assert cq.rows == 1
        assert not cq.matrix.dense().any()

    def test_empty_predicate_served_free(self, tmp_path):
        sess = make_session(tmp_path)
        ds = sess.dataset(
            "d", schema=small_schema(), data=poisson_data(small_schema())
        )
        ans = ds.ask(A("hours").isin([]), eps=1.0)
        assert ans.values == pytest.approx([0.0])
        assert ds.spent == 0.0  # data-independent: pure post-processing

    def test_full_domain_range_collapses_to_total(self):
        s = small_schema()
        cq = compile_expr(A("age").between(0, 7), s)
        assert all(isinstance(f, Ones) for f in cq.matrix.factors)
        # ... and canonicalizes to the *same fingerprint* as total().
        assert cq.fingerprint == compile_expr(total(), s).fingerprint

    def test_full_domain_ge_le_collapse(self):
        s = small_schema()
        t = compile_expr(total(), s).fingerprint
        assert compile_expr(A("age").ge(0), s).fingerprint == t
        assert compile_expr(A("age").le(7), s).fingerprint == t

    def test_out_of_vocabulary_raises_at_compile(self):
        with pytest.raises(SchemaMismatchError, match="sex"):
            compile_expr(A("sex").eq("X"), small_schema())

    def test_duplicates_dedup_in_batch(self):
        s = small_schema()
        batch = compile_batch(
            [marginal("age"), total(), marginal("age"), A("age").between(0, 7)],
            s,
        )
        assert len(batch.queries) == 2  # marginal + (total == full range)
        assert batch.index_map == [0, 1, 0, 1]


class TestPlanner:
    def test_plan_routes_cold_then_cache(self, tmp_path):
        sess = make_session(tmp_path)
        s = small_schema()
        ds = sess.dataset("d", schema=s, data=poisson_data(s))
        exprs = [marginal("age", "sex"), prefix("age"), marginal("age", "hours")]
        plan = ds.plan(exprs, eps=0.5)
        assert isinstance(plan, Plan)
        assert [e.route for e in plan.entries] == ["cold"]
        assert plan.total_epsilon == 0.5
        ds.ask_many(exprs, eps=0.5, rng=1)
        plan2 = ds.plan(exprs, eps=0.5)
        # marginals/prefixes are box-decomposable, so the free hits ride
        # the summed-area accelerator (first route in the table).
        assert [e.route for e in plan2.entries] == ["accelerator"]
        assert plan2.total_epsilon == 0.0
        assert plan2.free_fraction == 1.0

    def test_plan_direct_route_for_small_cold_miss(self, tmp_path):
        sess = make_session(tmp_path)
        s = small_schema()
        ds = sess.dataset("d", schema=s, data=poisson_data(s))
        plan = ds.plan([A("age").eq(0)], eps=0.5)
        (entry,) = plan.entries
        assert entry.route == "direct"
        assert entry.epsilon == 0.5
        assert entry.expected_rmse is not None

    def test_plan_warm_route_after_prepare(self, tmp_path):
        sess = make_session(tmp_path)
        s = small_schema()
        ds = sess.dataset("d", schema=s, data=poisson_data(s))
        W = compile_expr(marginal("age"), s).matrix
        sess.service.prepare(W)  # budget-free SELECT, warm memo
        plan = ds.plan([marginal("age")], eps=0.5)
        (entry,) = plan.entries
        assert entry.route == "warm"
        assert entry.expected_rmse is not None

    def test_plan_epsilon_matches_actual_debits(self, tmp_path):
        """Acceptance: Plan ε estimates equal the accountant's debits,
        on every route."""
        sess = make_session(tmp_path)
        s = small_schema()
        ds = sess.dataset("d", schema=s, data=poisson_data(s))
        acct = sess.service.accountant

        # cold (36 rows > direct threshold → fitting path)
        exprs = [marginal("age", "hours"), A("sex").eq("M"), prefix("age", ), ranges("hours")]
        plan = ds.plan(exprs, eps=0.7)
        before = acct.spent("d")
        ds.ask_many(exprs, eps=0.7, rng=2)
        assert acct.spent("d") - before == pytest.approx(plan.total_epsilon)

        # cache (same batch again → free)
        plan = ds.plan(exprs, eps=0.7)
        assert plan.total_epsilon == 0.0
        before = acct.spent("d")
        ds.ask_many(exprs, eps=0.7, rng=3)
        assert acct.spent("d") == before

        # direct (fresh narrow query)
        plan = ds.plan([A("age").eq(1) & A("sex").eq("F")], eps=0.3)
        before = acct.spent("d")
        ds.ask_many([A("age").eq(1) & A("sex").eq("F")], eps=0.3, rng=4)
        assert acct.spent("d") - before == pytest.approx(plan.total_epsilon)

    def test_dedup_single_debit(self, tmp_path):
        """Acceptance: repeated expressions in one batch cost one debit."""
        sess = make_session(tmp_path)
        s = small_schema()
        ds = sess.dataset("d", schema=s, data=poisson_data(s))
        acct = sess.service.accountant
        e = A("age").between(1, 3)
        answers = ds.ask_many([e, e, e, A("age").between(1, 3)], eps=0.5, rng=5)
        assert acct.spent("d") == pytest.approx(0.5)  # one joint debit
        vals = [a.values for a in answers]
        for v in vals[1:]:
            assert np.array_equal(v, vals[0])  # one measurement, shared

    def test_plan_without_eps_marks_misses_unexecutable(self, tmp_path):
        """A plan with misses but no eps must not claim the batch is
        free — execution would raise QueryMiss, not debit 0."""
        from repro.service import QueryMiss

        sess = make_session(tmp_path)
        s = small_schema()
        ds = sess.dataset("d", schema=s, data=poisson_data(s))
        plan = ds.plan([total()])  # cold miss, no eps
        assert plan.requires_epsilon
        assert plan.entries[-1].epsilon is None
        assert plan.free_fraction == 0.0
        with pytest.raises(QueryMiss):
            ds.ask_many([total()])
        assert ds.spent == 0.0
        # Even the empty-support group is unexecutable without eps.
        plan_zero = ds.plan([A("hours").isin([])])
        assert plan_zero.requires_epsilon
        with pytest.raises(QueryMiss):
            ds.ask(A("hours").isin([]))

    def test_warm_provenance_reported_by_engine(self, tmp_path):
        sess = make_session(tmp_path)
        s = small_schema()
        ds = sess.dataset("d", schema=s, data=poisson_data(s))
        W = compile_expr(marginal("age"), s).matrix
        sess.service.prepare(W)
        ans = ds.ask(marginal("age"), eps=0.5, rng=1)
        assert ans.route == "warm" and not ans.span_projected

    def test_empty_batch(self, tmp_path):
        sess = make_session(tmp_path)
        s = small_schema()
        ds = sess.dataset("d", schema=s, data=poisson_data(s))
        assert ds.ask_many([], eps=1.0) == []
        assert ds.plan([], eps=1.0).total_epsilon == 0.0

    def test_explain_is_printable(self, tmp_path):
        sess = make_session(tmp_path)
        s = small_schema()
        ds = sess.dataset("d", schema=s, data=poisson_data(s))
        text = ds.plan([marginal("age"), total()], eps=0.5).explain()
        assert "ε" in text and "direct" in text


class TestSessionFacade:
    def test_dataset_registration_and_budget(self, tmp_path):
        sess = make_session(tmp_path)
        s = small_schema()
        ds = sess.dataset("d", schema=s, data=poisson_data(s), epsilon_cap=2.0)
        assert ds.spent == 0.0 and ds.remaining == 2.0
        assert sess.dataset("d") is ds
        with pytest.raises(ValueError, match="already registered"):
            sess.dataset("d", schema=s, data=poisson_data(s))
        # A cap on a fetch would be silently ignored — reject it instead.
        with pytest.raises(ValueError, match="already registered"):
            sess.dataset("d", epsilon_cap=1.0)

    def test_tensor_data_flattens_c_order(self, tmp_path):
        sess = make_session(tmp_path, cap=1e7)
        s = small_schema()
        tensor = np.arange(s.domain.size(), dtype=float).reshape(s.domain.shape())
        ds = sess.dataset("d", schema=s, data=tensor)
        ans = ds.ask(total(), eps=1e6, rng=0)
        assert ans.values == pytest.approx([tensor.sum()], rel=1e-3)

    def test_wrong_shape_names_dataset_and_domain(self, tmp_path):
        sess = make_session(tmp_path)
        s = small_schema()
        with pytest.raises(SchemaMismatchError, match="'d'.*age"):
            sess.dataset("d", schema=s, data=np.ones(7))
        with pytest.raises(SchemaMismatchError, match="'d'"):
            sess.dataset("d", schema=s, data=np.ones((3, 3)))

    def test_unregistered_dataset(self, tmp_path):
        with pytest.raises(SchemaMismatchError, match="ghost"):
            make_session(tmp_path).dataset("ghost")

    def test_provenance_fields(self, tmp_path):
        sess = make_session(tmp_path)
        s = small_schema()
        ds = sess.dataset("d", schema=s, data=poisson_data(s))
        miss = ds.ask(A("age").eq(2), eps=0.5, rng=1)
        assert miss.route == "direct" and not miss.span_projected
        assert miss.epsilon == pytest.approx(0.5)
        hit = ds.ask(A("age").eq(2))
        # A point query is a one-box gather: the free hit rides the
        # accelerator, still zero-budget and from the same measurement.
        assert hit.route == "accelerator" and hit.span_projected
        assert hit.epsilon == 0.0 and hit.key == miss.key
        assert hit.value == pytest.approx(miss.value)

    def test_miss_without_eps_raises_before_spend(self, tmp_path):
        from repro.service import QueryMiss

        sess = make_session(tmp_path)
        s = small_schema()
        ds = sess.dataset("d", schema=s, data=poisson_data(s))
        with pytest.raises(QueryMiss):
            ds.ask(marginal("age"))
        assert ds.spent == 0.0

    def test_existing_service_passthrough(self):
        svc = QueryService(restarts=1, rng=0)
        sess = Session(service=svc)
        assert sess.service is svc
        with pytest.raises(ValueError):
            Session(service=svc, restarts=2)


class TestEndToEndEquivalence:
    """Acceptance: Session answers ≡ the physical API on the same
    compiled workload, bit for bit, at a fixed seed."""

    def _hand_built(self, s):
        d = s.domain
        return [
            builders.marginal(d, ["age", "hours"]),  # 32 rows
            builders.marginal(d, ["age", "sex"]),  # 16 rows
            Kronecker([Prefix(8), Ones(1, 2), Ones(1, 4)]),
        ]

    def _exprs(self):
        return [
            marginal("age", "hours"),
            marginal("age", "sex"),
            prefix("age"),
        ]

    @pytest.mark.parametrize("threshold", [0, 32])
    def test_bit_identical_to_matrix_level(self, tmp_path, threshold):
        """Both the fitted path (threshold=0 → cold fit) and the direct
        path (rows ≤ 32) must agree bit-for-bit with QueryService.answer
        on hand-built matrices at the same seeds."""
        s = small_schema()
        x = poisson_data(s)
        exprs = self._exprs() if threshold == 0 else [self._exprs()[1]]
        mats = (
            self._hand_built(s) if threshold == 0 else [self._hand_built(s)[1]]
        )

        svc = QueryService(
            registry=StrategyRegistry(tmp_path / "phys"),
            accountant=PrivacyAccountant(default_cap=100.0),
            restarts=1,
            rng=0,
            direct_miss_threshold=threshold,
        )
        svc.add_dataset("d", x)
        physical = svc.answer(
            "d", mats, eps=0.8, rng=11, exact=True, warm_start=False
        )

        sess = Session(
            registry=StrategyRegistry(tmp_path / "decl"),
            accountant=PrivacyAccountant(default_cap=100.0),
            restarts=1,
            rng=0,
            direct_miss_threshold=threshold,
        )
        ds = sess.dataset("d", schema=s, data=x)
        declarative = ds.ask_many(
            exprs, eps=0.8, rng=11, exact=True, warm_start=False
        )

        assert len(declarative) == len(physical.answers)
        for decl, phys in zip(declarative, physical.answers):
            assert np.array_equal(decl.values, phys.values)

    def test_compiled_plan_accepted_by_hdmm_and_fingerprint(self):
        """core/hdmm + fingerprint accept compiled plans directly."""
        s = small_schema()
        cq = compile_expr(marginal("age", "sex"), s)
        mech = HDMM(restarts=1, rng=0).fit(cq)
        assert mech.strategy is not None
        assert workload_fingerprint(cq) == workload_fingerprint(
            cq.matrix, domain=s.domain
        )
        batch = compile_batch([marginal("age"), total()], s)
        assert workload_fingerprint(batch) == workload_fingerprint(
            batch.to_workload_matrix(), domain=s.domain
        )

    def test_registry_shared_across_layers(self, tmp_path):
        """A strategy fitted through the declarative layer is found warm
        by the physical layer (same fingerprints), and vice versa."""
        s = small_schema()
        sess = make_session(tmp_path)
        ds = sess.dataset("d", schema=s, data=poisson_data(s))
        exprs = [marginal("age", "hours"), prefix("age")]  # > threshold
        ds.ask_many(exprs, eps=0.5, rng=1)
        assert len(sess.service.registry) == 1

        svc = QueryService(
            registry=StrategyRegistry(tmp_path / "reg"), restarts=1, rng=0
        )
        W = VStack([cq.matrix for cq in ds.compile_many(exprs).queries])
        key, _, _, from_registry = svc.prepare(W)
        assert from_registry
