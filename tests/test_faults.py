"""Crash-consistency fault matrix for the durability subsystem.

Drives deterministic faults (kill-points, bit flips, transient errnos)
through every write/fsync/replace/load site of the write-ahead ε-ledger
and the strategy registry, and proves the invariants the service layer
stakes its privacy guarantee on:

* recovered accountant state equals the pre-crash **committed prefix**
  — never less than the noise actually released, and no kill-point
  leaves an overdrawn budget;
* torn ledger tails are truncated, corrupted records stop the replay at
  the last good record;
* no corrupted strategy is ever served: damaged registry entries are
  quarantined and re-fit as cold misses, never crashing a request;
* concurrent debitors — threads in one process and separate processes
  sharing a ledger file — can never jointly overdraw a cap;
* with no fault armed, the durable paths are bit-identical to the
  in-memory ones.
"""

import errno
import json
import multiprocessing
import os
import threading

import numpy as np
import pytest

from repro.linalg import Dense, Identity, Prefix
from repro.service import (
    BudgetExceededError,
    PrivacyAccountant,
    QueryService,
    RegistryCorruptionError,
    StrategyRegistry,
    WriteAheadLedger,
    faults,
)
from repro.service.ledger import TornRecordError, decode_line, encode_record


# ---------------------------------------------------------------------------
# WAL unit behaviour
# ---------------------------------------------------------------------------


class TestLedgerFormat:
    def test_roundtrip(self):
        rec = {"kind": "debit", "dataset": "d", "epsilon": 0.5}
        assert decode_line(encode_record(rec)) == rec

    def test_bad_json_is_torn(self):
        with pytest.raises(TornRecordError):
            decode_line(b'{"kind": "debit", "epsi\n')

    def test_forged_crc_is_torn(self):
        line = encode_record({"kind": "debit", "dataset": "d", "epsilon": 1.0})
        forged = line.replace(b'"epsilon":1.0', b'"epsilon":9.0')
        with pytest.raises(TornRecordError):
            decode_line(forged)

    def test_single_flipped_bit_is_torn(self):
        line = encode_record({"kind": "debit", "dataset": "d", "epsilon": 1.0})
        buf = bytearray(line)
        buf[len(buf) // 2] ^= 0x04
        with pytest.raises(TornRecordError):
            decode_line(bytes(buf))


class TestLedgerRecovery:
    def test_recover_replays_committed_state(self, tmp_path):
        p = str(tmp_path / "eps.wal")
        a = PrivacyAccountant(wal_path=p)
        a.register("adult", 3.0)
        a.charge("adult", 0.5, stage="s1")
        a.charge_parallel("adult", [0.2, 0.7], stage="s2")

        b = PrivacyAccountant.recover(p)
        assert b.cap("adult") == 3.0
        assert b.spent("adult") == pytest.approx(1.2)
        assert [(e.composition, e.epsilon) for e in b.ledger] == [
            ("sequential", 0.5),
            ("parallel", 0.7),
        ]

    def test_torn_tail_is_truncated(self, tmp_path):
        p = str(tmp_path / "eps.wal")
        a = PrivacyAccountant(wal_path=p)
        a.register("d", 5.0)
        a.charge("d", 1.0)
        size_committed = os.path.getsize(p)
        with open(p, "ab") as f:  # a crashed writer's half record
            f.write(b'{"kind":"debit","dataset":"d","epsilon":99')

        b = PrivacyAccountant.recover(p)
        assert b.spent("d") == 1.0
        assert os.path.getsize(p) == size_committed  # tail physically gone
        # And the recovered accountant keeps working past the old tail.
        b.charge("d", 0.5)
        c = PrivacyAccountant.recover(p)
        assert c.spent("d") == pytest.approx(1.5)

    def test_corrupt_middle_record_stops_replay_at_prefix(self, tmp_path):
        p = str(tmp_path / "eps.wal")
        a = PrivacyAccountant(wal_path=p)
        a.register("d", 10.0)
        inj = faults.FaultInjector().flip_bit(
            "ledger.append.payload", byte=30, bit=2, after=2
        )
        with inj.active():
            a.charge("d", 1.0)
            a.charge("d", 2.0)  # corrupted on disk
            a.charge("d", 4.0)  # after the corruption: unreachable on replay
        assert inj.fired  # the flip actually happened
        b = PrivacyAccountant.recover(p)
        # Replay stops at the damaged record: the committed prefix is the
        # register + first debit only.
        assert b.spent("d") == 1.0
        assert len(b.ledger) == 1

    def test_two_accountants_cannot_jointly_overdraw(self, tmp_path):
        p = str(tmp_path / "eps.wal")
        a = PrivacyAccountant(wal_path=p)
        a.register("d", 1.0)
        b = PrivacyAccountant.recover(p)
        a.charge("d", 0.6)
        with pytest.raises(BudgetExceededError) as exc:
            b.charge("d", 0.6)  # sees a's debit through the ledger
        assert exc.value.remaining == pytest.approx(0.4)
        b.charge("d", 0.4)
        assert PrivacyAccountant.recover(p).spent("d") == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Kill-point matrix: ledger
# ---------------------------------------------------------------------------

_LEDGER_SITES = [
    "ledger.append.write",  # pre-fsync: record may be lost, never half-counted
    "ledger.append.fsync",  # mid-commit
    "ledger.append.commit",  # post-fsync / pre-apply: record durable
]


class TestLedgerKillMatrix:
    @pytest.mark.parametrize("site", _LEDGER_SITES)
    @pytest.mark.parametrize("op", [1, 2, 3])
    def test_recovery_equals_committed_prefix(self, tmp_path, site, op):
        p = str(tmp_path / "eps.wal")
        boot = PrivacyAccountant(wal_path=p)
        boot.register("d", 100.0)

        acct = PrivacyAccountant.recover(p)
        amounts = [0.25, 0.5, 0.75, 1.0]
        returned = []  # debits whose charge() returned => noise was released
        inj = faults.FaultInjector().crash(site, after=op)
        crashed = False
        with inj.active():
            try:
                for amt in amounts:
                    acct.charge("d", amt)
                    returned.append(amt)
            except faults.SimulatedCrash:
                crashed = True
        assert crashed, f"kill-point {site}#{op} never fired"

        rec = PrivacyAccountant.recover(p)
        spent = rec.spent("d")
        # The privacy invariant: every debit that authorized noise is in
        # the replay.  The in-flight debit may additionally have committed
        # (post-fsync kills) — conservative, never the reverse.
        assert spent >= sum(returned) - 1e-12
        assert spent <= sum(amounts[: len(returned) + 1]) + 1e-12
        assert spent <= rec.cap("d")
        if site == "ledger.append.commit":
            # Post-fsync: the in-flight record is durably committed.
            assert spent == pytest.approx(sum(amounts[: len(returned) + 1]))
        if site == "ledger.append.write":
            # Pre-write: nothing of the in-flight record ever hit disk.
            assert spent == pytest.approx(sum(returned))

        # The ledger file itself is fully parseable after recovery.
        with open(p, "rb") as f:
            for line in f.read().splitlines(keepends=True):
                decode_line(line)

    @pytest.mark.parametrize("site", ["ledger.append.write", "ledger.append.fsync"])
    def test_transient_errors_are_retried(self, tmp_path, site):
        p = str(tmp_path / "eps.wal")
        a = PrivacyAccountant(wal_path=p)
        a.register("d", 10.0)
        for err in (errno.ENOSPC, errno.EINTR):
            before = a.spent("d")
            inj = faults.FaultInjector().fail(site, err, times=2)
            with inj.active():
                a.charge("d", 0.5)
            assert a.spent("d") == pytest.approx(before + 0.5)
            assert len(inj.fired) == 2  # both transient failures exercised
        assert PrivacyAccountant.recover(p).spent("d") == pytest.approx(
            a.spent("d")
        )

    def test_persistent_transient_error_propagates_cleanly(self, tmp_path):
        p = str(tmp_path / "eps.wal")
        a = PrivacyAccountant(wal_path=p)
        a.register("d", 10.0)
        a.charge("d", 1.0)
        inj = faults.FaultInjector().fail(
            "ledger.append.write", errno.ENOSPC, times=50
        )
        with inj.active():
            with pytest.raises(OSError):
                a.charge("d", 1.0)
        # The failed debit is recorded nowhere: not in memory, not on disk.
        assert a.spent("d") == 1.0
        assert PrivacyAccountant.recover(p).spent("d") == 1.0


# ---------------------------------------------------------------------------
# Kill-point matrix: registry
# ---------------------------------------------------------------------------

_PUT_SITES = [
    "registry.npz.write",  # mid-npz-write: tmp abandoned, old entry intact
    "registry.npz.fsync",
    "registry.npz.replace",  # pre-replace: old npz + old manifest
    "registry.manifest.write",  # new npz in place, old manifest
    "registry.manifest.fsync",
    "registry.manifest.replace",
]


def _small_case():
    W = Prefix(8)
    A_old = Identity(8)
    A_new = Dense(2.0 * np.eye(8))
    return W, A_old, A_new


class TestRegistryKillMatrix:
    @pytest.mark.parametrize("site", _PUT_SITES)
    def test_crashed_put_never_serves_a_torn_strategy(self, tmp_path, site):
        root = str(tmp_path / "reg")
        W, A_old, A_new = _small_case()
        reg = StrategyRegistry(root)
        reg.put(W, A_old, loss=1.0)

        inj = faults.FaultInjector().crash(site)
        with inj.active():
            with pytest.raises(faults.SimulatedCrash):
                StrategyRegistry(root).put(W, A_new, loss=2.0)

        # The next process sees a consistent registry: the entry loads
        # cleanly as either the old or the new strategy, or reads as a
        # cold miss (new npz + stale manifest checksum => quarantined) —
        # but never crashes a request and never serves torn bytes.
        fresh = StrategyRegistry(root)
        rec = fresh.get(W)
        if rec is not None:
            got = rec.strategy.dense()
            assert np.array_equal(got, A_old.dense()) or np.array_equal(
                got, A_new.dense()
            )
        # Recovery completes: a re-put lands and serves the new strategy.
        fresh.put(W, A_new, loss=2.0)
        again = StrategyRegistry(root).get(W)
        assert again is not None
        assert np.array_equal(again.strategy.dense(), A_new.dense())
        assert again.meta["sha256"]

    def test_crash_mid_npz_write_leaves_tmp_ignored(self, tmp_path):
        root = str(tmp_path / "reg")
        W, A_old, _ = _small_case()
        reg = StrategyRegistry(root)
        inj = faults.FaultInjector().crash("registry.npz.write")
        with inj.active():
            with pytest.raises(faults.SimulatedCrash):
                reg.put(W, A_old)
        tmps = [n for n in os.listdir(root) if ".tmp-" in n]
        assert tmps, "simulated kill should abandon the tmp file"
        fresh = StrategyRegistry(root)
        assert fresh.get(W) is None
        assert fresh.keys() == []


class TestRegistryCorruption:
    def test_bitflip_is_quarantined_and_read_as_miss(self, tmp_path):
        root = str(tmp_path / "reg")
        W, A_old, _ = _small_case()
        reg = StrategyRegistry(root)
        key = reg.put(W, A_old)
        path = os.path.join(root, f"{key}.npz")
        with open(path, "r+b") as f:  # one flipped bit, mid-file
            f.seek(os.path.getsize(path) // 2)
            b = f.read(1)
            f.seek(-1, os.SEEK_CUR)
            f.write(bytes([b[0] ^ 0x10]))

        fresh = StrategyRegistry(root)
        assert fresh.get(W) is None  # checksum caught it: miss, not crash
        assert not os.path.exists(path)  # moved aside, not deleted
        qdir = os.path.join(root, "quarantine")
        assert os.listdir(qdir)
        assert key not in fresh  # manifest forgot the entry
        with pytest.raises(KeyError):
            fresh.load(key)

    def test_direct_load_of_corrupt_entry_raises_registry_error(self, tmp_path):
        root = str(tmp_path / "reg")
        W, A_old, _ = _small_case()
        reg = StrategyRegistry(root)
        key = reg.put(W, A_old)
        inj = faults.FaultInjector().flip_bit(
            "registry.npz.payload", byte=-200, bit=3
        )
        with inj.active():
            key2 = reg.put(W, A_old)  # corrupted at the write site
        assert key2 == key
        with pytest.raises(RegistryCorruptionError):
            StrategyRegistry(root).load(key)

    def test_missing_npz_degrades_to_cold_miss(self, tmp_path):
        root = str(tmp_path / "reg")
        W, A_old, _ = _small_case()
        reg = StrategyRegistry(root)
        key = reg.put(W, A_old)
        os.remove(os.path.join(root, f"{key}.npz"))
        fresh = StrategyRegistry(root)
        assert fresh.get(W) is None
        assert key not in fresh

    def test_corrupt_manifest_rebuilds_from_npz_files(self, tmp_path):
        root = str(tmp_path / "reg")
        W, A_old, _ = _small_case()
        reg = StrategyRegistry(root)
        key = reg.put(W, A_old, loss=7.0)
        with open(os.path.join(root, "manifest.json"), "w") as f:
            f.write('{"version": 2, "entr')  # torn manifest write... almost

        fresh = StrategyRegistry(root)
        assert fresh.keys() == [key]  # rebuilt from the npz present
        rec = fresh.get(W)
        assert rec is not None
        assert np.array_equal(rec.strategy.dense(), A_old.dense())
        assert rec.loss is None  # fit metadata was lost with the manifest
        assert os.listdir(os.path.join(root, "quarantine"))

    def test_v1_manifest_entry_verifies_lazily_and_backfills(self, tmp_path):
        root = str(tmp_path / "reg")
        W, A_old, _ = _small_case()
        reg = StrategyRegistry(root)
        key = reg.put(W, A_old)
        # Rewrite the manifest as a pre-checksum (version 1) registry
        # would have left it.
        mpath = os.path.join(root, "manifest.json")
        with open(mpath) as f:
            manifest = json.load(f)
        manifest["version"] = 1
        del manifest["entries"][key]["sha256"]
        with open(mpath, "w") as f:
            json.dump(manifest, f)

        fresh = StrategyRegistry(root)
        rec = fresh.load(key)  # verifies lazily: no checksum to compare yet
        assert np.array_equal(rec.strategy.dense(), A_old.dense())
        assert fresh.entry(key)["sha256"]  # backfilled on first load
        with open(mpath) as f:
            assert json.load(f)["version"] == 2

    def test_corrupted_entry_is_refit_cold_by_the_service(self, tmp_path):
        root = str(tmp_path / "reg")
        W = Prefix(8)
        svc = QueryService(registry=StrategyRegistry(root), restarts=1, rng=0)
        key, strategy, _, from_registry = svc.prepare(W)
        assert not from_registry
        # Corrupt the persisted entry behind the next process's back.
        path = os.path.join(root, f"{key}.npz")
        with open(path, "r+b") as f:
            f.seek(100)
            f.write(b"\xff\xff\xff\xff")

        svc2 = QueryService(registry=StrategyRegistry(root), restarts=1, rng=0)
        key2, strategy2, _, from_registry2 = svc2.prepare(W)
        assert key2 == key
        assert not from_registry2  # quarantined => cold miss, not a crash
        # The re-fit re-persisted a good copy: third process loads warm.
        svc3 = QueryService(registry=StrategyRegistry(root), restarts=1, rng=0)
        _, _, _, from_registry3 = svc3.prepare(W)
        assert from_registry3

    def test_registry_transient_write_errors_are_retried(self, tmp_path):
        root = str(tmp_path / "reg")
        W, A_old, _ = _small_case()
        reg = StrategyRegistry(root)
        inj = (
            faults.FaultInjector()
            .fail("registry.npz.fsync", errno.EINTR, times=2)
            .fail("registry.manifest.write", errno.ENOSPC, times=1)
        )
        with inj.active():
            key = reg.put(W, A_old)
        assert len(inj.fired) == 3
        rec = StrategyRegistry(root).load(key)
        assert np.array_equal(rec.strategy.dense(), A_old.dense())


# ---------------------------------------------------------------------------
# Concurrency: threads and processes
# ---------------------------------------------------------------------------


class TestThreadedStress:
    N_THREADS = 8
    ATTEMPTS = 40
    CAP = 7.0

    def _hammer(self, acct):
        """Mixed sequential/parallel debits from many threads; returns the
        per-thread sums of debits that were accepted."""
        accepted = [0.0] * self.N_THREADS
        barrier = threading.Barrier(self.N_THREADS)

        def worker(t):
            barrier.wait()
            for i in range(self.ATTEMPTS):
                try:
                    if i % 3 == 2:
                        accepted[t] += acct.charge_parallel(
                            "d", [0.01 * (t + 1), 0.03], stage=f"t{t}"
                        )
                    else:
                        accepted[t] += acct.charge("d", 0.05, stage=f"t{t}")
                except BudgetExceededError:
                    pass

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(self.N_THREADS)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        return accepted

    def test_in_memory_accountant_never_overdraws(self):
        acct = PrivacyAccountant()
        acct.register("d", self.CAP)
        accepted = self._hammer(acct)
        assert acct.spent("d") <= self.CAP * (1 + 1e-9)
        assert acct.spent("d") == pytest.approx(sum(accepted))
        # Every accepted debit left exactly one ledger entry.
        assert sum(e.epsilon for e in acct.ledger) == pytest.approx(
            sum(accepted)
        )

    def test_wal_accountant_replay_reproduces_exact_final_state(self, tmp_path):
        p = str(tmp_path / "eps.wal")
        acct = PrivacyAccountant(wal_path=p)
        acct.register("d", self.CAP)
        accepted = self._hammer(acct)
        assert acct.spent("d") <= self.CAP * (1 + 1e-9)
        assert acct.spent("d") == pytest.approx(sum(accepted))

        rec = PrivacyAccountant.recover(p)
        # Bit-exact, not approximate: the replayed float sum runs in the
        # same order the debits committed.
        assert rec.spent("d") == acct.spent("d")
        assert rec.cap("d") == self.CAP
        assert len(rec.ledger) == len(acct.ledger)
        assert [
            (e.dataset, e.epsilon, e.composition) for e in rec.ledger
        ] == [(e.dataset, e.epsilon, e.composition) for e in acct.ledger]


def _process_worker(wal_path, amount, result_queue):
    acct = PrivacyAccountant.recover(wal_path)
    total, refused = 0.0, 0
    for _ in range(60):
        try:
            total += acct.charge("shared", amount, stage=f"pid{os.getpid()}")
        except BudgetExceededError:
            refused += 1
            break
    result_queue.put((total, refused))


class TestMultiprocessCompareAndDebit:
    def test_two_processes_cannot_jointly_overdraw(self, tmp_path):
        p = str(tmp_path / "eps.wal")
        cap = 2.0
        boot = PrivacyAccountant(wal_path=p)
        boot.register("shared", cap)

        ctx = multiprocessing.get_context("fork")
        q = ctx.Queue()
        procs = [
            ctx.Process(target=_process_worker, args=(p, 0.03, q))
            for _ in range(3)
        ]
        for pr in procs:
            pr.start()
        results = [q.get(timeout=60) for _ in procs]
        for pr in procs:
            pr.join(timeout=60)
            assert pr.exitcode == 0

        charged = sum(t for t, _ in results)
        assert sum(r for _, r in results) >= 1  # the cap actually bit
        assert charged <= cap * (1 + 1e-9)
        final = PrivacyAccountant.recover(p)
        assert final.spent("shared") == pytest.approx(charged)
        assert final.spent("shared") <= cap * (1 + 1e-9)


# ---------------------------------------------------------------------------
# No-fault bit-identity of the durable paths
# ---------------------------------------------------------------------------


class TestWarmPathBitIdentity:
    def test_wal_accountant_does_not_perturb_answers(self, tmp_path):
        W = Prefix(8)
        x = np.arange(8, dtype=float)

        def serve(accountant):
            svc = QueryService(
                registry=StrategyRegistry(str(tmp_path / "shared-reg")),
                accountant=accountant,
                restarts=1,
                rng=0,
            )
            svc.add_dataset("d", x, epsilon_cap=10.0)
            res = svc.measure("d", W, eps=[0.5, 1.0], trials=2, rng=42)
            return res.answers

    # The second service warm-loads through the checksum verify; the
    # WAL fsyncs every debit.  Neither may change a single bit.
        plain = serve(PrivacyAccountant())
        durable = serve(
            PrivacyAccountant(wal_path=str(tmp_path / "eps.wal"))
        )
        assert np.array_equal(plain, durable)

    def test_recovered_accountant_continues_the_same_budget(self, tmp_path):
        p = str(tmp_path / "eps.wal")
        a = PrivacyAccountant(wal_path=p)
        a.register("d", 1.0)
        a.charge("d", 0.7)
        del a
        b = PrivacyAccountant.recover(p)
        with pytest.raises(BudgetExceededError) as exc:
            b.charge("d", 0.5)
        assert exc.value.spent == pytest.approx(0.7)
        assert exc.value.remaining == pytest.approx(0.3)


# ---------------------------------------------------------------------------
# Satellites: constructor validation and actionable budget errors
# ---------------------------------------------------------------------------


class TestConstructorValidation:
    def test_registry_accepts_path_and_validates_it(self, tmp_path):
        svc = QueryService(registry=str(tmp_path / "reg"), restarts=1)
        assert isinstance(svc.registry, StrategyRegistry)
        assert os.path.isdir(str(tmp_path / "reg"))

    def test_registry_root_under_a_file_is_rejected(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.raises(ValueError, match="registry root"):
            QueryService(registry=str(blocker / "reg"))

    def test_registry_root_that_is_a_file_is_rejected(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.raises(ValueError, match="registry root"):
            StrategyRegistry(str(blocker))

    def test_registry_wrong_type_is_rejected(self):
        with pytest.raises(TypeError, match="registry"):
            QueryService(registry=42)

    def test_accountant_wrong_type_is_rejected(self):
        with pytest.raises(TypeError, match="accountant"):
            QueryService(accountant="5.0")

    def test_restarts_validated(self):
        with pytest.raises(ValueError, match="restarts"):
            QueryService(restarts=0)

    def test_span_tol_validated(self):
        for bad in (0.0, -1e-6, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="span_tol"):
                QueryService(span_tol=bad)

    def test_direct_miss_threshold_validated(self):
        with pytest.raises(ValueError, match="direct_miss_threshold"):
            QueryService(direct_miss_threshold=-1)

    def test_ledger_missing_directory_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="ledger directory"):
            WriteAheadLedger(str(tmp_path / "nope" / "eps.wal"))


class TestBudgetErrorReporting:
    def test_error_carries_the_full_budget_picture(self):
        acct = PrivacyAccountant()
        acct.register("adult", 2.0)
        acct.charge("adult", 1.5)
        with pytest.raises(BudgetExceededError) as exc:
            acct.charge("adult", 1.0)
        e = exc.value
        assert (e.dataset, e.cap, e.spent, e.requested) == ("adult", 2.0, 1.5, 1.0)
        assert e.remaining == pytest.approx(0.5)
        for token in ("'adult'", "cap 2", "spent 1.5", "debit 1"):
            assert token in str(e)

    def test_session_answers_report_remaining_budget(self):
        from repro.api import Schema, Session, total

        sess = Session(accountant=PrivacyAccountant(), restarts=1)
        ds = sess.dataset(
            "t",
            schema=Schema.from_spec({"a": 4}),
            data=np.ones(4),
            epsilon_cap=2.0,
        )
        ans = ds.ask(total(), eps=0.5)
        assert ans.epsilon == pytest.approx(0.5)
        assert ans.remaining == pytest.approx(1.5)
        again = ds.ask(total())  # free cache hit
        assert again.epsilon == 0.0
        assert again.remaining == pytest.approx(1.5)

    def test_session_overdraw_names_dataset_and_remaining(self):
        from repro.api import A, Schema, Session

        sess = Session(accountant=PrivacyAccountant(), restarts=1)
        ds = sess.dataset(
            "t",
            schema=Schema.from_spec({"a": 4}),
            data=np.ones(4),
            epsilon_cap=1.0,
        )
        with pytest.raises(BudgetExceededError) as exc:
            ds.ask(A("a").eq(1), eps=5.0)
        assert exc.value.dataset == "t"
        assert exc.value.remaining == pytest.approx(1.0)
