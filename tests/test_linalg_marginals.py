"""Tests for the marginals algebra (Section 6.3, Appendix A.4)."""

import numpy as np
import pytest

from repro.linalg import (
    MarginalsAlgebra,
    MarginalsGram,
    MarginalsStrategy,
    index_to_subset,
    marginal_c_matrix,
    marginal_query_matrix,
    subset_to_index,
)

SIZES = (2, 3, 4)


class TestIndexing:
    def test_subset_roundtrip(self):
        attrs = ("a", "b", "c")
        for a in range(8):
            subset = index_to_subset(a, attrs)
            assert subset_to_index(subset, attrs) == a

    def test_example9_convention(self):
        """I ⊗ T ⊗ I corresponds to C(101₂) = C(5) (paper Example 9)."""
        attrs = ("x", "y", "z")
        assert subset_to_index(("x", "z"), attrs) == 5


class TestCMatrices:
    def test_full_index_is_identity(self):
        C = marginal_c_matrix(SIZES, 7)
        assert np.allclose(C.dense(), np.eye(24))

    def test_zero_index_is_all_ones(self):
        C = marginal_c_matrix(SIZES, 0)
        assert np.allclose(C.dense(), np.ones((24, 24)))

    def test_query_matrix_gram_is_c(self):
        for a in range(8):
            Q = marginal_query_matrix(SIZES, a)
            C = marginal_c_matrix(SIZES, a)
            assert np.allclose(Q.gram().dense(), C.dense()), a

    def test_query_sensitivity_one(self):
        for a in range(8):
            assert marginal_query_matrix(SIZES, a).sensitivity() == 1.0


class TestAlgebra:
    def test_cbar_table(self):
        alg = MarginalsAlgebra(SIZES)
        # C̄(k) = product of n_i over zero bits of k.
        assert alg.cbar[7] == 1  # all kept
        assert alg.cbar[0] == 24  # none kept
        assert alg.cbar[0b100] == 12  # keep a (n=2) → 3*4

    def test_proposition4_product(self, rng):
        """G(u)G(v) = G(X(u)v)."""
        alg = MarginalsAlgebra(SIZES)
        u, v = rng.random(8), rng.random(8)
        Gu = MarginalsGram(SIZES, u).dense()
        Gv = MarginalsGram(SIZES, v).dense()
        w = alg.multiply_weights(u, v)
        assert np.allclose(Gu @ Gv, MarginalsGram(SIZES, w).dense())

    def test_x_matrix_consistent_with_multiply(self, rng):
        alg = MarginalsAlgebra(SIZES)
        u, v = rng.random(8), rng.random(8)
        assert np.allclose(alg.x_matrix(u) @ v, alg.multiply_weights(u, v))

    def test_x_matrix_upper_triangular(self, rng):
        alg = MarginalsAlgebra(SIZES)
        X = alg.x_matrix(rng.random(8)).toarray()
        assert np.allclose(X, np.triu(X))

    def test_ginv_gives_inverse(self, rng):
        alg = MarginalsAlgebra(SIZES)
        u = rng.random(8) + 0.1
        v = alg.ginv_weights(u)
        Gu = MarginalsGram(SIZES, u).dense()
        Gv = MarginalsGram(SIZES, v).dense()
        assert np.allclose(Gu @ Gv, np.eye(24), atol=1e-8)

    def test_ginv_requires_full_weight(self):
        alg = MarginalsAlgebra(SIZES)
        u = np.ones(8)
        u[-1] = 0.0
        with pytest.raises(ValueError):
            alg.ginv_weights(u)

    def test_adjoint_solve(self, rng):
        alg = MarginalsAlgebra(SIZES)
        u = rng.random(8) + 0.1
        delta = rng.random(8)
        phi = alg.adjoint_solve(u, delta)
        assert np.allclose(alg.x_matrix(u).T @ phi, delta, atol=1e-10)

    def test_dimension_cap(self):
        with pytest.raises(ValueError):
            MarginalsAlgebra([2] * 17)


class TestMarginalsGram:
    def test_matvec_matches_dense(self, rng):
        v = rng.random(8)
        G = MarginalsGram(SIZES, v)
        x = rng.standard_normal(24)
        assert np.allclose(G.matvec(x), G.dense() @ x)

    def test_symmetric(self, rng):
        G = MarginalsGram(SIZES, rng.random(8))
        D = G.dense()
        assert np.allclose(D, D.T)
        x = rng.standard_normal(24)
        assert np.allclose(G.rmatvec(x), G.matvec(x))

    def test_trace(self, rng):
        v = rng.random(8)
        G = MarginalsGram(SIZES, v)
        assert np.isclose(G.trace(), np.trace(G.dense()))

    def test_weight_shape_check(self):
        with pytest.raises(ValueError):
            MarginalsGram(SIZES, np.ones(5))


class TestMarginalsStrategy:
    def test_stacks_active_marginals(self):
        theta = np.zeros(8)
        theta[[2, 7]] = [0.5, 0.5]
        M = MarginalsStrategy(SIZES, theta)
        # marginal 2 = keep 'b' (3 rows), marginal 7 = full table (24 rows)
        assert M.shape == (3 + 24, 24)

    def test_sensitivity_is_theta_sum(self):
        theta = np.zeros(8)
        theta[[1, 3, 7]] = [0.25, 0.5, 0.25]
        assert np.isclose(MarginalsStrategy(SIZES, theta).sensitivity(), 1.0)

    def test_gram_weights_are_theta_squared(self, rng):
        theta = rng.random(8)
        M = MarginalsStrategy(SIZES, theta)
        D = M.dense()
        assert np.allclose(M.gram().dense(), D.T @ D)

    def test_pinv_invertible_case(self, rng):
        theta = rng.random(8) + 0.05
        M = MarginalsStrategy(SIZES, theta)
        y = rng.standard_normal(M.shape[0])
        assert np.allclose(
            M.pinv().matvec(y), np.linalg.pinv(M.dense()) @ y, atol=1e-8
        )

    def test_pinv_singular_case_least_squares(self, rng):
        """Without the full table the Gram is singular; the generalized
        inverse must still produce a least-squares solution (same residual
        as the Moore-Penrose solution, same answers on supported queries)."""
        theta = np.zeros(8)
        theta[[1, 2, 4]] = 1.0  # three 1-way marginals, no full table
        M = MarginalsStrategy(SIZES, theta)
        D = M.dense()
        y = rng.standard_normal(M.shape[0])
        x_ginv = M.pinv().matvec(y)
        x_mp = np.linalg.pinv(D) @ y
        assert np.isclose(
            np.linalg.norm(D @ x_ginv - y), np.linalg.norm(D @ x_mp - y), atol=1e-6
        )
        # Any supported query (a measured marginal row) gets the same answer.
        assert np.allclose(D @ x_ginv, D @ x_mp, atol=1e-6)

    def test_rejects_negative_weights(self):
        theta = np.zeros(8)
        theta[0] = -1.0
        theta[-1] = 1.0
        with pytest.raises(ValueError):
            MarginalsStrategy(SIZES, theta)

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            MarginalsStrategy(SIZES, np.zeros(8))
