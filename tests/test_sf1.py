"""Tests for the SF1/SF1+ proxy workloads on the CPH schema."""

import numpy as np

from repro.workload import (
    as_union_of_products,
    cph_domain,
    implicit_vectorize,
    sf1_age_ranges,
    sf1_workload,
)


class TestDomain:
    def test_cph_shape(self):
        dom = cph_domain()
        assert dom.size() == 2 * 2 * 64 * 17 * 115 * 51 == 25_524_480

    def test_without_state(self):
        assert cph_domain(include_state=False).size() == 500_480


class TestAgeRanges:
    def test_first_is_total_age_range(self):
        r = sf1_age_ranges()[0]
        assert (r.lo, r.hi) == (0, 114)

    def test_partition_covers_domain(self):
        # Ranges 1.. partition [0, 114].
        rs = sf1_age_ranges()[1:]
        covered = np.zeros(115)
        for r in rs:
            covered[r.lo : r.hi + 1] += 1
        assert np.all(covered == 1)


class TestSF1:
    def test_32_products(self):
        assert len(sf1_workload()) == 32
        assert len(sf1_workload(plus=True)) == 32

    def test_sf1_national_only(self):
        """Every SF1 product is Total on State: one query per state slice."""
        wl = sf1_workload()
        W = implicit_vectorize(wl)
        for _, factors in as_union_of_products(W):
            assert factors[-1].shape[0] == 1  # Total on state

    def test_sf1_plus_adds_state_identity(self):
        wl = sf1_workload(plus=True)
        W = implicit_vectorize(wl)
        for _, factors in as_union_of_products(W):
            assert factors[-1].shape == (52, 51)  # Identity ∪ Total

    def test_query_counts_scale_by_states(self):
        base = sf1_workload().num_queries()
        plus = sf1_workload(plus=True).num_queries()
        assert plus == base * 52

    def test_queries_are_counting_queries(self):
        """Every workload row is a 0/1 predicate indicator (Definition 1)."""
        wl = sf1_workload()
        W = implicit_vectorize(wl)
        # Check on a small projection: multiply by a one-hot data vector and
        # confirm answers are in {0, 1}.
        x = np.zeros(W.shape[1])
        x[12345] = 1.0
        answers = W.matvec(x)
        assert set(np.unique(answers)) <= {0.0, 1.0}

    def test_workload_matrix_shape(self):
        W = implicit_vectorize(sf1_workload())
        assert W.shape[1] == 25_524_480
        assert W.shape[0] == sf1_workload().num_queries()
