"""Tests for structured workload matrices and their closed-form Grams."""

import numpy as np
import pytest

from repro.linalg import (
    AllRange,
    Identity,
    Ones,
    Permuted,
    Prefix,
    SparseMatrix,
    Total,
    WidthRange,
    haar_wavelet,
    hierarchical,
)


@pytest.mark.parametrize(
    "make",
    [
        lambda: Prefix(7),
        lambda: AllRange(6),
        lambda: WidthRange(9, 3),
        lambda: WidthRange(5, 5),
        lambda: WidthRange(8, 1),
    ],
)
class TestAgainstDense:
    def test_matvec(self, make, rng):
        M = make()
        D = M.dense()
        x = rng.standard_normal(M.shape[1])
        assert np.allclose(M.matvec(x), D @ x)

    def test_rmatvec(self, make, rng):
        M = make()
        D = M.dense()
        y = rng.standard_normal(M.shape[0])
        assert np.allclose(M.rmatvec(y), D.T @ y)

    def test_gram_closed_form(self, make):
        M = make()
        D = M.dense()
        assert np.allclose(M.gram().dense(), D.T @ D)

    def test_column_abs_sums(self, make):
        M = make()
        D = M.dense()
        assert np.allclose(M.column_abs_sums(), np.abs(D).sum(axis=0))
        assert np.isclose(M.sensitivity(), np.abs(D).sum(axis=0).max())


class TestPrefix:
    def test_row_count(self):
        assert Prefix(10).shape == (10, 10)

    def test_is_lower_triangular_ones(self):
        assert np.allclose(Prefix(4).dense(), np.tril(np.ones((4, 4))))

    def test_sensitivity_is_n(self):
        assert Prefix(12).sensitivity() == 12.0


class TestAllRange:
    def test_row_count(self):
        assert AllRange(6).shape[0] == 6 * 7 // 2

    def test_rows_are_contiguous_ranges(self):
        D = AllRange(4).dense()
        for row in D:
            ones = np.nonzero(row)[0]
            assert np.all(np.diff(ones) == 1)  # contiguous
            assert set(np.unique(row)) <= {0.0, 1.0}

    def test_gram_formula(self):
        n = 5
        G = AllRange(n).gram().dense()
        for i in range(n):
            for j in range(n):
                assert G[i, j] == (min(i, j) + 1) * (n - max(i, j))


class TestWidthRange:
    def test_invalid_width(self):
        with pytest.raises(ValueError):
            WidthRange(4, 5)
        with pytest.raises(ValueError):
            WidthRange(4, 0)

    def test_each_row_sums_width(self):
        D = WidthRange(10, 4).dense()
        assert np.all(D.sum(axis=1) == 4)


class TestPermuted:
    def test_matches_column_permutation(self, rng):
        perm = rng.permutation(6)
        P = Permuted(AllRange(6), perm)
        D = AllRange(6).dense()[:, perm]
        assert np.allclose(P.dense(), D)
        x = rng.standard_normal(6)
        assert np.allclose(P.matvec(x), D @ x)
        y = rng.standard_normal(P.shape[0])
        assert np.allclose(P.rmatvec(y), D.T @ y)
        assert np.allclose(P.gram().dense(), D.T @ D)
        assert np.allclose(P.column_abs_sums(), np.abs(D).sum(axis=0))

    def test_sensitivity_invariant(self, rng):
        perm = rng.permutation(8)
        assert Permuted(Prefix(8), perm).sensitivity() == Prefix(8).sensitivity()

    def test_invalid_perm_rejected(self):
        with pytest.raises(ValueError):
            Permuted(Prefix(4), [0, 1, 1, 2])


class TestHaarWavelet:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            haar_wavelet(6)

    def test_shape_square(self):
        assert haar_wavelet(16).shape == (16, 16)

    def test_sensitivity_log(self):
        for n in [2, 4, 8, 16, 32]:
            assert haar_wavelet(n).sensitivity() == 1 + np.log2(n)

    def test_rows_orthogonal(self):
        D = haar_wavelet(8).dense()
        G = D @ D.T
        assert np.allclose(G - np.diag(np.diag(G)), 0)

    def test_invertible(self):
        D = haar_wavelet(8).dense()
        assert np.linalg.matrix_rank(D) == 8


class TestHierarchical:
    def test_leaf_rows_form_identity(self):
        D = hierarchical(8, 2).dense()
        # The 8 singleton rows appear exactly once each.
        singles = D[(D.sum(axis=1) == 1)]
        assert singles.shape[0] == 8

    def test_sensitivity_equals_levels(self):
        assert hierarchical(8, 2).sensitivity() == 4.0  # 8, 4, 2, 1
        assert hierarchical(9, 3).sensitivity() == 3.0  # 9, 3, 1
        assert hierarchical(16, 4).sensitivity() == 3.0

    def test_branching_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            hierarchical(8, 1)

    def test_root_row_is_total(self):
        D = hierarchical(6, 2).dense()
        assert np.allclose(D[0], np.ones(6))

    def test_non_power_domain(self):
        D = hierarchical(5, 2).dense()
        assert np.allclose(D[0], np.ones(5))
        # every cell covered at every level it exists in
        assert D.shape[1] == 5


class TestSparseMatrix:
    def test_roundtrip(self, rng):
        from scipy import sparse as sp

        A = sp.random(5, 7, density=0.4, random_state=3)
        M = SparseMatrix(A)
        D = A.toarray()
        x = rng.standard_normal(7)
        assert np.allclose(M.matvec(x), D @ x)
        assert np.allclose(M.gram().dense(), D.T @ D)
        assert np.allclose(M.T.dense(), D.T)
        assert np.isclose(M.sum(), D.sum())


class TestTotalOnes:
    def test_total_is_row_of_ones(self):
        assert np.allclose(Total(5).dense(), np.ones((1, 5)))

    def test_ones_gram(self):
        G = Ones(3, 4).gram()
        assert np.allclose(G.dense(), 3 * np.ones((4, 4)))

    def test_ones_pinv(self):
        O = Ones(3, 4)
        assert np.allclose(O.pinv().dense(), np.linalg.pinv(np.ones((3, 4))))

    def test_identity_everything(self, rng):
        I = Identity(5)
        x = rng.standard_normal(5)
        assert np.allclose(I.matvec(x), x)
        assert I.sensitivity() == 1.0
        assert I.trace() == 5.0
        assert np.allclose(I.pinv().dense(), np.eye(5))
