"""End-to-end integration tests for the HDMM mechanism (Table 1b)."""

import numpy as np
import pytest

from repro import HDMM, workload
from repro.core.privacy import PrivacyLedger
from repro.domain import Domain


class TestLifecycle:
    def test_run_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            HDMM().run(np.zeros(4), eps=1.0)

    def test_fit_accepts_logical_workload(self):
        from repro.workload import LogicalWorkload, Product
        from repro.workload.predicates import identity_predicates

        dom = Domain(["a", "b"], [4, 4])
        wl = LogicalWorkload([Product(dom, {"a": identity_predicates(4)})])
        mech = HDMM(restarts=1, rng=0).fit(wl)
        assert mech.strategy is not None

    def test_fit_returns_self(self):
        assert isinstance(HDMM(restarts=1, rng=0).fit(workload.prefix_1d(8)), HDMM)


class TestStatisticalCorrectness:
    def test_unbiasedness(self, rng):
        """Averaged over noise draws, HDMM answers converge to the truth."""
        W = workload.prefix_1d(16)
        mech = HDMM(restarts=1, rng=0).fit(W)
        x = rng.poisson(40, 16).astype(float)
        truth = W.matvec(x)
        answers = np.mean(
            [mech.run(x, eps=1.0, rng=s) for s in range(300)], axis=0
        )
        scale = np.abs(truth).mean() + 1.0
        assert np.abs(answers - truth).max() / scale < 0.2

    def test_empirical_error_matches_expected(self, rng):
        """Monte-Carlo total squared error ≈ the Definition 7 closed form."""
        W = workload.prefix_1d(32)
        mech = HDMM(restarts=1, rng=0).fit(W)
        x = rng.poisson(100, 32).astype(float)
        truth = W.matvec(x)
        trials = 400
        total = 0.0
        for s in range(trials):
            est = mech.run(x, eps=1.0, rng=s)
            total += np.sum((est - truth) ** 2)
        empirical = total / trials
        expected = mech.expected_error(eps=1.0)
        assert abs(empirical - expected) / expected < 0.15

    def test_error_scales_with_eps(self, rng):
        W = workload.prefix_1d(16)
        mech = HDMM(restarts=1, rng=0).fit(W)
        assert np.isclose(
            mech.expected_error(eps=0.5), 4 * mech.expected_error(eps=1.0)
        )

    def test_2d_union_workload_end_to_end(self, rng):
        W = workload.prefix_identity(8)
        mech = HDMM(restarts=1, rng=0).fit(W)
        x = rng.poisson(20, 64).astype(float)
        answers = mech.run(x, eps=2.0, rng=1)
        assert answers.shape == (W.shape[0],)
        # With a decent eps, relative error on the totals should be sane.
        truth = W.matvec(x)
        assert np.abs(answers - truth).mean() < 0.5 * (np.abs(truth).mean() + 1)

    def test_marginals_workload_end_to_end(self, rng):
        dom = Domain(["a", "b", "c"], [4, 4, 4])
        W = workload.up_to_k_marginals(dom, 2)
        mech = HDMM(restarts=1, rng=0).fit(W)
        x = rng.poisson(10, 64).astype(float)
        answers, x_hat = mech.run(x, eps=1.0, rng=2, return_data_vector=True)
        assert answers.shape == (W.shape[0],)
        assert x_hat.shape == (64,)

    def test_hdmm_beats_identity_and_lm_on_ranges(self):
        from repro.baselines import IdentityMechanism, LaplaceMechanism

        W = workload.all_range(64)
        mech = HDMM(restarts=2, rng=0).fit(W)
        hdmm_err = mech.expected_error()
        assert hdmm_err < IdentityMechanism().expected_error(W)
        assert hdmm_err < LaplaceMechanism().expected_error(W)

    def test_rootmse_definition(self):
        W = workload.prefix_1d(16)
        mech = HDMM(restarts=1, rng=0).fit(W)
        assert np.isclose(
            mech.expected_rootmse(1.0),
            np.sqrt(mech.expected_error(1.0) / W.shape[0]),
        )


class TestPrivacyLedger:
    def test_budget_tracking(self):
        ledger = PrivacyLedger(1.0)
        ledger.spend(0.25, "partition")
        ledger.spend(0.75, "measure")
        assert ledger.remaining == pytest.approx(0.0)

    def test_overspend_raises(self):
        ledger = PrivacyLedger(1.0)
        ledger.spend(0.9)
        with pytest.raises(ValueError):
            ledger.spend(0.2)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            PrivacyLedger(0.0)

    def test_invalid_spend_rejected(self):
        with pytest.raises(ValueError):
            PrivacyLedger(1.0).spend(-0.1)
