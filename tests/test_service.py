"""Tests for the service subsystem: fingerprints, the strategy registry,
the privacy accountant, and the QueryService serving engine — including
the end-to-end persistence acceptance contract (fit once, reload in a
fresh process-equivalent, serve bit-identically, post-process for free,
and never out-spend a budget cap)."""

import numpy as np
import pytest

from repro import workload
from repro.core import HDMM
from repro.domain import Domain
from repro.linalg import (
    Identity,
    Kronecker,
    MarginalsStrategy,
    Ones,
    Prefix,
    VStack,
    Weighted,
)
from repro.optimize import opt_union
from repro.service import (
    BudgetExceededError,
    PrivacyAccountant,
    QueryMiss,
    QueryService,
    StrategyRegistry,
    canonical_config,
    in_measured_span,
    workload_fingerprint,
)
from repro.workload.logical import LogicalWorkload, Product


@pytest.fixture
def union_workload():
    return workload.range_total_union(8)


@pytest.fixture
def fitted_union(union_workload):
    return opt_union(union_workload, rng=0)


class TestFingerprint:
    def test_semantically_equal_workloads_share_a_key(self):
        assert workload_fingerprint(
            workload.range_total_union(8)
        ) == workload_fingerprint(workload.range_total_union(8))
        assert workload_fingerprint(Prefix(16)) == workload_fingerprint(Prefix(16))

    def test_different_workloads_differ(self):
        keys = {
            workload_fingerprint(workload.range_total_union(8)),
            workload_fingerprint(workload.range_total_union(16)),
            workload_fingerprint(Prefix(8)),
            workload_fingerprint(workload.prefix_identity(8)),
        }
        assert len(keys) == 4

    def test_unit_weight_and_singleton_stack_are_neutral(self):
        W = Kronecker([Prefix(4), Identity(3)])
        assert workload_fingerprint(Weighted(W, 1.0)) == workload_fingerprint(W)
        assert workload_fingerprint(VStack([W])) == workload_fingerprint(W)
        assert workload_fingerprint(Weighted(W, 2.0)) != workload_fingerprint(W)

    def test_nested_weights_multiply_through(self):
        W = Prefix(5)
        assert workload_fingerprint(
            Weighted(Weighted(W, 2.0), 3.0)
        ) == workload_fingerprint(Weighted(W, 6.0))

    def test_nested_stacks_flatten(self):
        a = Kronecker([Prefix(3), Identity(2)])
        b = Kronecker([Identity(3), Prefix(2)])
        c = Kronecker([Ones(1, 3), Identity(2)])
        assert workload_fingerprint(
            VStack([VStack([a, b]), c])
        ) == workload_fingerprint(VStack([a, b, c]))

    def test_template_and_domain_distinguish(self):
        W = Prefix(8)
        base = workload_fingerprint(W)
        assert workload_fingerprint(W, template="opt_marginals") != base
        d1 = Domain(["age"], [8])
        d2 = Domain(["income"], [8])
        assert workload_fingerprint(W, domain=d1) != workload_fingerprint(
            W, domain=d2
        )

    def test_logical_workload_uses_its_domain(self):
        dom = Domain(["a", "b"], [3, 4])
        lw = LogicalWorkload([Product(dom, {})])
        assert workload_fingerprint(lw) == workload_fingerprint(lw)

    def test_canonical_config_idempotent(self, union_workload):
        from repro.linalg import matrix_to_config

        cfg = canonical_config(matrix_to_config(union_workload))
        assert canonical_config(cfg) == cfg


class TestRegistry:
    def test_put_get_roundtrip(self, tmp_path, union_workload, fitted_union):
        reg = StrategyRegistry(tmp_path / "reg")
        key = reg.put(
            union_workload, fitted_union.strategy, loss=fitted_union.loss
        )
        assert key in reg
        assert reg.keys() == [key]
        rec = reg.get(union_workload)
        assert rec is not None and rec.key == key
        assert rec.loss == pytest.approx(fitted_union.loss)
        assert np.array_equal(
            rec.strategy.dense(), fitted_union.strategy.dense()
        )
        assert rec.strategy.sensitivity() == fitted_union.strategy.sensitivity()

    def test_loaded_strategy_is_serve_ready(
        self, tmp_path, union_workload, fitted_union
    ):
        """The union Gram inverse factor cache must be attached on load —
        no re-factorization before the first solve."""
        reg = StrategyRegistry(tmp_path / "reg")
        key = reg.put(union_workload, fitted_union.strategy)
        rec = reg.load(key)
        assert rec.meta["solver_state"]
        op = rec.strategy.cache_get("union_gram_inverse")
        assert op is not None and not isinstance(op, str)
        G = rec.strategy.gram().dense()
        n = rec.strategy.shape[1]
        assert np.allclose(op.dense() @ G, np.eye(n), atol=1e-8)

    def test_get_miss_returns_none(self, tmp_path):
        reg = StrategyRegistry(tmp_path / "reg")
        assert reg.get(Prefix(8)) is None
        with pytest.raises(KeyError):
            reg.load("deadbeef")

    def test_delete(self, tmp_path, union_workload, fitted_union):
        reg = StrategyRegistry(tmp_path / "reg")
        key = reg.put(union_workload, fitted_union.strategy)
        reg.delete(key)
        assert key not in reg and len(reg) == 0
        with pytest.raises(KeyError):
            reg.delete(key)

    def test_manifest_survives_reopen(self, tmp_path, union_workload, fitted_union):
        root = tmp_path / "reg"
        key = StrategyRegistry(root).put(union_workload, fitted_union.strategy)
        reopened = StrategyRegistry(root)
        assert key in reopened
        assert reopened.entry(key)["shape"] == list(
            fitted_union.strategy.shape
        )

    def test_template_separates_entries(self, tmp_path, union_workload, fitted_union):
        reg = StrategyRegistry(tmp_path / "reg")
        k1 = reg.put(union_workload, fitted_union.strategy, template="opt_union")
        k2 = reg.put(union_workload, fitted_union.strategy, template="opt_kron")
        assert k1 != k2 and len(reg) == 2

    def test_multiblock_precond_roundtrip_without_refactorization(
        self, tmp_path
    ):
        """Acceptance: a warm registry load of an L ≥ 3 union strategy
        restores the dominant-pair preconditioner state — the loaded
        strategy serves without ever re-running the factorization."""
        import repro.core.solvers as solvers
        from repro.core import least_squares
        from repro.core.solvers import union_gram_preconditioner
        from repro.optimize import PIdentity

        r = np.random.default_rng(3)
        blocks = [
            Weighted(
                Kronecker(
                    [PIdentity(r.random((2, 5))), PIdentity(r.random((2, 4)))]
                ),
                0.25,
            )
            for _ in range(4)
        ]
        A = VStack(blocks)
        W = workload.range_total_union(5, 4)
        reg = StrategyRegistry(tmp_path / "reg")
        key = reg.put(W, A)
        assert reg.entry(key)["solver_state"]

        rec = reg.load(key)
        state = rec.strategy.cache_get("union_gram_precond_state")
        assert state is not None and len(state["blocks"]) == 2

        # The dominant-pair factorization must never run again: the
        # restored factors are used as-is.
        original = solvers._two_term_factorization
        solvers._two_term_factorization = lambda *a, **k: (_ for _ in ()).throw(
            AssertionError("dominant-pair factorization re-ran on warm load")
        )
        try:
            M = union_gram_preconditioner(rec.strategy)
            assert M is not None
            y = np.random.default_rng(0).standard_normal(rec.strategy.shape[0])
            x = least_squares(rec.strategy, y)
        finally:
            solvers._two_term_factorization = original
        ref = np.linalg.pinv(A.dense()) @ y
        assert np.allclose(x, ref, atol=1e-8)

    def test_cache_disabled_put_does_not_poison_loaded_strategy(
        self, tmp_path, union_workload
    ):
        """A put() under globally-disabled memoization records 'unknown',
        not 'unavailable': the loaded strategy must still find its exact
        structured Gram inverse on first use."""
        from repro.core.solvers import union_gram_inverse
        from repro.linalg import set_cache_enabled

        result = opt_union(union_workload, rng=0)
        reg = StrategyRegistry(tmp_path / "reg")
        prev = set_cache_enabled(False)
        try:
            key = reg.put(union_workload, result.strategy)
        finally:
            set_cache_enabled(prev)
        assert not reg.entry(key)["solver_state"]
        rec = reg.load(key)
        assert union_gram_inverse(rec.strategy) is not None


class TestAccountant:
    def test_sequential_composition_sums(self):
        acct = PrivacyAccountant()
        acct.register("d", 2.0)
        acct.charge("d", 0.5)
        acct.charge("d", np.array([0.25, 0.25]))
        assert acct.spent("d") == pytest.approx(1.0)
        assert acct.remaining("d") == pytest.approx(1.0)

    def test_parallel_composition_takes_max(self):
        acct = PrivacyAccountant()
        acct.register("d", 1.0)
        acct.charge_parallel("d", np.array([0.2, 0.7, 0.5]))
        assert acct.spent("d") == pytest.approx(0.7)

    def test_exhaustion_raises_and_leaves_ledger_clean(self):
        acct = PrivacyAccountant()
        acct.register("d", 1.0)
        acct.charge("d", 0.8)
        with pytest.raises(BudgetExceededError):
            acct.charge("d", 0.5)
        assert acct.spent("d") == pytest.approx(0.8)
        assert len(acct.ledger) == 1

    def test_check_does_not_debit(self):
        acct = PrivacyAccountant()
        acct.register("d", 1.0)
        assert acct.check("d", 0.9) == pytest.approx(0.9)
        assert acct.spent("d") == 0.0
        with pytest.raises(BudgetExceededError):
            acct.check("d", 1.5)

    def test_unknown_dataset_and_default_cap(self):
        with pytest.raises(KeyError):
            PrivacyAccountant().charge("nope", 0.1)
        acct = PrivacyAccountant(default_cap=1.0)
        acct.charge("auto", 0.4)
        assert acct.cap("auto") == 1.0

    def test_cap_cannot_shrink_below_spent(self):
        acct = PrivacyAccountant()
        acct.register("d", 2.0)
        acct.charge("d", 1.5)
        with pytest.raises(ValueError):
            acct.register("d", 1.0)
        acct.register("d", 3.0)  # extending is fine
        assert acct.cap("d") == 3.0

    def test_epsilon_validation(self):
        acct = PrivacyAccountant()
        acct.register("d", 1.0)
        for bad in (0.0, -1.0, np.inf, np.nan):
            with pytest.raises(ValueError):
                acct.charge("d", bad)
        with pytest.raises(ValueError):
            PrivacyAccountant().register("d", -2.0)


class TestMeasuredSpan:
    def test_full_rank_strategy_spans_everything(self, rng, fitted_union):
        A = fitted_union.strategy
        q = rng.standard_normal(A.shape[1])
        assert in_measured_span(A, q)
        assert in_measured_span(A, Identity(A.shape[1]))

    def test_marginals_strategy_partial_span(self):
        theta = np.zeros(4)
        theta[0b10] = 1.0  # measure only the first-attribute marginal
        A = MarginalsStrategy((3, 3), theta)
        assert in_measured_span(A, Kronecker([Identity(3), Ones(1, 3)]))
        assert in_measured_span(A, Kronecker([Ones(1, 3), Ones(1, 3)]))
        assert not in_measured_span(A, Kronecker([Ones(1, 3), Identity(3)]))
        assert not in_measured_span(A, Identity(9))

    def test_shape_mismatch_is_not_in_span(self, fitted_union):
        assert not in_measured_span(fitted_union.strategy, np.ones(3))


class TestQueryService:
    def _service(self, tmp_path, cap=10.0, **kwargs):
        reg = StrategyRegistry(tmp_path / "reg")
        acct = PrivacyAccountant()
        svc = QueryService(
            registry=reg,
            accountant=acct,
            restarts=1,
            rng=0,
            template="opt_union",
            **kwargs,
        )
        return svc, reg, acct

    def test_end_to_end_persistence_acceptance(self, tmp_path, union_workload):
        """The PR acceptance contract: fit a union-of-Kronecker strategy,
        persist it, reload in a *fresh* QueryService, and serve an
        ε-sweep bit-identical to the in-memory ``run_batch(exact=True)``
        path at the same seeds; span queries debit nothing; cap overruns
        raise before any noise is drawn."""
        W = union_workload
        x = np.random.default_rng(3).poisson(50, W.shape[1]).astype(float)
        result = opt_union(W, rng=0)

        # Fit once and persist.
        reg = StrategyRegistry(tmp_path / "reg")
        reg.put(W, result.strategy, loss=result.loss, template="opt_union")

        # "Restart the process": a fresh service over the same directory.
        acct = PrivacyAccountant()
        svc = QueryService(
            registry=StrategyRegistry(tmp_path / "reg"),
            accountant=acct,
            restarts=1,
            rng=0,
            template="opt_union",
        )
        svc.add_dataset("adult", x, epsilon_cap=10.0)

        eps = np.array([0.5, 1.0, 2.0])
        served = svc.measure(
            "adult", W, eps, trials=2, rng=11, exact=True, warm_start=False
        )
        assert served.from_registry

        # Reference: the in-memory mechanism at the same seeds.
        mech = HDMM(restarts=1, rng=0)
        mech.workload, mech.strategy, mech.result = W, result.strategy, result
        ref = mech.run_batch(x, eps, trials=2, rng=11, exact=True, warm_start=False)
        assert np.array_equal(served.answers, ref)
        assert acct.spent("adult") == pytest.approx(2 * eps.sum())

        # Zero-debit span query.
        q = np.zeros(W.shape[1])
        q[:5] = 1.0
        spent_before = acct.spent("adult")
        ans = svc.query("adult", q)
        assert ans.hit
        assert acct.spent("adult") == spent_before

        # Cap overrun raises before any noise is drawn.
        recons_before = svc.reconstructions("adult")
        with pytest.raises(BudgetExceededError):
            svc.measure("adult", W, eps=100.0, rng=11)
        assert acct.spent("adult") == spent_before
        assert svc.reconstructions("adult") == recons_before

    def test_cold_fit_populates_registry(self, tmp_path):
        svc, reg, acct = self._service(tmp_path)
        W = workload.range_total_union(8)
        x = np.arange(W.shape[1], dtype=float)
        svc.add_dataset("d", x, epsilon_cap=10.0)
        served = svc.measure("d", W, eps=1.0, rng=0)
        assert not served.from_registry
        assert served.key in reg
        # Second service over the same directory loads instead of fitting.
        svc2 = QueryService(
            registry=StrategyRegistry(tmp_path / "reg"),
            accountant=PrivacyAccountant(default_cap=10.0),
            restarts=1,
            rng=0,
            template="opt_union",
        )
        svc2.add_dataset("d", x)
        assert svc2.measure("d", W, eps=1.0, rng=0).from_registry

    def test_query_miss_raises_without_spending(self, tmp_path):
        svc, _, acct = self._service(tmp_path)
        svc.add_dataset("d", np.ones(16), epsilon_cap=1.0)
        with pytest.raises(QueryMiss):
            svc.query("d", np.ones(16))
        assert acct.spent("d") == 0.0

    def test_answer_batches_misses_and_serves_hits_free(self, tmp_path):
        svc, _, acct = self._service(tmp_path)
        W = workload.range_total_union(8)
        n = W.shape[1]
        x = np.random.default_rng(0).poisson(30, n).astype(float)
        svc.add_dataset("d", x, epsilon_cap=10.0)
        svc.measure("d", W, eps=1.0, rng=1)
        spent = acct.spent("d")

        q_hit = np.zeros(n)
        q_hit[:3] = 1.0
        q_miss_a = np.ones(n)
        q_miss_b = np.zeros(n)
        q_miss_b[::2] = 2.0
        # All three lie in the (full-rank) measured span, so serve free...
        batch = svc.answer("d", [q_hit, q_miss_a, q_miss_b])
        assert batch.hits == 3 and batch.misses == 0 and batch.charged == 0.0
        assert acct.spent("d") == spent

        # ...while a fresh dataset with no reconstruction pays once for
        # the whole miss batch.
        svc.add_dataset("cold", x, epsilon_cap=10.0)
        batch = svc.answer("cold", [q_hit, q_miss_a], eps=0.5, rng=2)
        assert batch.hits == 0 and batch.misses == 2
        assert batch.charged == pytest.approx(0.5)
        assert acct.spent("cold") == pytest.approx(0.5)
        assert all(not a.hit for a in batch.answers)
        # Answers line up query-by-query with the joint measurement.
        assert batch.answers[0].values.shape == (1,)
        assert batch.answers[1].values.shape == (1,)

    def test_answer_without_eps_raises_on_miss(self, tmp_path):
        svc, _, acct = self._service(tmp_path)
        svc.add_dataset("d", np.ones(8), epsilon_cap=1.0)
        with pytest.raises(QueryMiss):
            svc.answer("d", [np.ones(8)])
        assert acct.spent("d") == 0.0

    def test_rank_deficient_cache_rejects_out_of_span_queries(self, tmp_path):
        """A marginals measurement only serves queries it supports —
        others must miss rather than return garbage.  The registry is
        pre-seeded with a deliberately rank-deficient strategy (only the
        first-attribute marginal measured) so the case is deterministic."""
        reg = StrategyRegistry(tmp_path / "reg")
        acct = PrivacyAccountant()
        svc = QueryService(registry=reg, accountant=acct, restarts=1, rng=0)
        W = Kronecker([Identity(3), Ones(1, 3)])  # first-attribute marginal
        theta = np.zeros(4)
        theta[0b10] = 1.0
        A = MarginalsStrategy((3, 3), theta)
        reg.put(W, A, template=svc.template)
        x = np.random.default_rng(5).poisson(20, 9).astype(float)
        svc.add_dataset("d", x, epsilon_cap=5.0)
        served = svc.measure("d", W, eps=1.0, rng=3)
        assert served.from_registry
        with pytest.raises(QueryMiss):
            svc.query("d", Identity(9))  # full contingency: unsupported
        with pytest.raises(QueryMiss):
            svc.query("d", Kronecker([Ones(1, 3), Identity(3)]))
        assert svc.query("d", W).hit
        assert svc.query("d", Kronecker([Ones(1, 3), Ones(1, 3)])).hit

    def test_shape_mismatch_raises_before_any_debit(self, tmp_path):
        """A programming error (wrong dataset/workload pairing) must not
        burn budget."""
        svc, _, acct = self._service(tmp_path)
        svc.add_dataset("d", np.ones(16), epsilon_cap=2.0)
        with pytest.raises(ValueError, match="does not match"):
            svc.measure("d", workload.range_total_union(8), eps=1.5)
        assert acct.spent("d") == 0.0

    def test_answer_rejects_grids_and_trials(self, tmp_path):
        svc, _, acct = self._service(tmp_path)
        svc.add_dataset("d", np.ones(8), epsilon_cap=5.0)
        with pytest.raises(ValueError, match="scalar"):
            svc.answer("d", [np.ones(8)], eps=np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="trials"):
            svc.answer("d", [np.ones(8)], eps=1.0, trials=3)
        assert acct.spent("d") == 0.0

    def test_low_eps_remeasure_keeps_accurate_reconstruction(self, tmp_path):
        svc, _, _ = self._service(tmp_path)
        W = workload.range_total_union(8)
        x = np.random.default_rng(2).poisson(30, W.shape[1]).astype(float)
        svc.add_dataset("d", x, epsilon_cap=30.0)
        served = svc.measure("d", W, eps=10.0, rng=1)
        good = svc._datasets["d"].reconstructions[served.key]
        svc.measure("d", W, eps=0.1, rng=2)
        kept = svc._datasets["d"].reconstructions[served.key]
        assert kept.eps == 10.0
        assert np.array_equal(kept.x_hat, good.x_hat)
        # A better measurement does replace the cache.
        svc.measure("d", W, eps=[0.5, 12.0], rng=3)
        assert svc._datasets["d"].reconstructions[served.key].eps == 12.0

    def test_dataset_validation(self, tmp_path):
        svc, _, _ = self._service(tmp_path)
        with pytest.raises(KeyError):
            svc.measure("ghost", Prefix(4), eps=1.0)
        with pytest.raises(ValueError):
            svc.add_dataset("d", np.ones((2, 2)))
        svc_no_acct = QueryService(registry=None, accountant=None)
        with pytest.raises(ValueError):
            svc_no_acct.add_dataset("d", np.ones(4), epsilon_cap=1.0)

    def test_eps_validation(self, tmp_path):
        svc, _, _ = self._service(tmp_path)
        svc.add_dataset("d", np.ones(8), epsilon_cap=1.0)
        for bad in (0.0, -1.0, np.inf):
            with pytest.raises(ValueError):
                svc.measure("d", Prefix(8), eps=bad)

    def test_memoryless_service_without_registry(self):
        svc = QueryService(registry=None, accountant=None, restarts=1, rng=0)
        W = Prefix(8)
        svc.add_dataset("d", np.arange(8, dtype=float))
        served = svc.measure("d", W, eps=1.0, rng=0)
        assert not served.from_registry
        # Memoized in-process: the second prepare is a hit.
        assert svc.measure("d", W, eps=1.0, rng=0).from_registry


class TestColdMissFastPath:
    """Satellite: small ad-hoc miss batches skip the fitting template and
    measure a sensitivity-1 selection on the query support directly."""

    def _service(self, tmp_path, **kwargs):
        acct = PrivacyAccountant()
        svc = QueryService(
            registry=StrategyRegistry(tmp_path / "reg"),
            accountant=acct,
            restarts=1,
            rng=0,
            **kwargs,
        )
        return svc, acct

    def test_small_miss_batch_never_fits(self, tmp_path, monkeypatch):
        svc, acct = self._service(tmp_path)
        x = np.random.default_rng(1).poisson(40, 16).astype(float)
        svc.add_dataset("d", x, epsilon_cap=5.0)
        monkeypatch.setattr(
            HDMM,
            "fit",
            lambda *a, **k: pytest.fail("cold-miss fast path ran a fit"),
        )
        q1 = np.zeros(16)
        q1[:4] = 1.0
        q2 = np.zeros(16)
        q2[2:8] = 2.0
        batch = svc.answer("d", [q1, q2], eps=0.5, rng=3)
        assert batch.misses == 2 and batch.hits == 0
        assert batch.charged == pytest.approx(0.5)
        assert acct.spent("d") == pytest.approx(0.5)
        assert all(a.key.startswith("direct:") for a in batch.answers)
        assert len(svc.registry) == 0  # one-offs never pollute the registry

    def test_direct_answers_are_accurate_at_high_eps(self, tmp_path):
        svc, _ = self._service(tmp_path)
        x = np.arange(12, dtype=float)
        svc.add_dataset("d", x, epsilon_cap=1e7)
        q = np.zeros(12)
        q[3:7] = 1.0
        batch = svc.answer("d", [q], eps=1e6, rng=0)
        assert batch.answers[0].values == pytest.approx([q @ x], abs=1e-2)

    def test_direct_measurement_is_cached_for_free_hits(self, tmp_path):
        svc, acct = self._service(tmp_path)
        x = np.random.default_rng(2).poisson(25, 10).astype(float)
        svc.add_dataset("d", x, epsilon_cap=5.0)
        q = np.zeros(10)
        q[::2] = 1.0
        first = svc.answer("d", [q], eps=1.0, rng=4)
        assert first.misses == 1
        spent = acct.spent("d")
        # Identical support → the cached direct reconstruction serves it.
        again = svc.answer("d", [q], eps=1.0, rng=5)
        assert again.hits == 1 and again.charged == 0.0
        assert acct.spent("d") == spent
        assert np.array_equal(
            again.answers[0].values, first.answers[0].values
        )

    def test_zero_query_served_free(self, tmp_path):
        svc, acct = self._service(tmp_path)
        svc.add_dataset("d", np.ones(8), epsilon_cap=1.0)
        batch = svc.answer("d", [np.zeros(8)], eps=0.5, rng=0)
        assert batch.charged == 0.0
        assert batch.answers[0].values == pytest.approx([0.0])
        assert acct.spent("d") == 0.0
        # The empty reconstruction is cached: identical traffic now hits
        # (and the answer key from the first batch names a real entry).
        assert batch.answers[0].key in svc.reconstructions("d")
        again = svc.answer("d", [np.zeros(8)])
        assert again.hits == 1 and again.charged == 0.0

    def test_threshold_zero_disables_fast_path(self, tmp_path, monkeypatch):
        svc, _ = self._service(tmp_path, direct_miss_threshold=0)
        svc.add_dataset("d", np.ones(8), epsilon_cap=5.0)
        fits = []
        original = HDMM.fit
        monkeypatch.setattr(
            HDMM,
            "fit",
            lambda self, W, **kw: fits.append(1) or original(self, W, **kw),
        )
        q = np.zeros(8)
        q[0] = 1.0
        batch = svc.answer("d", [q], eps=0.5, rng=1)
        assert batch.misses == 1
        assert fits  # the full fitting template ran

    def test_wide_support_misses_use_full_path(self, tmp_path, monkeypatch):
        """A few rows can still touch the whole domain (e.g. a total
        query); beyond DIRECT_MISS_SUPPORT_LIMIT cells the direct path
        would cost domain-sized dense algebra and answer poorly — such
        misses must run the fitting template instead."""
        from repro.service import engine as engine_mod

        monkeypatch.setattr(engine_mod, "DIRECT_MISS_SUPPORT_LIMIT", 4)
        svc, acct = self._service(tmp_path)
        x = np.random.default_rng(0).poisson(30, 8).astype(float)
        svc.add_dataset("d", x, epsilon_cap=5.0)
        batch = svc.answer("d", [np.ones(8)], eps=0.5, rng=1)  # support 8 > 4
        assert batch.misses == 1
        assert len(svc.registry) == 1  # the fitting template ran + persisted
        assert not batch.answers[0].key.startswith("direct:")

    def test_zero_query_invalid_eps_still_rejected(self, tmp_path):
        """The empty-support early exit must not bypass ε validation."""
        svc, acct = self._service(tmp_path)
        svc.add_dataset("d", np.ones(8), epsilon_cap=1.0)
        for bad in (0.0, -1.0, np.inf, np.nan):
            with pytest.raises(ValueError):
                svc.answer("d", [np.zeros(8)], eps=bad)
        assert acct.spent("d") == 0.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="direct_miss_threshold"):
            QueryService(direct_miss_threshold=-1)
        with pytest.raises(ValueError, match="direct_miss_threshold"):
            QueryService(direct_miss_threshold=2.5)

    def test_direct_path_honors_cache_false(self, tmp_path):
        svc, _ = self._service(tmp_path)
        x = np.random.default_rng(3).poisson(25, 10).astype(float)
        svc.add_dataset("d", x, epsilon_cap=5.0)
        q = np.zeros(10)
        q[2] = 1.0
        batch = svc.answer("d", [q], eps=1.0, rng=4, cache=False)
        assert batch.misses == 1
        assert svc.reconstructions("d") == []  # nothing retained
        # The same query misses again (and pays again) — as it would on
        # the fitting path with cache=False.
        again = svc.answer("d", [q], eps=1.0, rng=5, cache=False)
        assert again.misses == 1

    def test_direct_path_rejects_unknown_options(self, tmp_path):
        """A misspelled measure option must fail on the direct path just
        like it would on the fitting path — not vanish because the miss
        batch happened to be small."""
        svc, acct = self._service(tmp_path)
        svc.add_dataset("d", np.ones(8), epsilon_cap=5.0)
        q = np.zeros(8)
        q[0] = 1.0
        with pytest.raises(TypeError, match="mehtod"):
            svc.answer("d", [q], eps=0.5, rng=1, mehtod="cg")
        assert acct.spent("d") == 0.0
        # Known solver options pass through (and are no-ops here).
        batch = svc.answer("d", [q], eps=0.5, rng=1, exact=True)
        assert batch.misses == 1

    def test_oversized_miss_batch_uses_full_path(self, tmp_path):
        """Miss batches above the threshold still go through the fitted
        union-measurement path (and the registry)."""
        svc, acct = self._service(tmp_path, direct_miss_threshold=1)
        x = np.random.default_rng(0).poisson(30, 8).astype(float)
        svc.add_dataset("d", x, epsilon_cap=5.0)
        q1 = np.zeros(8)
        q1[:2] = 1.0
        q2 = np.ones(8)
        batch = svc.answer("d", [q1, q2], eps=0.5, rng=2)
        assert batch.misses == 2
        assert batch.charged == pytest.approx(0.5)
        assert len(svc.registry) == 1  # fitted strategy was persisted


class TestValidateEpsilonCentralized:
    """Satellite: the shared validator guards every ε entry point."""

    def test_measure_rejects_nonfinite(self):
        from repro.core.measure import laplace_measure, laplace_measure_batch

        A = Identity(4)
        for bad in (np.inf, np.nan, 0.0, -1.0):
            with pytest.raises(ValueError):
                laplace_measure(A, np.zeros(4), bad)
        with pytest.raises(ValueError):
            laplace_measure_batch(A, np.zeros(4), np.array([1.0, np.inf]))

    def test_expected_error_rejects_nonfinite(self):
        from repro.core import expected_error

        with pytest.raises(ValueError):
            expected_error(Prefix(4), Identity(4), np.inf)

    def test_run_batch_rejects_nonfinite(self):
        mech = HDMM(restarts=1, rng=0).fit(Prefix(8))
        with pytest.raises(ValueError):
            mech.run_batch(np.zeros(8), eps=np.array([1.0, np.nan]))

    def test_validator_accepts_grids(self):
        from repro.core import validate_epsilon

        out = validate_epsilon(np.array([0.1, 1.0]))
        assert out.dtype == np.float64 and out.shape == (2,)
        assert float(validate_epsilon(2)) == 2.0
        with pytest.raises(ValueError):
            validate_epsilon([])
        with pytest.raises(ValueError):
            validate_epsilon("abc")


class TestQueryDelegation:
    """Satellite: single-query query() delegates to answer()'s
    miss-batching path, so a cold single query reaches the
    direct-measure fast path (and its support-keyed cache)."""

    def _service(self, tmp_path):
        acct = PrivacyAccountant(default_cap=50.0)
        svc = QueryService(
            registry=StrategyRegistry(tmp_path / "reg"),
            accountant=acct,
            restarts=1,
            rng=0,
        )
        return svc, acct

    def test_cold_single_query_takes_direct_path(self, tmp_path, monkeypatch):
        svc, acct = self._service(tmp_path)
        x = np.random.default_rng(1).poisson(40, 16).astype(float)
        svc.add_dataset("d", x)
        monkeypatch.setattr(
            HDMM,
            "fit",
            lambda *a, **k: pytest.fail("single-query miss ran a fit"),
        )
        q = np.zeros(16)
        q[:3] = 1.0
        ans = svc.query("d", q, eps=0.5, rng=3)
        assert not ans.hit
        assert ans.key.startswith("direct:")
        assert acct.spent("d") == pytest.approx(0.5)
        # The measurement is cached: the identical query now hits free.
        again = svc.query("d", q)
        assert again.hit and np.array_equal(again.values, ans.values)
        assert acct.spent("d") == pytest.approx(0.5)

    def test_query_without_eps_still_raises_on_miss(self, tmp_path):
        svc, acct = self._service(tmp_path)
        svc.add_dataset("d", np.ones(8))
        with pytest.raises(QueryMiss):
            svc.query("d", np.ones(8))
        assert acct.spent("d") == 0.0

    def test_query_matches_single_query_answer(self, tmp_path):
        svc, _ = self._service(tmp_path)
        x = np.arange(12, dtype=float)
        svc.add_dataset("d", x)
        q = np.zeros(12)
        q[4:8] = 1.0
        via_query = svc.query("d", q, eps=1.0, rng=7)
        svc2, _ = self._service(tmp_path)
        svc2.add_dataset("d", x)
        via_answer = svc2.answer("d", [q], eps=1.0, rng=7).answers[0]
        assert np.array_equal(via_query.values, via_answer.values)


class TestWarmBeforeDirect:
    """Routing order: a warm strategy for the exact miss union beats the
    direct fast path (more accurate, never fits)."""

    def test_prepared_union_serves_small_miss_warm(self, tmp_path, monkeypatch):
        svc = QueryService(
            registry=StrategyRegistry(tmp_path / "reg"),
            accountant=PrivacyAccountant(default_cap=50.0),
            restarts=1,
            rng=0,
        )
        W = Prefix(8)  # 8 rows — well under direct_miss_threshold
        key, _, _, _ = svc.prepare(W)
        x = np.random.default_rng(2).poisson(30, 8).astype(float)
        svc.add_dataset("d", x)
        monkeypatch.setattr(
            HDMM,
            "fit",
            lambda *a, **k: pytest.fail("warm strategy should never refit"),
        )
        batch = svc.answer("d", [W], eps=0.8, rng=5)
        assert batch.misses == 1
        assert batch.answers[0].key == key  # fitted strategy, not direct:
        assert batch.charged == pytest.approx(0.8)

    def test_unprepared_small_miss_still_goes_direct(self, tmp_path):
        svc = QueryService(
            registry=StrategyRegistry(tmp_path / "reg"),
            accountant=PrivacyAccountant(default_cap=50.0),
            restarts=1,
            rng=0,
        )
        svc.add_dataset("d", np.ones(8))
        q = np.zeros(8)
        q[0] = 1.0
        batch = svc.answer("d", [q], eps=0.5, rng=1)
        assert batch.answers[0].key.startswith("direct:")


class TestSchemaMismatchErrors:
    """Satellite: shape mismatches raise SchemaMismatchError naming the
    dataset and the expected domain."""

    def test_measure_names_dataset_and_lengths(self, tmp_path):
        from repro.service import SchemaMismatchError

        svc = QueryService(registry=None, accountant=None, restarts=1, rng=0)
        svc.add_dataset("adult", np.ones(16))
        with pytest.raises(SchemaMismatchError, match="'adult'.*16"):
            svc.measure("adult", workload.prefix_1d(8), eps=1.0)

    def test_answer_rejects_mismatched_query_width(self):
        from repro.service import SchemaMismatchError

        svc = QueryService(registry=None, accountant=None, restarts=1, rng=0)
        svc.add_dataset("adult", np.ones(16))
        with pytest.raises(SchemaMismatchError, match="'adult'.*16"):
            svc.answer("adult", [np.ones(8)], eps=1.0)

    def test_measure_with_logical_domain_names_attributes(self):
        from repro.service import SchemaMismatchError
        from repro.workload.predicates import TruePredicate

        svc = QueryService(registry=None, accountant=None, restarts=1, rng=0)
        svc.add_dataset("adult", np.ones(5))
        dom = Domain(["age", "sex"], [3, 2])
        lw = LogicalWorkload([Product(dom, {"age": [TruePredicate()]})])
        with pytest.raises(SchemaMismatchError, match="age"):
            svc.measure("adult", lw, eps=1.0)

    def test_is_also_a_value_error(self):
        from repro.domain import SchemaMismatchError

        assert issubclass(SchemaMismatchError, ValueError)
        assert issubclass(SchemaMismatchError, KeyError)

    def test_domain_lookup_names_attribute(self):
        from repro.domain import SchemaMismatchError

        dom = Domain(["age", "sex"], [3, 2])
        with pytest.raises(SchemaMismatchError, match="ghost.*age"):
            dom.index("ghost")
        with pytest.raises(SchemaMismatchError, match="ghost"):
            dom.project(["ghost"])

    def test_registryless_direct_path_skips_fingerprinting(self, monkeypatch):
        """With no registry and an empty memo, warm is impossible — the
        direct fast path must not pay the miss-union fingerprint."""
        svc = QueryService(registry=None, accountant=None, restarts=1, rng=0)
        svc.add_dataset("d", np.arange(16, dtype=float))
        monkeypatch.setattr(
            QueryService,
            "probe",
            lambda *a, **k: pytest.fail("probed with warm provably impossible"),
        )
        q = np.zeros(16)
        q[3] = 1.0
        batch = svc.answer("d", [q], eps=0.5, rng=1)
        assert batch.answers[0].key.startswith("direct:")
