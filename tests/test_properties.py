"""Property-based tests (hypothesis) for the core algebraic invariants.

These pin down the identities HDMM's correctness rests on: Kronecker
mat-vec/Gram/pinv/sensitivity identities (Section 4.4, Theorem 3), the
marginals algebra closure (Propositions 3-4), the p-Identity construction
(Definition 9), and the analytic gradients.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg import (
    Dense,
    Kronecker,
    MarginalsAlgebra,
    MarginalsGram,
    VStack,
    Weighted,
)
from repro.optimize import PIdentity, pidentity_loss_and_grad

settings.register_profile("repro", deadline=None, max_examples=25)
settings.load_profile("repro")


def small_matrix(max_rows=4, max_cols=4):
    shapes = st.tuples(
        st.integers(1, max_rows), st.integers(1, max_cols)
    )
    return shapes.flatmap(
        lambda s: arrays(
            np.float64,
            s,
            elements=st.floats(-3, 3, allow_nan=False),
        )
    )


def explicit_kron(mats):
    out = mats[0]
    for M in mats[1:]:
        out = np.kron(out, M)
    return out


class TestKroneckerProperties:
    @given(st.lists(small_matrix(), min_size=1, max_size=3))
    def test_matvec_matches_explicit(self, mats):
        K = Kronecker([Dense(M) for M in mats])
        E = explicit_kron(mats)
        x = np.arange(1.0, K.shape[1] + 1)
        assert np.allclose(K.matvec(x), E @ x, atol=1e-8)

    @given(st.lists(small_matrix(), min_size=1, max_size=3))
    def test_gram_identity(self, mats):
        K = Kronecker([Dense(M) for M in mats])
        E = explicit_kron(mats)
        assert np.allclose(K.gram().dense(), E.T @ E, atol=1e-8)

    @given(st.lists(small_matrix(), min_size=1, max_size=3))
    def test_sensitivity_theorem3(self, mats):
        K = Kronecker([Dense(M) for M in mats])
        E = explicit_kron(mats)
        assert np.isclose(
            K.sensitivity(), np.abs(E).sum(axis=0).max(), atol=1e-8
        )

    @given(st.lists(small_matrix(), min_size=1, max_size=2))
    def test_pinv_identity(self, mats):
        # The identity (A⊗B)⁺ = A⁺⊗B⁺ is exact, but numerical pinv
        # truncates singular values relative to the largest one, which
        # differs between the factors and the product for ill-conditioned
        # inputs; restrict to well-conditioned factors.
        from hypothesis import assume

        for M in mats:
            svals = np.linalg.svd(M, compute_uv=False)
            assume(svals.size > 0 and svals.min() > 0.1)
        K = Kronecker([Dense(M) for M in mats])
        E = explicit_kron(mats)
        assert np.allclose(K.pinv().dense(), np.linalg.pinv(E), atol=1e-6)


class TestStackProperties:
    @given(
        st.lists(
            arrays(
                np.float64,
                st.tuples(st.integers(1, 4), st.just(5)),
                elements=st.floats(-3, 3, allow_nan=False),
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_vstack_equals_numpy_vstack(self, blocks):
        S = VStack([Dense(B) for B in blocks])
        E = np.vstack(blocks)
        x = np.arange(1.0, 6.0)
        assert np.allclose(S.matvec(x), E @ x)
        assert np.allclose(S.gram().dense(), E.T @ E, atol=1e-8)
        assert np.isclose(S.sensitivity(), np.abs(E).sum(axis=0).max(), atol=1e-8)

    @given(
        small_matrix(),
        st.floats(0.1, 5.0, allow_nan=False),
    )
    def test_weighted_consistency(self, M, w):
        W = Weighted(Dense(M), w)
        assert np.allclose(W.dense(), w * M)
        assert np.isclose(W.sensitivity(), w * np.abs(M).sum(axis=0).max(), rtol=1e-9)


class TestMarginalsProperties:
    SIZES = (2, 3, 2)

    @given(
        arrays(np.float64, 8, elements=st.floats(0, 3, allow_nan=False)),
        arrays(np.float64, 8, elements=st.floats(0, 3, allow_nan=False)),
    )
    def test_product_closure(self, u, v):
        alg = MarginalsAlgebra(self.SIZES)
        Gu = MarginalsGram(self.SIZES, u).dense()
        Gv = MarginalsGram(self.SIZES, v).dense()
        w = alg.multiply_weights(u, v)
        assert np.allclose(Gu @ Gv, MarginalsGram(self.SIZES, w).dense(), atol=1e-6)

    @given(
        arrays(np.float64, 8, elements=st.floats(0, 3, allow_nan=False)),
        arrays(np.float64, 8, elements=st.floats(0, 3, allow_nan=False)),
    )
    def test_multiply_weights_symmetric(self, u, v):
        alg = MarginalsAlgebra(self.SIZES)
        assert np.allclose(
            alg.multiply_weights(u, v), alg.multiply_weights(v, u), atol=1e-9
        )

    @given(
        arrays(
            np.float64, 8, elements=st.floats(0.05, 3, allow_nan=False)
        )
    )
    def test_inverse_roundtrip(self, u):
        alg = MarginalsAlgebra(self.SIZES)
        v = alg.ginv_weights(u)
        Gu = MarginalsGram(self.SIZES, u).dense()
        Gv = MarginalsGram(self.SIZES, v).dense()
        assert np.allclose(Gu @ Gv, np.eye(12), atol=1e-5)


class TestPIdentityProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 3), st.integers(2, 6)),
            elements=st.floats(0, 4, allow_nan=False),
        )
    )
    def test_sensitivity_always_one(self, theta):
        A = PIdentity(theta)
        D = A.dense()
        assert np.allclose(np.abs(D).sum(axis=0), 1.0)

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 3), st.integers(2, 5)),
            elements=st.floats(0.01, 4, allow_nan=False),
        )
    )
    def test_loss_positive_and_matches_dense(self, theta):
        n = theta.shape[1]
        V = np.eye(n) + np.ones((n, n))  # a PSD workload Gram
        loss, _ = pidentity_loss_and_grad(theta, V)
        D = PIdentity(theta).dense()
        direct = np.trace(np.linalg.inv(D.T @ D) @ V)
        assert loss > 0
        assert np.isclose(loss, direct, rtol=1e-6)

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 2), st.integers(2, 4)),
            elements=st.floats(0.05, 2, allow_nan=False),
        )
    )
    def test_gram_inverse_woodbury(self, theta):
        A = PIdentity(theta)
        D = A.dense()
        assert np.allclose(
            A.gram_inverse(), np.linalg.inv(D.T @ D), rtol=1e-6, atol=1e-8
        )


class TestErrorProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(2, 5), st.just(4)),
            elements=st.floats(-2, 2, allow_nan=False),
        )
    )
    def test_identity_error_is_gram_trace(self, Warr):
        from repro.core.error import squared_error
        from repro.linalg import Identity

        W = Dense(Warr)
        assert np.isclose(
            squared_error(W, Identity(4)), np.trace(Warr.T @ Warr), atol=1e-8
        )

    @given(st.floats(0.2, 5.0, allow_nan=False))
    def test_eps_scaling_law(self, eps):
        from repro.core.error import expected_error
        from repro.linalg import Identity, Prefix

        W = Prefix(6)
        base = expected_error(W, Identity(6), 1.0)
        assert np.isclose(expected_error(W, Identity(6), eps), base / eps**2)
